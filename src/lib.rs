//! Root crate of the reproduction repository: re-exports the [`darms`]
//! facade so the runnable examples (`examples/`) and cross-crate
//! integration tests (`tests/`) have a single import root. The actual
//! implementation lives in the `crates/` workspace members.

pub use darms::*;
