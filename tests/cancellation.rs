//! Job cancellation (`qdel`): queued jobs disappear, running jobs are
//! killed cooperatively (tasks observe `TaskKill` at their next
//! cancellation point), and resources return to the pool.

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

#[test]
fn qdel_of_queued_job_removes_it() {
    let mut cluster = Cluster::build(ClusterConfig::fast(60).with_split(1, 0));
    // Hog the node, then queue a second job and qdel it before it starts.
    cluster.qsub(JobSpec::synthetic("hog", secs(50)).ppn(8));
    let victim = cluster.qsub_after(secs(1), JobSpec::synthetic("victim", secs(5)).ppn(8));
    let outcome = Arc::new(Mutex::new(None));
    let out = outcome.clone();
    cluster.client_after("killer", secs(3), move |c| async move {
        let job = victim.lock().expect("submitted");
        let ok = c.qdel(job).await;
        let st = c.wait_for_state(job, JobState::Cancelled, SimDuration::from_millis(50)).await;
        *out.lock() = Some((ok, st.state, st.started));
    });
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let (ok, state, started) = (*outcome.lock()).unwrap();
    assert!(ok);
    assert_eq!(state, JobState::Cancelled);
    assert!(started.is_none(), "cancelled before it ever started");
}

#[test]
fn qdel_of_running_synthetic_job_stops_it_early_and_frees_nodes() {
    let mut cluster = Cluster::build(ClusterConfig::fast(61).with_split(1, 0));
    // A long synthetic job (600 s) killed at t=5: without cooperative
    // cancellation the simulation would run to 600 s.
    let victim = cluster.qsub(JobSpec::synthetic("victim", secs(600)).ppn(8));
    let follow_started = Arc::new(Mutex::new(None));
    let out = follow_started.clone();
    let spec = JobSpec::synthetic("next", secs(1)).ppn(8).script(script(move |jc| {
        let out = out.clone();
        async move {
            *out.lock() = Some(jc.proc.now());
        }
    }));
    cluster.qsub_after(secs(2), spec);
    cluster.client_after("killer", secs(5), move |c| async move {
        let job = victim.lock().expect("submitted");
        assert!(c.qdel(job).await);
    });
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    // The whole simulation ends long before the victim's 600 s runtime.
    assert!(
        stats.end_time < SimTime::ZERO + secs(60),
        "victim wound down early (ended at {})",
        stats.end_time
    );
    let started = follow_started.lock().unwrap();
    assert!(
        started > SimTime::ZERO + secs(5) && started < SimTime::ZERO + secs(60),
        "freed node let the next job run at {started}"
    );
}

#[test]
fn custom_scripts_observe_cancellation() {
    let mut cluster = Cluster::build(ClusterConfig::fast(62).with_split(1, 0));
    let phases = Arc::new(Mutex::new(Vec::new()));
    let out = phases.clone();
    let spec = JobSpec::synthetic("loop", secs(300)).ppn(8).script(script(move |mut jc| {
        let out = out.clone();
        async move {
            for i in 0.. {
                if jc.sleep_interruptible(secs(2)).await {
                    out.lock().push(format!("cancelled-at-iter-{i}"));
                    return;
                }
                out.lock().push(format!("iter-{i}"));
            }
        }
    }));
    let victim = cluster.qsub(spec);
    cluster.client_after("killer", secs(7), move |c| async move {
        let job = victim.lock().expect("submitted");
        assert!(c.qdel(job).await);
    });
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let v = phases.lock().clone();
    assert!(v.iter().any(|s| s.starts_with("cancelled-at-iter-")), "observed the kill: {v:?}");
    assert!(v.len() <= 5, "stopped promptly: {v:?}");
}

#[test]
fn qdel_unknown_job_returns_false() {
    let mut cluster = Cluster::build(ClusterConfig::fast(63).with_split(1, 0));
    let outcome = Arc::new(Mutex::new(None));
    let out = outcome.clone();
    cluster.client("c", move |c| async move {
        *out.lock() = Some(c.qdel(JobId(999)).await);
    });
    cluster.run();
    assert_eq!(*outcome.lock(), Some(false));
}
