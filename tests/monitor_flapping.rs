//! Health-monitor flapping semantics: an outage shorter than the miss
//! threshold is never reported; a sustained outage is reported offline
//! exactly once (no re-reports while it lasts) and online exactly once
//! on recovery, with every transition counted in the metrics registry.

use darms::prelude::*;
use darms_rms::MonitorConfig;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

#[test]
fn sustained_outages_are_reported_exactly_once_each() {
    let horizon = SimTime::ZERO + secs(90);
    let mc = MonitorConfig { interval: secs(2), miss_threshold: 3, ctl_bytes: 64 };
    let config = ClusterConfig::fast(91).with_split(1, 2).with_monitor(mc, horizon);
    let mut cluster = Cluster::build(config);
    let net = cluster.net.clone();
    let victim = cluster.accs[0];

    // Timeline (pings every 2 s, 3 consecutive misses to declare down):
    //  9–13   near-miss flap: two missed pings, then recovery — below
    //         the threshold, must not be reported at all;
    // 20–40   sustained outage #1: offline once, online once at ~42;
    // 50–70   sustained outage #2: offline once, online once at ~72.
    cluster.client_after("chaos", secs(9), move |c| async move {
        net.set_host_down(victim, true);
        c.proc.sleep(secs(4)).await;
        net.set_host_down(victim, false);
        c.proc.sleep(secs(7)).await;
        net.set_host_down(victim, true);
        c.proc.sleep(secs(20)).await;
        net.set_host_down(victim, false);
        c.proc.sleep(secs(10)).await;
        net.set_host_down(victim, true);
        c.proc.sleep(secs(20)).await;
        net.set_host_down(victim, false);
    });

    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let metrics = cluster.metrics.clone();
    assert_eq!(
        metrics.counter("monitor.offline_reports"),
        2,
        "each sustained outage is reported offline exactly once; the short flap never"
    );
    assert_eq!(
        metrics.counter("monitor.online_reports"),
        2,
        "each recovery from a sustained outage is reported online exactly once"
    );
}
