//! Property-based fault-injection tests: for arbitrary (bounded) fault
//! plans — lossy/duplicating/reordering links with drop < 1.0 and
//! partitions shorter than the retry budget — every dynamic accelerator
//! request must resolve to a grant or an explicit error (never hang),
//! every job must reach a terminal state before the horizon, and the
//! node database must conserve the pool.

use std::sync::Arc;

use darms::prelude::*;
use darms_experiments::invariants;
use darms_rms::{ifl, MonitorConfig};
use parking_lot::Mutex;
use proptest::prelude::*;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

const HORIZON_SECS: u64 = 300;

#[derive(Clone, Debug)]
struct CJob {
    nodes: usize,
    ppn: u32,
    runtime_ms: u64,
    arrival_ms: u64,
    dyn_rounds: u32,
}

fn cjob() -> impl Strategy<Value = CJob> {
    (1usize..=2, 1u32..=2, 1_000u64..6_000, 0u64..40_000, 0u32..=2).prop_map(
        |(nodes, ppn, runtime_ms, arrival_ms, dyn_rounds)| CJob {
            nodes,
            ppn,
            runtime_ms,
            arrival_ms,
            dyn_rounds,
        },
    )
}

/// Bounded fault-plan parameters. Drop stays strictly below 1.0 and
/// partitions stay shorter than the standard retry budget, so progress
/// is always *possible* — the property is that the system then actually
/// makes it.
#[derive(Clone, Debug)]
struct FaultParams {
    drop_pct: u32,      // 0..80 → 0.0..0.8
    duplicate_pct: u32, // 0..30
    jitter_ms: u64,
    reorder_pct: u32, // 0..30
    partitions: Vec<(u64, u64)>,
    plan_seed: u64,
}

fn fault_params() -> impl Strategy<Value = FaultParams> {
    (
        0u32..80,
        0u32..30,
        0u64..=25,
        0u32..30,
        prop::collection::vec((20u64..70, 5u64..=12), 0..3),
        0u64..u64::MAX,
    )
        .prop_map(
            |(drop_pct, duplicate_pct, jitter_ms, reorder_pct, partitions, plan_seed)| {
                FaultParams {
                    drop_pct,
                    duplicate_pct,
                    jitter_ms,
                    reorder_pct,
                    partitions,
                    plan_seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn faulty_links_never_wedge_the_control_plane(
        jobs in prop::collection::vec(cjob(), 1..5),
        fp in fault_params(),
        seed in 0u64..1000,
    ) {
        let horizon = SimTime::ZERO + secs(HORIZON_SECS);
        let mc = MonitorConfig { interval: secs(2), miss_threshold: 5, ctl_bytes: 64 };
        let config = ClusterConfig::fast(seed)
            .with_split(2, 3)
            .with_monitor(mc, horizon)
            .with_retry(RetryPolicy::standard());
        let mut cluster = Cluster::build(config);

        let lf = LinkFaults {
            drop: f64::from(fp.drop_pct) / 100.0,
            duplicate: f64::from(fp.duplicate_pct) / 100.0,
            jitter: SimDuration::from_millis(fp.jitter_ms),
            reorder: f64::from(fp.reorder_pct) / 100.0,
            reorder_window: SimDuration::from_millis(50),
        };
        let mut plan = FaultPlan::new(fp.plan_seed).with_default_link(lf);
        let others: Vec<_> =
            cluster.compute.iter().chain(cluster.accs.iter()).copied().collect();
        for (i, (from_s, len_s)) in fp.partitions.iter().enumerate() {
            let from = SimTime::ZERO + secs(*from_s);
            let host = others[i % others.len()];
            plan = plan.with_partition(vec![host], from, from + secs(*len_s));
        }
        cluster.net.install_fault_plan(plan);

        // Every dynget a script issues is counted when started and again
        // when it resolves (grant or explicit error). Each script
        // instance checks its own tally at script end: a dynget that
        // hung would keep the script from ever reaching that line (and
        // the job from going terminal).
        let n_jobs = jobs.len();
        for (i, j) in jobs.iter().enumerate() {
            let jc_cfg = j.clone();
            let spec = JobSpec::synthetic(format!("cp{i}"), SimDuration::from_millis(j.runtime_ms))
                .nodes(j.nodes)
                .ppn(j.ppn)
                .walltime(secs(120))
                .script(script(move |mut jc| {
                    let jc_cfg = jc_cfg.clone();
                    async move {
                        let mut started_local = 0u32;
                        let mut resolved_local = 0u32;
                        if jc.node_index == 0 {
                            for _ in 0..jc_cfg.dyn_rounds {
                                started_local += 1;
                                match jc.dynget(1).await {
                                    Ok(grant) => {
                                        resolved_local += 1;
                                        jc.proc.sleep(secs(1)).await;
                                        let _ = jc.dynfree(grant.client_id).await;
                                    }
                                    Err(_) => {
                                        // Rejected or timed out: explicit
                                        // resolution, not a hang.
                                        resolved_local += 1;
                                    }
                                }
                            }
                        }
                        let _ = jc
                            .sleep_interruptible(SimDuration::from_millis(jc_cfg.runtime_ms))
                            .await;
                        assert_eq!(
                            started_local, resolved_local,
                            "a dynget is still pending at script end"
                        );
                    }
                }));
            cluster.qsub_after(SimDuration::from_millis(j.arrival_ms), spec);
        }

        let all_terminal = Arc::new(Mutex::new(false));
        let out = all_terminal.clone();
        cluster.client_after("auditor", secs(5), move |c| async move {
            loop {
                c.proc.sleep(secs(10)).await;
                let now = c.proc.now();
                if let Ok(statuses) =
                    ifl::try_qstat(&c.proc, &c.net, c.head, c.server).await
                {
                    if statuses.len() == n_jobs
                        && statuses.iter().all(|s| s.state.is_terminal())
                    {
                        *out.lock() = true;
                        return;
                    }
                }
                if now >= SimTime::ZERO + secs(HORIZON_SECS - 30) {
                    return;
                }
            }
        });

        let stats = cluster.run();
        // Shared invariant checker (darms-experiments::invariants): the
        // same engine-health, pool-conservation and no-leak checks the
        // chaos harness and the darms-soak matrix assert, at the same
        // strength as the inline asserts this test used to carry.
        let mut violations = invariants::check_engine(&stats);
        {
            let db = cluster.node_db.lock();
            violations.extend(invariants::check_pool(&db, "final"));
            violations.extend(invariants::check_no_leaks(&db));
        }
        prop_assert!(violations.is_empty(), "invariant violations: {:#?}", violations);
        prop_assert!(
            *all_terminal.lock(),
            "every job reaches a terminal state before the horizon"
        );
    }
}
