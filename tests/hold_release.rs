//! `qhold` / `qrls`: held jobs are invisible to the scheduler; releasing
//! puts them back in the queue; holding is only valid while queued.

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

#[test]
fn held_job_is_skipped_until_released() {
    let mut cluster = Cluster::build(ClusterConfig::fast(130).with_split(1, 0));
    let started = Arc::new(Mutex::new(Vec::new()));

    // Occupy the node briefly so both competitors start queued.
    cluster.qsub(JobSpec::synthetic("warmup", secs(5)).ppn(8));
    let s1 = started.clone();
    let spec_a = JobSpec::synthetic("a", secs(2)).ppn(8).script(script(move |jc| {
        let s1 = s1.clone();
        async move {
            s1.lock().push(("a", jc.proc.now()));
            jc.proc.sleep(secs(2)).await;
        }
    }));
    let a = cluster.qsub_after(secs(1), spec_a);
    let s2 = started.clone();
    let spec_b = JobSpec::synthetic("b", secs(2)).ppn(8).script(script(move |jc| {
        let s2 = s2.clone();
        async move {
            s2.lock().push(("b", jc.proc.now()));
            jc.proc.sleep(secs(2)).await;
        }
    }));
    cluster.qsub_after(secs(1), spec_b);

    // Hold A while everything is still queued; release it at t = 20.
    let a2 = a.clone();
    cluster.client_after("holder", secs(2), move |c| async move {
        let job = a2.lock().expect("submitted");
        assert!(c.qhold(job).await, "queued job can be held");
        let st = c.qstat().await;
        let a_state = st.iter().find(|s| s.name == "a").unwrap().state;
        assert_eq!(a_state, JobState::Held);
        c.proc.sleep(secs(18)).await;
        assert!(c.qrls(job).await, "held job can be released");
    });

    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let v = started.lock().clone();
    let b_at = v.iter().find(|(n, _)| *n == "b").expect("b ran").1;
    let a_at = v.iter().find(|(n, _)| *n == "a").expect("a ran").1;
    // B (submitted after A) overtook the held A; A ran only after qrls.
    assert!(b_at < a_at, "hold let B overtake: b={b_at}, a={a_at}");
    assert!(a_at >= SimTime::ZERO + secs(20), "A started only after release: {a_at}");
}

#[test]
fn invalid_hold_transitions_are_rejected() {
    let mut cluster = Cluster::build(ClusterConfig::fast(131).with_split(1, 0));
    let running = cluster.qsub(JobSpec::synthetic("running", secs(30)).ppn(8));
    let outcome = Arc::new(Mutex::new(Vec::new()));
    let out = outcome.clone();
    cluster.client_after("admin", secs(2), move |c| async move {
        let job = running.lock().expect("submitted");
        // Running jobs cannot be held.
        let hold_running = c.qhold(job).await;
        out.lock().push(("hold-running", hold_running));
        // Releasing a job that is not held fails.
        let rls_running = c.qrls(job).await;
        out.lock().push(("rls-running", rls_running));
        // Unknown job ids fail.
        let hold_unknown = c.qhold(JobId(999)).await;
        out.lock().push(("hold-unknown", hold_unknown));
    });
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert_eq!(
        *outcome.lock(),
        vec![("hold-running", false), ("rls-running", false), ("hold-unknown", false)]
    );
}

#[test]
fn held_job_can_be_deleted() {
    let mut cluster = Cluster::build(ClusterConfig::fast(132).with_split(1, 0));
    cluster.qsub(JobSpec::synthetic("warmup", secs(5)).ppn(8));
    let victim = cluster.qsub_after(secs(1), JobSpec::synthetic("victim", secs(2)).ppn(8));
    let outcome = Arc::new(Mutex::new(None));
    let out = outcome.clone();
    cluster.client_after("admin", secs(2), move |c| async move {
        let job = victim.lock().expect("submitted");
        assert!(c.qhold(job).await);
        assert!(c.qdel(job).await, "held jobs are deletable");
        let st = c.wait_for_state(job, JobState::Cancelled, SimDuration::from_millis(100)).await;
        *out.lock() = Some(st.state);
    });
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert_eq!(outcome.lock().unwrap(), JobState::Cancelled);
}
