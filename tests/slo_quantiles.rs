//! Property tests for the exact SLO quantile estimator
//! (`darms_sim::QuantileEstimator`): for arbitrary latency streams —
//! including empty and single-sample streams — p50/p99/p999 must equal
//! an independently computed sorted-sample nearest-rank reference, and
//! every reported quantile must be an actually observed sample.

use darms_sim::{exact_quantile, QuantileEstimator};
use proptest::prelude::*;

/// Independent nearest-rank reference: sort the raw samples and index
/// `ceil(q·n) - 1` directly (no shared code with the estimator).
fn reference_quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len() as f64;
    let mut rank = (q * n).ceil() as usize;
    if rank == 0 {
        rank = 1;
    }
    if rank > sorted.len() {
        rank = sorted.len();
    }
    Some(sorted[rank - 1])
}

/// A latency stream: non-negative millisecond-scale values, length
/// 0..=300 so empty and single-sample streams are generated often.
fn latency_stream() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0u64..5_000_000, 0..300)
        .prop_map(|v| v.into_iter().map(|us| us as f64 / 1e6).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn estimator_matches_sorted_sample_reference(stream in latency_stream()) {
        let mut est = QuantileEstimator::new();
        est.observe_all(&stream);
        prop_assert_eq!(est.count(), stream.len() as u64);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(
                est.quantile(q),
                reference_quantile(&stream, q),
                "q={} over {} samples",
                q,
                stream.len()
            );
        }
        match est.summary() {
            None => prop_assert!(stream.is_empty(), "summary only missing for empty streams"),
            Some(s) => {
                prop_assert_eq!(s.count, stream.len() as u64);
                prop_assert_eq!(Some(s.p50), reference_quantile(&stream, 0.50));
                prop_assert_eq!(Some(s.p99), reference_quantile(&stream, 0.99));
                prop_assert_eq!(Some(s.p999), reference_quantile(&stream, 0.999));
                // Exactness: a nearest-rank quantile is an observed
                // sample, never an interpolation.
                prop_assert!(stream.contains(&s.p50));
                prop_assert!(stream.contains(&s.p99));
                prop_assert!(stream.contains(&s.p999));
                // Quantiles are monotone in q.
                prop_assert!(s.p50 <= s.p99 && s.p99 <= s.p999);
            }
        }
    }

    #[test]
    fn pooling_streams_equals_one_stream(a in latency_stream(), b in latency_stream()) {
        let mut pooled = QuantileEstimator::new();
        pooled.observe_all(&a);
        pooled.observe_all(&b);
        let mut absorbed = QuantileEstimator::new();
        absorbed.observe_all(&a);
        let mut other = QuantileEstimator::new();
        other.observe_all(&b);
        absorbed.absorb(&other);
        prop_assert_eq!(pooled.summary(), absorbed.summary());
    }
}

#[test]
fn single_sample_stream_pins_every_quantile() {
    let mut est = QuantileEstimator::new();
    est.observe(0.125);
    let s = est.summary().unwrap();
    assert_eq!((s.count, s.p50, s.p99, s.p999), (1, 0.125, 0.125, 0.125));
    assert_eq!(exact_quantile(&[0.125], 0.0), Some(0.125));
    assert_eq!(exact_quantile(&[], 0.5), None);
}
