//! Regression guard for late replies after a front-end request timeout:
//! once `wait_reply` gives up on a request id, that id is tombstoned and
//! a reply arriving afterwards (or a duplicate delivered by a faulty
//! network) is discarded — never stashed against a future request.
//!
//! On main the full discard path is not reachable through the public API
//! alone (a timed-out handle is marked dead, so no later request targets
//! its rank); the unit tests in `frontend.rs` pin the discard decision
//! itself, and this test guards the surrounding end-to-end behaviour:
//! timeout → fail-fast → unrelated traffic unaffected → no stash growth
//! → clean finalize.

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

#[test]
fn timed_out_request_is_tombstoned_and_late_reply_discarded() {
    let mut config = ClusterConfig::fast(90).with_split(1, 2);
    config.dac_cost.request_timeout = secs(2);
    let mut cluster = Cluster::build(config);
    // A kernel slower than the request timeout: its reply arrives late.
    cluster.dac.kernels().register("slow", |_, _| SimDuration::from_secs(4), |_, _| Ok(()));
    let dac = cluster.dac.clone();
    let log = Arc::new(Mutex::new(Vec::new()));
    let out = log.clone();
    let spec = JobSpec::synthetic("latecomer", secs(60)).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            let set = ses.ac_get(2).await.expect("both accelerators free");
            let (live, slow) = (set.handles[0], set.handles[1]);
            let launch = ses
                .kernel_launch(slow, "slow", KernelArgs::new(1, 1, vec![]))
                .await
                .expect("launch accepted");
            match ses.kernel_wait(launch).await {
                Err(DacError::Timeout(h)) => {
                    assert_eq!(h, slow);
                    out.lock().push("timeout");
                }
                other => panic!("expected timeout, got {other:?}"),
            }
            // The timed-out handle fails fast from now on.
            assert!(matches!(ses.mem_alloc(slow, 1).await, Err(DacError::BadHandle(_))));
            // Traffic on the live handle keeps flowing while the slow
            // kernel's reply is still in flight; it must never be
            // matched to these requests.
            let ptr = ses.mem_alloc(live, 64).await.expect("live handle still works");
            ses.mem_write(live, ptr, vec![1, 2, 3]).await.unwrap();
            // Outlive the slow kernel so its reply has arrived (and been
            // ignored) before we tear the session down.
            jc.proc.sleep(secs(5)).await;
            assert_eq!(ses.mem_read(live, ptr, 3).await.unwrap(), vec![1, 2, 3]);
            assert_eq!(ses.stashed_replies(), 0, "late reply must not be stashed");
            out.lock().push("clean");
            ses.finalize();
            out.lock().push("finalized");
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert_eq!(*log.lock(), vec!["timeout", "clean", "finalized"]);
}
