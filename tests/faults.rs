//! Fault tolerance (the paper's §VI future work, implemented here):
//! health monitoring marks failed nodes offline, the scheduler avoids
//! them, front-end requests to dead daemons time out, and releases of
//! sets on dead hosts do not wedge the batch system. Plus the
//! partial-grant policy (`AC_Get` with a minimum).

use std::sync::Arc;

use darms::prelude::*;
use darms_rms::MonitorConfig;
use parking_lot::Mutex;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

#[test]
fn partial_grant_when_pool_is_short() {
    let mut cluster = Cluster::build(ClusterConfig::fast(70).with_split(1, 3));
    let dac = cluster.dac.clone();
    let got = Arc::new(Mutex::new(Vec::new()));
    let out = got.clone();
    let spec = JobSpec::synthetic("partial", secs(5)).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            // Want 5, accept >= 2: only 3 are free => grant of 3.
            let set = ses.ac_get_range(5, 2).await.expect("partial grant of 3");
            out.lock().push(set.handles.len());
            // Strict request for 5 still rejects.
            assert!(matches!(ses.ac_get(5).await, Err(DacError::Rejected(_))));
            ses.ac_free(&set).await.unwrap();
            // Min greater than the free pool rejects too.
            let r = ses.ac_get_range(5, 4).await;
            assert!(matches!(r, Err(DacError::Rejected(_))));
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert_eq!(*got.lock(), vec![3]);
}

#[test]
fn monitor_marks_dead_node_offline_and_scheduler_avoids_it() {
    let horizon = SimTime::ZERO + secs(300);
    let config =
        ClusterConfig::fast(71).with_split(1, 2).with_monitor(MonitorConfig::default(), horizon);
    let mut cluster = Cluster::build(config);
    let net = cluster.net.clone();
    let dac = cluster.dac.clone();
    let victim = cluster.accs[0];
    let survivor = cluster.accs[1];

    // Fail the victim accelerator host at t = 10 s.
    let n2 = net.clone();
    cluster.client_after("chaos", secs(10), move |c| async move {
        n2.set_host_down(victim, true);
        c.proc.sleep(secs(1)).await;
    });

    // At t = 30 s (well past detection) a job asks for one accelerator:
    // it must receive the survivor, never the dead node.
    let got = Arc::new(Mutex::new(None));
    let out = got.clone();
    let spec =
        JobSpec::synthetic("careful", secs(40)).walltime(secs(120)).script(script(move |jc| {
            let dac = dac.clone();
            let out = out.clone();
            async move {
                let target = SimTime::ZERO + secs(30);
                let now = jc.proc.now();
                if target > now {
                    jc.proc.sleep(target - now).await;
                }
                let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
                match ses.ac_get(1).await {
                    Ok(set) => {
                        *out.lock() = Some("granted");
                        ses.ac_free(&set).await.unwrap();
                    }
                    Err(_) => *out.lock() = Some("rejected"),
                }
                // Asking for two must fail: only one healthy accelerator remains.
                assert!(matches!(ses.ac_get(2).await, Err(DacError::Rejected(_))));
                ses.finalize();
            }
        }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert_eq!(*got.lock(), Some("granted"));
    let _ = survivor;
}

#[test]
fn requests_to_dead_daemon_time_out_and_release_does_not_wedge() {
    let mut config = ClusterConfig::fast(72).with_split(1, 2);
    config.dac_cost.request_timeout = secs(2);
    let mut cluster = Cluster::build(config);
    let net = cluster.net.clone();
    let dac = cluster.dac.clone();
    let victim = cluster.accs[0];
    let log = Arc::new(Mutex::new(Vec::new()));

    let out = log.clone();
    let spec = JobSpec::synthetic("unlucky", secs(60)).script(script(move |jc| {
        let dac = dac.clone();
        let net = net.clone();
        let out = out.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            let set = ses.ac_get(2).await.expect("both free");
            // Find the handle living on the victim: try an op on each.
            jc.proc.sleep(secs(1)).await;
            net.set_host_down(victim, true);
            let mut lost = None;
            for &h in &set.handles {
                match ses.mem_alloc(h, 64).await {
                    Ok(_) => {}
                    Err(DacError::Timeout(th)) => {
                        out.lock().push("timeout");
                        lost = Some(th);
                    }
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
            assert!(lost.is_some(), "one handle must have timed out");
            // The dead handle is marked lost; further use fails fast.
            let h = lost.unwrap();
            assert!(matches!(ses.mem_alloc(h, 1).await, Err(DacError::BadHandle(_))));
            out.lock().push("fail-fast");
            // Releasing the whole set must not hang even though one member
            // is dead (the mom short-circuits the DISJOIN to the dead host).
            // NOTE: the dead daemon cannot participate in the shrink; only
            // the live one is asked to. The release still completes.
            ses.finalize();
            out.lock().push("finalized");
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert!(!stats.hit_event_cap);
    let v = log.lock().clone();
    assert_eq!(v, vec!["timeout", "fail-fast", "finalized"]);
}

#[test]
fn recovered_node_returns_to_service() {
    let horizon = SimTime::ZERO + secs(400);
    let config =
        ClusterConfig::fast(73).with_split(1, 1).with_monitor(MonitorConfig::default(), horizon);
    let mut cluster = Cluster::build(config);
    let net = cluster.net.clone();
    let dac = cluster.dac.clone();
    let acc = cluster.accs[0];

    // Down from t=10 to t=40.
    let n2 = net.clone();
    cluster.client_after("chaos", secs(10), move |c| async move {
        n2.set_host_down(acc, true);
        c.proc.sleep(secs(30)).await;
        n2.set_host_down(acc, false);
    });

    let results = Arc::new(Mutex::new(Vec::new()));
    let out = results.clone();
    let spec = JobSpec::synthetic("patient", secs(120)).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            // While the node is down (and detected): rejected.
            let target = SimTime::ZERO + secs(25);
            let now = jc.proc.now();
            if target > now {
                jc.proc.sleep(target - now).await;
            }
            out.lock().push(("down", ses.ac_get(1).await.is_ok()));
            // After recovery (and detection): granted.
            jc.proc.sleep(secs(40)).await;
            match ses.ac_get(1).await {
                Ok(set) => {
                    out.lock().push(("up", true));
                    ses.ac_free(&set).await.unwrap();
                }
                Err(_) => out.lock().push(("up", false)),
            }
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert_eq!(*results.lock(), vec![("down", false), ("up", true)]);
}
