//! Double buffering (§I: "the potential bandwidth penalty between host
//! and accelerator may be hidden using techniques such as double
//! buffering"): asynchronous transfers overlap with kernel execution, so
//! the pipelined virtual time beats the serial sequence.

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

const CHUNK: usize = 1 << 21; // 2 MiB per chunk
const CHUNKS: usize = 8;

fn run(seed: u64, double_buffered: bool) -> f64 {
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(seed).with_split(1, 1));
    let dac = cluster.dac.clone();
    let elapsed = Arc::new(Mutex::new(0.0));
    let out = elapsed.clone();
    let spec =
        JobSpec::synthetic("db", SimDuration::from_secs(60)).acpn(1).script(script(move |jc| {
            let dac = dac.clone();
            let out = out.clone();
            async move {
                let (mut ses, handles) = AcSession::init(&jc, &dac, None).await;
                let h = handles[0];
                let n = (CHUNK / 8) as u64; // f64 elements per chunk
                let a = ses.mem_alloc(h, 2 * CHUNK as u64).await.unwrap(); // two slots
                let data0 = vec![1u8; CHUNK];
                let t0 = jc.proc.now();
                if double_buffered {
                    // Upload chunk k+1 while the kernel crunches chunk k.
                    let mut upload =
                        Some(ses.mem_write_async_at(h, a, 0, data0.clone()).await.unwrap());
                    for k in 0..CHUNKS {
                        let slot = (k % 2) as u64 * CHUNK as u64;
                        ses.op_wait(upload.take().expect("pending upload")).await.unwrap();
                        // Prefetch the next chunk into the other slot.
                        if k + 1 < CHUNKS {
                            let next_slot = ((k + 1) % 2) as u64 * CHUNK as u64;
                            upload = Some(
                                ses.mem_write_async_at(h, a, next_slot, data0.clone())
                                    .await
                                    .unwrap(),
                            );
                        }
                        // Kernel over the chunk that just landed. DevPtr is an
                        // allocation handle; the slot offset selects the half.
                        let _ = slot;
                        ses.kernel_run(
                            h,
                            "scale",
                            KernelArgs::new(
                                64,
                                256,
                                vec![Param::Ptr(a), Param::U64(n), Param::F64(1.5)],
                            ),
                        )
                        .await
                        .unwrap();
                    }
                } else {
                    for _ in 0..CHUNKS {
                        ses.mem_write_at(h, a, 0, data0.clone()).await.unwrap();
                        ses.kernel_run(
                            h,
                            "scale",
                            KernelArgs::new(
                                64,
                                256,
                                vec![Param::Ptr(a), Param::U64(n), Param::F64(1.5)],
                            ),
                        )
                        .await
                        .unwrap();
                    }
                }
                *out.lock() = (jc.proc.now() - t0).as_secs_f64();
                ses.finalize();
            }
        }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let v = *elapsed.lock();
    v
}

#[test]
fn async_overlap_beats_serial_sequence() {
    let serial = run(120, false);
    let overlapped = run(120, true);
    assert!(
        overlapped < serial * 0.95,
        "double buffering must hide transfer latency: overlapped {overlapped:.4}s vs serial {serial:.4}s"
    );
}

#[test]
fn interleaved_async_ops_route_replies_correctly() {
    // Multiple outstanding operations per handle and across handles: the
    // reply stash must route every acknowledgement to the right waiter,
    // regardless of wait order.
    let mut cluster = Cluster::build(ClusterConfig::fast(121).with_split(1, 2));
    let dac = cluster.dac.clone();
    let ok = Arc::new(Mutex::new(false));
    let out = ok.clone();
    let spec = JobSpec::synthetic("interleave", SimDuration::from_secs(10)).acpn(2).script(script(
        move |jc| {
            let dac = dac.clone();
            let out = out.clone();
            async move {
                let (mut ses, handles) = AcSession::init(&jc, &dac, None).await;
                let (h0, h1) = (handles[0], handles[1]);
                let p0 = ses.mem_alloc(h0, 64).await.unwrap();
                let p1 = ses.mem_alloc(h1, 64).await.unwrap();
                // Fire four async writes, wait in scrambled order.
                let a = ses.mem_write_async_at(h0, p0, 0, vec![1; 16]).await.unwrap();
                let b = ses.mem_write_async_at(h0, p0, 16, vec![2; 16]).await.unwrap();
                let c = ses.mem_write_async_at(h1, p1, 0, vec![3; 16]).await.unwrap();
                let d = ses.mem_write_async_at(h1, p1, 16, vec![4; 16]).await.unwrap();
                ses.op_wait(d).await.unwrap();
                ses.op_wait(a).await.unwrap();
                ses.op_wait(c).await.unwrap();
                ses.op_wait(b).await.unwrap();
                // Both devices hold the interleaved contents.
                assert_eq!(
                    ses.mem_read_at(h0, p0, 0, 32).await.unwrap(),
                    [vec![1u8; 16], vec![2u8; 16]].concat()
                );
                assert_eq!(
                    ses.mem_read_at(h1, p1, 0, 32).await.unwrap(),
                    [vec![3u8; 16], vec![4u8; 16]].concat()
                );
                *out.lock() = true;
                ses.finalize();
            }
        },
    ));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert!(*ok.lock());
}
