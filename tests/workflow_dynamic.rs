//! Integration: the dynamic allocation workflow of the paper's Fig. 6 —
//! `AC_Get()` → `pbs_dynget` → top-priority scheduling → `DYNJOIN_JOB` →
//! `MPI_Comm_spawn` + merge; and the release path `AC_Free()` →
//! disconnect → `pbs_dynfree` → `DISJOIN_JOB`.

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

#[test]
fn ac_get_grants_and_new_accelerators_compute() {
    // 1 static + pool for 2 more.
    let mut cluster = Cluster::build(ClusterConfig::fast(10).with_split(1, 3));
    let dac = cluster.dac.clone();
    let results = Arc::new(Mutex::new(Vec::new()));
    let out = results.clone();

    let spec = JobSpec::synthetic("dyn", secs(1)).acpn(1).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            let (mut ses, statics) = AcSession::init(&jc, &dac, None).await;
            assert_eq!(statics.len(), 1);
            let set = ses.ac_get(2).await.expect("pool has 2 free accelerators");
            assert_eq!(set.handles.len(), 2);
            assert_eq!(ses.live_count(), 3);
            // Old handle still works, new handles work too.
            for &h in statics.iter().chain(set.handles.iter()) {
                let x = ses.mem_alloc(h, 24).await.unwrap();
                let o = ses.mem_alloc(h, 8).await.unwrap();
                ses.mem_write(h, x, f64s_to_bytes(&[1.0, 2.0, 4.0])).await.unwrap();
                ses.kernel_run(
                    h,
                    "reduce_sum",
                    KernelArgs::new(1, 3, vec![Param::Ptr(x), Param::Ptr(o), Param::U64(3)]),
                )
                .await
                .unwrap();
                out.lock().push(as_f64s(&ses.mem_read(h, o, 8).await.unwrap())[0]);
            }
            ses.ac_free(&set).await.unwrap();
            assert_eq!(ses.live_count(), 1);
            // Static accelerator still reachable after the shrink.
            let h = statics[0];
            let x = ses.mem_alloc(h, 16).await.unwrap();
            ses.mem_write(h, x, f64s_to_bytes(&[2.0, 3.0])).await.unwrap();
            ses.kernel_run(
                h,
                "scale",
                KernelArgs::new(1, 2, vec![Param::Ptr(x), Param::U64(2), Param::F64(10.0)]),
            )
            .await
            .unwrap();
            out.lock().push(as_f64s(&ses.mem_read(h, x, 16).await.unwrap())[1]);
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert_eq!(*results.lock(), vec![7.0, 7.0, 7.0, 30.0]);
}

#[test]
fn ac_get_rejected_when_pool_exhausted_and_app_continues() {
    let mut cluster = Cluster::build(ClusterConfig::fast(11).with_split(1, 2));
    let dac = cluster.dac.clone();
    let outcome = Arc::new(Mutex::new(Vec::new()));
    let out = outcome.clone();

    // Job takes both accelerators statically; the dynamic request must be
    // rejected immediately (no reservation, §III-E).
    let spec = JobSpec::synthetic("greedy", secs(1)).acpn(2).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            let (mut ses, statics) = AcSession::init(&jc, &dac, None).await;
            match ses.ac_get(1).await {
                Err(DacError::Rejected(_)) => out.lock().push("rejected"),
                other => panic!("expected rejection, got {other:?}"),
            }
            // Application continues with its existing accelerators.
            assert_eq!(ses.live_count(), 2);
            let h = statics[0];
            let p = ses.mem_alloc(h, 8).await.unwrap();
            ses.mem_write(h, p, f64s_to_bytes(&[1.0])).await.unwrap();
            out.lock().push("continued");
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert_eq!(*outcome.lock(), vec!["rejected", "continued"]);
}

#[test]
fn released_set_becomes_available_to_other_jobs() {
    // Job A grabs both accelerators dynamically, releases them; job B's
    // dynamic request (issued while A holds them) is rejected, but a
    // retry after the release succeeds.
    let mut cluster = Cluster::build(ClusterConfig::fast(12).with_split(2, 2));
    let dac = cluster.dac.clone();
    let log = Arc::new(Mutex::new(Vec::new()));

    let l1 = log.clone();
    let d1 = dac.clone();
    let spec_a = JobSpec::synthetic("a", secs(30)).script(script(move |jc| {
        let d1 = d1.clone();
        let l1 = l1.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &d1, None).await;
            let set = ses.ac_get(2).await.expect("both accelerators free");
            l1.lock().push(("a-got", jc.proc.now()));
            jc.proc.sleep(secs(10)).await;
            ses.ac_free(&set).await.unwrap();
            l1.lock().push(("a-freed", jc.proc.now()));
            jc.proc.sleep(secs(5)).await;
            ses.finalize();
        }
    }));

    let l2 = log.clone();
    let spec_b = JobSpec::synthetic("b", secs(30)).script(script(move |jc| {
        let dac = dac.clone();
        let l2 = l2.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            jc.proc.sleep(secs(5)).await; // A holds both
            assert!(matches!(ses.ac_get(1).await, Err(DacError::Rejected(_))));
            l2.lock().push(("b-rejected", jc.proc.now()));
            jc.proc.sleep(secs(10)).await; // past A's release
            let set = ses.ac_get(1).await.expect("freed by A");
            l2.lock().push(("b-got", jc.proc.now()));
            ses.ac_free(&set).await.unwrap();
            ses.finalize();
        }
    }));

    cluster.qsub(spec_a);
    cluster.qsub(spec_b);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let log = log.lock().clone();
    let names: Vec<&str> = log.iter().map(|(n, _)| *n).collect();
    assert!(names.contains(&"a-got"));
    assert!(names.contains(&"b-rejected"));
    assert!(names.contains(&"b-got"));
    let freed = log.iter().find(|(n, _)| *n == "a-freed").unwrap().1;
    let got = log.iter().find(|(n, _)| *n == "b-got").unwrap().1;
    assert!(got > freed, "B's grant only after A's release");
}

#[test]
fn dynfree_reply_is_immediate_while_disassociation_continues() {
    // With the paper cost model, pbs_dynfree returns long before the
    // DISJOIN round-trip completes (§III-D).
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(13).with_split(1, 3));
    let dac = cluster.dac.clone();
    let timing = Arc::new(Mutex::new(None));
    let out = timing.clone();

    let spec = JobSpec::synthetic("freefast", secs(5)).acpn(1).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            let set = ses.ac_get(2).await.expect("two free");
            let t0 = jc.proc.now();
            ses.ac_free(&set).await.unwrap();
            let t1 = jc.proc.now();
            *out.lock() = Some(t1 - t0);
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let free_latency = timing.lock().unwrap();
    // The client-visible latency is the shrink + one request/response,
    // well under the full disjoin handling of multiple moms.
    assert!(
        free_latency < SimDuration::from_millis(100),
        "AC_Free returned in {free_latency}, expected well under 100ms"
    );
}

#[test]
fn serial_dynamic_servicing_produces_staircase() {
    // Three single-CN jobs issue AC_Get(1) at the same instant; the
    // server's serial processing makes their batch-system latencies a
    // staircase (the paper's Fig. 9).
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(14).with_split(3, 4));
    let dac = cluster.dac.clone();
    let latencies = Arc::new(Mutex::new(Vec::new()));

    for i in 0..3 {
        let d = dac.clone();
        let l = latencies.clone();
        let spec = JobSpec::synthetic(format!("cn{i}"), secs(20)).script(script(move |jc| {
            let d = d.clone();
            let l = l.clone();
            async move {
                let (mut ses, _) = AcSession::init(&jc, &d, None).await;
                // Align the three requests at the same virtual instant.
                let now = jc.proc.now();
                let target = SimTime::ZERO + secs(5);
                if target > now {
                    jc.proc.sleep(target - now).await;
                }
                let t0 = jc.proc.now();
                let set = ses.ac_get(1).await.expect("pool of 4 covers 3 requests");
                let t1 = jc.proc.now();
                l.lock().push((t1 - t0).as_secs_f64());
                ses.ac_free(&set).await.unwrap();
                ses.finalize();
            }
        }));
        cluster.qsub(spec);
    }
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let mut lat = latencies.lock().clone();
    assert_eq!(lat.len(), 3);
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Distinct, increasing service completion: each later request waited
    // for the earlier ones (C > B > A as in Fig. 9).
    assert!(lat[1] > lat[0] * 1.3, "staircase: {lat:?}");
    assert!(lat[2] > lat[1] * 1.15, "staircase: {lat:?}");
    // And everything stays sub-second-ish as the paper reports.
    assert!(lat[2] < 3.0, "absolute scale: {lat:?}");

    // The registry publishes the same Fig. 8 quantity this test derives
    // by hand: `rms.dyn_wait` spans pbs_dynget arrival → final response.
    // Each client latency adds a per-request constant on top (the MPI
    // spawn/merge phase plus two network legs), so the hand-derived
    // values must exceed the registry's by a near-constant offset and
    // the staircase *steps* must agree.
    let h = cluster.metrics.histogram("rms.dyn_wait").expect("server is instrumented");
    assert_eq!(h.count, 3, "one wait sample per AC_Get");
    let mut waits = cluster.metrics.histogram_samples("rms.dyn_wait");
    waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!(waits[0] < waits[1] && waits[1] < waits[2], "registry staircase: {waits:?}");
    let offsets: Vec<f64> = waits.iter().zip(lat.iter()).map(|(w, l)| l - w).collect();
    for (i, off) in offsets.iter().enumerate() {
        assert!(*off > 0.0, "request {i}: registry wait exceeds the client latency");
    }
    let spread = offsets.iter().cloned().fold(f64::MIN, f64::max)
        - offsets.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 0.05, "join overhead is per-request constant: {offsets:?}");
    for i in 0..2 {
        let step_reg = waits[i + 1] - waits[i];
        let step_hand = lat[i + 1] - lat[i];
        assert!(
            (step_reg - step_hand).abs() < 0.05,
            "step {i}: registry {step_reg} vs hand-derived {step_hand}"
        );
    }
    // The scheduler-side component (`sched.dyn_wait`, the light region
    // of Fig. 8) resolved each request exactly once as well.
    let sched = cluster.metrics.histogram("sched.dyn_wait").expect("scheduler is instrumented");
    assert_eq!(sched.count, 3, "one scheduler decision per request");
    assert!(sched.max <= h.max, "scheduler wait is a component of the full wait");
}

#[test]
fn finalize_releases_all_daemons() {
    let mut cluster = Cluster::build(ClusterConfig::fast(15).with_split(1, 2));
    let dac = cluster.dac.clone();
    let mpi = cluster.mpi.clone();
    let spec = JobSpec::synthetic("fin", secs(1)).acpn(2).script(script(move |jc| {
        let dac = dac.clone();
        async move {
            let (ses, handles) = AcSession::init(&jc, &dac, None).await;
            assert_eq!(handles.len(), 2);
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    // All communicators torn down: the daemons disconnected and exited.
    assert_eq!(mpi.live_comms(), 0, "no leaked communicators after finalize");
}
