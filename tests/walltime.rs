//! Walltime enforcement (TORQUE semantics): jobs exceeding their
//! walltime estimate (plus a grace allowance) are killed by the mother
//! superior and reported as timed out; their resources return to the pool.

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

#[test]
fn overrunning_job_is_killed_at_walltime() {
    let mut cluster = Cluster::build(ClusterConfig::fast(110).with_split(1, 0));
    // Claims 10 s, actually "runs" 1000 s.
    let spec = JobSpec::synthetic("liar", secs(1000)).ppn(8).walltime(secs(10));
    let job_slot = cluster.qsub(spec);
    let outcome = Arc::new(Mutex::new(None));
    let out = outcome.clone();
    cluster.client_after("watch", secs(1), move |c| async move {
        let job = job_slot.lock().expect("submitted");
        let st = c.wait_for_state(job, JobState::TimedOut, SimDuration::from_millis(250)).await;
        *out.lock() = Some((st.state, st.completed));
    });
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let (state, completed) = (*outcome.lock()).unwrap();
    assert_eq!(state, JobState::TimedOut);
    let killed_at = completed.expect("terminal");
    // Walltime 10 s + grace (max(5 s, 5%)) => killed around 15 s.
    assert!(killed_at >= SimTime::ZERO + secs(10));
    assert!(killed_at < SimTime::ZERO + secs(20), "killed at {killed_at}");
    // The whole simulation ends far before the claimed 1000 s.
    assert!(stats.end_time < SimTime::ZERO + secs(60));
}

#[test]
fn killed_job_frees_resources_for_successor() {
    let mut cluster = Cluster::build(ClusterConfig::fast(111).with_split(1, 2));
    let dac = cluster.dac.clone();
    // The liar holds both accelerators; the successor gets them after
    // the walltime kill.
    let liar = JobSpec::synthetic("liar", secs(1000)).ppn(4).acpn(2).walltime(secs(10));
    cluster.qsub(liar);
    let got = Arc::new(Mutex::new(None));
    let out = got.clone();
    let succ = JobSpec::synthetic("succ", secs(1)).ppn(4).acpn(2).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            let (ses, handles) = AcSession::init(&jc, &dac, None).await;
            *out.lock() = Some((handles.len(), jc.proc.now()));
            ses.finalize();
        }
    }));
    cluster.qsub_after(secs(2), succ);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let (n, at) = (*got.lock()).expect("successor ran");
    assert_eq!(n, 2);
    assert!(at > SimTime::ZERO + secs(10), "only after the kill: {at}");
    assert!(at < SimTime::ZERO + secs(40));
}

#[test]
fn honest_jobs_are_not_killed() {
    let mut cluster = Cluster::build(ClusterConfig::fast(112).with_split(1, 0));
    let spec = JobSpec::synthetic("honest", secs(30)).ppn(8).walltime(secs(60));
    let job_slot = cluster.qsub(spec);
    let outcome = Arc::new(Mutex::new(None));
    let out = outcome.clone();
    cluster.client_after("watch", secs(1), move |c| async move {
        let job = job_slot.lock().expect("submitted");
        let st = c.wait_complete(job, SimDuration::from_millis(500)).await;
        *out.lock() = Some(st.state);
    });
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert_eq!(outcome.lock().unwrap(), JobState::Complete);
}
