//! Integration: the static allocation workflow of the paper's Fig. 5 —
//! qsub with `acpn`, scheduling, JOIN_JOB, daemon startup, `AC_Init()`,
//! offloaded computation, job exit and resource release.

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

#[test]
fn single_cn_static_allocation_runs_and_computes() {
    let mut cluster = Cluster::build(ClusterConfig::fast(1).with_split(1, 3));
    let dac = cluster.dac.clone();
    let results = Arc::new(Mutex::new(Vec::new()));
    let out = results.clone();

    let spec = JobSpec::synthetic("static3", secs(1)).acpn(3).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            assert_eq!(jc.acc_hosts.len(), 3, "three accelerators per the acpn request");
            let (mut ses, handles) = AcSession::init(&jc, &dac, None).await;
            assert_eq!(handles.len(), 3);
            assert_eq!(ses.live_count(), 3);
            // Offload a saxpy to every accelerator, each with its own data.
            for (i, &h) in handles.iter().enumerate() {
                let scale = (i + 1) as f64;
                let x = ses.mem_alloc(h, 16).await.unwrap();
                let y = ses.mem_alloc(h, 16).await.unwrap();
                ses.mem_write(h, x, f64s_to_bytes(&[1.0, 2.0])).await.unwrap();
                ses.mem_write(h, y, f64s_to_bytes(&[0.5, 0.5])).await.unwrap();
                ses.kernel_run(
                    h,
                    "saxpy",
                    KernelArgs::new(
                        1,
                        2,
                        vec![Param::Ptr(x), Param::Ptr(y), Param::U64(2), Param::F64(scale)],
                    ),
                )
                .await
                .unwrap();
                let r = as_f64s(&ses.mem_read(h, y, 16).await.unwrap());
                out.lock().push(r);
            }
            ses.finalize();
        }
    }));

    let job_slot = cluster.qsub(spec);
    let done = Arc::new(Mutex::new(None));
    let d2 = done.clone();
    cluster.client_after("watcher", SimDuration::from_millis(1), move |c| async move {
        // Wait for the job to appear, then to complete.
        let job = loop {
            if let Some(j) = c.qstat().await.first().map(|s| s.id) {
                break j;
            }
            c.proc.sleep(SimDuration::from_millis(5)).await;
        };
        let st = c.wait_complete(job, SimDuration::from_millis(20)).await;
        *d2.lock() = Some(st);
    });

    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert!(job_slot.lock().is_some());
    let st = done.lock().clone().expect("watcher saw completion");
    assert_eq!(st.state, JobState::Complete);
    assert_eq!(st.compute_hosts.len(), 1);
    assert_eq!(st.static_accs[0].len(), 3);
    assert!(st.started.is_some() && st.completed.is_some());
    // saxpy results: y = alpha*x + y with alpha = 1, 2, 3
    let r = results.lock().clone();
    assert_eq!(r, vec![vec![1.5, 2.5], vec![2.5, 4.5], vec![3.5, 6.5]]);
}

#[test]
fn multi_cn_job_gets_distinct_accelerator_sets() {
    // 2 compute nodes with acpn=2 => 4 accelerators, disjoint per CN.
    let mut cluster = Cluster::build(ClusterConfig::fast(2).with_split(2, 4));
    let dac = cluster.dac.clone();
    let seen = Arc::new(Mutex::new(Vec::new()));
    let out = seen.clone();

    let spec = JobSpec::synthetic("multi", secs(1)).nodes(2).acpn(2).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            let (ses, handles) = AcSession::init(&jc, &dac, None).await;
            assert_eq!(handles.len(), 2);
            out.lock().push((jc.node_index, jc.acc_hosts.clone()));
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);

    let seen = seen.lock().clone();
    assert_eq!(seen.len(), 2, "one task per compute node");
    let (a, b) = (&seen[0].1, &seen[1].1);
    assert_eq!(a.len(), 2);
    assert_eq!(b.len(), 2);
    for h in a {
        assert!(!b.contains(h), "per-CN accelerator sets must be disjoint (§III-C)");
    }
}

#[test]
fn job_waits_until_accelerators_available() {
    // Pool of 2; first job takes both for a while, second job (also
    // needing 2) must wait for release.
    let mut cluster = Cluster::build(ClusterConfig::fast(3).with_split(2, 2));
    let order = Arc::new(Mutex::new(Vec::new()));

    let o1 = order.clone();
    let spec1 = JobSpec::synthetic("first", secs(10)).acpn(2).script(script(move |jc| {
        let o1 = o1.clone();
        async move {
            o1.lock().push(("first-start", jc.proc.now()));
            jc.proc.sleep(secs(10)).await;
        }
    }));
    let o2 = order.clone();
    let spec2 = JobSpec::synthetic("second", secs(1)).acpn(2).script(script(move |jc| {
        let o2 = o2.clone();
        async move {
            o2.lock().push(("second-start", jc.proc.now()));
        }
    }));
    cluster.qsub(spec1);
    cluster.qsub_after(SimDuration::from_millis(50), spec2);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);

    let order = order.lock().clone();
    assert_eq!(order.len(), 2);
    assert_eq!(order[0].0, "first-start");
    assert_eq!(order[1].0, "second-start");
    let gap = order[1].1 - order[0].1;
    assert!(gap >= secs(10), "second started only after first released (gap {gap})");
}

#[test]
fn nodefile_is_published_and_cleaned_up() {
    let mut cluster = Cluster::build(ClusterConfig::fast(4).with_split(2, 0));
    let fs = cluster.fs.clone();
    let observed = Arc::new(Mutex::new(None));
    let out = observed.clone();
    let spec = JobSpec::synthetic("nf", secs(1)).nodes(2).script(script(move |jc| {
        let out = out.clone();
        async move {
            *out.lock() = jc.fs.read(jc.job, "PBS_NODEFILE");
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let content = observed.lock().clone().expect("nodefile existed during the job");
    assert_eq!(content.lines().count(), 2);
    // end-of-job cleanup removed the job's files
    assert!(fs.is_empty(), "job files are removed at exit");
}

#[test]
fn cpu_only_jobs_share_compute_node_cores() {
    // One 8-core node; two 4-core jobs run concurrently, a third waits.
    let mut cluster = Cluster::build(ClusterConfig::fast(5).with_split(1, 0));
    let starts = Arc::new(Mutex::new(Vec::new()));
    for i in 0..3 {
        let s = starts.clone();
        let spec =
            JobSpec::synthetic(format!("cpu{i}"), secs(5)).ppn(4).script(script(move |jc| {
                let s = s.clone();
                async move {
                    s.lock().push(jc.proc.now());
                    jc.proc.sleep(secs(5)).await;
                }
            }));
        cluster.qsub(spec);
    }
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let mut starts = starts.lock().clone();
    starts.sort();
    assert_eq!(starts.len(), 3);
    // First two start together (same node, 4+4 cores); third waits ~5s.
    assert!(starts[1] - starts[0] < secs(1), "first two overlap");
    assert!(starts[2] - starts[0] >= secs(5), "third waited for cores");
}
