//! §III-D: "each compute node may use its own AC_Get() ... However, the
//! server is able to service only one request at a time per job. This may
//! lead to long waiting time ... for some compute nodes of the job."
//! Two compute nodes of one job issue individual dynamic requests at the
//! same instant; servicing serialises, both succeed, and the sets are
//! independently releasable (distinct client-ids).

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

#[test]
fn same_job_individual_requests_serialise_but_both_succeed() {
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(140).with_split(2, 4));
    let dac = cluster.dac.clone();
    let log = Arc::new(Mutex::new(Vec::new()));

    let out = log.clone();
    let spec = JobSpec::synthetic("twin", secs(30)).nodes(2).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            // Align both compute nodes at the same virtual instant.
            let target = SimTime::ZERO + secs(5);
            let now = jc.proc.now();
            if target > now {
                jc.proc.sleep(target - now).await;
            }
            let t0 = jc.proc.now();
            let set = ses.ac_get(2).await.expect("pool of 4 covers 2+2");
            let latency = (jc.proc.now() - t0).as_secs_f64();
            out.lock().push((jc.node_index, set.client_id, latency));
            jc.proc.sleep(secs(2)).await;
            ses.ac_free(&set).await.unwrap();
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);

    let mut v = log.lock().clone();
    v.sort_by_key(|e| e.0);
    assert_eq!(v.len(), 2, "both compute nodes got their accelerators");
    // Individual requests yield distinct set handles (unlike the
    // collective call's shared client-id).
    assert_ne!(v[0].1, v[1].1, "individual requests => distinct client-ids");
    // Serial servicing: one node waited roughly one extra service window.
    let (fast, slow) = if v[0].2 < v[1].2 { (v[0].2, v[1].2) } else { (v[1].2, v[0].2) };
    assert!(
        slow > fast + 0.15,
        "second request waited behind the first: fast={fast:.3}s slow={slow:.3}s"
    );
    assert!(slow < 3.0, "still sub-second-scale: {slow:.3}s");
}

#[test]
fn same_job_sets_release_independently() {
    let mut cluster = Cluster::build(ClusterConfig::fast(141).with_split(2, 4));
    let dac = cluster.dac.clone();
    let log = Arc::new(Mutex::new(Vec::new()));

    let out = log.clone();
    let spec = JobSpec::synthetic("indep", secs(20)).nodes(2).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            let set = ses.ac_get(2).await.expect("4 free, 2 each");
            if jc.node_index == 0 {
                // Node 0 releases early; node 1 keeps its set and can still
                // use it afterwards.
                ses.ac_free(&set).await.unwrap();
                out.lock().push(("released-early", jc.proc.now()));
            } else {
                jc.proc.sleep(secs(5)).await;
                let h = set.handles[0];
                let p = ses.mem_alloc(h, 64).await.unwrap();
                ses.mem_write(h, p, vec![9u8; 64]).await.unwrap();
                assert_eq!(ses.mem_read(h, p, 64).await.unwrap(), vec![9u8; 64]);
                out.lock().push(("used-after-sibling-release", jc.proc.now()));
                ses.ac_free(&set).await.unwrap();
            }
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let v = log.lock().clone();
    assert!(v.iter().any(|(n, _)| *n == "released-early"));
    assert!(v.iter().any(|(n, _)| *n == "used-after-sibling-release"));
}
