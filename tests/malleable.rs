//! Malleable-job support (§V generalisation): dynamic compute-node
//! allocation through the same dynqueued/DYNJOIN machinery, and the
//! queued-dynamic-request ablation (wait instead of the paper's
//! immediate reject).

use std::sync::Arc;

use darms::prelude::*;
use darms_sched::SchedConfig;
use parking_lot::Mutex;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

#[test]
fn compute_node_grant_and_release() {
    let mut cluster = Cluster::build(ClusterConfig::fast(80).with_split(3, 0));
    let log = Arc::new(Mutex::new(Vec::new()));
    let out = log.clone();
    let spec = JobSpec::synthetic("malleable", secs(20)).ppn(8).script(script(move |jc| {
        let out = out.clone();
        async move {
            let grant = jc.dynget_nodes(2, 8).await.expect("two free nodes");
            assert_eq!(grant.accs.len(), 2);
            assert!(!grant.accs.contains(&jc.host), "granted nodes are new ones");
            out.lock().push("granted");
            // While held, an identical request must fail (no free nodes).
            assert!(jc.dynget_nodes(1, 8).await.is_err());
            out.lock().push("exhausted");
            assert!(jc.dynfree(grant.client_id).await);
            jc.proc.sleep(secs(1)).await;
            // After release the nodes are available again.
            let again = jc.dynget_nodes(2, 8).await.expect("released nodes are back");
            assert!(jc.dynfree(again.client_id).await);
            out.lock().push("reacquired");
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert_eq!(*log.lock(), vec!["granted", "exhausted", "reacquired"]);
}

#[test]
fn node_grants_respect_core_accounting() {
    // 4-core grant on 8-core nodes: two such grants fit on the same pool,
    // a third does not.
    let mut cluster = Cluster::build(ClusterConfig::fast(81).with_split(2, 0));
    let ok = Arc::new(Mutex::new(false));
    let out = ok.clone();
    let spec = JobSpec::synthetic("cores", secs(10)).ppn(2).script(script(move |jc| {
        let out = out.clone();
        async move {
            let a = jc.dynget_nodes(1, 4).await.expect("4 cores free somewhere");
            let b = jc.dynget_nodes(1, 4).await.expect("4 more cores free");
            // Remaining: node0 has 8-2(job)-? ... the pool is nearly full; an
            // 8-core node grant cannot fit anywhere now.
            assert!(jc.dynget_nodes(1, 8).await.is_err());
            assert!(jc.dynfree(a.client_id).await);
            assert!(jc.dynfree(b.client_id).await);
            *out.lock() = true;
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert!(*ok.lock());
}

#[test]
fn queued_dynamic_requests_wait_for_release() {
    // Ablation of §III-E: with dyn_queue_wait set, an unsatisfiable
    // request waits (blocking the requester) until resources free up,
    // instead of an immediate rejection.
    let mut sched = SchedConfig::instant();
    sched.dyn_queue_wait = Some(secs(60));
    sched.dyn_retry = SimDuration::from_millis(200);
    let mut cluster = Cluster::build(ClusterConfig::fast(82).with_split(2, 1).with_sched(sched));
    let dac = cluster.dac.clone();
    let log = Arc::new(Mutex::new(Vec::new()));

    // Holder takes the only accelerator for 10 s, then frees it.
    let d1 = dac.clone();
    let l1 = log.clone();
    let holder = JobSpec::synthetic("holder", secs(30)).script(script(move |jc| {
        let d1 = d1.clone();
        let l1 = l1.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &d1, None).await;
            let set = ses.ac_get(1).await.expect("free at start");
            jc.proc.sleep(secs(10)).await;
            ses.ac_free(&set).await.unwrap();
            l1.lock().push(("freed", jc.proc.now()));
            jc.proc.sleep(secs(5)).await;
            ses.finalize();
        }
    }));
    cluster.qsub(holder);

    // Waiter asks at t≈2 s; under the paper's policy this would be an
    // instant rejection, here it blocks ~8 s until the holder frees.
    let l2 = log.clone();
    let waiter = JobSpec::synthetic("waiter", secs(30)).script(script(move |jc| {
        let dac = dac.clone();
        let l2 = l2.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            jc.proc.sleep(secs(2)).await;
            let t0 = jc.proc.now();
            let set = ses.ac_get(1).await.expect("queued request eventually granted");
            l2.lock().push(("granted", jc.proc.now()));
            assert!(jc.proc.now() - t0 > secs(5), "had to wait for the holder");
            ses.ac_free(&set).await.unwrap();
            ses.finalize();
        }
    }));
    cluster.qsub(waiter);

    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let v = log.lock().clone();
    let freed = v.iter().find(|(n, _)| *n == "freed").expect("holder freed").1;
    let granted = v.iter().find(|(n, _)| *n == "granted").expect("waiter granted").1;
    assert!(granted >= freed, "grant only after the release: {v:?}");
}

#[test]
fn queued_dynamic_request_times_out_to_rejection() {
    let mut sched = SchedConfig::instant();
    sched.dyn_queue_wait = Some(secs(3));
    sched.dyn_retry = SimDuration::from_millis(200);
    let mut cluster = Cluster::build(ClusterConfig::fast(83).with_split(2, 1).with_sched(sched));
    let dac = cluster.dac.clone();
    let outcome = Arc::new(Mutex::new(None));

    let d1 = dac.clone();
    let holder = JobSpec::synthetic("holder", secs(30)).script(script(move |jc| {
        let d1 = d1.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &d1, None).await;
            let set = ses.ac_get(1).await.expect("free at start");
            jc.proc.sleep(secs(20)).await; // holds far past the waiter's patience
            ses.ac_free(&set).await.unwrap();
            ses.finalize();
        }
    }));
    cluster.qsub(holder);

    let out = outcome.clone();
    let waiter = JobSpec::synthetic("waiter", secs(30)).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            jc.proc.sleep(secs(2)).await;
            let t0 = jc.proc.now();
            let r = ses.ac_get(1).await;
            *out.lock() = Some((r.is_err(), (jc.proc.now() - t0).as_secs_f64()));
            ses.finalize();
        }
    }));
    cluster.qsub(waiter);

    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let (rejected, waited) = outcome.lock().unwrap();
    assert!(rejected, "rejected after the queue-wait limit");
    assert!((3.0..10.0).contains(&waited), "waited ≈ the limit, got {waited}");
}
