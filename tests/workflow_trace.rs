//! Protocol faithfulness: the traced event order of a static + dynamic
//! job must follow the paper's workflow diagrams —
//! Fig. 5 (static): submit → schedule → send to mother superior → joins →
//! daemons started → job starts → AC_Init connects;
//! Fig. 6 (dynamic): AC_Get → dynqueued servicing → scheduler grant →
//! DYNJOIN → client-id reply → spawn/merge; then release and exit.

use darms::prelude::*;

fn position(trace: &[(f64, String, String)], needle: &str) -> usize {
    trace
        .iter()
        .position(|(_, _, e)| e.contains(needle))
        .unwrap_or_else(|| panic!("trace event not found: {needle}\ntrace: {trace:#?}"))
}

#[test]
fn static_and_dynamic_workflow_event_order() {
    let mut cluster =
        Cluster::build(ClusterConfig::paper_testbed(99).with_split(1, 4).with_trace());
    let dac = cluster.dac.clone();
    let spec =
        JobSpec::synthetic("flow", SimDuration::from_secs(5)).acpn(1).script(script(move |jc| {
            let dac = dac.clone();
            async move {
                let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
                let set = ses.ac_get(2).await.expect("pool has 3 free");
                ses.ac_free(&set).await.unwrap();
                // Keep the job alive past the asynchronous disassociation so
                // the DISJOIN round-trip completes while the job still runs
                // (AC_Free itself returns immediately, §III-D).
                jc.proc.sleep(SimDuration::from_secs(1)).await;
                ses.finalize();
            }
        }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);

    let trace: Vec<(f64, String, String)> = cluster
        .sim
        .take_trace()
        .into_iter()
        .map(|r| (r.time.as_secs_f64(), r.source, r.event))
        .collect();

    // Fig. 5 order: queued -> scheduler starts it -> mother superior ->
    // accelerator daemons -> (AC_Init happens inside the app).
    let queued = position(&trace, "job1 queued");
    let sched = position(&trace, "starting job1");
    let ms = position(&trace, "job1 -> mother superior");
    let join = position(&trace, "job1: mother superior, 1 sister(s)");
    let daemons = position(&trace, "starting 1 accelerator daemon(s)");
    assert!(
        queued < sched && sched < ms && ms < join && join < daemons,
        "static workflow order violated: {queued} {sched} {ms} {join} {daemons}"
    );

    // Fig. 6 order: servicing -> scheduler grant -> DYNJOIN -> client-id.
    let servicing = position(&trace, "servicing dynamic request of job1");
    let dyn_grant = position(&trace, "dyn request of job1 granted");
    let dynjoin = position(&trace, "job1: DYNJOIN of 2 host(s)");
    let client_id = position(&trace, "job1 granted 2 accelerator(s) as client1");
    assert!(daemons < servicing, "dynamic phase after static start");
    assert!(
        servicing < dyn_grant && dyn_grant < dynjoin && dynjoin < client_id,
        "dynamic workflow order violated: {servicing} {dyn_grant} {dynjoin} {client_id}"
    );

    // Release and exit close the cycle.
    let released = position(&trace, "job1 released set client1");
    let done = position(&trace, "job1: all tasks done");
    let complete = position(&trace, "job1 complete");
    assert!(
        client_id < released && released < done && done < complete,
        "teardown order violated: {client_id} {released} {done} {complete}"
    );

    // The trace carries wall-clock-ordered timestamps throughout.
    for w in trace.windows(2) {
        assert!(w[0].0 <= w[1].0, "trace time went backwards");
    }
}
