//! The paper's §I headline scenario: kernels across a set of
//! network-attached accelerators that communicate **directly with each
//! other** over MPI, without involving the host between steps.

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

#[test]
fn host_free_group_reduction_across_accelerators() {
    let mut cluster = Cluster::build(ClusterConfig::fast(90).with_split(1, 4));
    let dac = cluster.dac.clone();
    let result = Arc::new(Mutex::new(None));
    let out_slot = result.clone();

    let spec = JobSpec::synthetic("groupred", SimDuration::from_secs(10)).acpn(4).script(script(
        move |jc| {
            let dac = dac.clone();
            let out_slot = out_slot.clone();
            async move {
                let (mut ses, handles) = AcSession::init(&jc, &dac, None).await;
                assert_eq!(handles.len(), 4);
                // Distribute 4 slices of data, one per accelerator.
                let n = 1000usize;
                let mut parts = Vec::new();
                let mut expected = 0.0;
                for (i, &h) in handles.iter().enumerate() {
                    let vals: Vec<f64> = (0..n).map(|k| (i * n + k) as f64).collect();
                    expected += vals.iter().sum::<f64>();
                    let p = ses.mem_alloc(h, (n * 8) as u64).await.unwrap();
                    ses.mem_write(h, p, f64s_to_bytes(&vals)).await.unwrap();
                    parts.push((h, p));
                }
                let out = ses.mem_alloc(handles[0], 8).await.unwrap();
                let total = ses.group_reduce_sum(&parts, n as u64, out).await.unwrap();
                *out_slot.lock() = Some((total, expected));
                ses.finalize();
            }
        },
    ));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let (total, expected) = result.lock().unwrap();
    assert_eq!(total, expected, "daemon-to-daemon reduction result");
}

#[test]
fn group_reduction_over_subset_and_repeated() {
    let mut cluster = Cluster::build(ClusterConfig::fast(91).with_split(1, 3));
    let dac = cluster.dac.clone();
    let ok = Arc::new(Mutex::new(false));
    let out_slot = ok.clone();
    let spec = JobSpec::synthetic("subset", SimDuration::from_secs(10)).acpn(3).script(script(
        move |jc| {
            let dac = dac.clone();
            let out_slot = out_slot.clone();
            async move {
                let (mut ses, handles) = AcSession::init(&jc, &dac, None).await;
                // Only two of the three accelerators participate.
                let mut parts = Vec::new();
                for &h in &handles[1..] {
                    let p = ses.mem_alloc(h, 24).await.unwrap();
                    ses.mem_write(h, p, f64s_to_bytes(&[1.0, 2.0, 3.0])).await.unwrap();
                    parts.push((h, p));
                }
                let out = ses.mem_alloc(handles[1], 8).await.unwrap();
                // Run the group op twice: state must not leak between ops.
                let first = ses.group_reduce_sum(&parts, 3, out).await.unwrap();
                let second = ses.group_reduce_sum(&parts, 3, out).await.unwrap();
                assert_eq!(first, 12.0);
                assert_eq!(second, 12.0);
                // The uninvolved accelerator still works normally.
                let h0 = handles[0];
                let p0 = ses.mem_alloc(h0, 8).await.unwrap();
                ses.mem_write(h0, p0, f64s_to_bytes(&[9.0])).await.unwrap();
                assert_eq!(as_f64s(&ses.mem_read(h0, p0, 8).await.unwrap()), vec![9.0]);
                *out_slot.lock() = true;
                ses.finalize();
            }
        },
    ));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert!(*ok.lock());
}

#[test]
fn group_reduction_works_on_dynamic_set() {
    // Mix static and dynamically acquired accelerators in one group op.
    let mut cluster = Cluster::build(ClusterConfig::fast(92).with_split(1, 3));
    let dac = cluster.dac.clone();
    let ok = Arc::new(Mutex::new(false));
    let out_slot = ok.clone();
    let spec = JobSpec::synthetic("dyngroup", SimDuration::from_secs(10)).acpn(1).script(script(
        move |jc| {
            let dac = dac.clone();
            let out_slot = out_slot.clone();
            async move {
                let (mut ses, statics) = AcSession::init(&jc, &dac, None).await;
                let set = ses.ac_get(2).await.expect("two free");
                let all: Vec<AcHandle> =
                    statics.iter().chain(set.handles.iter()).copied().collect();
                let mut parts = Vec::new();
                for &h in &all {
                    let p = ses.mem_alloc(h, 16).await.unwrap();
                    ses.mem_write(h, p, f64s_to_bytes(&[5.0, 5.0])).await.unwrap();
                    parts.push((h, p));
                }
                let out = ses.mem_alloc(all[0], 8).await.unwrap();
                let total = ses.group_reduce_sum(&parts, 2, out).await.unwrap();
                assert_eq!(total, 30.0);
                ses.ac_free(&set).await.unwrap();
                ses.finalize();
                *out_slot.lock() = true;
            }
        },
    ));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert!(*ok.lock());
}
