//! Round-trip test for soak triage bundles (DESIGN.md §13): a bundle
//! written for a violating (forced-failure) cell must be self-contained
//! — replaying it from the on-disk `cell.json` alone reproduces the
//! recorded trace byte-for-byte, and a tampered trace is detected.

use std::path::PathBuf;

use darms_experiments::soak::{self, FaultClass, SoakCell, WorkloadClass};

/// A unique scratch directory under the target dir (kept out of the
/// repo tree so a failing test cannot dirty the checkout).
fn scratch_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("darms_soak_triage_{}_{tag}", std::process::id()));
    // A previous failed run may have left the directory behind.
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create scratch dir");
    root
}

#[test]
fn forced_failure_bundle_replays_byte_for_byte() {
    let mut cell = SoakCell::new(11, WorkloadClass::DynHeavy, FaultClass::Chaotic);
    cell.force_failure = true;

    let outcome = soak::run_cell_checked(&cell);
    assert!(!outcome.clean(), "force_failure must make the cell dirty");
    assert!(
        outcome.violations.iter().any(|v| v.contains("forced failure")),
        "violations should name the forced failure: {:?}",
        outcome.violations
    );

    let root = scratch_root("roundtrip");
    let bundle = soak::write_triage_bundle(&root, &outcome).expect("write bundle");
    assert_eq!(bundle, root.join(cell.id()), "bundle dir is named after the cell id");

    // The bundle is self-contained: config, violations, full trace, and
    // a context slice are all present; the rerun trace only appears on
    // divergence (a forced failure is deterministic, so no divergence).
    for file in ["cell.json", "violations.txt", "trace.jsonl", "slice.jsonl"] {
        assert!(bundle.join(file).is_file(), "bundle is missing {file}");
    }
    assert!(
        !bundle.join("rerun_trace.jsonl").exists(),
        "no rerun trace expected without divergence"
    );
    let bundled_trace = std::fs::read_to_string(bundle.join("trace.jsonl")).unwrap();
    assert_eq!(bundled_trace, outcome.trace, "bundled trace must be the run's trace, verbatim");
    let slice = std::fs::read_to_string(bundle.join("slice.jsonl")).unwrap();
    assert!(!slice.is_empty(), "context slice must not be empty");
    assert!(
        bundled_trace.contains(slice.trim_end_matches('\n').lines().next().unwrap()),
        "slice lines come from the bundled trace"
    );

    // Round trip: replay from the on-disk bundle alone.
    let replay = soak::replay_bundle(&bundle).expect("replay bundle");
    assert_eq!(replay.cell, cell, "cell.json reconstructs the exact cell");
    assert!(replay.byte_identical, "replay must reproduce the violating trace byte-for-byte");
    assert!(
        replay.violations.iter().any(|v| v.contains("forced failure")),
        "replay re-detects the recorded violation: {:?}",
        replay.violations
    );

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn tampered_bundle_trace_is_detected() {
    let mut cell = SoakCell::new(5, WorkloadClass::Churn, FaultClass::Lossy);
    cell.force_failure = true;
    let outcome = soak::run_cell_checked(&cell);

    let root = scratch_root("tamper");
    let bundle = soak::write_triage_bundle(&root, &outcome).expect("write bundle");
    let trace_path = bundle.join("trace.jsonl");
    let mut trace = std::fs::read_to_string(&trace_path).unwrap();
    trace.push_str("{\"tampered\": true}\n");
    std::fs::write(&trace_path, trace).unwrap();

    let replay = soak::replay_bundle(&bundle).expect("replay bundle");
    assert!(!replay.byte_identical, "a tampered trace must not replay byte-identical");

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn malformed_bundle_is_rejected_with_a_reason() {
    let root = scratch_root("malformed");
    // Empty dir: no cell.json at all.
    let err = soak::replay_bundle(&root).unwrap_err();
    assert!(err.contains("cell.json"), "error should name the missing file: {err}");

    // Unknown workload class.
    std::fs::write(
        root.join("cell.json"),
        "{\n  \"schema\": 1,\n  \"seed\": 0,\n  \"workload\": \"warp\",\n  \
         \"faults\": \"none\",\n  \"force_failure\": false,\n  \"divergence_line\": null\n}\n",
    )
    .unwrap();
    let err = soak::replay_bundle(&root).unwrap_err();
    assert!(err.contains("unknown workload"), "error should flag the bad class: {err}");

    std::fs::remove_dir_all(&root).unwrap();
}
