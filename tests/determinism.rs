//! The whole stack is a deterministic simulation: identical seeds must
//! produce bit-identical event traces, including across the full DAC
//! scenario (batch system + MPI + daemons + jitter).

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

fn scenario(seed: u64) -> (Vec<(u64, String, String)>, Vec<f64>) {
    let mut cluster =
        Cluster::build(ClusterConfig::paper_testbed(seed).with_split(2, 4).with_trace());
    let dac = cluster.dac.clone();
    let lat = Arc::new(Mutex::new(Vec::new()));
    for i in 0..2 {
        let d = dac.clone();
        let l = lat.clone();
        let spec = JobSpec::synthetic(format!("j{i}"), SimDuration::from_secs(2)).acpn(1).script(
            script(move |jc| {
                let d = d.clone();
                let l = l.clone();
                async move {
                    let (mut ses, handles) = AcSession::init(&jc, &d, None).await;
                    let h = handles[0];
                    let p = ses.mem_alloc(h, 64).await.unwrap();
                    ses.mem_write(h, p, vec![7u8; 64]).await.unwrap();
                    let t0 = jc.proc.now();
                    if let Ok(set) = ses.ac_get(1).await {
                        ses.ac_free(&set).await.unwrap();
                    }
                    l.lock().push((jc.proc.now() - t0).as_secs_f64());
                    ses.finalize();
                }
            }),
        );
        cluster.qsub_after(SimDuration::from_millis(10 * i), spec);
    }
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let trace = cluster
        .sim
        .take_trace()
        .into_iter()
        .map(|r| (r.time.as_nanos(), r.source, r.event))
        .collect();
    let lat = lat.lock().clone();
    (trace, lat)
}

/// Run a small traced scenario and serialize the structured event
/// stream with both exporters.
fn scenario_serialized(seed: u64) -> (String, String) {
    let mut cluster =
        Cluster::build(ClusterConfig::paper_testbed(seed).with_split(2, 2).with_trace());
    let dac = cluster.dac.clone();
    let spec =
        JobSpec::synthetic("traced", SimDuration::from_secs(1)).acpn(1).script(script(move |jc| {
            let dac = dac.clone();
            async move {
                let (mut ses, handles) = AcSession::init(&jc, &dac, None).await;
                let h = handles[0];
                let p = ses.mem_alloc(h, 32).await.unwrap();
                ses.mem_write(h, p, vec![1u8; 32]).await.unwrap();
                if let Ok(set) = ses.ac_get(1).await {
                    ses.ac_free(&set).await.unwrap();
                }
                ses.finalize();
            }
        }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let events = cluster.sim.take_events();
    assert!(!events.is_empty(), "tracing was enabled");
    (to_json_lines(&events), to_chrome_trace(&events))
}

#[test]
fn same_seed_byte_identical_serialized_trace() {
    let (jl1, ct1) = scenario_serialized(99);
    let (jl2, ct2) = scenario_serialized(99);
    assert_eq!(jl1, jl2, "JSON-lines export must be byte-identical");
    assert_eq!(ct1, ct2, "Chrome trace export must be byte-identical");
}

#[test]
fn different_seed_different_serialized_trace() {
    let (jl1, _) = scenario_serialized(5);
    let (jl2, _) = scenario_serialized(6);
    assert_ne!(jl1, jl2, "seeded jitter must show up in the event stream");
}

#[test]
fn chrome_trace_is_wellformed() {
    let (_, ct) = scenario_serialized(42);
    assert!(ct.starts_with("{\"traceEvents\":["));
    assert!(ct.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    assert!(ct.contains("\"thread_name\""), "lane metadata present");
    // Balanced span edges: every B has a matching E.
    let begins = ct.matches("\"ph\":\"B\"").count();
    let ends = ct.matches("\"ph\":\"E\"").count();
    assert_eq!(begins, ends, "span begin/end balance");
}

#[test]
fn same_seed_same_trace() {
    let (t1, l1) = scenario(123);
    let (t2, l2) = scenario(123);
    assert!(!t1.is_empty());
    assert_eq!(t1.len(), t2.len());
    assert_eq!(t1, t2);
    assert_eq!(l1, l2);
}

#[test]
fn different_seed_different_timings() {
    // Jitter is seeded: different seeds shift the sub-millisecond timing
    // of at least some events (the logical event sequence may coincide).
    let (t1, _) = scenario(1);
    let (t2, _) = scenario(2);
    let times1: Vec<u64> = t1.iter().map(|(t, _, _)| *t).collect();
    let times2: Vec<u64> = t2.iter().map(|(t, _, _)| *t).collect();
    assert_ne!(times1, times2, "seeded jitter must influence timings");
}
