//! The whole stack is a deterministic simulation: identical seeds must
//! produce bit-identical event traces, including across the full DAC
//! scenario (batch system + MPI + daemons + jitter).

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

fn scenario(seed: u64) -> (Vec<(u64, String, String)>, Vec<f64>) {
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(seed).with_split(2, 4).with_trace());
    let dac = cluster.dac.clone();
    let lat = Arc::new(Mutex::new(Vec::new()));
    for i in 0..2 {
        let d = dac.clone();
        let l = lat.clone();
        let spec = JobSpec::synthetic(format!("j{i}"), SimDuration::from_secs(2))
            .acpn(1)
            .script(script(move |jc| {
                let (mut ses, handles) = AcSession::init(jc, &d, None);
                let h = handles[0];
                let p = ses.mem_alloc(h, 64).unwrap();
                ses.mem_write(h, p, vec![7u8; 64]).unwrap();
                let t0 = jc.proc.now();
                if let Ok(set) = ses.ac_get(1) {
                    ses.ac_free(&set).unwrap();
                }
                l.lock().push((jc.proc.now() - t0).as_secs_f64());
                ses.finalize();
            }));
        cluster.qsub_after(SimDuration::from_millis(10 * i), spec);
    }
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let trace = cluster
        .sim
        .take_trace()
        .into_iter()
        .map(|r| (r.time.as_nanos(), r.source, r.event))
        .collect();
    let lat = lat.lock().clone();
    (trace, lat)
}

#[test]
fn same_seed_same_trace() {
    let (t1, l1) = scenario(123);
    let (t2, l2) = scenario(123);
    assert!(!t1.is_empty());
    assert_eq!(t1.len(), t2.len());
    assert_eq!(t1, t2);
    assert_eq!(l1, l2);
}

#[test]
fn different_seed_different_timings() {
    // Jitter is seeded: different seeds shift the sub-millisecond timing
    // of at least some events (the logical event sequence may coincide).
    let (t1, _) = scenario(1);
    let (t2, _) = scenario(2);
    let times1: Vec<u64> = t1.iter().map(|(t, _, _)| *t).collect();
    let times2: Vec<u64> = t2.iter().map(|(t, _, _)| *t).collect();
    assert_ne!(times1, times2, "seeded jitter must influence timings");
}
