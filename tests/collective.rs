//! Integration: collective `AC_Get`/`AC_Free` over a multi-compute-node
//! job (§III-D): single request for the total, all-or-nothing grant,
//! shared client-id, collective-only release, per-CN communicator
//! isolation.

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

#[test]
fn collective_acget_grants_each_node_its_share() {
    // 3 CNs ask for 2, 1, 1 accelerators => one request for 4.
    let mut cluster = Cluster::build(ClusterConfig::fast(50).with_split(3, 4));
    let dac = cluster.dac.clone();
    let log = Arc::new(Mutex::new(Vec::new()));

    let out = log.clone();
    let spec = JobSpec::synthetic("coll", secs(10)).nodes(3).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            let tc = TaskComm::establish(&jc).await;
            let count = match jc.node_index {
                0 => 2,
                _ => 1,
            };
            let set = ses.ac_get_collective(&jc, &tc, count).await.expect("pool of 4 covers 2+1+1");
            out.lock().push((jc.node_index, set.client_id, set.handles.len()));
            // Each node can actually use its share.
            for &h in &set.handles {
                let p = ses.mem_alloc(h, 64).await.unwrap();
                ses.mem_write(h, p, vec![1u8; 64]).await.unwrap();
            }
            ses.ac_free_collective(&jc, &tc, &set).await.expect("collective release");
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);

    let mut got = log.lock().clone();
    got.sort();
    assert_eq!(got.len(), 3);
    // Shares match the per-node counts.
    assert_eq!(got[0].2, 2);
    assert_eq!(got[1].2, 1);
    assert_eq!(got[2].2, 1);
    // All participants share one client-id (the paper's semantics).
    assert_eq!(got[0].1, got[1].1);
    assert_eq!(got[1].1, got[2].1);
}

#[test]
fn collective_acget_is_all_or_nothing() {
    // 2 CNs ask for 2 + 2 = 4 but only 3 are free: both must be rejected
    // even though node 1's individual request of 2 could have succeeded.
    let mut cluster = Cluster::build(ClusterConfig::fast(51).with_split(2, 3));
    let dac = cluster.dac.clone();
    let outcomes = Arc::new(Mutex::new(Vec::new()));

    let out = outcomes.clone();
    let spec = JobSpec::synthetic("aon", secs(5)).nodes(2).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            let tc = TaskComm::establish(&jc).await;
            let r = ses.ac_get_collective(&jc, &tc, 2).await;
            out.lock().push((jc.node_index, r.is_ok()));
            assert!(matches!(r, Err(DacError::Rejected(_))));
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let got = outcomes.lock().clone();
    assert_eq!(got.len(), 2);
    assert!(got.iter().all(|(_, ok)| !ok), "all-or-nothing: {got:?}");
}

#[test]
fn collective_release_returns_whole_set_to_pool() {
    // After a collective get+free by job A, job B can take the whole pool.
    let mut cluster = Cluster::build(ClusterConfig::fast(52).with_split(2, 4));
    let dac = cluster.dac.clone();
    let order = Arc::new(Mutex::new(Vec::new()));

    let d = dac.clone();
    let o = order.clone();
    let spec_a = JobSpec::synthetic("a", secs(20)).nodes(2).script(script(move |jc| {
        let d = d.clone();
        let o = o.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &d, None).await;
            let tc = TaskComm::establish(&jc).await;
            let set = ses.ac_get_collective(&jc, &tc, 2).await.expect("4 free");
            jc.proc.sleep(secs(5)).await;
            ses.ac_free_collective(&jc, &tc, &set).await.unwrap();
            if jc.node_index == 0 {
                o.lock().push(("a-freed", jc.proc.now()));
            }
            jc.proc.sleep(secs(5)).await;
            ses.finalize();
        }
    }));
    cluster.qsub(spec_a);

    let o = order.clone();
    let spec_b = JobSpec::synthetic("b", secs(20)).script(script(move |jc| {
        let dac = dac.clone();
        let o = o.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            jc.proc.sleep(secs(2)).await;
            // While A holds all 4 dynamically, B is rejected.
            assert!(matches!(ses.ac_get(4).await, Err(DacError::Rejected(_))));
            jc.proc.sleep(secs(6)).await; // past A's release
            let set = ses.ac_get(4).await.expect("whole pool back");
            o.lock().push(("b-got-4", jc.proc.now()));
            ses.ac_free(&set).await.unwrap();
            ses.finalize();
        }
    }));
    cluster.qsub(spec_b);

    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let v = order.lock().clone();
    let freed = v.iter().find(|(n, _)| *n == "a-freed").expect("A freed").1;
    let got = v.iter().find(|(n, _)| *n == "b-got-4").expect("B got").1;
    assert!(got > freed);
}

#[test]
fn zero_count_participants_join_the_collective() {
    // A node may participate with count 0 (it needs no accelerators but
    // must still take part in the collective call).
    let mut cluster = Cluster::build(ClusterConfig::fast(53).with_split(2, 2));
    let dac = cluster.dac.clone();
    let log = Arc::new(Mutex::new(Vec::new()));
    let out = log.clone();
    let spec = JobSpec::synthetic("zero", secs(5)).nodes(2).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            let tc = TaskComm::establish(&jc).await;
            let count = if jc.node_index == 0 { 2 } else { 0 };
            let set = ses.ac_get_collective(&jc, &tc, count).await.expect("2 free");
            out.lock().push((jc.node_index, set.handles.len()));
            ses.ac_free_collective(&jc, &tc, &set).await.unwrap();
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let mut got = log.lock().clone();
    got.sort();
    assert_eq!(got, vec![(0, 2), (1, 0)]);
}
