//! Scheduling under contention: priorities, backfill, and dynamic
//! requests competing with a busy queue.

use std::sync::Arc;

use darms::prelude::*;
use darms_sched::{AllocPolicy, Policy, SchedConfig};
use parking_lot::Mutex;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

/// Record job start times through a script hook.
fn starts_recorder(
    cluster: &mut Cluster,
    name: &str,
    runtime: u64,
    nodes: usize,
    ppn: u32,
    walltime: u64,
    log: Arc<Mutex<Vec<(String, SimTime)>>>,
) {
    let tag = name.to_string();
    let spec = JobSpec::synthetic(name, secs(runtime))
        .nodes(nodes)
        .ppn(ppn)
        .walltime(secs(walltime))
        .script(script(move |jc| {
            let log = log.clone();
            let tag = tag.clone();
            async move {
                if jc.node_index == 0 {
                    log.lock().push((tag, jc.proc.now()));
                }
                jc.proc.sleep(secs(runtime)).await;
            }
        }));
    cluster.qsub(spec);
}

#[test]
fn easy_backfill_lets_short_jobs_jump_blocked_wide_jobs() {
    fn run(backfill: bool) -> Vec<(String, SimTime)> {
        let mut sched = SchedConfig::instant();
        sched.policy = Policy::Fifo;
        sched.backfill = backfill;
        sched.allocation = AllocPolicy::FirstFit;
        let mut cluster =
            Cluster::build(ClusterConfig::fast(33).with_split(2, 0).with_sched(sched));
        let log = Arc::new(Mutex::new(Vec::new()));
        // "hog" takes both nodes for 100 s; "wide" (2 nodes) must wait;
        // "quick" (1 node, 10 s) can backfill into... wait: hog holds both
        // nodes. Use: hog takes ONE node (100s). wide needs 2 => blocked.
        // quick needs 1 node for 10s: under EASY it may run now because
        // it finishes before hog releases (shadow time = 100 s).
        starts_recorder(&mut cluster, "hog", 100, 1, 8, 100, log.clone());
        starts_recorder(&mut cluster, "wide", 20, 2, 8, 20, log.clone());
        starts_recorder(&mut cluster, "quick", 10, 1, 8, 10, log.clone());
        let stats = cluster.run();
        assert_eq!(stats.process_panics, 0);
        let v = log.lock().clone();
        v
    }

    let with = run(true);
    let find = |v: &[(String, SimTime)], n: &str| {
        v.iter().find(|(name, _)| name == n).map(|(_, t)| *t).unwrap()
    };
    // With backfill: quick starts almost immediately (well before wide).
    assert!(find(&with, "quick") < find(&with, "wide"));
    assert!(find(&with, "quick") - find(&with, "hog") < secs(5), "quick backfilled: {with:?}");

    let without = run(false);
    // Without backfill the strict queue holds quick behind wide.
    assert!(
        find(&without, "quick") >= find(&without, "wide"),
        "no backfill => strict order: {without:?}"
    );
}

#[test]
fn too_long_jobs_do_not_backfill_past_the_reservation() {
    let mut sched = SchedConfig::instant();
    sched.policy = Policy::Fifo;
    sched.backfill = true;
    let mut cluster = Cluster::build(ClusterConfig::fast(34).with_split(2, 0).with_sched(sched));
    let log = Arc::new(Mutex::new(Vec::new()));
    starts_recorder(&mut cluster, "hog", 100, 1, 8, 100, log.clone());
    starts_recorder(&mut cluster, "wide", 20, 2, 8, 20, log.clone());
    // "long" would fit now but its walltime (500) exceeds the shadow
    // time; conservative EASY must hold it back.
    starts_recorder(&mut cluster, "long", 500, 1, 8, 500, log.clone());
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let v = log.lock().clone();
    let find = |n: &str| v.iter().find(|(name, _)| name == n).map(|(_, t)| *t).unwrap();
    assert!(find("long") >= find("wide"), "long job must not delay the reservation: {v:?}");
}

#[test]
fn dynamic_request_beats_queued_jobs_to_accelerators() {
    // One accelerator; a queued job wants it statically, a running job
    // asks dynamically at the same time. Top-priority dynamic scheduling
    // must serve the dynamic request first (§III-E).
    let mut cluster = Cluster::build(ClusterConfig::fast(35).with_split(2, 1));
    let dac = cluster.dac.clone();
    let log = Arc::new(Mutex::new(Vec::new()));

    let l1 = log.clone();
    let runner = JobSpec::synthetic("runner", secs(60)).script(script(move |jc| {
        let dac = dac.clone();
        let l1 = l1.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            jc.proc.sleep(secs(5)).await;
            let set = ses.ac_get(1).await;
            l1.lock().push(("dyn-result", set.is_ok(), jc.proc.now()));
            if let Ok(s) = set {
                jc.proc.sleep(secs(10)).await;
                ses.ac_free(&s).await.unwrap();
            }
            ses.finalize();
        }
    }));
    cluster.qsub(runner);
    // The static competitor arrives just after the dynamic grant; the
    // accelerator is held by the runner, so the competitor queues until
    // the runner's AC_Free.
    let l2 = log.clone();
    let competitor = JobSpec::synthetic("competitor", secs(1)).acpn(1).script(script(move |jc| {
        let l2 = l2.clone();
        async move {
            l2.lock().push(("competitor-start", true, jc.proc.now()));
        }
    }));
    cluster.qsub_after(secs(6), competitor);

    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let v = log.lock().clone();
    let dyn_at = v.iter().find(|(n, _, _)| *n == "dyn-result").expect("dyn ran");
    assert!(dyn_at.1, "dynamic request won the accelerator");
    let comp = v.iter().find(|(n, _, _)| *n == "competitor-start").expect("competitor ran");
    assert!(comp.2 > dyn_at.2, "competitor only after the dynamic grant");
}

#[test]
fn fifo_vs_priority_ordering_under_load() {
    // Two owners; "heavy" has accumulated usage. Under the priority
    // policy with fairshare, light's later job overtakes heavy's earlier
    // one once heavy is running work.
    use darms_sched::PriorityWeights;
    let mut sched = SchedConfig::instant();
    sched.policy =
        Policy::Priority(PriorityWeights { queue_time: 1.0, xfactor: 0.0, fairshare: 1_000_000.0 });
    let mut cluster = Cluster::build(ClusterConfig::fast(36).with_split(1, 0).with_sched(sched));
    let log = Arc::new(Mutex::new(Vec::new()));

    // heavy occupies the node first.
    let l = log.clone();
    let spec =
        JobSpec::synthetic("heavy-1", secs(30)).owner("heavy").ppn(8).script(script(move |jc| {
            let l = l.clone();
            async move {
                l.lock().push(("heavy-1", jc.proc.now()));
                jc.proc.sleep(secs(30)).await;
            }
        }));
    cluster.qsub(spec);
    // Then heavy submits another, followed by light.
    let l = log.clone();
    let spec =
        JobSpec::synthetic("heavy-2", secs(5)).owner("heavy").ppn(8).script(script(move |jc| {
            let l = l.clone();
            async move {
                l.lock().push(("heavy-2", jc.proc.now()));
                jc.proc.sleep(secs(5)).await;
            }
        }));
    cluster.qsub_after(secs(1), spec);
    let l = log.clone();
    let spec =
        JobSpec::synthetic("light-1", secs(5)).owner("light").ppn(8).script(script(move |jc| {
            let l = l.clone();
            async move {
                l.lock().push(("light-1", jc.proc.now()));
                jc.proc.sleep(secs(5)).await;
            }
        }));
    cluster.qsub_after(secs(2), spec);

    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let v = log.lock().clone();
    let order: Vec<&str> = v.iter().map(|(n, _)| *n).collect();
    assert_eq!(order, vec!["heavy-1", "light-1", "heavy-2"], "fairshare reorders: {v:?}");
}

#[test]
fn full_pool_request_proves_everything_was_freed() {
    // Run a churny workload, then submit a job requiring every
    // accelerator: it can only start if the pool was fully returned.
    let mut cluster = Cluster::build(ClusterConfig::fast(37).with_split(2, 4));
    let dac = cluster.dac.clone();
    for i in 0..4 {
        let d = dac.clone();
        let spec =
            JobSpec::synthetic(format!("churn{i}"), secs(3)).acpn(1).script(script(move |jc| {
                let d = d.clone();
                async move {
                    let (mut ses, _) = AcSession::init(&jc, &d, None).await;
                    if let Ok(set) = ses.ac_get(1).await {
                        ses.ac_free(&set).await.unwrap();
                    }
                    ses.finalize();
                }
            }));
        cluster.qsub_after(secs(i), spec);
    }
    let done = Arc::new(Mutex::new(false));
    let out = done.clone();
    let d = dac.clone();
    let spec = JobSpec::synthetic("sweeper", secs(1)).nodes(2).acpn(2).script(script(move |jc| {
        let d = d.clone();
        let out = out.clone();
        async move {
            let (ses, handles) = AcSession::init(&jc, &d, None).await;
            assert_eq!(handles.len(), 2);
            if jc.node_index == 0 {
                *out.lock() = true;
            }
            ses.finalize();
        }
    }));
    cluster.qsub_after(secs(30), spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    assert!(*done.lock(), "the all-accelerator job ran: the pool was conserved");
}
