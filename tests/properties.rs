//! Property-based tests over whole-cluster runs: for arbitrary small
//! workloads the batch system must terminate cleanly, never panic (the
//! server's node database asserts against double allocation internally),
//! conserve the accelerator pool, and complete every feasible job.

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct PJob {
    nodes: usize,
    ppn: u32,
    acpn: u32,
    runtime_ms: u64,
    arrival_ms: u64,
    dynget: u32,
}

fn pjob() -> impl Strategy<Value = PJob> {
    (1usize..=2, 1u32..=4, 0u32..=2, 50u64..3000, 0u64..2000, 0u32..=2).prop_map(
        |(nodes, ppn, acpn, runtime_ms, arrival_ms, dynget)| PJob {
            nodes,
            ppn,
            acpn,
            runtime_ms,
            arrival_ms,
            dynget,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn random_workloads_terminate_cleanly(jobs in prop::collection::vec(pjob(), 1..6), seed in 0u64..1000) {
        // 2 compute nodes (4 cores each) + 3 accelerators: every generated
        // job is feasible (nodes<=2, ppn<=4, nodes*acpn<=4? acpn<=2,nodes<=2
        // => up to 4 > 3! clamp acpn so nodes*acpn <= 3).
        let mut cluster = Cluster::build(ClusterConfig::fast(seed).with_split(2, 3));
        let dac = cluster.dac.clone();
        let completed = Arc::new(Mutex::new(0usize));
        let njobs = jobs.len();
        for (i, j) in jobs.into_iter().enumerate() {
            let acpn = j.acpn.min((3 / j.nodes) as u32);
            let d = dac.clone();
            let done = completed.clone();
            let runtime = SimDuration::from_millis(j.runtime_ms);
            let dynget = j.dynget;
            let spec = JobSpec::synthetic(format!("p{i}"), runtime)
                .nodes(j.nodes)
                .ppn(j.ppn)
                .acpn(acpn)
                .script(script(move |jc| {
                    let d = d.clone();
                    let done = done.clone();
                    async move {
                        let (mut ses, handles) = AcSession::init(&jc, &d, None).await;
                        prop_assert_eq_soft(handles.len(), jc.acc_hosts.len());
                        jc.proc.sleep(runtime / 2).await;
                        if jc.node_index == 0 && dynget > 0 {
                            // Dynamic requests may be granted or rejected;
                            // either way the run must stay consistent.
                            if let Ok(set) = ses.ac_get(dynget).await {
                                jc.proc.sleep(runtime / 4).await;
                                ses.ac_free(&set).await.unwrap();
                            }
                        }
                        jc.proc.sleep(runtime / 2).await;
                        ses.finalize();
                        if jc.node_index == 0 {
                            *done.lock() += 1;
                        }
                    }
                }));
            cluster.qsub_after(SimDuration::from_millis(j.arrival_ms), spec);
        }
        let stats = cluster.run();
        prop_assert_eq!(stats.process_panics, 0, "no process may panic");
        prop_assert!(!stats.hit_event_cap, "simulation must quiesce");
        prop_assert_eq!(*completed.lock(), njobs, "every feasible job completes");
        // Pool conservation: after everything completed, all
        // communicators are gone (daemons exited).
        prop_assert_eq!(cluster.mpi.live_comms(), 0, "no leaked communicators");
    }
}

/// proptest's `prop_assert!` cannot be used inside the job script (which
/// runs as a simulated process, outside the proptest closure); a plain
/// assert propagates through the panic counter instead.
fn prop_assert_eq_soft(a: usize, b: usize) {
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn node_db_conserves_resources(ops in prop::collection::vec((0usize..4, 0u32..9), 1..40)) {
        use darms_rms::{NodeDb, JobId};
        use darms_net::HostId;
        let mut db = NodeDb::new();
        let hosts: Vec<HostId> = (0..4).map(HostId::from_raw).collect();
        db.add_compute(hosts[0], 8);
        db.add_compute(hosts[1], 8);
        db.add_accelerator(hosts[2]);
        db.add_accelerator(hosts[3]);
        let mut live: Vec<(HostId, JobId)> = Vec::new();
        let mut next_job = 0u64;
        for (k, amount) in ops {
            match k {
                0 => {
                    // allocate compute if possible
                    let ppn = (amount % 8) + 1;
                    if let Some(h) = db.free_compute(ppn).first().copied() {
                        let job = JobId(next_job);
                        next_job += 1;
                        db.allocate_compute(h, job, ppn);
                        live.push((h, job));
                    }
                }
                1 => {
                    if let Some(h) = db.free_accelerators().first().copied() {
                        let job = JobId(next_job);
                        next_job += 1;
                        db.allocate_accelerator(h, job);
                        live.push((h, job));
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let ix = (amount as usize) % live.len();
                        let (h, job) = live.swap_remove(ix);
                        db.release(h, job);
                    }
                }
            }
            // invariants
            let (free, total) = db.compute_core_usage();
            prop_assert!(free <= total);
            let (afree, atotal) = db.accelerator_usage();
            prop_assert!(afree <= atotal);
        }
        for (h, job) in live.drain(..) {
            db.release(h, job);
        }
        prop_assert_eq!(db.compute_core_usage(), (16, 16));
        prop_assert_eq!(db.accelerator_usage(), (2, 2));
    }
}
