//! Property and integration tests for the metrics registry: merging two
//! registries must be indistinguishable from recording everything into
//! one, and the time-weighted gauge must integrate over *virtual* time.

use darms_sim::{Engine, MetricsRegistry, SimDuration, SimTime};
use proptest::prelude::*;

fn t(ns: u64) -> SimTime {
    SimTime::from_nanos(ns)
}

/// One recording operation against a registry.
#[derive(Clone, Debug)]
enum Op {
    Counter(u8, u64),
    Hist(u8, u64),
    Twg(u8, u64),
}

fn apply(reg: &MetricsRegistry, op: &Op, seq_ns: u64) {
    match op {
        Op::Counter(name, v) => reg.counter_add(&format!("c{name}"), *v),
        Op::Hist(name, v) => reg.observe(&format!("h{name}"), *v as f64),
        // Strictly increasing distinct timestamps (driven by the op's
        // position in the combined sequence) keep the merge exact.
        Op::Twg(name, v) => reg.twg_set(&format!("g{name}"), t(seq_ns), *v as f64),
    }
}

fn op_strategy() -> BoxedStrategy<Op> {
    (0u64..3, 0u8..4, 0u64..1000)
        .prop_map(|(kind, name, v)| match kind {
            0 => Op::Counter(name % 2, v),
            1 => Op::Hist(name % 2, v),
            _ => Op::Twg(name % 2, v),
        })
        .boxed()
}

/// Compare two registries on everything the public API exposes.
fn assert_equivalent(a: &MetricsRegistry, b: &MetricsRegistry, until: SimTime) {
    assert_eq!(a.names(), b.names());
    let (counters, gauges, twgs, hists) = a.names();
    for name in &counters {
        assert_eq!(a.counter(name), b.counter(name), "counter {name}");
    }
    for name in &gauges {
        assert_eq!(a.gauge(name), b.gauge(name), "gauge {name}");
    }
    for name in &twgs {
        assert_eq!(a.twg_updates(name), b.twg_updates(name), "twg {name}");
        assert_eq!(a.twg_mean(name, until), b.twg_mean(name, until), "twg mean {name}");
    }
    for name in &hists {
        let mut sa = a.histogram_samples(name);
        let mut sb = b.histogram_samples(name);
        sa.sort_by(f64::total_cmp);
        sb.sort_by(f64::total_cmp);
        assert_eq!(sa, sb, "histogram samples {name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Recording ops into two registries and merging them equals
    /// recording the same ops into a single registry.
    #[test]
    fn merge_equals_record_into_one(
        left in prop::collection::vec(op_strategy(), 0..20),
        right in prop::collection::vec(op_strategy(), 0..20),
    ) {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        let combined = MetricsRegistry::new();
        // Interleave deterministically: left ops first, then right, with
        // globally unique virtual timestamps.
        for (i, op) in left.iter().enumerate() {
            apply(&a, op, (i as u64 + 1) * 10);
            apply(&combined, op, (i as u64 + 1) * 10);
        }
        let base = (left.len() as u64 + 1) * 10;
        for (i, op) in right.iter().enumerate() {
            apply(&b, op, base + (i as u64 + 1) * 10);
            apply(&combined, op, base + (i as u64 + 1) * 10);
        }
        a.merge_from(&b);
        let until = t(base + (right.len() as u64 + 2) * 10);
        assert_equivalent(&a, &combined, until);
    }

    /// Counter totals survive any split of the same additions.
    #[test]
    fn counters_are_order_independent(adds in prop::collection::vec(0u64..1_000_000, 1..30)) {
        let split = adds.len() / 2;
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        for v in &adds[..split] {
            a.counter_add("n", *v);
        }
        for v in &adds[split..] {
            b.counter_add("n", *v);
        }
        a.merge_from(&b);
        prop_assert_eq!(a.counter("n"), adds.iter().sum::<u64>());
    }
}

#[test]
fn twg_integrates_over_engine_virtual_time() {
    // Drive the gauge from inside a simulation: the mean must weight by
    // virtual (not wall) time.
    let mut sim = Engine::with_seed(3);
    let m = sim.metrics();
    let reg = m.clone();
    sim.spawn_process("driver", move |p| async move {
        reg.twg_set("load", p.now(), 0.0);
        p.sleep(SimDuration::from_secs(10)).await;
        reg.twg_set("load", p.now(), 6.0);
        p.sleep(SimDuration::from_secs(30)).await;
        reg.twg_set("load", p.now(), 2.0);
        p.sleep(SimDuration::from_secs(10)).await;
    });
    let stats = sim.run();
    assert_eq!(stats.end_time, SimTime::ZERO + SimDuration::from_secs(50));
    // (0*10 + 6*30 + 2*10) / 50 = 4.0
    let mean = m.twg_mean("load", stats.end_time).unwrap();
    assert!((mean - 4.0).abs() < 1e-9, "mean {mean}");
}

#[test]
fn histogram_summary_quantiles_on_known_data() {
    let m = MetricsRegistry::new();
    for v in 1..=100 {
        m.observe("lat", v as f64);
    }
    let h = m.histogram("lat").unwrap();
    assert_eq!(h.count, 100);
    assert_eq!(h.min, 1.0);
    assert_eq!(h.max, 100.0);
    assert!((h.mean - 50.5).abs() < 1e-9);
    assert!(h.p50 > 49.0 && h.p50 < 52.0, "p50 {}", h.p50);
    assert!(h.p95 > 94.0 && h.p95 < 97.0, "p95 {}", h.p95);
    assert!(h.p99 > 98.0 && h.p99 <= 100.0, "p99 {}", h.p99);
}

#[test]
fn engine_profiling_counters_populate() {
    let mut sim = Engine::with_seed(7);
    sim.spawn_process("a", |p| async move {
        for _ in 0..10 {
            p.sleep(SimDuration::from_millis(1)).await;
        }
    });
    sim.spawn_process("b", |p| async move { p.sleep(SimDuration::from_millis(5)).await });
    let stats = sim.run();
    assert!(stats.events > 0);
    assert!(stats.peak_queue_depth >= 1);
    assert!(stats.mean_queue_depth() >= 1.0);
    // Two processes resumed at least once each, plus per-sleep wakes.
    assert!(stats.context_switches >= stats.processes_spawned);
    assert!(stats.wall_nanos > 0, "wall clock must be measured");
    // Determinism: equality ignores wall_nanos.
    let mut sim2 = Engine::with_seed(7);
    sim2.spawn_process("a", |p| async move {
        for _ in 0..10 {
            p.sleep(SimDuration::from_millis(1)).await;
        }
    });
    sim2.spawn_process("b", |p| async move { p.sleep(SimDuration::from_millis(5)).await });
    let stats2 = sim2.run();
    assert_eq!(stats, stats2, "profiling fields (minus wall time) are deterministic");
}
