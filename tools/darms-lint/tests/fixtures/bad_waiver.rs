// Fixture: a waiver without a reason is itself a finding, and it
// suppresses nothing.

use std::collections::HashMap;

pub fn keys_of(m: &HashMap<u32, u64>) -> Vec<u32> {
    // darms-lint: allow(unordered-iter)
    m.keys().copied().collect()
}
