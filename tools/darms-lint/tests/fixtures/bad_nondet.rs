// Fixture: nondeterminism sources outside the allowlist.

pub fn elapsed_ms() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_millis()
}

pub fn width() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}
