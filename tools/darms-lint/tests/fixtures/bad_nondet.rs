// Fixture: nondeterminism sources outside the allowlist.

pub fn elapsed_ms() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_millis()
}

pub fn width() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}
