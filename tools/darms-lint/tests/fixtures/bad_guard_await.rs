// Fixture: guards held live across await points.

pub struct State;

async fn step() {}
async fn refresh() {}

pub async fn named_guard(m: &std::sync::Mutex<u32>) {
    let g = m.lock();
    step().await;
    drop(g);
}

pub async fn chained_guard(st: &std::sync::Mutex<State>) {
    st.lock().refresh().await;
}
