// Fixture: `RefCell` borrows of the shared kernel held across await
// points — the exact hazard of the kernel fast path, where processes
// and the executor share one `Rc<RefCell<Kernel>>` and any borrow
// still live when a future parks panics on re-entry.

use std::cell::RefCell;
use std::rc::Rc;

pub struct Kernel {
    pub now: u64,
}

async fn park() {}

pub async fn named_borrow_across_park(kernel: Rc<RefCell<Kernel>>) -> u64 {
    let k = kernel.borrow_mut();
    park().await;
    k.now
}

pub async fn shared_read_across_park(kernel: Rc<RefCell<Kernel>>) -> u64 {
    let k = kernel.borrow();
    park().await;
    k.now
}

pub async fn chained_borrow_temporary(timers: Rc<RefCell<Vec<u64>>>) {
    timers.borrow_mut().sort_future().await;
}

pub async fn released_before_park_is_fine(kernel: Rc<RefCell<Kernel>>) -> u64 {
    let now = {
        let k = kernel.borrow();
        k.now
    };
    park().await;
    now
}
