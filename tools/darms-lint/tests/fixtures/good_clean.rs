// Fixture: the deterministic shape of the same code — BTree containers
// iterate in key order, so nothing here depends on a hasher seed.

use std::collections::BTreeMap;

pub struct Registry {
    entries: BTreeMap<u64, String>,
}

impl Registry {
    pub fn names(&self) -> Vec<String> {
        self.entries.values().cloned().collect()
    }

    pub fn drop_even(&mut self) {
        self.entries.retain(|k, _| k % 2 == 1);
    }
}
