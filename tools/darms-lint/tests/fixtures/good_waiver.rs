// Fixture: an order-independent reduction over a hash container,
// waived with a reason.

use std::collections::HashMap;

pub fn total(counts: &HashMap<u32, u64>) -> u64 {
    // darms-lint: allow(unordered-iter, reason = "sum is order-independent")
    counts.values().sum()
}
