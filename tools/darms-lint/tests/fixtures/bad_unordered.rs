// Fixture: iteration over hash containers in a trace-affecting scope.

use std::collections::HashMap;

pub struct Registry {
    entries: HashMap<u64, String>,
}

impl Registry {
    pub fn names(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (_, name) in self.entries.iter() {
            out.push(name.clone());
        }
        out
    }

    pub fn drop_even(&mut self) {
        self.entries.retain(|k, _| k % 2 == 1);
    }
}
