// Fixture: protocol enum with unhandled variants and a wildcard dispatch.

pub enum WireMsg {
    Ping,
    Pong,
    Data(u32),
}

pub fn handle(m: WireMsg) -> u32 {
    match m {
        WireMsg::Ping => 1,
        _ => 0,
    }
}
