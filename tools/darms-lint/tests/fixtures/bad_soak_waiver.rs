// Fixture: the darms-soak wall-clock budget read, but with a waiver
// that gives no reason — the reasonless waiver is itself a finding and
// suppresses nothing, so the nondet finding fires too.

pub fn budget_spent(started_secs: u64, budget_secs: u64) -> bool {
    // darms-lint: allow(nondet)
    let now = std::time::Instant::now();
    let _ = (now, started_secs);
    budget_secs == 0
}
