//! Snapshot tests for the lint rules: each known-bad fixture must
//! produce exactly the findings pinned in its `.expected.json`, and the
//! known-good fixtures must come back clean.

use std::fs;
use std::path::PathBuf;

use darms_lint::{findings_to_json, Config, ProtoEnum};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures")
}

/// Lint one fixture file in isolation. The fixture directory is the
/// config root, every file is trace-affecting, and nothing is on the
/// nondet allowlist; `proto` registers the fixture's `WireMsg` enum.
fn lint_fixture(file: &str, proto: bool) -> String {
    let cfg = Config {
        root: fixtures_root(),
        scan_dirs: vec![file.to_string()],
        exclude: Vec::new(),
        nondet_allow_files: Vec::new(),
        trace_affecting: vec![String::new()],
        proto_enums: if proto {
            vec![ProtoEnum { file: file.to_string(), name: "WireMsg".to_string() }]
        } else {
            Vec::new()
        },
    };
    let report = darms_lint::run(&cfg).expect("fixture lint run");
    assert_eq!(report.files_scanned, 1, "fixture {file} not found");
    findings_to_json(&report.findings)
}

fn assert_snapshot(file: &str, proto: bool) {
    let actual = lint_fixture(file, proto);
    let expected_path =
        fixtures_root().join(format!("{}.expected.json", file.trim_end_matches(".rs")));
    let expected = fs::read_to_string(&expected_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", expected_path.display()));
    assert_eq!(actual.trim(), expected.trim(), "findings for {file} diverged from its snapshot");
}

#[test]
fn bad_nondet_matches_snapshot() {
    assert_snapshot("bad_nondet.rs", false);
}

#[test]
fn bad_unordered_matches_snapshot() {
    assert_snapshot("bad_unordered.rs", false);
}

#[test]
fn bad_guard_await_matches_snapshot() {
    assert_snapshot("bad_guard_await.rs", false);
}

/// Pins detection in the kernel-fast-path shape: `RefCell` borrows of
/// the shared kernel (`Rc<RefCell<Kernel>>`) live across a park point.
#[test]
fn bad_guard_kernel_matches_snapshot() {
    assert_snapshot("bad_guard_kernel.rs", false);
}

#[test]
fn bad_proto_matches_snapshot() {
    assert_snapshot("bad_proto.rs", true);
}

#[test]
fn bad_waiver_matches_snapshot() {
    assert_snapshot("bad_waiver.rs", false);
}

/// The soak binary's wall-clock budget read is only acceptable behind a
/// waiver *with a reason*; stripped of the reason, both the waiver and
/// the underlying nondet read must be flagged.
#[test]
fn bad_soak_waiver_matches_snapshot() {
    assert_snapshot("bad_soak_waiver.rs", false);
}

#[test]
fn good_fixtures_are_clean() {
    for file in ["good_clean.rs", "good_waiver.rs"] {
        let json = lint_fixture(file, false);
        assert_eq!(json, "[\n]", "{file} should lint clean, got: {json}");
    }
}

#[test]
fn good_waiver_is_recorded() {
    let cfg = Config {
        root: fixtures_root(),
        scan_dirs: vec!["good_waiver.rs".to_string()],
        exclude: Vec::new(),
        nondet_allow_files: Vec::new(),
        trace_affecting: vec![String::new()],
        proto_enums: Vec::new(),
    };
    let report = darms_lint::run(&cfg).expect("fixture lint run");
    assert_eq!(report.waivers.len(), 1);
    assert_eq!(report.waivers[0].rule, "unordered-iter");
    assert!(!report.waivers[0].reason.is_empty());
}
