//! Workspace regression gate: the repository must lint clean.
//!
//! Runs the full `darms-lint` pass programmatically over the workspace
//! and asserts (a) zero findings, and (b) every waiver in the tree
//! carries a non-empty reason. A finding here means a nondeterminism
//! source, an unordered-container iteration, a guard held across an
//! `.await`, or a protocol-dispatch hole slipped in — fix the site or
//! waive it with a reason, per DESIGN.md §12.

use std::path::Path;

use darms_lint::Config;

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    assert!(root.join("Cargo.toml").is_file(), "bad workspace root {}", root.display());
    let report = darms_lint::run(&Config::workspace(root)).expect("lint run");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — scan dirs misconfigured?",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
        .collect();
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean, found {} finding(s):\n{}",
        report.findings.len(),
        rendered.join("\n")
    );
    for w in &report.waivers {
        assert!(
            !w.reason.trim().is_empty(),
            "waiver at {}:{} for `{}` has an empty reason",
            w.file,
            w.line,
            w.rule
        );
    }
    // The waivers this PR introduced must still be visible to the scan.
    assert!(!report.waivers.is_empty(), "expected at least one recorded waiver in the tree");
}
