//! Diagnostics and their JSON rendering.
//!
//! The JSON form is hand-rolled (no serde in the hermetic build): one
//! finding per line, keys in a fixed order, findings sorted by
//! (file, line, rule, message) so output is stable for snapshotting.

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier, e.g. `nondet`, `unordered-iter`.
    pub rule: String,
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        file: impl Into<String>,
        line: u32,
        rule: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic { file: file.into(), line, rule: rule.into(), message: message.into() }
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a stable JSON array (sorted, one object per line).
pub fn findings_to_json(findings: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = findings.iter().collect();
    sorted.sort();
    let mut out = String::from("[\n");
    for (i, d) in sorted.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}{}\n",
            json_escape(&d.file),
            d.line,
            json_escape(&d.rule),
            json_escape(&d.message),
            if i + 1 < sorted.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_json() {
        let d = vec![
            Diagnostic::new("b.rs", 2, "nondet", "x"),
            Diagnostic::new("a.rs", 9, "nondet", "quote \" here"),
        ];
        let j = findings_to_json(&d);
        assert!(j.starts_with("[\n  {\"file\":\"a.rs\""));
        assert!(j.contains("quote \\\" here"));
        assert!(j.ends_with(']'));
    }
}
