//! CLI for darms-lint.
//!
//! ```text
//! darms-lint [--deny] [--json] [--root <path>]   # the four lint rules
//! darms-lint deny [--json] [--root <path>]       # license/duplicate audit
//! ```
//!
//! Exit code 2 when `--deny` is set (or for the `deny` subcommand) and
//! findings exist; 0 otherwise.

use std::path::PathBuf;
use std::process::ExitCode;

use darms_lint::{deny, diag, Config};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let audit = args.first().is_some_and(|a| a == "deny");
    let rest = if audit { &args[1..] } else { &args[..] };

    let mut json = false;
    let mut strict = audit; // the audit subcommand always gates
    let mut root: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--deny" => strict = true,
            "--root" => root = it.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!("usage: darms-lint [deny] [--deny] [--json] [--root <path>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("darms-lint: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let cwd = std::env::current_dir().expect("cwd");
    let root = root
        .or_else(|| darms_lint::find_workspace_root(&cwd))
        .expect("could not locate workspace root (no Cargo.toml with [workspace])");

    let (findings, scanned) = if audit {
        (deny::check(&root), 0)
    } else {
        let report = darms_lint::run(&Config::workspace(root)).expect("lint run failed");
        (report.findings, report.files_scanned)
    };

    if json {
        println!("{}", diag::findings_to_json(&findings));
    } else {
        for d in &findings {
            println!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
        }
        if audit {
            println!("darms-lint deny: {} finding(s)", findings.len());
        } else {
            println!("darms-lint: {} finding(s) across {scanned} files", findings.len());
        }
    }

    if strict && !findings.is_empty() {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
