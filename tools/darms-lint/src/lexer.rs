//! A minimal Rust lexer: just enough fidelity for token-level lint rules.
//!
//! The build environment is hermetic (no crates.io), so `syn` is not
//! available; instead we tokenise source text by hand. The lexer
//! understands comments (kept separately — waivers live there), string
//! and raw-string literals, char vs. lifetime disambiguation, numbers,
//! identifiers and punctuation. The multi-character operators `::`,
//! `=>` and `->` are fused into single tokens because the rules match
//! on paths and match arms; everything else stays single-character.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Punct,
    Literal,
    Lifetime,
}

/// A source token with its 1-based line number.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A comment (line or block) with the line it starts on. Waiver
/// annotations are parsed out of these.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenise `src`, returning the token stream and the comments.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let push = |toks: &mut Vec<Token>, kind, text: String, line| {
        toks.push(Token { kind, text, line });
    };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            comments.push(Comment { line, text: chars[start..i].iter().collect() });
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 0usize;
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            comments.push(Comment { line: start_line, text: chars[start..i].iter().collect() });
            continue;
        }
        // Raw / byte string prefixes: r", r#", br", b", rb is not a thing.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let mut j = i;
            let mut saw_r = false;
            if chars[j] == 'b' {
                j += 1;
            }
            if j < n && chars[j] == 'r' {
                saw_r = true;
                j += 1;
            }
            let mut hashes = 0usize;
            while saw_r && j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && chars[j] == '"' && (saw_r || chars[i] == 'b') {
                // Raw or byte string literal.
                let start_line = line;
                j += 1;
                if saw_r {
                    // Scan for `"` followed by `hashes` hash marks.
                    loop {
                        if j >= n {
                            break;
                        }
                        if chars[j] == '\n' {
                            line += 1;
                        }
                        if chars[j] == '"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break;
                            }
                        }
                        j += 1;
                    }
                } else {
                    // b"..." with escapes.
                    while j < n {
                        match chars[j] {
                            '\\' => j += 2,
                            '"' => {
                                j += 1;
                                break;
                            }
                            ch => {
                                if ch == '\n' {
                                    line += 1;
                                }
                                j += 1;
                            }
                        }
                    }
                }
                push(&mut toks, TokKind::Literal, String::from("\"raw\""), start_line);
                i = j;
                continue;
            }
            if chars[i] == 'b' && i + 1 < n && chars[i + 1] == '\'' {
                // Byte char literal b'x'.
                let start_line = line;
                let mut j = i + 2;
                while j < n {
                    match chars[j] {
                        '\\' => j += 2,
                        '\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                push(&mut toks, TokKind::Literal, String::from("b'?'"), start_line);
                i = j;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        // String literal. Content is collapsed to `"str"` — except
        // host-state paths (`/proc/...`), which the nondet rule needs
        // to see verbatim.
        if c == '"' {
            let start_line = line;
            let start = i + 1;
            let mut j = start;
            while j < n {
                match chars[j] {
                    '\\' => j += 2,
                    '"' => break,
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
            }
            let content: String = chars[start..j.min(n)].iter().collect();
            // darms-lint: allow(nondet, reason = "the detector's own pattern string, not a host read")
            let text = if content.contains("/proc/") {
                format!("\"{content}\"")
            } else {
                String::from("\"str\"")
            };
            push(&mut toks, TokKind::Literal, text, start_line);
            i = (j + 1).min(n);
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(ch) if is_ident_start(ch) => chars.get(i + 2) == Some(&'\''),
                Some(_) => true,
                None => true,
            };
            if is_char {
                let mut j = i + 1;
                while j < n {
                    match chars[j] {
                        '\\' => j += 2,
                        '\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                push(&mut toks, TokKind::Literal, String::from("'?'"), line);
                i = j;
                continue;
            }
            // Lifetime: 'ident
            let mut j = i + 1;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            push(&mut toks, TokKind::Lifetime, chars[i..j].iter().collect(), line);
            i = j;
            continue;
        }
        // Identifier or keyword (incl. raw idents r#name, caught above
        // only when followed by a quote).
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            push(&mut toks, TokKind::Ident, chars[i..j].iter().collect(), line);
            i = j;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n {
                let ch = chars[j];
                if ch.is_alphanumeric() || ch == '_' {
                    j += 1;
                } else if ch == '.'
                    && chars.get(j + 1).is_some_and(|d| d.is_ascii_digit())
                    && chars.get(j.wrapping_sub(1)).is_some_and(|d| d.is_ascii_digit())
                {
                    // Decimal point, not a range (`0..n`) or method call.
                    j += 1;
                } else {
                    break;
                }
            }
            push(&mut toks, TokKind::Literal, chars[i..j].iter().collect(), line);
            i = j;
            continue;
        }
        // Punctuation; fuse `::`, `=>`, `->`.
        let two: String = chars[i..n.min(i + 2)].iter().collect();
        if two == "::" || two == "=>" || two == "->" {
            push(&mut toks, TokKind::Punct, two, line);
            i += 2;
            continue;
        }
        push(&mut toks, TokKind::Punct, c.to_string(), line);
        i += 1;
    }

    (toks, comments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let (t, c) = lex("let x = a::b.now(); // hi");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "a", "::", "b", ".", "now", "(", ")", ";"]);
        assert_eq!(c.len(), 1);
        assert!(c[0].text.contains("hi"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let (t, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }");
        let lifetimes: Vec<&str> =
            t.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.as_str()).collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let lits = t.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn raw_strings_and_lines() {
        let (t, _) = lex("let s = r#\"a \" b\"#;\nlet u = 1;");
        let one = t.iter().find(|t| t.text == "u").unwrap();
        assert_eq!(one.line, 2);
    }

    #[test]
    fn block_comment_lines() {
        let (t, c) = lex("/* a\nb */ fn g() {}");
        assert_eq!(c.len(), 1);
        assert_eq!(t[0].text, "fn");
        assert_eq!(t[0].line, 2);
    }
}
