//! Waiver annotations: `// darms-lint: allow(<rule>, reason = "...")`.
//!
//! A waiver suppresses findings of the named rule on the waiver's own
//! line (trailing comment) or on the next line that holds any source
//! token. The `reason` is mandatory and must be non-empty; a malformed
//! waiver is itself a finding (rule `waiver`) and suppresses nothing.

use crate::diag::Diagnostic;
use crate::FileData;

/// Rules that may be waived.
pub const KNOWN_RULES: &[&str] =
    &["nondet", "unordered-iter", "guard-across-await", "proto-unhandled", "proto-wildcard"];

#[derive(Debug, Clone)]
pub struct Waiver {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub reason: String,
}

/// Parse the waivers in one file. Malformed waivers come back as
/// diagnostics instead.
pub fn parse(file: &FileData) -> (Vec<Waiver>, Vec<Diagnostic>) {
    let mut waivers = Vec::new();
    let mut diags = Vec::new();
    for c in &file.comments {
        // Waivers live in plain comments only; doc comments (`///`,
        // `//!`, `/**`, `/*!`) merely *talk about* the syntax.
        let body = c.text.trim_start_matches('/').trim_start_matches('*');
        if body.starts_with('!') || c.text.starts_with("///") || c.text.starts_with("/**") {
            continue;
        }
        let Some(pos) = c.text.find("darms-lint:") else { continue };
        let rest = c.text[pos + "darms-lint:".len()..].trim();
        let bad = |msg: &str| Diagnostic::new(&file.rel, c.line, "waiver", msg.to_string());
        let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.rfind(')').map(|e| &r[..e]))
        else {
            diags.push(bad("malformed waiver: expected `allow(<rule>, reason = \"...\")`"));
            continue;
        };
        let (rule, reason_part) = match inner.split_once(',') {
            Some((r, rest)) => (r.trim(), Some(rest.trim())),
            None => (inner.trim(), None),
        };
        if !KNOWN_RULES.contains(&rule) {
            diags.push(bad(&format!(
                "waiver names unknown rule `{rule}` (known: {})",
                KNOWN_RULES.join(", ")
            )));
            continue;
        }
        let reason = reason_part
            .and_then(|r| r.strip_prefix("reason"))
            .map(|r| r.trim_start())
            .and_then(|r| r.strip_prefix('='))
            .map(|r| r.trim())
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.strip_suffix('"'))
            .map(|r| r.trim().to_string());
        match reason {
            Some(r) if !r.is_empty() => {
                waivers.push(Waiver {
                    file: file.rel.clone(),
                    line: c.line,
                    rule: rule.to_string(),
                    reason: r,
                });
            }
            _ => diags.push(bad(&format!(
                "waiver for `{rule}` is missing a non-empty `reason = \"...\"`"
            ))),
        }
    }
    (waivers, diags)
}

/// The lines a waiver at `line` covers: its own line plus the next line
/// holding any source token.
fn covered_lines(file: &FileData, line: u32) -> (u32, u32) {
    let next = file.tokens.iter().map(|t| t.line).filter(|&l| l > line).min().unwrap_or(line);
    (line, next)
}

/// Drop findings covered by a waiver. `waiver`-rule findings are never
/// suppressed.
pub fn apply(findings: Vec<Diagnostic>, waivers: &[Waiver], files: &[FileData]) -> Vec<Diagnostic> {
    findings
        .into_iter()
        .filter(|d| {
            if d.rule == "waiver" {
                return true;
            }
            !waivers.iter().any(|w| {
                if w.file != d.file || w.rule != d.rule {
                    return false;
                }
                let Some(f) = files.iter().find(|f| f.rel == w.file) else { return false };
                let (a, b) = covered_lines(f, w.line);
                d.line == a || d.line == b
            })
        })
        .collect()
}
