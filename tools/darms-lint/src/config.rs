//! Lint configuration: what to scan, what is exempt, and where the
//! protocol enums live.

use std::path::PathBuf;

/// A protocol message enum to check for exhaustive handling.
#[derive(Debug, Clone)]
pub struct ProtoEnum {
    /// Workspace-relative file declaring the enum.
    pub file: String,
    /// Enum name.
    pub name: String,
}

#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root.
    pub root: PathBuf,
    /// Directories (or files), relative to `root`, to scan for `.rs` sources.
    pub scan_dirs: Vec<String>,
    /// Relative path prefixes excluded from the scan. `vendor/` is outside
    /// the determinism boundary (std-backed shims, not simulation logic)
    /// and the lint's own test fixtures are known-bad on purpose.
    pub exclude: Vec<String>,
    /// Files allowed to use wall-clock / threads / entropy: the sweep
    /// runner (real OS thread pool whose *output order* is made
    /// deterministic by index-ordered collection) and the perf-report
    /// harness (its entire job is measuring wall time).
    pub nondet_allow_files: Vec<String>,
    /// Path prefixes of trace-affecting crates: iteration order of
    /// unordered containers here can leak into traces. Each prefix is
    /// also the binding-collection scope for the unordered-iter rule.
    pub trace_affecting: Vec<String>,
    /// Protocol message enums whose variants must each have a
    /// non-wildcard match arm somewhere in the workspace.
    pub proto_enums: Vec<ProtoEnum>,
}

impl Config {
    /// The standard configuration for this workspace.
    pub fn workspace(root: PathBuf) -> Config {
        let pe = |file: &str, name: &str| ProtoEnum { file: file.into(), name: name.into() };
        Config {
            root,
            scan_dirs: ["crates", "src", "tests", "examples", "tools"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            exclude: ["vendor", "target", "tools/darms-lint/tests/fixtures"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            nondet_allow_files: [
                "crates/experiments/src/runner.rs",
                "crates/experiments/src/bin/perf_report.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            trace_affecting: [
                "crates/sim/src",
                "crates/net/src",
                "crates/rms/src",
                "crates/sched/src",
                "crates/dac/src",
                "crates/mpi/src",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            proto_enums: vec![
                pe("crates/rms/src/proto.rs", "DynResource"),
                pe("crates/rms/src/proto.rs", "DynReject"),
                pe("crates/dac/src/runtime.rs", "ReqBody"),
                pe("crates/dac/src/runtime.rs", "RepBody"),
                pe("crates/dac/src/frontend.rs", "RepBodyOwned"),
                pe("crates/dac/src/collective.rs", "CollBody"),
                pe("crates/mpi/src/runtime.rs", "CtlBody"),
            ],
        }
    }
}
