//! darms-lint: workspace determinism & protocol static analysis.
//!
//! Four rule families (see DESIGN.md §12):
//!
//! - `nondet` — wall-clock, ambient RNG, OS threads, parallelism
//!   probes outside the explicit allowlist;
//! - `unordered-iter` — iteration over `HashMap`/`HashSet` bindings in
//!   trace-affecting crates;
//! - `guard-across-await` — `Mutex` guards / `RefCell` borrows held
//!   across `.await`;
//! - `proto-unhandled` / `proto-wildcard` — protocol message enums
//!   with unhandled variants, and wildcard arms in protocol dispatches.
//!
//! Sites can be waived with
//! `// darms-lint: allow(<rule>, reason = "...")`; a waiver without a
//! non-empty reason is itself a finding (rule `waiver`).

use std::fs;
use std::path::{Path, PathBuf};

pub mod config;
pub mod deny;
pub mod diag;
pub mod lexer;
pub mod waiver;
pub mod rules {
    pub mod guard;
    pub mod nondet;
    pub mod protocol;
    pub mod unordered;
}

pub use config::{Config, ProtoEnum};
pub use diag::{findings_to_json, Diagnostic};
pub use waiver::Waiver;

/// A lexed source file.
pub struct FileData {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    pub tokens: Vec<lexer::Token>,
    pub comments: Vec<lexer::Comment>,
}

/// The result of a lint run.
pub struct LintReport {
    pub findings: Vec<Diagnostic>,
    /// All well-formed waivers seen (applied or not).
    pub waivers: Vec<Waiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn collect_files(cfg: &Config) -> std::io::Result<Vec<FileData>> {
    let mut paths = Vec::new();
    for d in &cfg.scan_dirs {
        let p = cfg.root.join(d);
        if p.is_file() {
            paths.push(p);
        } else {
            walk(&p, &mut paths);
        }
    }
    paths.sort();
    paths.dedup();
    let mut files = Vec::new();
    for p in paths {
        let rel = p.strip_prefix(&cfg.root).unwrap_or(&p).to_string_lossy().replace('\\', "/");
        if cfg.exclude.iter().any(|e| rel.starts_with(e.as_str())) {
            continue;
        }
        let src = fs::read_to_string(&p)?;
        let (tokens, comments) = lexer::lex(&src);
        files.push(FileData { rel, tokens, comments });
    }
    Ok(files)
}

/// Run the full lint over `cfg`.
pub fn run(cfg: &Config) -> std::io::Result<LintReport> {
    let files = collect_files(cfg)?;
    let mut findings = Vec::new();
    let mut waivers = Vec::new();
    for f in &files {
        let (ws, diags) = waiver::parse(f);
        waivers.extend(ws);
        findings.extend(diags);
    }
    findings.extend(rules::nondet::check(cfg, &files));
    findings.extend(rules::unordered::check(cfg, &files));
    findings.extend(rules::guard::check(&files));
    findings.extend(rules::protocol::check(cfg, &files));
    let mut findings = waiver::apply(findings, &waivers, &files);
    findings.sort();
    findings.dedup();
    Ok(LintReport { findings, waivers, files_scanned: files.len() })
}

/// Locate the workspace root: walk up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        cur = dir.parent().map(|p| p.to_path_buf());
    }
    None
}
