//! Rule `unordered-iter`: iteration over `HashMap`/`HashSet` bindings
//! in trace-affecting crates.
//!
//! `std` hash containers iterate in a per-instance random order
//! (`RandomState`), so any iteration whose effects can reach the event
//! stream makes the trace a function of the hasher seed instead of the
//! simulation seed. Within each trace-affecting scope we collect every
//! binding (struct field, `let`, parameter) whose type or initialiser
//! names `HashMap`/`HashSet`, then flag `for` loops and ordering-
//! sensitive method calls (`iter`, `keys`, `values`, `drain`, `retain`,
//! ...) on those bindings.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{TokKind, Token};
use crate::FileData;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that observe or mutate in iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Tokens we walk back over between a binding name and the `HashMap`
/// ident in its type (e.g. `x: Arc<Mutex<HashMap<..>>>`).
fn is_type_filler(t: &Token) -> bool {
    match t.kind {
        TokKind::Ident => t.text != "use",
        TokKind::Lifetime => true,
        TokKind::Punct => matches!(t.text.as_str(), "<" | "&" | "::"),
        _ => false,
    }
}

/// Collect the names of hash-container bindings in `files`.
fn collect_bindings(files: &[&FileData]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for f in files {
        let toks = &f.tokens;
        for i in 0..toks.len() {
            if toks[i].kind != TokKind::Ident || !HASH_TYPES.contains(&toks[i].text.as_str()) {
                continue;
            }
            // Route 1: type position — `name: ... HashMap ...`.
            let mut j = i;
            while j > 0 && is_type_filler(&toks[j - 1]) {
                j -= 1;
            }
            if j >= 2 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokKind::Ident {
                names.insert(toks[j - 2].text.clone());
                continue;
            }
            // Route 2: initialiser — `let [mut] name [...] = HashMap::new()`.
            let ctor = i + 2 < toks.len()
                && toks[i + 1].is_punct("::")
                && matches!(toks[i + 2].text.as_str(), "new" | "with_capacity" | "default");
            if !ctor {
                continue;
            }
            let mut k = i;
            let mut found_let = None;
            while k > 0 {
                k -= 1;
                let t = &toks[k];
                if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
                    break;
                }
                if t.is_ident("let") {
                    found_let = Some(k);
                    break;
                }
            }
            let Some(l) = found_let else { continue };
            let mut p = l + 1;
            if toks[p].is_ident("mut") {
                p += 1;
            }
            if toks[p].kind == TokKind::Ident {
                names.insert(toks[p].text.clone());
            } else if toks[p].is_punct("(") {
                // Tuple pattern: `let (a, mut b) = (...)`.
                let mut q = p + 1;
                while q < toks.len() && !toks[q].is_punct(")") {
                    if toks[q].kind == TokKind::Ident && toks[q].text != "mut" {
                        names.insert(toks[q].text.clone());
                    }
                    q += 1;
                }
            }
        }
    }
    names
}

/// The identifier at the base of the method-call chain ending just
/// before the `.` at `dot`: for `self.inner.lock().retain(..)` with
/// `dot` on the `.retain` dot, that is `inner` (walking back over the
/// `.lock()` call segment).
fn chain_receiver(toks: &[Token], dot: usize) -> Option<usize> {
    let mut k = dot as i64 - 1;
    while k >= 0 {
        let t = &toks[k as usize];
        if t.kind == TokKind::Ident {
            return Some(k as usize);
        }
        if !t.is_punct(")") {
            return None;
        }
        // Skip the balanced argument list, then expect `.method`.
        let mut nest = 0i64;
        while k >= 0 {
            let u = &toks[k as usize];
            if u.is_punct(")") {
                nest += 1;
            } else if u.is_punct("(") {
                nest -= 1;
                if nest == 0 {
                    break;
                }
            }
            k -= 1;
        }
        k -= 1;
        if k < 0 || toks[k as usize].kind != TokKind::Ident {
            return None;
        }
        k -= 1;
        if k < 0 || !toks[k as usize].is_punct(".") {
            return None;
        }
        k -= 1;
    }
    None
}

/// Flag iteration sites over `names` in one file.
fn flag_file(f: &FileData, names: &BTreeSet<String>, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    // Ordering-sensitive method calls.
    for i in 0..toks.len() {
        if !toks[i].is_punct(".") {
            continue;
        }
        let (Some(m), Some(paren)) = (toks.get(i + 1), toks.get(i + 2)) else { continue };
        if m.kind != TokKind::Ident
            || !ITER_METHODS.contains(&m.text.as_str())
            || !paren.is_punct("(")
        {
            continue;
        }
        if let Some(recv) = chain_receiver(toks, i) {
            if names.contains(&toks[recv].text) {
                out.push(Diagnostic::new(
                    &f.rel,
                    toks[recv].line,
                    "unordered-iter",
                    format!(
                        "`{}.{}()` iterates a hash container in unspecified order",
                        toks[recv].text, m.text
                    ),
                ));
            }
        }
    }
    // `for <pat> in <expr> {` loops.
    for i in 0..toks.len() {
        if !toks[i].is_ident("for") {
            continue;
        }
        // Skip `for<'a>` (HRTB); `impl X for Y` has no `in` before `{`.
        if toks.get(i + 1).is_some_and(|t| t.is_punct("<")) {
            continue;
        }
        // Find `in` at nesting depth 0, then the body `{` at depth 0.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut in_ix = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_ident("in") && in_ix.is_none() {
                in_ix = Some(j);
            } else if depth == 0 && t.is_punct("{") {
                break;
            }
            j += 1;
        }
        let Some(start) = in_ix else { continue };
        for k in start + 1..j {
            let t = &toks[k];
            if t.kind != TokKind::Ident || !names.contains(&t.text) {
                continue;
            }
            // `map.len()`-style uses inside the expression are not
            // iterations of the map itself; direct uses and
            // `.iter()`-family chains are.
            let flagged = match toks.get(k + 1) {
                Some(dot) if dot.is_punct(".") => {
                    toks.get(k + 2).is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
                }
                _ => true,
            };
            if flagged {
                out.push(Diagnostic::new(
                    &f.rel,
                    t.line,
                    "unordered-iter",
                    format!("`for` loop over hash container `{}`", t.text),
                ));
            }
        }
    }
}

pub fn check(cfg: &Config, files: &[FileData]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for scope in &cfg.trace_affecting {
        let in_scope: Vec<&FileData> =
            files.iter().filter(|f| f.rel.starts_with(scope.as_str())).collect();
        if in_scope.is_empty() {
            continue;
        }
        let names = collect_bindings(&in_scope);
        if names.is_empty() {
            continue;
        }
        for f in &in_scope {
            flag_file(f, &names, &mut out);
        }
    }
    // A file can fall under several scopes (or be flagged twice by the
    // `for`-loop and method scans); dedup by (file, line, rule).
    out.sort();
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    out
}
