//! Rule `guard-across-await`: `Mutex` guards / `RefCell` borrows held
//! live across an `.await`.
//!
//! The runtime is a single-threaded cooperative executor over
//! `Rc<Mutex<Kernel>>`; a guard held across an await point deadlocks
//! the kernel (or panics a `RefCell`) the moment the executor re-enters
//! it. Two shapes are detected:
//!
//! 1. `let g = x.lock(); ... .await` — a named guard live (not
//!    dropped, block not closed) when an `.await` runs;
//! 2. `x.lock().f().await` — a guard temporary kept alive to the end
//!    of the await expression by the method chain itself.
//!
//! Heuristic, not type-driven: it keys on the method names `lock`,
//! `borrow`, `borrow_mut`. Closures that take and release a guard
//! before the enclosing future is awaited (the `poll_fn` idiom) are
//! not flagged, because the chain walk does not descend into call
//! arguments.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::FileData;

const GUARD_METHODS: &[&str] = &["lock", "borrow", "borrow_mut"];

struct Guard {
    name: String,
    depth: i32,
    line: u32,
}

pub fn check(files: &[FileData]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        check_named_guards(f, &mut out);
        check_chains(f, &mut out);
    }
    out
}

/// Shape 1: named guards.
fn check_named_guards(f: &FileData, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    let mut depth = 0i32;
    let mut guards: Vec<Guard> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
        } else if t.is_ident("let") {
            if let Some((name, end)) = parse_guard_let(f, i) {
                guards.push(Guard { name, depth, line: toks[i].line });
                i = end;
                continue;
            }
        } else if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(")"))
        {
            if let Some(name) = toks.get(i + 2) {
                guards.retain(|g| g.name != name.text);
            }
        } else if t.is_punct(".") && toks.get(i + 1).is_some_and(|t| t.is_ident("await")) {
            for g in &guards {
                out.push(Diagnostic::new(
                    &f.rel,
                    toks[i + 1].line,
                    "guard-across-await",
                    format!(
                        "guard `{}` (taken on line {}) is held across this `.await`",
                        g.name, g.line
                    ),
                ));
            }
            guards.clear();
        }
        i += 1;
    }
}

/// If the `let` at `i` binds a guard (initialiser ends in
/// `.lock()`/`.borrow()`/`.borrow_mut()`), return the bound name and
/// the index of the terminating `;`.
fn parse_guard_let(f: &FileData, i: usize) -> Option<(String, usize)> {
    let toks = &f.tokens;
    let mut p = i + 1;
    if toks.get(p)?.is_ident("mut") {
        p += 1;
    }
    if toks.get(p)?.kind != TokKind::Ident {
        return None; // tuple / struct patterns: out of scope
    }
    let name = toks[p].text.clone();
    // `let name = ...` only (no `let name: T = ...` guards in practice,
    // but accept an annotation by scanning to `=`).
    let mut q = p + 1;
    let mut nest = 0i32;
    while q < toks.len() {
        let t = &toks[q];
        if nest == 0 && t.is_punct("=") {
            break;
        }
        if t.is_punct("<") || t.is_punct("(") || t.is_punct("[") {
            nest += 1;
        } else if t.is_punct(">") || t.is_punct(")") || t.is_punct("]") {
            nest -= 1;
        }
        if t.is_punct(";") || t.is_punct("{") {
            return None;
        }
        q += 1;
    }
    // Initialiser: scan to the `;` that closes the statement.
    let mut nest = 0i32;
    let mut r = q + 1;
    while r < toks.len() {
        let t = &toks[r];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            nest += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            nest -= 1;
        } else if nest == 0 && t.is_punct(";") {
            break;
        }
        r += 1;
    }
    if r >= toks.len() {
        return None;
    }
    // Guard iff the initialiser ends `. <guard-method> ( )`.
    let is_guard = r >= 4
        && toks[r - 1].is_punct(")")
        && toks[r - 2].is_punct("(")
        && GUARD_METHODS.contains(&toks[r - 3].text.as_str())
        && toks[r - 4].is_punct(".");
    is_guard.then_some((name, r))
}

/// Shape 2: guard temporaries kept alive by the awaited method chain.
/// Walk the chain backwards from `.await`; a call segment whose method
/// is `lock`/`borrow`/`borrow_mut` means the guard lives until the
/// whole chain (including the await) finishes.
fn check_chains(f: &FileData, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if !(toks[i].is_punct(".") && toks.get(i + 1).is_some_and(|t| t.is_ident("await"))) {
            continue;
        }
        let mut k = i as i64 - 1;
        loop {
            if k < 0 {
                break;
            }
            let t = &toks[k as usize];
            if t.is_punct(")") {
                // Skip the balanced argument list.
                let mut nest = 0i64;
                while k >= 0 {
                    let u = &toks[k as usize];
                    if u.is_punct(")") {
                        nest += 1;
                    } else if u.is_punct("(") {
                        nest -= 1;
                        if nest == 0 {
                            break;
                        }
                    }
                    k -= 1;
                }
                k -= 1; // token before `(`
                if k < 0 || toks[k as usize].kind != TokKind::Ident {
                    break;
                }
                let method = &toks[k as usize];
                if GUARD_METHODS.contains(&method.text.as_str()) {
                    out.push(Diagnostic::new(
                        &f.rel,
                        toks[i + 1].line,
                        "guard-across-await",
                        format!(
                            "`.{}()` guard temporary is held across this `.await`",
                            method.text
                        ),
                    ));
                    break;
                }
                // Continue only if this was a method call (`.m(...)`),
                // not a plain function call.
                k -= 1;
                if k < 0 || !toks[k as usize].is_punct(".") {
                    break;
                }
                k -= 1;
            } else if t.kind == TokKind::Ident {
                k -= 1;
                if k < 0 || !toks[k as usize].is_punct(".") {
                    break;
                }
                k -= 1;
            } else {
                break;
            }
        }
    }
}
