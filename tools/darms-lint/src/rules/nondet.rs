//! Rule `nondet`: sources of nondeterminism.
//!
//! The simulation must be a pure function of its seed; wall-clock
//! reads, ambient RNGs, OS threads and host-dependent parallelism
//! probes all break that. Explicitly seeded RNGs (`SmallRng::seed_from_u64`)
//! are fine and not flagged.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::FileData;

/// Token-path patterns that constitute a nondeterminism source.
const PATTERNS: &[(&[&str], &str)] = &[
    (&["Instant", "::", "now"], "wall-clock read `Instant::now`"),
    (&["SystemTime", "::", "now"], "wall-clock read `SystemTime::now`"),
    (&["thread_rng"], "ambient thread-local RNG `thread_rng`"),
    (&["rand", "::", "random"], "ambient RNG `rand::random`"),
    (&["thread", "::", "spawn"], "OS thread `thread::spawn`"),
    (&["thread", "::", "Builder"], "OS thread `thread::Builder`"),
    (&["thread", "::", "scope"], "OS threads `thread::scope`"),
    (&["available_parallelism"], "host-dependent probe `available_parallelism`"),
    (&["from_entropy"], "OS-entropy-seeded RNG `from_entropy`"),
    (&["OsRng"], "OS RNG `OsRng`"),
];

pub fn check(cfg: &Config, files: &[FileData]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        if cfg.nondet_allow_files.contains(&f.rel) {
            continue;
        }
        let toks = &f.tokens;
        for i in 0..toks.len() {
            for (pat, what) in PATTERNS {
                if pat.len() > toks.len() - i {
                    continue;
                }
                let hit = pat.iter().zip(&toks[i..]).all(|(p, t)| t.text == **p);
                if !hit {
                    continue;
                }
                // Require the first element to start the path: the
                // previous token must not be `::` (e.g. `time::Instant`
                // is fine to match, but `my::thread_rng` still counts —
                // only suppress when the pattern's head is itself a
                // path *segment* of something longer we already match).
                if toks[i].kind != TokKind::Ident {
                    continue;
                }
                out.push(Diagnostic::new(
                    &f.rel,
                    toks[i].line,
                    "nondet",
                    format!("{what} outside the nondeterminism allowlist"),
                ));
            }
            // Host-state reads through `/proc`: peak RSS, CPU counts
            // and the like are host facts, not functions of the seed.
            // (The lexer preserves `/proc/...` string literals verbatim
            // for exactly this check.)
            // darms-lint: allow(nondet, reason = "the detector's own pattern string, not a host read")
            if toks[i].kind == TokKind::Literal && toks[i].text.contains("/proc/") {
                out.push(Diagnostic::new(
                    &f.rel,
                    toks[i].line,
                    "nondet",
                    format!(
                        "host-state read of {} outside the nondeterminism allowlist",
                        toks[i].text
                    ),
                ));
            }
            // Argless `Default` RNG construction: `XyzRng::default()`.
            if toks[i].kind == TokKind::Ident
                && toks[i].text.ends_with("Rng")
                && i + 2 < toks.len()
                && toks[i + 1].is_punct("::")
                && toks[i + 2].is_ident("default")
            {
                out.push(Diagnostic::new(
                    &f.rel,
                    toks[i].line,
                    "nondet",
                    format!("argless default RNG `{}::default()`", toks[i].text),
                ));
            }
        }
    }
    out
}
