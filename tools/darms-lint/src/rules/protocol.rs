//! Rules `proto-unhandled` / `proto-wildcard`: protocol exhaustiveness.
//!
//! For each configured protocol message enum we require every variant
//! to appear in at least one non-wildcard match arm somewhere in the
//! workspace (`proto-unhandled`), and we flag `_ =>` arms inside
//! protocol dispatches (`proto-wildcard`) — a wildcard there silently
//! swallows newly added message kinds.
//!
//! Mailbox *filter* matches (`match e.peek::<M>() { ... _ => false }`
//! inside `recv_where` predicates) are exempt from the wildcard rule:
//! unmatched messages stay queued for other handlers, so the wildcard
//! is the filter's semantics, not a hole.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::FileData;

struct EnumDecl {
    name: String,
    file: String,
    line: u32,
    variants: Vec<String>,
}

/// Extract `enum name { ... }` from `file`.
fn extract_enum(f: &FileData, name: &str) -> Option<EnumDecl> {
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if !(toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident(name))) {
            continue;
        }
        // Body starts at the next `{`.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct("{") {
            j += 1;
        }
        let mut variants = Vec::new();
        let mut depth = 0i32;
        let mut expecting = true; // at a variant-name position
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1 {
                if t.is_punct("#") {
                    // Attribute: skip `#[ ... ]`.
                    let mut nest = 0i32;
                    j += 1;
                    while j < toks.len() {
                        if toks[j].is_punct("[") {
                            nest += 1;
                        } else if toks[j].is_punct("]") {
                            nest -= 1;
                            if nest == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                } else if expecting && t.kind == TokKind::Ident {
                    variants.push(t.text.clone());
                    expecting = false;
                } else if t.is_punct(",") {
                    expecting = true;
                }
            }
            j += 1;
        }
        return Some(EnumDecl {
            name: name.to_string(),
            file: f.rel.clone(),
            line: toks[i].line,
            variants,
        });
    }
    None
}

/// One parsed match arm: the `A::B` path pairs in its pattern, whether
/// the pattern is a bare `_`, and the line of its first token.
struct Arm {
    pairs: Vec<(String, String)>,
    is_bare_wildcard: bool,
    line: u32,
}

struct MatchExpr {
    file: String,
    scrutinee_has_peek: bool,
    arms: Vec<Arm>,
}

/// Parse every `match` expression in `f` (token-level, best effort).
fn parse_matches(f: &FileData) -> Vec<MatchExpr> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("match") {
            continue;
        }
        // Scrutinee: tokens until the `{` at bracket depth 0.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut has_peek = false;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_punct("{") {
                break;
            }
            if t.is_ident("peek") || t.is_ident("try_recv_where") {
                has_peek = true;
            }
            j += 1;
        }
        if j >= toks.len() || j == i + 1 {
            continue; // `match` in e.g. a comment-free macro position
        }
        // Arms: between this `{` and its matching `}`.
        let body_start = j + 1;
        let mut nest = 1i32;
        let mut k = body_start;
        let mut arms = Vec::new();
        let mut arm_start = body_start;
        while k < toks.len() && nest > 0 {
            let t = &toks[k];
            if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
                nest += 1;
            } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
                nest -= 1;
            } else if nest == 1 && t.is_punct("=>") {
                arms.push(parse_arm(f, arm_start, k));
                // Skip the arm body: a `{ ... }` block or tokens to the
                // `,` at this nesting level.
                let mut b = k + 1;
                if toks.get(b).is_some_and(|t| t.is_punct("{")) {
                    let mut bn = 0i32;
                    while b < toks.len() {
                        if toks[b].is_punct("{") {
                            bn += 1;
                        } else if toks[b].is_punct("}") {
                            bn -= 1;
                            if bn == 0 {
                                break;
                            }
                        }
                        b += 1;
                    }
                    b += 1;
                    if toks.get(b).is_some_and(|t| t.is_punct(",")) {
                        b += 1;
                    }
                } else {
                    let mut bn = 0i32;
                    while b < toks.len() {
                        let u = &toks[b];
                        if u.is_punct("{") || u.is_punct("(") || u.is_punct("[") {
                            bn += 1;
                        } else if u.is_punct(")") || u.is_punct("]") {
                            bn -= 1;
                        } else if u.is_punct("}") {
                            if bn == 0 {
                                break; // end of the match body
                            }
                            bn -= 1;
                        } else if bn == 0 && u.is_punct(",") {
                            b += 1;
                            break;
                        }
                        b += 1;
                    }
                }
                k = b;
                arm_start = k;
                continue;
            }
            k += 1;
        }
        out.push(MatchExpr { file: f.rel.clone(), scrutinee_has_peek: has_peek, arms });
    }
    out
}

fn parse_arm(f: &FileData, start: usize, end: usize) -> Arm {
    let toks = &f.tokens;
    let pat = &toks[start..end];
    let mut pairs = Vec::new();
    for w in 0..pat.len().saturating_sub(2) {
        if pat[w].kind == TokKind::Ident
            && pat[w + 1].is_punct("::")
            && pat[w + 2].kind == TokKind::Ident
        {
            pairs.push((pat[w].text.clone(), pat[w + 2].text.clone()));
        }
    }
    let is_bare_wildcard = pat.len() == 1 && pat[0].text == "_";
    let line = pat.first().map(|t| t.line).unwrap_or(0);
    Arm { pairs, is_bare_wildcard, line }
}

pub fn check(cfg: &Config, files: &[FileData]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let enums: Vec<EnumDecl> = cfg
        .proto_enums
        .iter()
        .filter_map(|pe| {
            files.iter().find(|f| f.rel == pe.file).and_then(|f| extract_enum(f, &pe.name))
        })
        .collect();
    if enums.is_empty() {
        return out;
    }
    let enum_names: BTreeSet<&str> = enums.iter().map(|e| e.name.as_str()).collect();

    let matches: Vec<MatchExpr> = files.iter().flat_map(parse_matches).collect();

    // Variant coverage: every variant needs a non-wildcard arm pattern
    // mentioning `Enum::Variant` somewhere.
    let mut covered: BTreeSet<(String, String)> = BTreeSet::new();
    for m in &matches {
        for arm in &m.arms {
            for (a, b) in &arm.pairs {
                covered.insert((a.clone(), b.clone()));
            }
        }
    }
    for e in &enums {
        for v in &e.variants {
            if !covered.contains(&(e.name.clone(), v.clone())) {
                out.push(Diagnostic::new(
                    &e.file,
                    e.line,
                    "proto-unhandled",
                    format!(
                        "protocol variant `{}::{}` has no non-wildcard match arm in any handler",
                        e.name, v
                    ),
                ));
            }
        }
    }

    // Wildcard arms inside protocol dispatches.
    for m in &matches {
        if m.scrutinee_has_peek {
            continue;
        }
        let is_dispatch =
            m.arms.iter().any(|a| a.pairs.iter().any(|(e, _)| enum_names.contains(e.as_str())));
        if !is_dispatch {
            continue;
        }
        for arm in &m.arms {
            if arm.is_bare_wildcard {
                out.push(Diagnostic::new(
                    &m.file,
                    arm.line,
                    "proto-wildcard",
                    "wildcard `_ =>` arm in a protocol dispatch swallows new message kinds",
                ));
            }
        }
    }
    out
}
