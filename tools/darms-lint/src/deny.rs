//! `darms-lint deny`: dependency audit (licenses + duplicate versions).
//!
//! The environment has no crates.io access, so the usual `cargo deny`
//! binary is unavailable; this subcommand implements the two audits the
//! workspace needs, driven by the same `deny.toml` schema subset:
//!
//! - `[licenses] allow = [...]` — every workspace member (and vendored
//!   shim) must carry an allowed license expression;
//! - `[bans] multiple-versions = "deny"` — no package name may resolve
//!   to two versions in `Cargo.lock` (with `skip = [...]` escapes);
//! - additionally, every `Cargo.lock` package must be path-local
//!   (no `source =` registry line): the build must stay hermetic.

use std::fs;
use std::path::Path;

use crate::diag::Diagnostic;

#[derive(Debug, Default)]
pub struct DenyConfig {
    pub allow_licenses: Vec<String>,
    pub deny_duplicates: bool,
    pub skip_duplicates: Vec<String>,
}

/// Parse the subset of `deny.toml` we honour.
pub fn parse_deny_toml(text: &str) -> DenyConfig {
    let mut cfg = DenyConfig::default();
    let mut section = String::new();
    let mut lines = text.lines().peekable();
    while let Some(raw) = lines.next() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            continue;
        }
        let Some((key, mut val)) =
            line.split_once('=').map(|(k, v)| (k.trim(), v.trim().to_string()))
        else {
            continue;
        };
        // Multi-line arrays: accumulate until the closing bracket.
        if val.starts_with('[') && !val.ends_with(']') {
            for cont in lines.by_ref() {
                let cont = cont.split('#').next().unwrap_or("").trim();
                val.push_str(cont);
                if cont.ends_with(']') {
                    break;
                }
            }
        }
        match (section.as_str(), key) {
            ("licenses", "allow") => cfg.allow_licenses = parse_string_array(&val),
            ("bans", "multiple-versions") => cfg.deny_duplicates = val.contains("deny"),
            ("bans", "skip") => cfg.skip_duplicates = parse_string_array(&val),
            _ => {}
        }
    }
    cfg
}

fn parse_string_array(val: &str) -> Vec<String> {
    val.trim_start_matches('[')
        .trim_end_matches(']')
        .split(',')
        .map(|s| s.trim().trim_matches('"').to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

fn toml_str_value(line: &str, key: &str) -> Option<String> {
    let rest = line.trim().strip_prefix(key)?.trim_start();
    let rest = rest.strip_prefix('=')?.trim();
    let rest = rest.strip_prefix('"')?;
    rest.split('"').next().map(|s| s.to_string())
}

/// A license expression is allowed if it matches an allow entry
/// verbatim, or if any alternative of an `A OR B` expression does.
fn license_allowed(expr: &str, allow: &[String]) -> bool {
    if allow.iter().any(|a| a == expr) {
        return true;
    }
    expr.split(" OR ").any(|alt| allow.iter().any(|a| a == alt.trim()))
}

pub fn check(root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let cfg = match fs::read_to_string(root.join("deny.toml")) {
        Ok(t) => parse_deny_toml(&t),
        Err(_) => {
            out.push(Diagnostic::new("deny.toml", 0, "deny-config", "deny.toml not found"));
            return out;
        }
    };

    // --- Cargo.lock: duplicates and non-path sources. ---
    if let Ok(lock) = fs::read_to_string(root.join("Cargo.lock")) {
        let mut pkgs: Vec<(String, String, Option<String>)> = Vec::new();
        let mut cur: Option<(Option<String>, Option<String>, Option<String>)> = None;
        for line in lock.lines().chain(std::iter::once("[[package]]")) {
            if line.trim() == "[[package]]" {
                if let Some((Some(n), Some(v), s)) = cur.take() {
                    pkgs.push((n, v, s));
                }
                cur = Some((None, None, None));
                continue;
            }
            if let Some(c) = cur.as_mut() {
                if let Some(v) = toml_str_value(line, "name") {
                    c.0 = Some(v);
                } else if let Some(v) = toml_str_value(line, "version") {
                    c.1 = Some(v);
                } else if let Some(v) = toml_str_value(line, "source") {
                    c.2 = Some(v);
                }
            }
        }
        pkgs.sort();
        for (name, _version, source) in &pkgs {
            if let Some(src) = source {
                out.push(Diagnostic::new(
                    "Cargo.lock",
                    0,
                    "deny-source",
                    format!("package `{name}` resolves from non-path source `{src}`; the build must stay hermetic"),
                ));
            }
        }
        if cfg.deny_duplicates {
            for w in pkgs.windows(2) {
                if w[0].0 == w[1].0 && w[0].1 != w[1].1 && !cfg.skip_duplicates.contains(&w[0].0) {
                    out.push(Diagnostic::new(
                        "Cargo.lock",
                        0,
                        "deny-duplicate",
                        format!(
                            "package `{}` appears at versions {} and {}",
                            w[0].0, w[0].1, w[1].1
                        ),
                    ));
                }
            }
        }
    } else {
        out.push(Diagnostic::new("Cargo.lock", 0, "deny-config", "Cargo.lock not found"));
    }

    // --- Licenses: root + every member manifest. ---
    let workspace_license = fs::read_to_string(root.join("Cargo.toml"))
        .ok()
        .and_then(|t| t.lines().find_map(|l| toml_str_value(l, "license")));
    let mut manifests: Vec<std::path::PathBuf> = vec![root.join("Cargo.toml")];
    for dir in ["crates", "vendor", "tools"] {
        let Ok(rd) = fs::read_dir(root.join(dir)) else { continue };
        let mut subdirs: Vec<_> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
        subdirs.sort();
        for sub in subdirs {
            let m = sub.join("Cargo.toml");
            if m.is_file() {
                manifests.push(m);
            }
        }
    }
    for m in manifests {
        let rel = m.strip_prefix(root).unwrap_or(&m).to_string_lossy().replace('\\', "/");
        let Ok(text) = fs::read_to_string(&m) else { continue };
        // Only read the [package]/[workspace.package] license key, not
        // dependency tables.
        let mut license: Option<String> = None;
        let mut in_pkg = false;
        for line in text.lines() {
            let t = line.trim();
            if t.starts_with('[') {
                in_pkg = t == "[package]" || t == "[workspace.package]";
                continue;
            }
            if !in_pkg {
                continue;
            }
            if let Some(v) = toml_str_value(t, "license") {
                license = Some(v);
                break;
            }
            if t.replace(' ', "") == "license.workspace=true" {
                license.clone_from(&workspace_license);
                break;
            }
        }
        match license {
            Some(l) if license_allowed(&l, &cfg.allow_licenses) => {}
            Some(l) => out.push(Diagnostic::new(
                rel,
                0,
                "deny-license",
                format!("license `{l}` is not in the deny.toml allow list"),
            )),
            None => out.push(Diagnostic::new(
                rel,
                0,
                "deny-license",
                "manifest declares no license".to_string(),
            )),
        }
    }

    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_config() {
        let cfg = parse_deny_toml(
            "[licenses]\nallow = [\n  \"MIT\", # ok\n  \"Apache-2.0\",\n]\n[bans]\nmultiple-versions = \"deny\"\nskip = []\n",
        );
        assert_eq!(cfg.allow_licenses, ["MIT", "Apache-2.0"]);
        assert!(cfg.deny_duplicates);
        assert!(cfg.skip_duplicates.is_empty());
    }

    #[test]
    fn or_expressions() {
        let allow = vec!["MIT".to_string()];
        assert!(license_allowed("MIT", &allow));
        assert!(license_allowed("MIT OR Apache-2.0", &allow));
        assert!(!license_allowed("GPL-3.0", &allow));
    }
}
