//! Free-pool index property test: the bucketed [`FreeTracker`] must
//! return exactly the host sets the retained linear-scan reference
//! returns, for both policies, across randomized take/give-back
//! sequences. Any divergence would silently change every scheduling
//! decision downstream, so this is the load-bearing gate on the index.

use darms_net::HostId;
use darms_rms::proto::{ClusterSnapshot, NodeSnap, QueuedJobSnap};
use darms_rms::{JobId, NodeRole};
use darms_sched::alloc::reference::LinearFreeTracker;
use darms_sched::alloc::{AllocPolicy, FreeTracker};
use darms_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn h(i: usize) -> HostId {
    HostId::from_raw(i)
}

/// Node palette: (total cores, free cores) — mixes full, partial, empty.
const CORES: [(u32, u32); 6] = [(8, 8), (8, 4), (8, 0), (16, 16), (16, 3), (4, 4)];

/// Build a snapshot from per-node recipe bytes: low bits pick the core
/// palette / busy flag, one bit marks the node offline.
fn snapshot(computes: &[u8], accs: &[u8]) -> ClusterSnapshot {
    let mut nodes = Vec::new();
    for (i, &r) in computes.iter().enumerate() {
        let (total, free) = CORES[r as usize % CORES.len()];
        nodes.push(NodeSnap {
            host: h(i),
            role: NodeRole::Compute,
            cores_total: total,
            cores_free: free,
            offline: r & 0x40 != 0,
        });
    }
    for (j, &r) in accs.iter().enumerate() {
        let busy = r & 1 != 0;
        nodes.push(NodeSnap {
            host: h(computes.len() + j),
            role: NodeRole::Accelerator,
            cores_total: 1,
            cores_free: u32::from(!busy),
            offline: r & 0x40 != 0,
        });
    }
    ClusterSnapshot { nodes, queued: vec![], running: vec![], dyn_pending: None }
}

fn job(nodes: usize, ppn: u32, acpn: u32) -> QueuedJobSnap {
    QueuedJobSnap {
        job: JobId(1),
        owner: "prop".into(),
        submitted: SimTime::ZERO,
        nodes,
        ppn,
        acpn,
        walltime_estimate: SimDuration::from_secs(60),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// Apply the same randomized op sequence to the indexed tracker and
    /// the linear reference; every return value must be identical.
    #[test]
    fn indexed_tracker_matches_linear_reference(
        computes in prop::collection::vec(0u8..=0x7f, 1..24),
        accs in prop::collection::vec(0u8..=0x7f, 0..12),
        ops in prop::collection::vec((0u8..4, 1usize..5, 0u32..18, 0u8..2), 1..40),
    ) {
        let snap = snapshot(&computes, &accs);
        let mut fast = FreeTracker::from_snapshot(&snap);
        let mut slow = LinearFreeTracker::from_snapshot(&snap);
        prop_assert_eq!(fast.free_acc_count(), slow.free_acc_count());
        // History of grants, so give-back ops return plausible sets.
        let mut grants: Vec<(Vec<HostId>, u32, Vec<HostId>)> = Vec::new();
        for (op, k, ppn, pol) in ops {
            let policy = if pol == 0 { AllocPolicy::FirstFit } else { AllocPolicy::BestFit };
            match op {
                0 => {
                    let a = fast.take_compute(k, ppn, policy);
                    let b = slow.take_compute(k, ppn, policy);
                    prop_assert_eq!(&a, &b, "take_compute(k={}, ppn={}, {:?})", k, ppn, policy);
                    if let Some(hosts) = a {
                        grants.push((hosts, ppn, Vec::new()));
                    }
                }
                1 => {
                    let a = fast.take_accelerators(k);
                    let b = slow.take_accelerators(k);
                    prop_assert_eq!(&a, &b, "take_accelerators({})", k);
                    if let Some(hosts) = a {
                        grants.push((Vec::new(), 0, hosts));
                    }
                }
                2 => {
                    if !grants.is_empty() {
                        let (ch, gppn, ah) = grants.remove(k % grants.len());
                        fast.give_back(&ch, gppn, &ah);
                        slow.give_back(&ch, gppn, &ah);
                    }
                }
                _ => {
                    let q = job(k, ppn, u32::from(pol));
                    prop_assert_eq!(fast.fits(&q), slow.fits(&q));
                }
            }
            // Full-state agreement after every op.
            prop_assert_eq!(fast.free_acc_count(), slow.free_acc_count());
            for i in 0..computes.len() + accs.len() {
                prop_assert_eq!(fast.free_cores(h(i)), slow.free_cores(h(i)));
            }
        }
    }
}
