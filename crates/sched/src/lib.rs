//! # darms-sched — a Maui-like scheduler for the darms batch system
//!
//! Implements the scheduling half of the paper's batch system: weighted
//! job prioritisation (queue time, expansion factor, fairshare), FIFO,
//! EASY backfill with walltime-estimate reservations, first/best-fit node
//! selection over compute nodes and the network-attached accelerator
//! pool — plus the paper's extension (§III-E): dynamic requests are
//! scheduled **before** all queued jobs (FIFO among themselves) and are
//! rejected immediately when the pool cannot satisfy them, with no
//! reservations or queuing.
//!
//! Per-item scheduling costs are modelled explicitly, which is what makes
//! the scheduler-busy waiting of the paper's Fig. 8 reproducible.

#![warn(missing_docs)]

pub mod alloc;
pub mod backfill;
pub mod fairshare;
pub mod priority;
pub mod scheduler;

pub use alloc::{split_accs, AllocPolicy, FreeTracker};
pub use backfill::{may_backfill, shadow_time};
pub use fairshare::Fairshare;
pub use priority::{job_priority, order_queue, Policy, PriorityWeights};
pub use scheduler::{MauiScheduler, SchedConfig};
