//! Job prioritisation: the weighted component sum Maui uses, reduced to
//! the components that matter for this reproduction (queue time, expansion
//! factor, fairshare), plus plain FIFO.

use darms_rms::proto::QueuedJobSnap;
use darms_sim::SimTime;

use crate::fairshare::Fairshare;

/// Weights of the priority components.
#[derive(Clone, Copy, Debug)]
pub struct PriorityWeights {
    /// Points per second of queue wait.
    pub queue_time: f64,
    /// Weight of the expansion factor `wait / walltime_estimate`.
    pub xfactor: f64,
    /// Penalty weight applied to the owner's normalised fairshare usage.
    pub fairshare: f64,
}

impl Default for PriorityWeights {
    fn default() -> Self {
        // Queue time dominates; xfactor boosts short jobs; fairshare
        // demotes heavy users. Mirrors a common Maui configuration.
        PriorityWeights { queue_time: 1.0, xfactor: 100.0, fairshare: 1000.0 }
    }
}

/// Ordering policy for the static (qsub) queue.
#[derive(Clone, Copy, Debug)]
pub enum Policy {
    /// Strict submission order (TORQUE's built-in scheduler).
    Fifo,
    /// Weighted component priority (Maui).
    Priority(PriorityWeights),
}

/// Compute one job's priority under the weighted policy.
pub fn job_priority(
    job: &QueuedJobSnap,
    now: SimTime,
    weights: &PriorityWeights,
    fairshare: &Fairshare,
) -> f64 {
    let wait = (now - job.submitted).as_secs_f64();
    let walltime = job.walltime_estimate.as_secs_f64().max(1.0);
    let xfactor = wait / walltime;
    weights.queue_time * wait + weights.xfactor * xfactor
        - weights.fairshare * fairshare.normalised(&job.owner)
}

/// Order the queue according to the policy; highest priority first.
/// Ties (and FIFO) preserve submission order.
pub fn order_queue(
    mut queued: Vec<QueuedJobSnap>,
    now: SimTime,
    policy: &Policy,
    fairshare: &Fairshare,
) -> Vec<QueuedJobSnap> {
    match policy {
        Policy::Fifo => {
            queued.sort_by_key(|j| (j.submitted, j.job));
            queued
        }
        Policy::Priority(w) => {
            let mut keyed: Vec<(f64, usize, QueuedJobSnap)> = queued
                .drain(..)
                .enumerate()
                .map(|(i, j)| (job_priority(&j, now, w, fairshare), i, j))
                .collect();
            keyed.sort_by(|a, b| {
                b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
            });
            keyed.into_iter().map(|(_, _, j)| j).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darms_rms::JobId;
    use darms_sim::SimDuration;

    fn q(id: u64, submitted_s: u64, walltime_s: u64, owner: &str) -> QueuedJobSnap {
        QueuedJobSnap {
            job: JobId(id),
            owner: owner.into(),
            submitted: SimTime::ZERO + SimDuration::from_secs(submitted_s),
            nodes: 1,
            ppn: 1,
            acpn: 0,
            walltime_estimate: SimDuration::from_secs(walltime_s),
        }
    }

    fn fs() -> Fairshare {
        Fairshare::new(SimDuration::from_secs(3600))
    }

    #[test]
    fn fifo_orders_by_submission() {
        let jobs = vec![q(2, 50, 10, "a"), q(1, 10, 10, "a"), q(3, 90, 10, "a")];
        let ordered =
            order_queue(jobs, SimTime::ZERO + SimDuration::from_secs(100), &Policy::Fifo, &fs());
        let ids: Vec<u64> = ordered.iter().map(|j| j.job.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn longer_wait_wins_under_priority() {
        let w = PriorityWeights { queue_time: 1.0, xfactor: 0.0, fairshare: 0.0 };
        let jobs = vec![q(1, 90, 10, "a"), q(2, 10, 10, "a")];
        let ordered = order_queue(
            jobs,
            SimTime::ZERO + SimDuration::from_secs(100),
            &Policy::Priority(w),
            &fs(),
        );
        assert_eq!(ordered[0].job.0, 2); // waited 90s vs 10s
    }

    #[test]
    fn xfactor_boosts_short_jobs() {
        let w = PriorityWeights { queue_time: 0.0, xfactor: 1.0, fairshare: 0.0 };
        // Same wait, different walltime estimates.
        let jobs = vec![q(1, 0, 1000, "a"), q(2, 0, 10, "a")];
        let ordered = order_queue(
            jobs,
            SimTime::ZERO + SimDuration::from_secs(100),
            &Policy::Priority(w),
            &fs(),
        );
        assert_eq!(ordered[0].job.0, 2);
    }

    #[test]
    fn fairshare_demotes_heavy_users() {
        use darms_net::HostId;
        use darms_rms::proto::RunningJobSnap;
        let mut share = fs();
        share.update(
            SimTime::ZERO + SimDuration::from_secs(50),
            &[RunningJobSnap {
                job: JobId(9),
                owner: "heavy".into(),
                started: SimTime::ZERO,
                walltime_estimate: SimDuration::from_secs(1000),
                compute_hosts: vec![HostId::from_raw(0)],
                ppn: 8,
                acc_hosts: vec![],
            }],
        );
        let w = PriorityWeights { queue_time: 1.0, xfactor: 0.0, fairshare: 1000.0 };
        // Heavy's job submitted earlier but fairshare should demote it.
        let jobs = vec![q(1, 0, 10, "heavy"), q(2, 20, 10, "light")];
        let ordered = order_queue(
            jobs,
            SimTime::ZERO + SimDuration::from_secs(100),
            &Policy::Priority(w),
            &share,
        );
        assert_eq!(ordered[0].job.0, 2);
    }

    #[test]
    fn equal_priority_preserves_submission_order() {
        let w = PriorityWeights { queue_time: 0.0, xfactor: 0.0, fairshare: 0.0 };
        let jobs = vec![q(1, 10, 10, "a"), q(2, 10, 10, "a"), q(3, 10, 10, "a")];
        let ordered = order_queue(
            jobs,
            SimTime::ZERO + SimDuration::from_secs(100),
            &Policy::Priority(w),
            &fs(),
        );
        let ids: Vec<u64> = ordered.iter().map(|j| j.job.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
