//! Node selection: tracking free resources during an iteration and
//! picking compute/accelerator nodes for a job.
//!
//! ## Indexed free-pools
//!
//! The tracker answers "k hosts with ≥ ppn free cores" for every job in
//! every scheduler pass; a linear scan makes each pass O(jobs × hosts),
//! which dominates at datacenter scale. Hosts are therefore bucketed by
//! free-core count (`by_free`): feasibility checks sum a handful of
//! bucket sizes, BestFit walks buckets ascending (exactly the linear
//! version's `(free, index)` sort order), and FirstFit merges the k
//! lowest registration indices out of the matching buckets —
//! O(buckets + k) instead of O(hosts) per decision, since distinct
//! free-core values are bounded by the largest node's core count, not
//! the cluster size. The pre-index implementation is retained as
//! [`reference::LinearFreeTracker`] and a property test
//! (`tests/alloc_props.rs`) checks both agree on randomized
//! take/give-back sequences.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use darms_net::HostId;
use darms_rms::proto::{ClusterSnapshot, QueuedJobSnap};
use darms_rms::NodeRole;

/// How compute nodes are chosen among those that fit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocPolicy {
    /// First fitting node in registration order.
    FirstFit,
    /// Node with the fewest free cores that still fits (reduces
    /// fragmentation for mixed ppn workloads).
    BestFit,
}

/// Free-resource view maintained by the scheduler during one iteration,
/// decremented as it hands out allocations so that later decisions in the
/// same iteration never double-book (the server re-validates anyway).
#[derive(Clone, Debug)]
pub struct FreeTracker {
    /// (host, free cores, total cores) per compute host, registration
    /// order. Offline hosts keep their slot (so delta patches preserve
    /// FirstFit's registration order) but are absent from every bucket.
    compute: Vec<(HostId, u32, u32)>,
    /// Offline flag per compute slot.
    offline: Vec<bool>,
    /// Compute indices bucketed by current free-core count.
    by_free: BTreeMap<u32, BTreeSet<usize>>,
    /// Free accelerator hosts, in registration (= FIFO grant) order.
    accs: VecDeque<HostId>,
    /// Membership mirror of `accs` for O(log n) duplicate checks.
    acc_set: BTreeSet<HostId>,
    index: BTreeMap<HostId, usize>,
}

impl FreeTracker {
    /// Build from a full snapshot.
    pub fn from_snapshot(snap: &ClusterSnapshot) -> Self {
        let mut compute = Vec::new();
        let mut offline = Vec::new();
        let mut by_free: BTreeMap<u32, BTreeSet<usize>> = BTreeMap::new();
        let mut accs = VecDeque::new();
        let mut acc_set = BTreeSet::new();
        let mut index = BTreeMap::new();
        for n in &snap.nodes {
            match n.role {
                NodeRole::Compute => {
                    let i = compute.len();
                    index.insert(n.host, i);
                    if !n.offline {
                        by_free.entry(n.cores_free).or_default().insert(i);
                    }
                    compute.push((n.host, n.cores_free, n.cores_total));
                    offline.push(n.offline);
                }
                NodeRole::Accelerator => {
                    if !n.offline && n.cores_free == n.cores_total {
                        accs.push_back(n.host);
                        acc_set.insert(n.host);
                    }
                }
            }
        }
        FreeTracker { compute, offline, by_free, accs, acc_set, index }
    }

    /// Patch one node's state from a delta snapshot: overwrite with the
    /// server's authoritative view, moving the node in or out of the
    /// free pools as needed. Returns `false` for a compute host this
    /// tracker has never seen — the caller should drop its cache and
    /// request a full snapshot.
    pub fn apply(&mut self, n: &darms_rms::proto::NodeSnap) -> bool {
        match n.role {
            NodeRole::Compute => {
                let Some(&i) = self.index.get(&n.host) else { return false };
                let was_offline = self.offline[i];
                let old_free = self.compute[i].1;
                self.compute[i].1 = n.cores_free;
                self.compute[i].2 = n.cores_total;
                self.offline[i] = n.offline;
                match (was_offline, n.offline) {
                    (false, false) => self.rebucket(i, old_free, n.cores_free),
                    (false, true) => self.unbucket(i, old_free),
                    (true, false) => {
                        self.by_free.entry(n.cores_free).or_default().insert(i);
                    }
                    (true, true) => {}
                }
                true
            }
            NodeRole::Accelerator => {
                let free = !n.offline && n.cores_free == n.cores_total;
                if free {
                    if self.acc_set.insert(n.host) {
                        self.accs.push_back(n.host);
                    }
                } else if self.acc_set.remove(&n.host) {
                    // Rare: the server took (or offlined) an accelerator
                    // the scheduler did not hand out itself.
                    self.accs.retain(|h| *h != n.host);
                }
                true
            }
        }
    }

    /// Number of currently free accelerator nodes.
    pub fn free_acc_count(&self) -> usize {
        self.accs.len()
    }

    /// Free cores on one compute host.
    pub fn free_cores(&self, host: HostId) -> u32 {
        self.index.get(&host).map_or(0, |&i| if self.offline[i] { 0 } else { self.compute[i].1 })
    }

    /// Remove one compute host from its free-count bucket.
    fn unbucket(&mut self, i: usize, free: u32) {
        if let Some(b) = self.by_free.get_mut(&free) {
            b.remove(&i);
            if b.is_empty() {
                self.by_free.remove(&free);
            }
        }
    }

    /// Move one compute host between free-count buckets.
    fn rebucket(&mut self, i: usize, old_free: u32, new_free: u32) {
        if old_free == new_free {
            return;
        }
        self.unbucket(i, old_free);
        self.by_free.entry(new_free).or_default().insert(i);
    }

    /// Number of compute hosts with at least `ppn` free cores: a sum of
    /// bucket sizes, O(distinct free-core values).
    fn fitting_count(&self, ppn: u32) -> usize {
        self.by_free.range(ppn..).map(|(_, b)| b.len()).sum()
    }

    /// Pick `k` compute hosts with at least `ppn` free cores each.
    /// Returns `None` (and changes nothing) if impossible.
    ///
    /// FirstFit picks the k lowest registration indices among fitting
    /// hosts; BestFit picks in ascending `(free, index)` order (the
    /// fullest node that still fits, ties by registration). Both match
    /// the linear reference exactly — the property test insists on it.
    pub fn take_compute(&mut self, k: usize, ppn: u32, policy: AllocPolicy) -> Option<Vec<HostId>> {
        if self.fitting_count(ppn) < k {
            return None;
        }
        let chosen: Vec<usize> = match policy {
            AllocPolicy::BestFit => {
                // Buckets ascend by free count and each set ascends by
                // index, so in-order traversal IS the (free, index) sort.
                self.by_free.range(ppn..).flat_map(|(_, b)| b.iter().copied()).take(k).collect()
            }
            AllocPolicy::FirstFit => {
                // k smallest indices across the fitting buckets: take at
                // most k from each (they are sorted), then merge.
                let mut cand: Vec<usize> = self
                    .by_free
                    .range(ppn..)
                    .flat_map(|(_, b)| b.iter().copied().take(k))
                    .collect();
                cand.sort_unstable();
                cand.truncate(k);
                cand
            }
        };
        let hosts = chosen.iter().map(|&i| self.compute[i].0).collect();
        for i in chosen {
            let old = self.compute[i].1;
            self.compute[i].1 = old - ppn;
            self.rebucket(i, old, old - ppn);
        }
        Some(hosts)
    }

    /// Return a running job's resources to the pool (used by the backfill
    /// shadow-time simulation, never against the live snapshot).
    pub fn give_back(&mut self, compute_hosts: &[HostId], ppn: u32, accs: &[HostId]) {
        for h in compute_hosts {
            if let Some(&i) = self.index.get(h) {
                if self.offline[i] {
                    continue;
                }
                let (_, free, total) = self.compute[i];
                let new = (free + ppn).min(total);
                self.compute[i].1 = new;
                self.rebucket(i, free, new);
            }
        }
        for h in accs {
            if self.acc_set.insert(*h) {
                self.accs.push_back(*h);
            }
        }
    }

    /// Pick `n` free accelerator hosts. Returns `None` (and changes
    /// nothing) if fewer are free — the all-or-nothing semantics of both
    /// the static `acpn` request and the dynamic `AC_Get`.
    pub fn take_accelerators(&mut self, n: usize) -> Option<Vec<HostId>> {
        if self.accs.len() < n {
            return None;
        }
        let taken: Vec<HostId> = self.accs.drain(..n).collect();
        for h in &taken {
            self.acc_set.remove(h);
        }
        Some(taken)
    }

    /// Whether `job` could start right now (without taking anything).
    pub fn fits(&self, job: &QueuedJobSnap) -> bool {
        self.fitting_count(job.ppn) >= job.nodes && self.accs.len() >= job.nodes * job.acpn as usize
    }
}

/// The pre-index linear-scan tracker, kept verbatim as the behavioral
/// reference for the free-pool property tests.
#[doc(hidden)]
pub mod reference {
    use super::*;

    /// Linear-scan twin of [`FreeTracker`]: same API, O(hosts) queries.
    #[derive(Clone, Debug)]
    pub struct LinearFreeTracker {
        compute: Vec<(HostId, u32, u32)>,
        accs: Vec<HostId>,
        index: BTreeMap<HostId, usize>,
    }

    impl LinearFreeTracker {
        /// Build from a snapshot, skipping offline nodes.
        pub fn from_snapshot(snap: &ClusterSnapshot) -> Self {
            let mut compute = Vec::new();
            let mut accs = Vec::new();
            let mut index = BTreeMap::new();
            for n in &snap.nodes {
                if n.offline {
                    continue;
                }
                match n.role {
                    NodeRole::Compute => {
                        index.insert(n.host, compute.len());
                        compute.push((n.host, n.cores_free, n.cores_total));
                    }
                    NodeRole::Accelerator => {
                        if n.cores_free == n.cores_total {
                            accs.push(n.host);
                        }
                    }
                }
            }
            LinearFreeTracker { compute, accs, index }
        }

        /// See [`FreeTracker::free_acc_count`].
        pub fn free_acc_count(&self) -> usize {
            self.accs.len()
        }

        /// See [`FreeTracker::free_cores`].
        pub fn free_cores(&self, host: HostId) -> u32 {
            self.index.get(&host).map_or(0, |&i| self.compute[i].1)
        }

        /// See [`FreeTracker::take_compute`].
        pub fn take_compute(
            &mut self,
            k: usize,
            ppn: u32,
            policy: AllocPolicy,
        ) -> Option<Vec<HostId>> {
            let mut fitting: Vec<usize> =
                (0..self.compute.len()).filter(|&i| self.compute[i].1 >= ppn).collect();
            if fitting.len() < k {
                return None;
            }
            if policy == AllocPolicy::BestFit {
                fitting.sort_by_key(|&i| (self.compute[i].1, i));
            }
            let chosen: Vec<usize> = fitting.into_iter().take(k).collect();
            let hosts = chosen.iter().map(|&i| self.compute[i].0).collect();
            for i in chosen {
                self.compute[i].1 -= ppn;
            }
            Some(hosts)
        }

        /// See [`FreeTracker::give_back`].
        pub fn give_back(&mut self, compute_hosts: &[HostId], ppn: u32, accs: &[HostId]) {
            for h in compute_hosts {
                if let Some(&i) = self.index.get(h) {
                    let (_, free, total) = &mut self.compute[i];
                    *free = (*free + ppn).min(*total);
                }
            }
            for h in accs {
                if !self.accs.contains(h) {
                    self.accs.push(*h);
                }
            }
        }

        /// See [`FreeTracker::take_accelerators`].
        pub fn take_accelerators(&mut self, n: usize) -> Option<Vec<HostId>> {
            if self.accs.len() < n {
                return None;
            }
            Some(self.accs.drain(..n).collect())
        }

        /// See [`FreeTracker::fits`].
        pub fn fits(&self, job: &QueuedJobSnap) -> bool {
            let fitting = self.compute.iter().filter(|(_, free, _)| *free >= job.ppn).count();
            fitting >= job.nodes && self.accs.len() >= job.nodes * job.acpn as usize
        }
    }
}

/// Split a flat accelerator grant into per-compute-node sets of `acpn`.
pub fn split_accs(accs: &[HostId], nodes: usize, acpn: u32) -> Vec<Vec<HostId>> {
    assert_eq!(accs.len(), nodes * acpn as usize, "grant size mismatch");
    accs.chunks(acpn.max(1) as usize)
        .map(|c| c.to_vec())
        .take(nodes)
        .collect::<Vec<_>>()
        .into_iter()
        .chain(std::iter::repeat(Vec::new()))
        .take(nodes)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use darms_rms::proto::NodeSnap;
    use darms_rms::JobId;
    use darms_sim::{SimDuration, SimTime};

    fn h(i: usize) -> HostId {
        HostId::from_raw(i)
    }

    fn snap() -> ClusterSnapshot {
        let mk = |i, role, total, free| NodeSnap {
            host: h(i),
            role,
            cores_total: total,
            cores_free: free,
            offline: false,
        };
        ClusterSnapshot {
            nodes: vec![
                mk(0, NodeRole::Compute, 8, 8),
                mk(1, NodeRole::Compute, 8, 4),
                mk(2, NodeRole::Compute, 8, 2),
                mk(3, NodeRole::Accelerator, 1, 1),
                mk(4, NodeRole::Accelerator, 1, 0),
                mk(5, NodeRole::Accelerator, 1, 1),
            ],
            queued: vec![],
            running: vec![],
            dyn_pending: None,
        }
    }

    #[test]
    fn first_fit_takes_registration_order() {
        let mut t = FreeTracker::from_snapshot(&snap());
        let hosts = t.take_compute(2, 2, AllocPolicy::FirstFit).unwrap();
        assert_eq!(hosts, vec![h(0), h(1)]);
        assert_eq!(t.free_cores(h(0)), 6);
    }

    #[test]
    fn best_fit_prefers_fullest_fitting_node() {
        let mut t = FreeTracker::from_snapshot(&snap());
        let hosts = t.take_compute(1, 2, AllocPolicy::BestFit).unwrap();
        assert_eq!(hosts, vec![h(2)]); // 2 free cores, tightest fit
    }

    #[test]
    fn compute_allocation_is_all_or_nothing() {
        let mut t = FreeTracker::from_snapshot(&snap());
        assert!(t.take_compute(3, 6, AllocPolicy::FirstFit).is_none());
        // nothing was consumed
        assert_eq!(t.free_cores(h(0)), 8);
    }

    #[test]
    fn accelerator_pool_excludes_busy_nodes() {
        let mut t = FreeTracker::from_snapshot(&snap());
        assert_eq!(t.free_acc_count(), 2); // host 4 is busy
        assert!(t.take_accelerators(3).is_none());
        let got = t.take_accelerators(2).unwrap();
        assert_eq!(got, vec![h(3), h(5)]);
        assert_eq!(t.free_acc_count(), 0);
    }

    #[test]
    fn fits_checks_both_resources() {
        let t = FreeTracker::from_snapshot(&snap());
        let job = |nodes, ppn, acpn| QueuedJobSnap {
            job: JobId(1),
            owner: "u".into(),
            submitted: SimTime::ZERO,
            nodes,
            ppn,
            acpn,
            walltime_estimate: SimDuration::from_secs(1),
        };
        assert!(t.fits(&job(2, 4, 1)));
        assert!(!t.fits(&job(2, 4, 2))); // needs 4 accs, only 2 free
        assert!(!t.fits(&job(3, 8, 0))); // only one node has 8 free cores
    }

    #[test]
    fn split_accs_chunks_per_node() {
        let flat = vec![h(1), h(2), h(3), h(4)];
        let per_cn = split_accs(&flat, 2, 2);
        assert_eq!(per_cn, vec![vec![h(1), h(2)], vec![h(3), h(4)]]);
    }

    #[test]
    fn split_accs_zero_acpn() {
        let per_cn = split_accs(&[], 3, 0);
        assert_eq!(per_cn, vec![Vec::<HostId>::new(), vec![], vec![]]);
    }

    #[test]
    fn offline_nodes_are_excluded() {
        let mut s = snap();
        s.nodes[0].offline = true;
        let t = FreeTracker::from_snapshot(&s);
        assert_eq!(t.free_cores(h(0)), 0);
    }
}
