//! Node selection: tracking free resources during an iteration and
//! picking compute/accelerator nodes for a job.

use std::collections::BTreeMap;

use darms_net::HostId;
use darms_rms::proto::{ClusterSnapshot, QueuedJobSnap};
use darms_rms::NodeRole;

/// How compute nodes are chosen among those that fit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocPolicy {
    /// First fitting node in registration order.
    FirstFit,
    /// Node with the fewest free cores that still fits (reduces
    /// fragmentation for mixed ppn workloads).
    BestFit,
}

/// Free-resource view maintained by the scheduler during one iteration,
/// decremented as it hands out allocations so that later decisions in the
/// same iteration never double-book (the server re-validates anyway).
#[derive(Clone, Debug)]
pub struct FreeTracker {
    /// (host, free cores, total cores) per compute host, registration order.
    compute: Vec<(HostId, u32, u32)>,
    /// Free accelerator hosts, in registration order.
    accs: Vec<HostId>,
    index: BTreeMap<HostId, usize>,
}

impl FreeTracker {
    /// Build from a snapshot, skipping offline nodes.
    pub fn from_snapshot(snap: &ClusterSnapshot) -> Self {
        let mut compute = Vec::new();
        let mut accs = Vec::new();
        let mut index = BTreeMap::new();
        for n in &snap.nodes {
            if n.offline {
                continue;
            }
            match n.role {
                NodeRole::Compute => {
                    index.insert(n.host, compute.len());
                    compute.push((n.host, n.cores_free, n.cores_total));
                }
                NodeRole::Accelerator => {
                    if n.cores_free == n.cores_total {
                        accs.push(n.host);
                    }
                }
            }
        }
        FreeTracker { compute, accs, index }
    }

    /// Number of currently free accelerator nodes.
    pub fn free_acc_count(&self) -> usize {
        self.accs.len()
    }

    /// Free cores on one compute host.
    pub fn free_cores(&self, host: HostId) -> u32 {
        self.index.get(&host).map_or(0, |&i| self.compute[i].1)
    }

    /// Pick `k` compute hosts with at least `ppn` free cores each.
    /// Returns `None` (and changes nothing) if impossible.
    pub fn take_compute(&mut self, k: usize, ppn: u32, policy: AllocPolicy) -> Option<Vec<HostId>> {
        let mut fitting: Vec<usize> =
            (0..self.compute.len()).filter(|&i| self.compute[i].1 >= ppn).collect();
        if fitting.len() < k {
            return None;
        }
        if policy == AllocPolicy::BestFit {
            fitting.sort_by_key(|&i| (self.compute[i].1, i));
        }
        let chosen: Vec<usize> = fitting.into_iter().take(k).collect();
        let hosts = chosen.iter().map(|&i| self.compute[i].0).collect();
        for i in chosen {
            self.compute[i].1 -= ppn;
        }
        Some(hosts)
    }

    /// Return a running job's resources to the pool (used by the backfill
    /// shadow-time simulation, never against the live snapshot).
    pub fn give_back(&mut self, compute_hosts: &[HostId], ppn: u32, accs: &[HostId]) {
        for h in compute_hosts {
            if let Some(&i) = self.index.get(h) {
                let (_, free, total) = &mut self.compute[i];
                *free = (*free + ppn).min(*total);
            }
        }
        for h in accs {
            if !self.accs.contains(h) {
                self.accs.push(*h);
            }
        }
    }

    /// Pick `n` free accelerator hosts. Returns `None` (and changes
    /// nothing) if fewer are free — the all-or-nothing semantics of both
    /// the static `acpn` request and the dynamic `AC_Get`.
    pub fn take_accelerators(&mut self, n: usize) -> Option<Vec<HostId>> {
        if self.accs.len() < n {
            return None;
        }
        Some(self.accs.drain(..n).collect())
    }

    /// Whether `job` could start right now (without taking anything).
    pub fn fits(&self, job: &QueuedJobSnap) -> bool {
        let fitting = self.compute.iter().filter(|(_, free, _)| *free >= job.ppn).count();
        fitting >= job.nodes && self.accs.len() >= job.nodes * job.acpn as usize
    }
}

/// Split a flat accelerator grant into per-compute-node sets of `acpn`.
pub fn split_accs(accs: &[HostId], nodes: usize, acpn: u32) -> Vec<Vec<HostId>> {
    assert_eq!(accs.len(), nodes * acpn as usize, "grant size mismatch");
    accs.chunks(acpn.max(1) as usize)
        .map(|c| c.to_vec())
        .take(nodes)
        .collect::<Vec<_>>()
        .into_iter()
        .chain(std::iter::repeat(Vec::new()))
        .take(nodes)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use darms_rms::proto::NodeSnap;
    use darms_rms::JobId;
    use darms_sim::{SimDuration, SimTime};

    fn h(i: usize) -> HostId {
        HostId::from_raw(i)
    }

    fn snap() -> ClusterSnapshot {
        let mk = |i, role, total, free| NodeSnap {
            host: h(i),
            role,
            cores_total: total,
            cores_free: free,
            offline: false,
        };
        ClusterSnapshot {
            nodes: vec![
                mk(0, NodeRole::Compute, 8, 8),
                mk(1, NodeRole::Compute, 8, 4),
                mk(2, NodeRole::Compute, 8, 2),
                mk(3, NodeRole::Accelerator, 1, 1),
                mk(4, NodeRole::Accelerator, 1, 0),
                mk(5, NodeRole::Accelerator, 1, 1),
            ],
            queued: vec![],
            running: vec![],
            dyn_pending: None,
        }
    }

    #[test]
    fn first_fit_takes_registration_order() {
        let mut t = FreeTracker::from_snapshot(&snap());
        let hosts = t.take_compute(2, 2, AllocPolicy::FirstFit).unwrap();
        assert_eq!(hosts, vec![h(0), h(1)]);
        assert_eq!(t.free_cores(h(0)), 6);
    }

    #[test]
    fn best_fit_prefers_fullest_fitting_node() {
        let mut t = FreeTracker::from_snapshot(&snap());
        let hosts = t.take_compute(1, 2, AllocPolicy::BestFit).unwrap();
        assert_eq!(hosts, vec![h(2)]); // 2 free cores, tightest fit
    }

    #[test]
    fn compute_allocation_is_all_or_nothing() {
        let mut t = FreeTracker::from_snapshot(&snap());
        assert!(t.take_compute(3, 6, AllocPolicy::FirstFit).is_none());
        // nothing was consumed
        assert_eq!(t.free_cores(h(0)), 8);
    }

    #[test]
    fn accelerator_pool_excludes_busy_nodes() {
        let mut t = FreeTracker::from_snapshot(&snap());
        assert_eq!(t.free_acc_count(), 2); // host 4 is busy
        assert!(t.take_accelerators(3).is_none());
        let got = t.take_accelerators(2).unwrap();
        assert_eq!(got, vec![h(3), h(5)]);
        assert_eq!(t.free_acc_count(), 0);
    }

    #[test]
    fn fits_checks_both_resources() {
        let t = FreeTracker::from_snapshot(&snap());
        let job = |nodes, ppn, acpn| QueuedJobSnap {
            job: JobId(1),
            owner: "u".into(),
            submitted: SimTime::ZERO,
            nodes,
            ppn,
            acpn,
            walltime_estimate: SimDuration::from_secs(1),
        };
        assert!(t.fits(&job(2, 4, 1)));
        assert!(!t.fits(&job(2, 4, 2))); // needs 4 accs, only 2 free
        assert!(!t.fits(&job(3, 8, 0))); // only one node has 8 free cores
    }

    #[test]
    fn split_accs_chunks_per_node() {
        let flat = vec![h(1), h(2), h(3), h(4)];
        let per_cn = split_accs(&flat, 2, 2);
        assert_eq!(per_cn, vec![vec![h(1), h(2)], vec![h(3), h(4)]]);
    }

    #[test]
    fn split_accs_zero_acpn() {
        let per_cn = split_accs(&[], 3, 0);
        assert_eq!(per_cn, vec![Vec::<HostId>::new(), vec![], vec![]]);
    }

    #[test]
    fn offline_nodes_are_excluded() {
        let mut s = snap();
        s.nodes[0].offline = true;
        let t = FreeTracker::from_snapshot(&s);
        assert_eq!(t.free_cores(h(0)), 0);
    }
}
