//! The Maui-like scheduler actor.
//!
//! Iteration model: on a wake-up from the server the scheduler fetches a
//! cluster snapshot, orders the work (the exposed dynamic request first —
//! the paper's top-priority extension, §III-E — then the static queue by
//! policy priority), and processes items one at a time, each charging its
//! modelled scheduling cost. A dynamic request arriving mid-iteration is
//! therefore serviced only after the iteration completes — exactly the
//! waiting the paper measures in Fig. 8.

use std::collections::{BTreeSet, VecDeque};

use darms_net::{HostId, Network};
use darms_rms::proto::*;
use darms_rms::{sched_addr, server_addr};
use darms_sim::{Actor, Ctx, Envelope, Recorder, SimDuration, SimTime, TraceSource};

use crate::alloc::{split_accs, AllocPolicy, FreeTracker};
use crate::backfill::{may_backfill, shadow_time};
use crate::fairshare::Fairshare;
use crate::priority::{order_queue, Policy};

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Static-queue ordering policy.
    pub policy: Policy,
    /// Node selection policy.
    pub allocation: AllocPolicy,
    /// EASY backfill on the static queue.
    pub backfill: bool,
    /// Schedule dynamic requests before everything else (the paper's
    /// policy). Disabled by the EXT-3 fairness ablation.
    pub dyn_top_priority: bool,
    /// Cost of examining/allocating one queued job.
    pub per_job_cost: SimDuration,
    /// Base cost of scheduling a dynamic request.
    pub dyn_base_cost: SimDuration,
    /// Additional cost per requested accelerator in a dynamic request.
    pub dyn_per_acc_cost: SimDuration,
    /// How long an unsatisfiable dynamic request may stay queued before
    /// rejection. `None` (the paper's policy, §III-E) rejects
    /// immediately; `Some(w)` keeps it exposed and retries until `w`
    /// elapses — an ablation of the no-reservation design choice.
    pub dyn_queue_wait: Option<SimDuration>,
    /// Retry interval while an unsatisfiable dynamic request is queued.
    pub dyn_retry: SimDuration,
    /// Fixed per-iteration overhead (queue fetch, priority pass).
    pub iteration_overhead: SimDuration,
    /// Optional periodic iteration (Maui's RMPOLLINTERVAL); event-driven
    /// wake-ups happen regardless.
    pub poll_interval: Option<SimDuration>,
    /// Keep at most one poll timer in flight. The historic behaviour
    /// (`false`) arms a fresh timer at the end of every active iteration
    /// without cancelling the previous one, so each event-driven wake-up
    /// spawns another poll chain; at datacenter scale thousands of
    /// concurrent chains degenerate into a busy loop of O(hosts)
    /// snapshot iterations. The legacy default stays `false` only
    /// because the checked-in golden traces pin that timer schedule
    /// byte-for-byte; large-scale scenarios opt in.
    pub poll_coalesce: bool,
    /// Keep the free-resource tracker across iterations and ask the
    /// server for node *deltas* instead of full snapshots. Turns the
    /// per-iteration cost from O(hosts) into O(nodes that changed),
    /// which is what keeps the per-event wall cost flat from 1k to 10k
    /// hosts. Off by default for the same golden-trace reason as
    /// `poll_coalesce` (the wire exchanges differ); large-scale
    /// scenarios opt in. Loss-safe: a delta is only served when the
    /// scheduler proves it applied the server's previous response, so
    /// a lost response degrades to a full snapshot.
    pub incremental_snapshots: bool,
    /// Fairshare decay half-life.
    pub fairshare_half_life: SimDuration,
    /// Wire size of scheduler control messages.
    pub ctl_bytes: u64,
}

impl SchedConfig {
    /// Calibrated against the paper's testbed.
    pub fn paper_testbed() -> Self {
        SchedConfig {
            policy: Policy::Priority(Default::default()),
            allocation: AllocPolicy::FirstFit,
            backfill: true,
            dyn_top_priority: true,
            per_job_cost: SimDuration::from_millis(22),
            dyn_base_cost: SimDuration::from_millis(55),
            dyn_per_acc_cost: SimDuration::from_millis(70),
            dyn_queue_wait: None,
            dyn_retry: SimDuration::from_millis(500),
            iteration_overhead: SimDuration::from_millis(6),
            poll_interval: Some(SimDuration::from_secs(10)),
            poll_coalesce: false,
            incremental_snapshots: false,
            fairshare_half_life: SimDuration::from_secs(3600),
            ctl_bytes: 512,
        }
    }

    /// Near-zero costs for logic-focused tests.
    pub fn instant() -> Self {
        SchedConfig {
            policy: Policy::Fifo,
            allocation: AllocPolicy::FirstFit,
            backfill: false,
            dyn_top_priority: true,
            per_job_cost: SimDuration::ZERO,
            dyn_base_cost: SimDuration::ZERO,
            dyn_per_acc_cost: SimDuration::ZERO,
            dyn_queue_wait: None,
            dyn_retry: SimDuration::from_millis(100),
            iteration_overhead: SimDuration::ZERO,
            poll_interval: None,
            poll_coalesce: false,
            incremental_snapshots: false,
            fairshare_half_life: SimDuration::from_secs(3600),
            ctl_bytes: 0,
        }
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig::paper_testbed()
    }
}

enum WorkItem {
    Dyn(DynPendingSnap),
    Job(QueuedJobSnap),
}

#[derive(PartialEq, Eq, Clone, Copy, Debug)]
enum Phase {
    Idle,
    AwaitSnapshot,
    Busy,
}

const TOKEN_STEP: u64 = 1;
const TOKEN_POLL: u64 = 2;

/// The Maui-like scheduler daemon.
pub struct MauiScheduler {
    net: Network,
    head: HostId,
    config: SchedConfig,
    fairshare: Fairshare,
    phase: Phase,
    dirty: bool,
    query_token: u64,
    worklist: VecDeque<WorkItem>,
    tracker: Option<FreeTracker>,
    running: Vec<RunningJobSnap>,
    /// Jobs started earlier in the *current* iteration; they are not in
    /// the snapshot's running list yet but must count for backfill shadow
    /// computation.
    iter_started: Vec<RunningJobSnap>,
    shadow: Option<SimTime>,
    blocked_no_backfill: bool,
    /// Whether the last snapshot contained any work (queued, running, or
    /// dynamic). When the cluster is fully idle the poll timer is not
    /// re-armed — event-driven wake-ups restart iterations — so an idle
    /// simulation can quiesce.
    last_snapshot_active: bool,
    /// A `TOKEN_POLL` timer is in flight (only consulted when
    /// [`SchedConfig::poll_coalesce`] is on).
    poll_armed: bool,
    /// Token of the last snapshot response applied to `tracker`. Sent as
    /// `ClusterQueryReq::cached_token` so the server can prove the cache
    /// is in sync before serving a delta. `None` forces a full snapshot.
    cached_token: Option<u64>,
    /// Hosts this scheduler speculatively mutated (grants sent to the
    /// server) since the last snapshot. Listed in the next query's
    /// `refresh` set so a server-side rejection cannot strand the cache.
    touched: BTreeSet<HostId>,
    recorder: Option<Recorder>,
    /// Virtual time the current iteration's snapshot arrived (for the
    /// `sched.iteration_cost` histogram).
    iter_began: Option<SimTime>,
    /// Token of the last dynamic request whose wait was recorded. A
    /// request that is resolved but still in flight back to the server
    /// can reappear in the next snapshot; dedup so `sched.dyn_wait`
    /// gets exactly one sample per request.
    last_dyn_recorded: Option<u64>,
    /// Iterations completed (observability for tests).
    pub iterations: u64,
}

impl MauiScheduler {
    /// Create the scheduler for the head node.
    pub fn new(net: Network, head: HostId, config: SchedConfig) -> Self {
        let fairshare = Fairshare::new(config.fairshare_half_life);
        MauiScheduler {
            net,
            head,
            config,
            fairshare,
            phase: Phase::Idle,
            dirty: false,
            query_token: 0,
            worklist: VecDeque::new(),
            tracker: None,
            running: Vec::new(),
            iter_started: Vec::new(),
            shadow: None,
            blocked_no_backfill: false,
            last_snapshot_active: false,
            poll_armed: false,
            cached_token: None,
            touched: BTreeSet::new(),
            recorder: None,
            iter_began: None,
            last_dyn_recorded: None,
            iterations: 0,
        }
    }

    /// Attach a recorder; the scheduler then records `sched.dyn_wait`
    /// samples (seconds a dynamic request spent waiting on scheduling of
    /// other work — the light region of the paper's Fig. 8).
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    fn send_server<T: std::any::Any + Send + Clone>(&mut self, ctx: &mut Ctx<'_>, msg: T) {
        let to = server_addr(self.head);
        let bytes = self.config.ctl_bytes;
        self.net.send_from_ctx(ctx, self.head, to, msg, bytes);
    }

    /// Arm the periodic poll. Under `poll_coalesce` this is a no-op
    /// while a poll timer is already pending, so the number of chains
    /// stays at one regardless of how many event-driven wake-ups occur.
    fn arm_poll(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(poll) = self.config.poll_interval {
            if !(self.config.poll_coalesce && self.poll_armed) {
                self.poll_armed = true;
                ctx.set_timer(poll, TOKEN_POLL);
            }
        }
    }

    fn start_iteration(&mut self, ctx: &mut Ctx<'_>) {
        self.phase = Phase::AwaitSnapshot;
        self.query_token += 1;
        let (cached_token, refresh) = if self.config.incremental_snapshots && self.tracker.is_some()
        {
            (self.cached_token, self.touched.iter().copied().collect())
        } else {
            (None, Vec::new())
        };
        let req = ClusterQueryReq {
            token: self.query_token,
            reply: sched_addr(self.head),
            cached_token,
            refresh,
        };
        self.send_server(ctx, req);
    }

    fn item_cost(&self, item: &WorkItem) -> SimDuration {
        match item {
            WorkItem::Dyn(d) => {
                self.config.dyn_base_cost + self.config.dyn_per_acc_cost * d.count as u64
            }
            WorkItem::Job(_) => self.config.per_job_cost,
        }
    }

    fn handle_snapshot(&mut self, ctx: &mut Ctx<'_>, resp: ClusterQueryResp) {
        if self.phase != Phase::AwaitSnapshot || resp.token != self.query_token {
            return; // stale snapshot
        }
        let nodes_delta = resp.nodes_delta;
        let mut snap = resp.snapshot;
        let now = ctx.now();
        self.fairshare.update(now, &snap.running);
        let queued = std::mem::take(&mut snap.queued);
        let ordered = order_queue(queued, now, &self.config.policy, &self.fairshare);
        let mut worklist: VecDeque<WorkItem> = VecDeque::new();
        if let Some(d) = snap.dyn_pending.clone() {
            if self.config.dyn_top_priority {
                worklist.push_back(WorkItem::Dyn(d));
                worklist.extend(ordered.into_iter().map(WorkItem::Job));
            } else {
                worklist.extend(ordered.into_iter().map(WorkItem::Job));
                worklist.push_back(WorkItem::Dyn(d));
            }
        } else {
            worklist.extend(ordered.into_iter().map(WorkItem::Job));
        }
        if nodes_delta {
            // The server only serves a delta when our `cached_token`
            // matched, so a retained tracker must exist; fall back to a
            // fresh full query if an unknown host appears (defensive —
            // nodes are never added mid-run today).
            let ok = match self.tracker.as_mut() {
                Some(t) => snap.nodes.iter().all(|n| t.apply(n)),
                None => false,
            };
            if !ok {
                self.tracker = None;
                self.cached_token = None;
                self.phase = Phase::Idle;
                self.start_iteration(ctx);
                return;
            }
        } else {
            self.tracker = Some(FreeTracker::from_snapshot(&snap));
        }
        self.cached_token = Some(resp.token);
        self.touched.clear();
        self.last_snapshot_active =
            !snap.running.is_empty() || !worklist.is_empty() || snap.dyn_pending.is_some();
        self.running = std::mem::take(&mut snap.running);
        self.iter_started.clear();
        self.shadow = None;
        self.blocked_no_backfill = false;
        self.worklist = worklist;
        self.phase = Phase::Busy;
        self.iter_began = Some(now);
        let metrics = ctx.metrics();
        metrics.observe("sched.queue_depth", self.worklist.len() as f64);
        let me = ctx.me();
        ctx.tracer().span_begin(now, TraceSource::Actor(me), "maui", "sched.iteration");
        match self.worklist.front() {
            Some(first) => {
                let delay = self.config.iteration_overhead + self.item_cost(first);
                ctx.set_timer(delay, TOKEN_STEP);
            }
            None => {
                let overhead = self.config.iteration_overhead;
                if overhead.is_zero() {
                    self.finish_iteration(ctx);
                } else {
                    ctx.set_timer(overhead, TOKEN_STEP);
                }
            }
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) {
        if self.phase != Phase::Busy {
            return;
        }
        if let Some(item) = self.worklist.pop_front() {
            self.process_item(ctx, item);
        }
        match self.worklist.front() {
            Some(next) => {
                let delay = self.item_cost(next);
                ctx.set_timer(delay, TOKEN_STEP);
            }
            None => self.finish_iteration(ctx),
        }
    }

    fn process_item(&mut self, ctx: &mut Ctx<'_>, item: WorkItem) {
        let now = ctx.now();
        let tracker = self.tracker.as_mut().expect("tracker set with worklist");
        match item {
            WorkItem::Dyn(d) => {
                // Record how long this request waited behind other
                // scheduling work (decision started item_cost ago).
                let cost =
                    self.config.dyn_base_cost + self.config.dyn_per_acc_cost * d.count as u64;
                let decision_start = now - cost;
                let wait = decision_start.since(d.queued_at);
                // One `sched.dyn_wait` sample per request, recorded when
                // the decision *resolves* (grant or reject below, not on
                // a defer) and deduplicated by token: a resolved request
                // whose reply is still in flight can reappear in the
                // next snapshot and be processed again.
                let record_wait = |me: &mut Self, ctx: &mut Ctx<'_>, granted: bool| {
                    if me.last_dyn_recorded != Some(d.token) {
                        me.last_dyn_recorded = Some(d.token);
                        if let Some(rec) = &me.recorder {
                            rec.record_duration("sched.dyn_wait", now, wait);
                        }
                        let metrics = ctx.metrics();
                        metrics.observe_duration("sched.dyn_wait", wait);
                        if granted {
                            // Grant-only wait: the scheduler-side half of
                            // the dynget→grant SLO the soak tracks.
                            metrics.observe_duration("sched.dyn_grant_wait", wait);
                        }
                    }
                };
                // Grant up to `count`, at least `min_count` (partial
                // grants; min_count == count restores the paper's strict
                // semantics).
                let granted = match d.kind {
                    DynResource::Accelerators => {
                        let free = tracker.free_acc_count();
                        let give = free.min(d.count as usize);
                        if give >= d.min_count.max(1) as usize {
                            Some(tracker.take_accelerators(give).expect("counted"))
                        } else {
                            None
                        }
                    }
                    DynResource::ComputeNodes { ppn } => {
                        tracker.take_compute(d.count as usize, ppn, self.config.allocation)
                    }
                };
                match granted {
                    Some(accs) => {
                        if self.config.incremental_snapshots {
                            self.touched.extend(accs.iter().copied());
                        }
                        record_wait(self, ctx, true);
                        ctx.trace(format!(
                            "dyn request of {} granted {} of {} node(s)",
                            d.job,
                            accs.len(),
                            d.count
                        ));
                        self.send_server(ctx, RunDynCmd { token: d.token, accs });
                    }
                    None => {
                        let waited = now.since(d.queued_at);
                        match self.config.dyn_queue_wait {
                            Some(limit) if waited < limit => {
                                // Ablation of §III-E: keep the request
                                // queued and retry instead of rejecting.
                                ctx.trace(format!(
                                    "dyn request of {} still waiting ({waited})",
                                    d.job
                                ));
                                ctx.set_timer(self.config.dyn_retry, TOKEN_POLL);
                            }
                            _ => {
                                // The paper's policy: no reservations for
                                // dynamic requests; reject immediately.
                                record_wait(self, ctx, false);
                                ctx.trace(format!("dyn request of {} rejected", d.job));
                                self.send_server(ctx, RejectDynCmd { token: d.token });
                            }
                        }
                    }
                }
            }
            WorkItem::Job(j) => {
                if self.blocked_no_backfill {
                    return; // strict queue: head is blocked
                }
                if let Some(shadow) = self.shadow {
                    if !may_backfill(&j, tracker, shadow, now) {
                        return;
                    }
                }
                let total_accs = j.nodes * j.acpn as usize;
                let can = tracker.fits(&j);
                if can {
                    if self.shadow.is_some() {
                        // Started under a shadow reservation: a backfill.
                        ctx.metrics().counter_inc("sched.backfill_hits");
                    }
                    let compute = tracker
                        .take_compute(j.nodes, j.ppn, self.config.allocation)
                        .expect("fits() checked");
                    let flat = tracker.take_accelerators(total_accs).expect("fits() checked");
                    if self.config.incremental_snapshots {
                        self.touched.extend(compute.iter().copied());
                        self.touched.extend(flat.iter().copied());
                    }
                    let accs = split_accs(&flat, j.nodes, j.acpn);
                    ctx.trace(format!("starting {} on {} node(s)", j.job, compute.len()));
                    self.iter_started.push(RunningJobSnap {
                        job: j.job,
                        owner: j.owner.clone(),
                        started: now,
                        walltime_estimate: j.walltime_estimate,
                        compute_hosts: compute.clone(),
                        ppn: j.ppn,
                        acc_hosts: flat.clone(),
                    });
                    self.send_server(ctx, RunJobCmd { job: j.job, compute, accs });
                } else if self.shadow.is_none() {
                    if self.config.backfill {
                        let mut running = self.running.clone();
                        running.extend(self.iter_started.iter().cloned());
                        self.shadow = shadow_time(&j, tracker, &running, now);
                    } else {
                        self.blocked_no_backfill = true;
                    }
                }
            }
        }
    }

    fn finish_iteration(&mut self, ctx: &mut Ctx<'_>) {
        self.phase = Phase::Idle;
        if !self.config.incremental_snapshots {
            self.tracker = None;
        }
        self.iterations += 1;
        let now = ctx.now();
        let metrics = ctx.metrics();
        metrics.counter_inc("sched.iterations");
        if let Some(began) = self.iter_began.take() {
            metrics.observe_duration("sched.iteration_cost", now.since(began));
        }
        let me = ctx.me();
        ctx.tracer().span_end(now, TraceSource::Actor(me), "maui", "sched.iteration");
        if self.dirty {
            self.dirty = false;
            self.start_iteration(ctx);
        } else if self.last_snapshot_active {
            self.arm_poll(ctx);
        }
    }
}

impl Actor for MauiScheduler {
    fn name(&self) -> &str {
        "maui"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.arm_poll(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        let env = match env.downcast::<SchedWake>() {
            Ok(_) => {
                match self.phase {
                    Phase::Idle => self.start_iteration(ctx),
                    _ => self.dirty = true,
                }
                return;
            }
            Err(e) => e,
        };
        let env = match env.downcast::<ClusterQueryResp>() {
            Ok(m) => return self.handle_snapshot(ctx, m),
            Err(e) => e,
        };
        ctx.trace(format!("maui: unhandled message {env:?}"));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_STEP => self.step(ctx),
            TOKEN_POLL => {
                self.poll_armed = false;
                if self.phase == Phase::Idle {
                    self.start_iteration(ctx);
                }
            }
            _ => {}
        }
    }
}
