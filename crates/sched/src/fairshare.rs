//! Fairshare accounting: exponentially decayed per-user core-seconds,
//! in the spirit of Maui's fairshare component.

use std::collections::BTreeMap;

use darms_rms::proto::RunningJobSnap;
use darms_sim::{SimDuration, SimTime};

/// Decayed usage per owner.
#[derive(Clone, Debug)]
pub struct Fairshare {
    usage: BTreeMap<String, f64>,
    last_update: SimTime,
    half_life: SimDuration,
}

impl Fairshare {
    /// Create with the given decay half-life.
    pub fn new(half_life: SimDuration) -> Self {
        Fairshare { usage: BTreeMap::new(), last_update: SimTime::ZERO, half_life }
    }

    /// Decay all usage to `now` and accrue `cores × Δt` for every running
    /// job's owner.
    pub fn update(&mut self, now: SimTime, running: &[RunningJobSnap]) {
        let dt = (now - self.last_update).as_secs_f64();
        if dt > 0.0 {
            let hl = self.half_life.as_secs_f64().max(1e-9);
            let decay = 0.5f64.powf(dt / hl);
            for v in self.usage.values_mut() {
                *v *= decay;
            }
            for job in running {
                let cores = (job.compute_hosts.len() as f64) * job.ppn as f64;
                *self.usage.entry(job.owner.clone()).or_insert(0.0) += cores * dt;
            }
            self.last_update = now;
        }
        self.usage.retain(|_, v| *v > 1e-9);
    }

    /// Current decayed usage of one owner.
    pub fn usage_of(&self, owner: &str) -> f64 {
        self.usage.get(owner).copied().unwrap_or(0.0)
    }

    /// Usage normalised to the heaviest user (0..=1); 0 when idle.
    pub fn normalised(&self, owner: &str) -> f64 {
        let max = self.usage.values().cloned().fold(0.0, f64::max);
        if max <= 0.0 {
            0.0
        } else {
            self.usage_of(owner) / max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darms_net::HostId;
    use darms_rms::JobId;

    fn running(owner: &str, nodes: usize, ppn: u32) -> RunningJobSnap {
        RunningJobSnap {
            job: JobId(1),
            owner: owner.into(),
            started: SimTime::ZERO,
            walltime_estimate: SimDuration::from_secs(100),
            compute_hosts: (0..nodes).map(HostId::from_raw).collect(),
            ppn,
            acc_hosts: vec![],
        }
    }

    #[test]
    fn usage_accrues_with_cores_and_time() {
        let mut fs = Fairshare::new(SimDuration::from_secs(3600));
        fs.update(SimTime::from_nanos(10_000_000_000), &[running("alice", 2, 4)]);
        // 8 cores for 10 seconds ~ 80 core-seconds (minus negligible decay)
        let u = fs.usage_of("alice");
        assert!(u > 75.0 && u <= 80.0, "usage {u}");
        assert_eq!(fs.usage_of("bob"), 0.0);
    }

    #[test]
    fn usage_decays_towards_zero() {
        let hl = SimDuration::from_secs(100);
        let mut fs = Fairshare::new(hl);
        fs.update(SimTime::from_nanos(10_000_000_000), &[running("alice", 1, 1)]);
        let before = fs.usage_of("alice");
        // One half-life later with no running jobs.
        fs.update(SimTime::from_nanos(110_000_000_000), &[]);
        let after = fs.usage_of("alice");
        assert!((after - before / 2.0).abs() < before * 0.05, "{before} -> {after}");
    }

    #[test]
    fn normalisation_is_relative_to_heaviest() {
        let mut fs = Fairshare::new(SimDuration::from_secs(3600));
        fs.update(
            SimTime::from_nanos(5_000_000_000),
            &[running("alice", 4, 4), running("bob", 1, 1)],
        );
        assert!((fs.normalised("alice") - 1.0).abs() < 1e-9);
        assert!(fs.normalised("bob") > 0.0 && fs.normalised("bob") < 0.1);
        assert_eq!(fs.normalised("carol"), 0.0);
    }

    #[test]
    fn idle_system_normalises_to_zero() {
        let fs = Fairshare::new(SimDuration::from_secs(10));
        assert_eq!(fs.normalised("nobody"), 0.0);
    }
}
