//! EASY backfill: a reservation (shadow time) for the highest-priority
//! blocked job, and conservative backfilling of later jobs that finish
//! before it.

use darms_rms::proto::{QueuedJobSnap, RunningJobSnap};
use darms_sim::SimTime;

use crate::alloc::FreeTracker;

/// The earliest time the blocked job is guaranteed to fit, assuming every
/// running job releases its resources at its walltime estimate. Returns
/// `None` if the job would not fit even on an empty cluster (it can never
/// start; no reservation is made).
pub fn shadow_time(
    blocked: &QueuedJobSnap,
    tracker: &FreeTracker,
    running: &[RunningJobSnap],
    now: SimTime,
) -> Option<SimTime> {
    if tracker.fits(blocked) {
        return Some(now);
    }
    let mut future = tracker.clone();
    let mut ends: Vec<(&RunningJobSnap, SimTime)> =
        running.iter().map(|r| (r, r.started + r.walltime_estimate)).collect();
    ends.sort_by_key(|(r, t)| (*t, r.job));
    for (r, end) in ends {
        future.give_back(&r.compute_hosts, r.ppn, &r.acc_hosts);
        if future.fits(blocked) {
            return Some(end.max(now));
        }
    }
    None
}

/// Whether `candidate` may start now without delaying the reservation:
/// conservative EASY — it must fit now *and* be estimated to finish before
/// the shadow time.
pub fn may_backfill(
    candidate: &QueuedJobSnap,
    tracker: &FreeTracker,
    shadow: SimTime,
    now: SimTime,
) -> bool {
    tracker.fits(candidate) && now + candidate.walltime_estimate <= shadow
}

#[cfg(test)]
mod tests {
    use super::*;
    use darms_net::HostId;
    use darms_rms::proto::{ClusterSnapshot, NodeSnap};
    use darms_rms::{JobId, NodeRole};
    use darms_sim::SimDuration;

    fn h(i: usize) -> HostId {
        HostId::from_raw(i)
    }

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn at(s: u64) -> SimTime {
        SimTime::ZERO + secs(s)
    }

    /// 2 compute nodes (4 cores), 1 accelerator; node 0 fully busy.
    fn snapshot() -> ClusterSnapshot {
        ClusterSnapshot {
            nodes: vec![
                NodeSnap {
                    host: h(0),
                    role: NodeRole::Compute,
                    cores_total: 4,
                    cores_free: 0,
                    offline: false,
                },
                NodeSnap {
                    host: h(1),
                    role: NodeRole::Compute,
                    cores_total: 4,
                    cores_free: 4,
                    offline: false,
                },
                NodeSnap {
                    host: h(2),
                    role: NodeRole::Accelerator,
                    cores_total: 1,
                    cores_free: 1,
                    offline: false,
                },
            ],
            queued: vec![],
            running: vec![],
            dyn_pending: None,
        }
    }

    fn running(id: u64, host: usize, started_s: u64, wall_s: u64) -> RunningJobSnap {
        RunningJobSnap {
            job: JobId(id),
            owner: "u".into(),
            started: at(started_s),
            walltime_estimate: secs(wall_s),
            compute_hosts: vec![h(host)],
            ppn: 4,
            acc_hosts: vec![],
        }
    }

    fn wide_job(nodes: usize) -> QueuedJobSnap {
        QueuedJobSnap {
            job: JobId(99),
            owner: "u".into(),
            submitted: SimTime::ZERO,
            nodes,
            ppn: 4,
            acpn: 0,
            walltime_estimate: secs(50),
        }
    }

    #[test]
    fn shadow_is_now_when_job_fits() {
        let t = FreeTracker::from_snapshot(&snapshot());
        let s = shadow_time(&wide_job(1), &t, &[], at(10)).unwrap();
        assert_eq!(s, at(10));
    }

    #[test]
    fn shadow_is_running_job_end() {
        let t = FreeTracker::from_snapshot(&snapshot());
        // Needs both nodes; node 0 frees when job 1 ends at t=100.
        let s = shadow_time(&wide_job(2), &t, &[running(1, 0, 0, 100)], at(10)).unwrap();
        assert_eq!(s, at(100));
    }

    #[test]
    fn impossible_job_has_no_shadow() {
        let t = FreeTracker::from_snapshot(&snapshot());
        assert!(shadow_time(&wide_job(3), &t, &[running(1, 0, 0, 100)], at(10)).is_none());
    }

    #[test]
    fn shadow_never_precedes_now() {
        let t = FreeTracker::from_snapshot(&snapshot());
        // Running job's estimate already expired (it overran): end=5 < now=50.
        let s = shadow_time(&wide_job(2), &t, &[running(1, 0, 0, 5)], at(50)).unwrap();
        assert_eq!(s, at(50));
    }

    #[test]
    fn backfill_exact_fit_boundary() {
        // Conservative EASY admits a job whose estimated completion lands
        // exactly on the shadow time — it cannot delay the reservation —
        // and rejects one that overshoots by a single nanosecond.
        let t = FreeTracker::from_snapshot(&snapshot());
        let now = at(10);
        let shadow = at(60);
        let mut exact = wide_job(1);
        exact.walltime_estimate = shadow.since(now);
        assert!(may_backfill(&exact, &t, shadow, now), "now + walltime == shadow fits");
        let mut over = wide_job(1);
        over.walltime_estimate = shadow.since(now) + SimDuration::from_nanos(1);
        assert!(!may_backfill(&over, &t, shadow, now), "one nanosecond past the shadow");
    }

    #[test]
    fn backfill_requires_fit_and_completion_before_shadow() {
        let t = FreeTracker::from_snapshot(&snapshot());
        let mut short = wide_job(1);
        short.walltime_estimate = secs(20);
        assert!(may_backfill(&short, &t, at(100), at(10)));
        // too long: would end after the shadow time
        let mut long = wide_job(1);
        long.walltime_estimate = secs(200);
        assert!(!may_backfill(&long, &t, at(100), at(10)));
        // doesn't fit at all
        assert!(!may_backfill(&wide_job(2), &t, at(1000), at(10)));
    }
}
