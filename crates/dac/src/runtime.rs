//! The DAC runtime: shared handles (pseudo-FS, kernel registry, device
//! pool) and the accelerator **back-end daemon** — the per-accelerator
//! process of the paper's Fig. 3 that receives computation requests over
//! MPI and executes them on the device through the driver API.

use std::collections::BTreeSet;
use std::sync::Arc;

use darms_mpi::{data, Comm, MpiProc, MpiRuntime, Rank};
use darms_net::HostId;
use darms_rms::{JobId, PseudoFs};
use darms_sim::SimDuration;
use parking_lot::Mutex;

use crate::cost::DacCostModel;
use crate::device::{AccDevice, DevPtr, DeviceProps};
use crate::kernel::{KernelArgs, KernelRegistry};

/// MPI tag of front-end → daemon requests.
pub(crate) const TAG_REQ: i32 = 10;
/// MPI tag of daemon → front-end replies.
pub(crate) const TAG_REP: i32 = 11;
/// MPI tag of daemon ↔ daemon traffic during group operations — the
/// paper's "accelerators that communicate directly with each other"
/// scenario (§I): kernels running across the set without the host.
pub(crate) const TAG_PEER: i32 = 12;

/// Name under which the back-end daemon executable is registered.
pub const DAEMON_EXE: &str = "ac-daemon";

/// A front-end request to one daemon.
pub(crate) struct DacRequest {
    pub req: u64,
    pub body: ReqBody,
}

pub(crate) enum ReqBody {
    /// Allocate device memory.
    MemAlloc { size: u64 },
    /// Free device memory.
    MemFree { ptr: DevPtr },
    /// Host-to-device transfer. `overlap_credit` is the wire time already
    /// spent moving the bytes; under the pipelined protocol the device
    /// copy overlaps it.
    CopyH2D { ptr: DevPtr, offset: u64, payload: Arc<Vec<u8>>, overlap_credit: SimDuration },
    /// Device-to-host transfer.
    CopyD2H { ptr: DevPtr, offset: u64, len: u64 },
    /// Launch a named kernel.
    KernelRun { name: String, args: KernelArgs },
    /// Participate in a host-free group reduction: every listed daemon
    /// sums `elems` f64 values at `ptr` locally, the peers combine the
    /// partials **among themselves** over the session communicator
    /// (daemon-to-daemon MPI, no host involvement), and the group root
    /// (lowest participating rank) stores the total back at `out` and
    /// replies to the front end. Other participants reply with a bare
    /// ack once their partial has been handed off.
    GroupReduceSum {
        ptr: DevPtr,
        elems: u64,
        out: DevPtr,
        /// Participating daemon ranks in the session communicator,
        /// sorted ascending; the first is the group root.
        peers: Vec<Rank>,
    },
    /// Participate in a collective spawn+merge (no reply; the front-end
    /// is growing the communicator for a dynamic allocation).
    Grow,
    /// Participate in a communicator shrink (no reply; a sibling set is
    /// being released).
    Shrink { removed: Vec<Rank> },
    /// Free everything, disconnect and exit (no reply).
    Release,
}

/// A daemon's reply.
pub(crate) struct DacReply {
    pub req: u64,
    pub body: RepBody,
}

#[derive(Clone)]
pub(crate) enum RepBody {
    Ptr(Result<DevPtr, String>),
    Ack(Result<(), String>),
    Data(Result<Vec<u8>, String>),
}

/// Cloneable handle to everything the DAC layer shares: the MPI runtime,
/// the pseudo-FS (port files), the kernel registry, the device pool and
/// the cost model. Creating it registers the daemon executable.
#[derive(Clone)]
pub struct DacRuntime {
    pub(crate) mpi: MpiRuntime,
    pub(crate) fs: PseudoFs,
    pub(crate) cost: DacCostModel,
    pub(crate) kernels: KernelRegistry,
    pub(crate) device_props: DeviceProps,
    devices: Arc<Mutex<std::collections::BTreeMap<usize, Arc<Mutex<AccDevice>>>>>,
}

impl DacRuntime {
    /// Create the runtime and register the daemon executable with the MPI
    /// runtime.
    pub fn new(
        mpi: MpiRuntime,
        fs: PseudoFs,
        cost: DacCostModel,
        kernels: KernelRegistry,
        device_props: DeviceProps,
    ) -> Self {
        let rt = DacRuntime {
            mpi,
            fs,
            cost,
            kernels,
            device_props,
            devices: Arc::new(Mutex::new(Default::default())),
        };
        let rt2 = rt.clone();
        rt.mpi.register_exe(DAEMON_EXE, move |mpi_proc, args| {
            daemon_main(mpi_proc, rt2.clone(), args)
        });
        rt
    }

    /// The MPI runtime used by daemons and front-ends.
    pub fn mpi(&self) -> &MpiRuntime {
        &self.mpi
    }

    /// The shared pseudo-filesystem.
    pub fn fs(&self) -> &PseudoFs {
        &self.fs
    }

    /// The cost model.
    pub fn cost(&self) -> &DacCostModel {
        &self.cost
    }

    /// The kernel registry (register custom kernels here).
    pub fn kernels(&self) -> &KernelRegistry {
        &self.kernels
    }

    /// The device attached to `host` (created on first use). One device
    /// per accelerator host, matching Fig. 1(b).
    pub fn device_for(&self, host: HostId) -> Arc<Mutex<AccDevice>> {
        self.devices
            .lock()
            .entry(host.index())
            .or_insert_with(|| Arc::new(Mutex::new(AccDevice::new(self.device_props))))
            .clone()
    }
}

/// Entry point of the accelerator daemon.
///
/// Args: `[job_id, cn_index, mode]` where mode is `static` (started by the
/// mother superior; rendezvous through a port file) or `dyn` (spawned by
/// the front-end via `MPI_Comm_spawn`).
async fn daemon_main(mut mpi: MpiProc, dac: DacRuntime, args: Vec<String>) {
    let job = JobId(args[0].parse().expect("daemon arg 0: job id"));
    let cn_index: usize = args[1].parse().expect("daemon arg 1: cn index");
    let mode = args.get(2).map(String::as_str).unwrap_or("static");

    let comm = match mode {
        "static" => {
            let world = mpi.world().expect("static daemons are launched as a world");
            // All daemons of the set synchronise, then the root opens the
            // port and publishes it for AC_Init (§III-C).
            mpi.barrier(world).await.expect("daemon world barrier");
            let merged = if world.rank() == 0 {
                let port = mpi.open_port();
                dac.fs.write(job, PseudoFs::ac_port_file(cn_index), port.clone());
                let inter = mpi.comm_accept(&port, world).await.expect("daemon accept");
                mpi.close_port(&port);
                let merged = mpi.intercomm_merge(inter, true).await.expect("daemon merge");
                mpi.comm_disconnect(inter);
                merged
            } else {
                let inter = mpi.comm_accept("", world).await.expect("daemon accept (non-root)");
                let merged = mpi.intercomm_merge(inter, true).await.expect("daemon merge");
                mpi.comm_disconnect(inter);
                merged
            };
            // The world communicator is not used once the session
            // communicator exists.
            mpi.comm_disconnect(world);
            merged
        }
        "dyn" => {
            let parent = mpi.parent().expect("dynamic daemons are spawned");
            let merged = mpi.intercomm_merge(parent, true).await.expect("daemon merge");
            if let Some(world) = mpi.world() {
                mpi.comm_disconnect(world);
            }
            mpi.comm_disconnect(parent);
            merged
        }
        other => panic!("unknown daemon mode {other}"),
    };
    serve(mpi, dac, comm).await;
}

/// The daemon service loop: execute computation requests from the compute
/// node (rank 0 of the merged communicator) until released.
async fn serve(mut mpi: MpiProc, dac: DacRuntime, mut comm: Comm) {
    let device = dac.device_for(mpi.host());
    let mut my_ptrs: BTreeSet<DevPtr> = BTreeSet::new();
    let overhead = dac.cost.request_overhead;
    // Idempotency: request ids already executed, with the reply (if any)
    // for replay, so a duplicated request never runs its side effects
    // twice. Bounded FIFO eviction.
    let mut seen: std::collections::BTreeMap<u64, Option<RepBody>> =
        std::collections::BTreeMap::new();
    let mut seen_order: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    const SEEN_CAP: usize = 256;
    loop {
        let msg = mpi.recv(comm, Some(0), Some(TAG_REQ)).await;
        let request =
            msg.data.downcast_ref::<DacRequest>().expect("TAG_REQ messages carry DacRequest");
        let req = request.req;
        if let Some(cached) = seen.get(&req) {
            if let Some(body) = cached.clone() {
                reply(&mpi, comm, req, body, &dac);
            }
            continue;
        }
        seen.insert(req, None);
        seen_order.push_back(req);
        if seen_order.len() > SEEN_CAP {
            if let Some(old) = seen_order.pop_front() {
                seen.remove(&old);
            }
        }
        match &request.body {
            ReqBody::Grow => {
                let inter = mpi
                    .comm_spawn(comm, DAEMON_EXE, &[], &[])
                    .await
                    .expect("daemon joins collective spawn");
                let merged = mpi.intercomm_merge(inter, false).await.expect("daemon joins merge");
                mpi.comm_disconnect(inter);
                mpi.comm_disconnect(comm); // superseded session comm
                comm = merged;
            }
            ReqBody::Shrink { removed } => {
                let shrunk = mpi.comm_shrink(comm, removed).await.expect("daemon joins shrink");
                mpi.comm_disconnect(comm); // superseded session comm
                comm = shrunk;
            }
            ReqBody::Release => {
                for p in std::mem::take(&mut my_ptrs) {
                    let _ = device.lock().mem_free(p);
                }
                mpi.comm_disconnect(comm);
                break;
            }
            ReqBody::MemAlloc { size } => {
                if !overhead.is_zero() {
                    mpi.proc().sleep(overhead).await;
                }
                let r = device.lock().malloc(*size);
                if let Ok(p) = &r {
                    my_ptrs.insert(*p);
                }
                let body = RepBody::Ptr(r.map_err(|e| e.to_string()));
                seen.insert(req, Some(body.clone()));
                reply(&mpi, comm, req, body, &dac);
            }
            ReqBody::MemFree { ptr } => {
                if !overhead.is_zero() {
                    mpi.proc().sleep(overhead).await;
                }
                let r = device.lock().mem_free(*ptr);
                my_ptrs.remove(ptr);
                let body = RepBody::Ack(r.map_err(|e| e.to_string()));
                seen.insert(req, Some(body.clone()));
                reply(&mpi, comm, req, body, &dac);
            }
            ReqBody::CopyH2D { ptr, offset, payload, overlap_credit } => {
                let dev_time = device.lock().props().h2d_time(payload.len() as u64);
                let effective = dev_time.saturating_sub(*overlap_credit);
                let d = overhead + effective;
                if !d.is_zero() {
                    mpi.proc().sleep(d).await;
                }
                let r = device.lock().write(*ptr, *offset, payload);
                let body = RepBody::Ack(r.map_err(|e| e.to_string()));
                seen.insert(req, Some(body.clone()));
                reply(&mpi, comm, req, body, &dac);
            }
            ReqBody::CopyD2H { ptr, offset, len } => {
                let d = overhead + device.lock().props().d2h_time(*len);
                if !d.is_zero() {
                    mpi.proc().sleep(d).await;
                }
                let r = device.lock().read(*ptr, *offset, *len);
                let bytes = r.as_ref().map(|v| v.len() as u64).unwrap_or(0);
                let body = RepBody::Data(r.map_err(|e| e.to_string()));
                seen.insert(req, Some(body.clone()));
                let rep = DacReply { req, body };
                let _ = mpi.send(comm, 0, TAG_REP, data(rep), dac.cost.ctl_bytes + bytes);
            }
            ReqBody::GroupReduceSum { ptr, elems, out, peers } => {
                let result =
                    group_reduce_sum(&mut mpi, &dac, comm, &device, *ptr, *elems, *out, peers)
                        .await;
                let body = RepBody::Ack(result);
                seen.insert(req, Some(body.clone()));
                reply(&mpi, comm, req, body, &dac);
            }
            ReqBody::KernelRun { name, args } => {
                let result = match dac.kernels.get(name) {
                    Some(k) => {
                        let props = device.lock().props();
                        let cost = (k.cost)(args, &props);
                        let d = overhead + cost;
                        if !d.is_zero() {
                            mpi.proc().sleep(d).await;
                        }
                        (k.body)(&mut device.lock(), args)
                    }
                    None => Err(format!("unknown kernel '{name}'")),
                };
                let body = RepBody::Ack(result);
                seen.insert(req, Some(body.clone()));
                reply(&mpi, comm, req, body, &dac);
            }
        }
    }
}

fn reply(mpi: &MpiProc, comm: Comm, req: u64, body: RepBody, dac: &DacRuntime) {
    let rep = DacReply { req, body };
    let _ = mpi.send(comm, 0, TAG_REP, data(rep), dac.cost.ctl_bytes);
}

/// Daemon-side group reduction: partial sums travel peer-to-peer over the
/// session communicator (a star on the group root), never through the
/// compute node — the extended host-free kernel pattern of §I.
#[allow(clippy::too_many_arguments)]
async fn group_reduce_sum(
    mpi: &mut MpiProc,
    dac: &DacRuntime,
    comm: Comm,
    device: &Arc<Mutex<AccDevice>>,
    ptr: DevPtr,
    elems: u64,
    out: DevPtr,
    peers: &[Rank],
) -> Result<(), String> {
    use crate::device::{as_f64s, f64s_to_bytes};
    let me = comm.rank();
    let root = *peers.first().ok_or("empty peer group")?;
    // Local partial sum (with a modelled compute cost).
    let props = device.lock().props();
    let cost = dac.cost.request_overhead
        + darms_sim::SimDuration::from_secs_f64(elems as f64 / (props.flops * 0.3).max(1.0));
    if !cost.is_zero() {
        mpi.proc().sleep(cost).await;
    }
    let bytes = device.lock().read(ptr, 0, elems * 8).map_err(|e| e.to_string())?;
    let partial: f64 = as_f64s(&bytes).iter().sum();
    if me == root {
        let mut total = partial;
        for _ in 1..peers.len() {
            let msg = mpi.recv(comm, None, Some(TAG_PEER)).await;
            total += *msg.data.downcast_ref::<f64>().ok_or("peer partial must be f64")?;
        }
        device.lock().write(out, 0, &f64s_to_bytes(&[total])).map_err(|e| e.to_string())?;
        Ok(())
    } else {
        mpi.send(comm, root, TAG_PEER, data(partial), 8).map_err(|e| e.to_string())?;
        Ok(())
    }
}
