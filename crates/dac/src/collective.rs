//! Collective `AC_Get` / `AC_Free` over the compute nodes of a
//! multi-node job (§III-D).
//!
//! When requested collectively, one compute node (the *collector*, node
//! index 0) gathers every participant's accelerator count, sends a
//! **single** `pbs_dynget` for the total, and distributes the grant.
//! Consequences, exactly as the paper states:
//!
//! - either **all** compute nodes get their accelerators or **none**
//!   (the batch system allocates the total or rejects);
//! - all participants share one client-id, so the sets can only be
//!   released **collectively**;
//! - each compute node's new daemons still live in that node's own
//!   session communicator — compute nodes never gain access to each
//!   other's accelerators (§III-C).
//!
//! Tasks of one job coordinate over a lightweight per-job channel whose
//! addresses are published through the job's pseudo-filesystem (the same
//! medium the port files use).

use darms_net::{Address, HostId};
use darms_rms::proto::DynReject;
use darms_rms::{ifl, ClientId, JobCtx};
use darms_sim::SimDuration;

use crate::frontend::{AcSession, AcSet, DacError};

/// Wire messages of the per-job task channel.
#[derive(Clone)]
struct CollMsg {
    from: usize,
    body: CollBody,
}

#[derive(Clone)]
enum CollBody {
    /// Participant -> collector: my accelerator count for this call.
    Count(u32),
    /// Collector -> participant: your share of the grant.
    Grant { client_id: ClientId, accs: Vec<HostId> },
    /// Collector -> participant: the whole request was rejected.
    Rejected(DynReject),
    /// Participant -> collector: my share has been released locally.
    Released,
}

/// A per-job coordination channel between the job's compute-node tasks.
///
/// Every task of the job must construct it (once) before collective
/// calls; construction publishes this task's address and waits for all
/// peers — a barrier, like `MPI_Init` for the job's task group.
pub struct TaskComm {
    me: usize,
    peers: Vec<Address>,
}

impl TaskComm {
    /// File name for task `i`'s channel address.
    fn addr_file(i: usize) -> String {
        format!("task_addr_{i}")
    }

    /// Establish the channel from within a job task. Blocks until every
    /// compute node of the job has published its address.
    pub async fn establish(jc: &JobCtx) -> TaskComm {
        let n = jc.compute.len();
        let my_addr = jc.net.bind_auto(jc.host, jc.proc.endpoint());
        jc.fs.write(jc.job, Self::addr_file(jc.node_index), encode_addr(my_addr));
        let poll = SimDuration::from_millis(1);
        let mut peers = Vec::with_capacity(n);
        for i in 0..n {
            loop {
                if let Some(s) = jc.fs.read(jc.job, &Self::addr_file(i)) {
                    peers.push(decode_addr(&s));
                    break;
                }
                jc.proc.sleep(poll).await;
            }
        }
        TaskComm { me: jc.node_index, peers }
    }

    /// This task's index.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Number of participating tasks.
    pub fn size(&self) -> usize {
        self.peers.len()
    }

    fn send(&self, jc: &JobCtx, to: usize, body: CollBody) {
        let msg = CollMsg { from: self.me, body };
        let out = jc.net.send_from_proc(&jc.proc, jc.host, self.peers[to], msg, 64);
        assert!(out.is_sent(), "task channel send failed");
    }

    async fn recv_from(&self, jc: &JobCtx, from: usize) -> CollBody {
        let env = jc.proc.recv_where(|e| e.peek::<CollMsg>().is_some_and(|m| m.from == from)).await;
        env.downcast::<CollMsg>().expect("matched").body
    }

    async fn recv_any(&self, jc: &JobCtx) -> (usize, CollBody) {
        let env = jc.proc.recv_where(|e| e.peek::<CollMsg>().is_some()).await;
        let m = env.downcast::<CollMsg>().expect("matched");
        (m.from, m.body)
    }
}

impl AcSession {
    /// Collective `AC_Get`: every compute-node task of the job calls this
    /// with its own `count` (which may be zero). The collector (node 0)
    /// sends one `pbs_dynget` for the total; on success each node spawns
    /// daemons on its share and receives a set carrying the **shared**
    /// client-id. All-or-nothing: if the total cannot be satisfied,
    /// every participant gets `Err(Rejected)`.
    pub async fn ac_get_collective(
        &mut self,
        jc: &JobCtx,
        tc: &TaskComm,
        count: u32,
    ) -> Result<AcSet, DacError> {
        let n = tc.size();
        if n == 1 {
            // Degenerate collective: identical to the individual call.
            return self.ac_get(count).await;
        }
        if tc.me() == 0 {
            // Collect everyone's count (participants indexed 1..n).
            let mut counts = vec![0u32; n];
            counts[0] = count;
            for _ in 1..n {
                match tc.recv_any(jc).await {
                    (from, CollBody::Count(c)) => counts[from] = c,
                    (_, CollBody::Grant { .. } | CollBody::Rejected(_) | CollBody::Released) => {
                        unreachable!("participants send counts first")
                    }
                }
            }
            let total: u32 = counts.iter().sum();
            // One request for the grand total (the paper's single-request
            // semantics).
            let grant =
                ifl::pbs_dynget(&jc.proc, &jc.net, jc.host, jc.server, jc.job, jc.host, total)
                    .await;
            match grant {
                Ok(g) => {
                    // Slice the grant per participant, in node order.
                    let mut offset = counts[0] as usize;
                    for (i, &c) in counts.iter().enumerate().skip(1) {
                        let share = g.accs[offset..offset + c as usize].to_vec();
                        offset += c as usize;
                        tc.send(jc, i, CollBody::Grant { client_id: g.client_id, accs: share });
                    }
                    let mine = g.accs[..counts[0] as usize].to_vec();
                    self.adopt_grant(g.client_id, mine).await
                }
                Err(r) => {
                    for i in 1..n {
                        tc.send(jc, i, CollBody::Rejected(r));
                    }
                    Err(DacError::Rejected(r))
                }
            }
        } else {
            tc.send(jc, 0, CollBody::Count(count));
            match tc.recv_from(jc, 0).await {
                CollBody::Grant { client_id, accs } => self.adopt_grant(client_id, accs).await,
                CollBody::Rejected(r) => Err(DacError::Rejected(r)),
                CollBody::Count(_) | CollBody::Released => {
                    unreachable!("collector replies with Grant or Rejected")
                }
            }
        }
    }

    /// Collective `AC_Free`: releases a collectively obtained set. All
    /// participants call it with their local share; each tears down its
    /// local daemons, then the collector issues the single `pbs_dynfree`
    /// for the shared client-id (the paper: same client-id ⇒ released
    /// only collectively).
    pub async fn ac_free_collective(
        &mut self,
        jc: &JobCtx,
        tc: &TaskComm,
        set: &AcSet,
    ) -> Result<(), DacError> {
        let n = tc.size();
        if n == 1 {
            return self.ac_free(set).await;
        }
        // Tear down local daemons; the server is notified once, below.
        if !set.handles.is_empty() {
            self.release_local(set).await?;
        }
        if tc.me() == 0 {
            for _ in 1..n {
                match tc.recv_any(jc).await {
                    (_, CollBody::Released) => {}
                    (_, CollBody::Count(_) | CollBody::Grant { .. } | CollBody::Rejected(_)) => {
                        unreachable!("participants send Released")
                    }
                }
            }
            let ok = ifl::pbs_dynfree(&jc.proc, &jc.net, jc.host, jc.server, jc.job, set.client_id)
                .await;
            debug_assert!(ok, "server lost track of the collective set");
            Ok(())
        } else {
            tc.send(jc, 0, CollBody::Released);
            Ok(())
        }
    }
}

fn encode_addr(a: Address) -> String {
    format!("{}:{}", a.host.index(), a.port.0)
}

fn decode_addr(s: &str) -> Address {
    let (h, p) = s.split_once(':').expect("host:port");
    Address::new(
        HostId::from_raw(h.parse().expect("host index")),
        darms_net::Port(p.parse().expect("port")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use darms_net::Port;

    #[test]
    fn addr_encoding_round_trips() {
        let a = Address::new(HostId::from_raw(3), Port(40001));
        assert_eq!(decode_addr(&encode_addr(a)), a);
    }

    #[test]
    fn addr_file_naming() {
        assert_eq!(TaskComm::addr_file(0), "task_addr_0");
        assert_eq!(TaskComm::addr_file(7), "task_addr_7");
    }
}
