//! The compute-node front-end: the **computation API** (memory management
//! and kernel launches on remote accelerators, Listing 1 of the paper)
//! and the **resource-management API** (`AC_Init`, `AC_Get`, `AC_Free`,
//! `AC_Finalize`, §II-C/III).

use std::fmt;

use darms_mpi::{data, Comm, MpiError, MpiProc, Rank};
use darms_net::{Address, HostId, Network};
use darms_rms::proto::{DynGrant, DynReject};
use darms_rms::{ifl, ClientId, JobCtx, JobId, PseudoFs};
use darms_sim::Recorder;

use crate::device::DevPtr;
use crate::kernel::KernelArgs;
use crate::runtime::{
    DacReply, DacRequest, DacRuntime, RepBody, ReqBody, DAEMON_EXE, TAG_REP, TAG_REQ,
};

/// Opaque handle to one associated accelerator (the paper's `ac_handle`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AcHandle(pub(crate) usize);

impl fmt::Display for AcHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ac{}", self.0)
    }
}

/// A dynamically obtained accelerator set; released as a unit through
/// [`AcSession::ac_free`] (the paper's client-id semantics, §III-D).
#[derive(Clone, Debug)]
pub struct AcSet {
    /// The batch system's set identifier.
    pub client_id: ClientId,
    /// Handles of the accelerators in the set.
    pub handles: Vec<AcHandle>,
}

/// Errors from the DAC front-end.
#[derive(Clone, Debug)]
pub enum DacError {
    /// Device-side failure (allocation, bounds, kernel).
    Device(String),
    /// Handle is not live (released or finalized).
    BadHandle(AcHandle),
    /// MPI-level failure.
    Mpi(MpiError),
    /// The batch system rejected the dynamic request; the application
    /// continues with its current accelerators (§II-B).
    Rejected(DynReject),
    /// A daemon did not answer within the configured request timeout —
    /// typically a failed accelerator host. The handle should be treated
    /// as lost.
    Timeout(AcHandle),
}

impl fmt::Display for DacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DacError::Device(e) => write!(f, "device error: {e}"),
            DacError::BadHandle(h) => write!(f, "handle {h} is not live"),
            DacError::Mpi(e) => write!(f, "mpi error: {e}"),
            DacError::Rejected(r) => write!(f, "dynamic request rejected: {r}"),
            DacError::Timeout(h) => write!(f, "accelerator {h} did not respond (timed out)"),
        }
    }
}

impl std::error::Error for DacError {}

impl From<MpiError> for DacError {
    fn from(e: MpiError) -> Self {
        DacError::Mpi(e)
    }
}

/// A pending asynchronous kernel launch; redeem with
/// [`AcSession::kernel_wait`]. Launching work on several accelerators and
/// waiting afterwards is how applications overlap kernels across the set
/// (the latency-hiding usage the paper's introduction motivates).
#[derive(Debug)]
#[must_use = "a launched kernel must be waited on"]
pub struct Launch {
    handle: AcHandle,
    req: u64,
}

struct HandleRec {
    rank: Rank,
    live: bool,
    set: Option<ClientId>,
}

/// One compute node's session with its accelerators. Created by
/// [`AcSession::init`] (the `AC_Init()` of the paper).
pub struct AcSession {
    mpi: MpiProc,
    dac: DacRuntime,
    job: JobId,
    cn_index: usize,
    host: HostId,
    net: Network,
    server: Address,
    /// The merged intra-communicator (compute node = rank 0). `None`
    /// until the first accelerators are associated.
    comm: Option<Comm>,
    handles: Vec<HandleRec>,
    next_req: u64,
    /// Replies that arrived while waiting for a different request id
    /// (multiple asynchronous operations may be in flight per handle).
    /// Keyed by request id alone: ids are unique per session, while ranks
    /// are remapped by shrinks and may alias old traffic.
    stashed: std::collections::BTreeMap<u64, RepBodyOwned>,
    /// Request ids whose wait timed out: their reply may still be in
    /// flight (or duplicated by a faulty network) and must be discarded
    /// on arrival instead of being stashed against a future request.
    tombstones: std::collections::BTreeSet<u64>,
    recorder: Option<Recorder>,
}

/// File a reply received while waiting for `want`. `Some` means the wait
/// is answered; otherwise the body is stashed for its own wait — unless
/// its id was tombstoned by an earlier timeout, in which case the late
/// (possibly duplicate) reply is dropped on the floor.
fn file_reply(
    want: u64,
    rep_req: u64,
    body: RepBodyOwned,
    tombstones: &mut std::collections::BTreeSet<u64>,
    stashed: &mut std::collections::BTreeMap<u64, RepBodyOwned>,
) -> Option<RepBodyOwned> {
    if rep_req == want {
        return Some(body);
    }
    if !tombstones.remove(&rep_req) {
        stashed.insert(rep_req, body);
    }
    None
}

impl AcSession {
    /// `AC_Init()`: wait for this compute node's statically allocated
    /// accelerator daemons, connect to them through the published port,
    /// and merge into the session communicator (compute node rank 0,
    /// accelerators 1..=x). Returns the session and the handles of the
    /// static accelerators.
    ///
    /// With a [`Recorder`] attached, records `acinit.wait` (time until the
    /// daemons were ready — the dark region of the paper's Fig. 7(a)) and
    /// `acinit.connect` (communicator construction — the light region).
    pub async fn init(
        jc: &JobCtx,
        dac: &DacRuntime,
        recorder: Option<Recorder>,
    ) -> (Self, Vec<AcHandle>) {
        let x = jc.acc_hosts.len();
        let t0 = jc.proc.now();
        let mut session = AcSession {
            mpi: dac.mpi.attach(jc.proc.clone(), jc.host).await,
            dac: dac.clone(),
            job: jc.job,
            cn_index: jc.node_index,
            host: jc.host,
            net: jc.net.clone(),
            server: jc.server,
            comm: None,
            handles: Vec::new(),
            next_req: 1,
            stashed: std::collections::BTreeMap::new(),
            tombstones: std::collections::BTreeSet::new(),
            recorder,
        };
        if x == 0 {
            return (session, Vec::new());
        }
        // Wait for the port file the daemon root publishes once every
        // daemon of the set is up (the paper's port-information file).
        let port_file = PseudoFs::ac_port_file(jc.node_index);
        let port = loop {
            if let Some(p) = dac.fs.read(jc.job, &port_file) {
                break p;
            }
            jc.proc.sleep(dac.cost.port_poll).await;
        };
        let t1 = jc.proc.now();
        let self_comm = session.mpi.self_comm();
        let inter = session.mpi.comm_connect(&port, self_comm).await.expect("AC_Init connect");
        let merged = session.mpi.intercomm_merge(inter, false).await.expect("AC_Init merge");
        session.mpi.comm_disconnect(inter);
        session.mpi.comm_disconnect(self_comm);
        debug_assert_eq!(merged.rank(), 0, "compute node holds rank 0 (§III-C)");
        let t2 = jc.proc.now();
        session.comm = Some(merged);
        let mut out = Vec::with_capacity(x);
        for i in 0..x {
            session.handles.push(HandleRec { rank: (i + 1) as Rank, live: true, set: None });
            out.push(AcHandle(i));
        }
        if let Some(rec) = &session.recorder {
            rec.record_duration("acinit.wait", t2, t1 - t0);
            rec.record_duration("acinit.connect", t2, t2 - t1);
        }
        (session, out)
    }

    /// Number of currently associated (live) accelerators.
    pub fn live_count(&self) -> usize {
        self.handles.iter().filter(|h| h.live).count()
    }

    /// Handles of all live accelerators.
    pub fn live_handles(&self) -> Vec<AcHandle> {
        self.handles.iter().enumerate().filter(|(_, h)| h.live).map(|(i, _)| AcHandle(i)).collect()
    }

    fn rank_of(&self, h: AcHandle) -> Result<Rank, DacError> {
        match self.handles.get(h.0) {
            Some(rec) if rec.live => Ok(rec.rank),
            _ => Err(DacError::BadHandle(h)),
        }
    }

    fn comm(&self) -> Result<Comm, DacError> {
        self.comm.ok_or(DacError::BadHandle(AcHandle(usize::MAX)))
    }

    async fn send_req(&mut self, h: AcHandle, body: ReqBody, bytes: u64) -> Result<u64, DacError> {
        let rank = self.rank_of(h)?;
        let comm = self.comm()?;
        let req = self.next_req;
        self.next_req += 1;
        if !self.dac.cost.frontend_overhead.is_zero() {
            let overhead = self.dac.cost.frontend_overhead;
            self.mpi.proc().sleep(overhead).await;
        }
        match self.mpi.send(comm, rank, TAG_REQ, data(DacRequest { req, body }), bytes) {
            Ok(()) => Ok(req),
            Err(darms_mpi::MpiError::NetworkFailure) => {
                // The accelerator host is unreachable (failed): treat it
                // like a reply timeout — mark the handle lost so later
                // calls fail fast.
                if let Some(rec) = self.handles.get_mut(h.0) {
                    rec.live = false;
                }
                Err(DacError::Timeout(h))
            }
            Err(e) => Err(DacError::Mpi(e)),
        }
    }

    async fn wait_reply(&mut self, h: AcHandle, req: u64) -> Result<RepBodyOwned, DacError> {
        let rank = self.rank_of(h)?;
        let comm = self.comm()?;
        let timeout = self.dac.cost.request_timeout;
        if let Some(body) = self.stashed.remove(&req) {
            return Ok(body);
        }
        loop {
            let msg = match self.mpi.recv_timeout(comm, Some(rank), Some(TAG_REP), timeout).await {
                Some(m) => m,
                None => {
                    // A dead accelerator (failed host): mark the handle
                    // lost so later calls fail fast, and tombstone the
                    // request id so a late reply cannot be mistaken for
                    // the answer to a future request.
                    if let Some(rec) = self.handles.get_mut(h.0) {
                        rec.live = false;
                    }
                    self.tombstones.insert(req);
                    return Err(DacError::Timeout(h));
                }
            };
            let rep = msg.data.downcast_ref::<DacReply>().expect("TAG_REP carries DacReply");
            let body = match &rep.body {
                RepBody::Ptr(r) => RepBodyOwned::Ptr(r.clone()),
                RepBody::Ack(r) => RepBodyOwned::Ack(r.clone()),
                RepBody::Data(r) => RepBodyOwned::Data(r.clone()),
            };
            if let Some(body) =
                file_reply(req, rep.req, body, &mut self.tombstones, &mut self.stashed)
            {
                return Ok(body);
            }
        }
    }

    /// Number of replies parked for not-yet-redeemed request ids
    /// (diagnostic; the chaos harness checks this stays bounded).
    pub fn stashed_replies(&self) -> usize {
        self.stashed.len()
    }

    // ----- computation API (acMemAlloc / acMemCpy / acKernel*) ----------

    /// `acMemAlloc`: allocate `size` bytes on the accelerator.
    pub async fn mem_alloc(&mut self, h: AcHandle, size: u64) -> Result<DevPtr, DacError> {
        let req = self.send_req(h, ReqBody::MemAlloc { size }, self.dac.cost.ctl_bytes).await?;
        match self.wait_reply(h, req).await? {
            RepBodyOwned::Ptr(r) => r.map_err(DacError::Device),
            RepBodyOwned::Ack(_) | RepBodyOwned::Data(_) => {
                unreachable!("MemAlloc replies with Ptr")
            }
        }
    }

    /// `acMemFree`: free device memory.
    pub async fn mem_free(&mut self, h: AcHandle, ptr: DevPtr) -> Result<(), DacError> {
        let req = self.send_req(h, ReqBody::MemFree { ptr }, self.dac.cost.ctl_bytes).await?;
        match self.wait_reply(h, req).await? {
            RepBodyOwned::Ack(r) => r.map_err(DacError::Device),
            RepBodyOwned::Ptr(_) | RepBodyOwned::Data(_) => {
                unreachable!("MemFree replies with Ack")
            }
        }
    }

    /// `acMemCpy` host→device: transfer `bytes` into device memory at
    /// `ptr`. Uses the pipelined protocol: the device-side copy overlaps
    /// the wire transfer, so the added device time is only the excess
    /// over the wire time (\[7\]).
    pub async fn mem_write(
        &mut self,
        h: AcHandle,
        ptr: DevPtr,
        bytes: Vec<u8>,
    ) -> Result<(), DacError> {
        let l = self.mem_write_async(h, ptr, bytes).await?;
        self.op_wait(l).await
    }

    /// `acMemCpy` device→host: read `len` bytes from device memory.
    pub async fn mem_read(
        &mut self,
        h: AcHandle,
        ptr: DevPtr,
        len: u64,
    ) -> Result<Vec<u8>, DacError> {
        self.mem_read_at(h, ptr, 0, len).await
    }

    /// `acMemCpy` device→host at an offset within the allocation.
    pub async fn mem_read_at(
        &mut self,
        h: AcHandle,
        ptr: DevPtr,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, DacError> {
        let req = self
            .send_req(h, ReqBody::CopyD2H { ptr, offset, len }, self.dac.cost.ctl_bytes)
            .await?;
        match self.wait_reply(h, req).await? {
            RepBodyOwned::Data(r) => r.map_err(DacError::Device),
            RepBodyOwned::Ptr(_) | RepBodyOwned::Ack(_) => {
                unreachable!("CopyD2H replies with Data")
            }
        }
    }

    /// `acMemCpy` host→device at an offset within the allocation.
    pub async fn mem_write_at(
        &mut self,
        h: AcHandle,
        ptr: DevPtr,
        offset: u64,
        bytes: Vec<u8>,
    ) -> Result<(), DacError> {
        let l = self.mem_write_async_at(h, ptr, offset, bytes).await?;
        self.op_wait(l).await
    }

    /// Asynchronous host→device transfer (the double-buffering building
    /// block from the paper's §I: hide the interconnect penalty by
    /// overlapping transfers with compute). Redeem with
    /// [`AcSession::op_wait`].
    pub async fn mem_write_async(
        &mut self,
        h: AcHandle,
        ptr: DevPtr,
        bytes: Vec<u8>,
    ) -> Result<Launch, DacError> {
        self.mem_write_async_at(h, ptr, 0, bytes).await
    }

    /// Asynchronous host→device transfer at an offset.
    pub async fn mem_write_async_at(
        &mut self,
        h: AcHandle,
        ptr: DevPtr,
        offset: u64,
        bytes: Vec<u8>,
    ) -> Result<Launch, DacError> {
        let len = bytes.len() as u64;
        let credit = if self.dac.cost.pipelined {
            let model = self.net.latency_model();
            model.base_delay(false, len) - model.base_delay(false, 0)
        } else {
            darms_sim::SimDuration::ZERO
        };
        let body = ReqBody::CopyH2D {
            ptr,
            offset,
            payload: std::sync::Arc::new(bytes),
            overlap_credit: credit,
        };
        let req = self.send_req(h, body, self.dac.cost.ctl_bytes + len).await?;
        Ok(Launch { handle: h, req })
    }

    /// Wait for an asynchronous memory operation (acknowledgement only).
    pub async fn op_wait(&mut self, launch: Launch) -> Result<(), DacError> {
        match self.wait_reply(launch.handle, launch.req).await? {
            RepBodyOwned::Ack(r) => r.map_err(DacError::Device),
            RepBodyOwned::Ptr(_) | RepBodyOwned::Data(_) => {
                unreachable!("memory operations reply with Ack")
            }
        }
    }

    /// `acKernelRun` (asynchronous): launch a registered kernel; redeem
    /// the [`Launch`] with [`AcSession::kernel_wait`].
    pub async fn kernel_launch(
        &mut self,
        h: AcHandle,
        name: &str,
        args: KernelArgs,
    ) -> Result<Launch, DacError> {
        let body = ReqBody::KernelRun { name: name.to_string(), args };
        let req = self.send_req(h, body, self.dac.cost.ctl_bytes).await?;
        Ok(Launch { handle: h, req })
    }

    /// Wait for an asynchronous kernel launch to complete.
    pub async fn kernel_wait(&mut self, launch: Launch) -> Result<(), DacError> {
        match self.wait_reply(launch.handle, launch.req).await? {
            RepBodyOwned::Ack(r) => r.map_err(DacError::Device),
            RepBodyOwned::Ptr(_) | RepBodyOwned::Data(_) => {
                unreachable!("KernelRun replies with Ack")
            }
        }
    }

    /// Synchronous kernel execution: launch and wait.
    pub async fn kernel_run(
        &mut self,
        h: AcHandle,
        name: &str,
        args: KernelArgs,
    ) -> Result<(), DacError> {
        let l = self.kernel_launch(h, name, args).await?;
        self.kernel_wait(l).await
    }

    /// Host-free group reduction across a set of accelerators: each
    /// participant `(handle, ptr)` holds `elems` f64 values; the daemons
    /// combine their partial sums **directly with each other** over the
    /// session communicator (the paper's §I scenario of network-attached
    /// accelerators communicating via MPI without the host) and the group
    /// root stores the total at `out` on the first handle's device. The
    /// host only dispatches the operation and collects completion.
    pub async fn group_reduce_sum(
        &mut self,
        parts: &[(AcHandle, DevPtr)],
        elems: u64,
        out: DevPtr,
    ) -> Result<f64, DacError> {
        if parts.is_empty() {
            return Err(DacError::BadHandle(AcHandle(usize::MAX)));
        }
        let mut peers: Vec<Rank> = Vec::with_capacity(parts.len());
        for (h, _) in parts {
            peers.push(self.rank_of(*h)?);
        }
        peers.sort_unstable();
        let root_handle = parts
            .iter()
            .find(|(h, _)| self.rank_of(*h).ok() == Some(peers[0]))
            .expect("root present")
            .0;
        // Dispatch to every participant; each computes its partial and
        // the peers exchange directly.
        let mut pending = Vec::with_capacity(parts.len());
        for &(h, ptr) in parts {
            let body = ReqBody::GroupReduceSum { ptr, elems, out, peers: peers.clone() };
            let req = self.send_req(h, body, self.dac.cost.ctl_bytes).await?;
            pending.push((h, req));
        }
        for (h, req) in pending {
            match self.wait_reply(h, req).await? {
                RepBodyOwned::Ack(r) => r.map_err(DacError::Device)?,
                RepBodyOwned::Ptr(_) | RepBodyOwned::Data(_) => {
                    unreachable!("GroupReduceSum replies with Ack")
                }
            }
        }
        // Fetch the total from the group root's device.
        let bytes = self.mem_read(root_handle, out, 8).await?;
        Ok(crate::device::as_f64s(&bytes)[0])
    }

    // ----- resource-management API (AC_Get / AC_Free / AC_Finalize) ------

    /// `AC_Get()`: request `count` additional accelerators from the batch
    /// system at runtime. On success the new daemons are spawned via
    /// `MPI_Comm_spawn` over the current session communicator and merged
    /// in (old accelerators keep their ranks; new ones follow, §III-D).
    ///
    /// With a [`Recorder`] attached, records `acget.batch` (the batch
    /// system portion — the dark region of the paper's Fig. 7(b)) and
    /// `acget.mpi` (spawn + communicator construction — the light
    /// region); rejections record `acget.rejected`.
    pub async fn ac_get(&mut self, count: u32) -> Result<AcSet, DacError> {
        self.ac_get_range(count, count).await
    }

    /// `AC_Get()` accepting a *partial* grant: at least `min_count`, at
    /// most `count` accelerators (the policy the paper lists as future
    /// work, §VI: "allocating less number of accelerators in the case
    /// where enough accelerators were not available"). The returned set
    /// reports how many were actually granted.
    pub async fn ac_get_range(&mut self, count: u32, min_count: u32) -> Result<AcSet, DacError> {
        let t0 = self.mpi.proc().now();
        let grant: Result<DynGrant, DynReject> = ifl::pbs_dynget_range(
            self.mpi.proc(),
            &self.net,
            self.host,
            self.server,
            self.job,
            self.host,
            count,
            min_count,
        )
        .await;
        let t1 = self.mpi.proc().now();
        let metrics = self.mpi.proc().metrics();
        let grant = match grant {
            Ok(g) => g,
            Err(r) => {
                if let Some(rec) = &self.recorder {
                    rec.record_duration("acget.rejected", t1, t1 - t0);
                }
                metrics.counter_inc("dac.acget_rejected");
                metrics.observe_duration("dac.acget_latency", t1 - t0);
                return Err(DacError::Rejected(r));
            }
        };
        let set = self.adopt_grant(grant.client_id, grant.accs).await?;
        let t2 = self.mpi.proc().now();
        if let Some(rec) = &self.recorder {
            rec.record_duration("acget.batch", t2, t1 - t0);
            rec.record_duration("acget.mpi", t2, t2 - t1);
        }
        metrics.counter_inc("dac.acget_granted");
        metrics.observe_duration("dac.acget_latency", t2 - t0);
        Ok(set)
    }

    /// Associate an already-granted accelerator set with this session:
    /// grow the communicator (existing daemons join the collective spawn,
    /// everyone merges with the new daemons high) and mint handles. Used
    /// by [`AcSession::ac_get`] and by the collective variant, where the
    /// grant was obtained by the collector node.
    pub(crate) async fn adopt_grant(
        &mut self,
        client_id: ClientId,
        accs: Vec<darms_net::HostId>,
    ) -> Result<AcSet, DacError> {
        let local = match self.comm {
            Some(c) => {
                for h in self.live_handles() {
                    let req = self.next_req;
                    self.next_req += 1;
                    let rank = self.rank_of(h).expect("live");
                    self.mpi
                        .send(
                            c,
                            rank,
                            TAG_REQ,
                            data(DacRequest { req, body: ReqBody::Grow }),
                            self.dac.cost.ctl_bytes,
                        )
                        .map_err(DacError::Mpi)?;
                }
                c
            }
            None => self.mpi.self_comm(),
        };
        let args = vec![self.job.0.to_string(), self.cn_index.to_string(), "dyn".to_string()];
        let inter = self.mpi.comm_spawn(local, DAEMON_EXE, &args, &accs).await?;
        let merged = self.mpi.intercomm_merge(inter, false).await?;
        self.mpi.comm_disconnect(inter);
        self.mpi.comm_disconnect(local); // superseded session (or self) comm
        debug_assert_eq!(merged.rank(), 0);
        self.comm = Some(merged);
        let base = self.handles.iter().filter(|h| h.live).count() as Rank;
        let mut handles = Vec::with_capacity(accs.len());
        for i in 0..accs.len() as Rank {
            let ix = self.handles.len();
            self.handles.push(HandleRec { rank: base + 1 + i, live: true, set: Some(client_id) });
            handles.push(AcHandle(ix));
        }
        Ok(AcSet { client_id, handles })
    }

    /// `AC_Free()`: release a dynamically obtained accelerator set. The
    /// compute node disconnects from the released daemons (shrinking the
    /// session communicator) and then notifies the batch system via
    /// `pbs_dynfree`; the application continues immediately (§III-D).
    pub async fn ac_free(&mut self, set: &AcSet) -> Result<(), DacError> {
        let t0 = self.mpi.proc().now();
        self.release_local(set).await?;
        // Tell the batch system; the reply is positive immediately.
        let ok = ifl::pbs_dynfree(
            self.mpi.proc(),
            &self.net,
            self.host,
            self.server,
            self.job,
            set.client_id,
        )
        .await;
        debug_assert!(ok, "server lost track of {:?}", set.client_id);
        let t1 = self.mpi.proc().now();
        self.mpi.proc().metrics().observe_duration("dac.acfree_latency", t1 - t0);
        Ok(())
    }

    /// Tear down a dynamic set locally (release daemons, shrink the
    /// communicator, remap handles) **without** notifying the server.
    /// `ac_free` adds the `pbs_dynfree`; the collective release lets the
    /// collector node send the single notification for the shared set.
    pub(crate) async fn release_local(&mut self, set: &AcSet) -> Result<(), DacError> {
        let comm = self.comm()?;
        // The set is released as a unit identified by its client-id; every
        // handle must belong to it and still be live.
        for h in &set.handles {
            match self.handles.get(h.0) {
                Some(rec) if rec.live && rec.set == Some(set.client_id) => {}
                _ => return Err(DacError::BadHandle(*h)),
            }
        }
        let removed: Vec<Rank> = set.handles.iter().filter_map(|h| self.rank_of(*h).ok()).collect();
        if removed.is_empty() {
            return Err(DacError::BadHandle(*set.handles.first().unwrap_or(&AcHandle(usize::MAX))));
        }
        // Survivors first join the shrink, the released daemons exit.
        let survivors: Vec<AcHandle> =
            self.live_handles().into_iter().filter(|h| !set.handles.contains(h)).collect();
        for h in &survivors {
            let rank = self.rank_of(*h).expect("live");
            let req = self.next_req;
            self.next_req += 1;
            self.mpi
                .send(
                    comm,
                    rank,
                    TAG_REQ,
                    data(DacRequest { req, body: ReqBody::Shrink { removed: removed.clone() } }),
                    self.dac.cost.ctl_bytes,
                )
                .map_err(DacError::Mpi)?;
        }
        for h in &set.handles {
            if let Ok(rank) = self.rank_of(*h) {
                let req = self.next_req;
                self.next_req += 1;
                self.mpi
                    .send(
                        comm,
                        rank,
                        TAG_REQ,
                        data(DacRequest { req, body: ReqBody::Release }),
                        self.dac.cost.ctl_bytes,
                    )
                    .map_err(DacError::Mpi)?;
            }
        }
        let new_comm = self.mpi.comm_shrink(comm, &removed).await?;
        self.mpi.comm_disconnect(comm); // superseded session comm
        self.comm = Some(new_comm);
        // Remap surviving handle ranks: rank 0 stays the compute node;
        // survivors keep their relative order.
        let mut old_ranks: Vec<Rank> = vec![0];
        old_ranks.extend(survivors.iter().map(|h| self.handles[h.0].rank));
        old_ranks.sort_unstable();
        for h in &survivors {
            let old = self.handles[h.0].rank;
            let new = old_ranks.iter().position(|r| *r == old).expect("survivor") as Rank;
            self.handles[h.0].rank = new;
        }
        for h in &set.handles {
            if let Some(rec) = self.handles.get_mut(h.0) {
                rec.live = false;
            }
        }
        Ok(())
    }

    /// `AC_Finalize()`: release every associated accelerator and tear the
    /// session down. Static accelerator nodes are returned to the pool by
    /// the batch system at job exit.
    pub fn finalize(mut self) {
        if let Some(comm) = self.comm {
            for h in self.live_handles() {
                let rank = self.rank_of(h).expect("live");
                let req = self.next_req;
                self.next_req += 1;
                let _ = self.mpi.send(
                    comm,
                    rank,
                    TAG_REQ,
                    data(DacRequest { req, body: ReqBody::Release }),
                    self.dac.cost.ctl_bytes,
                );
            }
            self.mpi.comm_disconnect(comm);
        }
        for rec in &mut self.handles {
            rec.live = false;
        }
    }
}

/// Owned reply body (decoupled from the shared `Arc` message).
enum RepBodyOwned {
    Ptr(Result<DevPtr, String>),
    Ack(Result<(), String>),
    Data(Result<Vec<u8>, String>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    fn ack() -> RepBodyOwned {
        RepBodyOwned::Ack(Ok(()))
    }

    #[test]
    fn file_reply_answers_the_awaited_request() {
        let (mut tombs, mut stash) = (BTreeSet::new(), BTreeMap::new());
        assert!(file_reply(7, 7, ack(), &mut tombs, &mut stash).is_some());
        assert!(stash.is_empty());
    }

    #[test]
    fn file_reply_stashes_other_requests_by_id() {
        let (mut tombs, mut stash) = (BTreeSet::new(), BTreeMap::new());
        assert!(file_reply(7, 9, ack(), &mut tombs, &mut stash).is_none());
        assert!(stash.contains_key(&9));
    }

    #[test]
    fn file_reply_discards_tombstoned_replies() {
        let mut tombs: BTreeSet<u64> = [9].into_iter().collect();
        let mut stash = BTreeMap::new();
        assert!(file_reply(7, 9, ack(), &mut tombs, &mut stash).is_none());
        assert!(stash.is_empty(), "late reply must be dropped, not stashed");
        assert!(tombs.is_empty(), "tombstone is consumed by the discard");
        // A fresh reply with the same id (duplicate delivered twice after
        // the tombstone was spent) is stashed again — ids are unique per
        // request, so this only happens for duplicates, which the next
        // wait for a different id simply leaves parked; the stash stays
        // bounded because each id is stashed at most once more.
        assert!(file_reply(7, 9, ack(), &mut tombs, &mut stash).is_none());
        assert!(stash.contains_key(&9));
    }
}
