//! The mother superior's accelerator-daemon starter: the DAC
//! implementation of the RMS hook ([`AcDaemonStarter`]). For a static
//! allocation it launches one daemon per accelerator host under a single
//! `MPI_COMM_WORLD` (§III-C), staggering the starts as TORQUE does.

use darms_mpi::{launch_world, WorldSpec};
use darms_rms::{AcDaemonStarter, StaticDaemonRequest};
use darms_sim::{Ctx, ProcessId};

use crate::runtime::{DacRuntime, DAEMON_EXE};

/// [`AcDaemonStarter`] implementation backed by the DAC runtime.
pub struct DacStarter {
    dac: DacRuntime,
}

impl DacStarter {
    /// Wrap the runtime.
    pub fn new(dac: DacRuntime) -> Self {
        DacStarter { dac }
    }
}

impl AcDaemonStarter for DacStarter {
    fn start_static(&self, ctx: &mut Ctx<'_>, req: &StaticDaemonRequest) -> Vec<ProcessId> {
        let jitter = self.dac.cost.startup_jitter;
        let specs: Vec<WorldSpec> = req
            .accs
            .iter()
            .enumerate()
            .map(|(i, &host)| {
                let nominal =
                    self.dac.cost.daemon_startup + self.dac.cost.daemon_stagger * i as u64;
                let start_delay = if jitter > 0.0 {
                    let f = ctx.with_rng(|r| rand::Rng::gen_range(r, -jitter..=jitter));
                    nominal.mul_f64(1.0 + f)
                } else {
                    nominal
                };
                WorldSpec {
                    host,
                    exe: DAEMON_EXE.to_string(),
                    args: vec![
                        req.job.0.to_string(),
                        req.cn_index.to_string(),
                        "static".to_string(),
                    ],
                    start_delay,
                }
            })
            .collect();
        ctx.trace(format!(
            "{}: starting {} accelerator daemon(s) for cn{}",
            req.job,
            specs.len(),
            req.cn_index
        ));
        let members =
            launch_world(ctx, self.dac.mpi(), specs).expect("daemon executable is registered");
        members.into_iter().map(|m| m.pid).collect()
    }
}
