//! The accelerator device model: a GPU-like device with its own memory
//! (real byte buffers, so kernels compute real results), a first-fit
//! allocator, and bandwidth/compute parameters for timing.

use std::collections::BTreeMap;
use std::fmt;

use darms_sim::SimDuration;

/// A device memory handle (the `cudaMalloc` pointer analogue).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DevPtr(pub u64);

impl fmt::Display for DevPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev:0x{:x}", self.0)
    }
}

/// Performance/capacity parameters of a device.
#[derive(Clone, Copy, Debug)]
pub struct DeviceProps {
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Host-to-device copy bandwidth (bytes/s) — the on-accelerator part
    /// of a transfer, overlappable with the wire under pipelining.
    pub h2d_bw: f64,
    /// Device-to-host copy bandwidth (bytes/s).
    pub d2h_bw: f64,
    /// Peak arithmetic rate in FLOP/s (drives default kernel costs).
    pub flops: f64,
}

impl DeviceProps {
    /// A 2013-era CUDA GPU (Fermi/Kepler class): 6 GiB, ~6 GB/s PCIe
    /// copies, ~1 TFLOP/s single precision.
    pub fn gpu_2013() -> Self {
        DeviceProps { mem_bytes: 6 << 30, h2d_bw: 6.0e9, d2h_bw: 6.0e9, flops: 1.0e12 }
    }

    /// A tiny device for allocator stress tests.
    pub fn tiny(mem_bytes: u64) -> Self {
        DeviceProps { mem_bytes, h2d_bw: 1e9, d2h_bw: 1e9, flops: 1e9 }
    }

    /// Time to move `bytes` across the host-to-device engine.
    pub fn h2d_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.h2d_bw.max(1.0))
    }

    /// Time to move `bytes` across the device-to-host engine.
    pub fn d2h_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.d2h_bw.max(1.0))
    }
}

/// Errors from device operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DevError {
    /// Not enough free device memory.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
    },
    /// Pointer is not a live allocation.
    BadPointer(DevPtr),
    /// Access outside an allocation's bounds.
    OutOfBounds {
        /// The allocation accessed.
        ptr: DevPtr,
        /// Offset attempted.
        offset: u64,
        /// Length attempted.
        len: u64,
        /// The allocation's size.
        size: u64,
    },
}

impl fmt::Display for DevError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DevError::OutOfMemory { requested, free } => {
                write!(f, "device out of memory: requested {requested}, free {free}")
            }
            DevError::BadPointer(p) => write!(f, "bad device pointer {p}"),
            DevError::OutOfBounds { ptr, offset, len, size } => {
                write!(f, "out of bounds on {ptr}: [{offset}, {offset}+{len}) of {size}")
            }
        }
    }
}

impl std::error::Error for DevError {}

/// One accelerator's memory and state.
pub struct AccDevice {
    props: DeviceProps,
    used: u64,
    buffers: BTreeMap<u64, Vec<u8>>,
    next: u64,
}

impl AccDevice {
    /// Create a device with the given properties.
    pub fn new(props: DeviceProps) -> Self {
        AccDevice { props, used: 0, buffers: BTreeMap::new(), next: 0x1000 }
    }

    /// The device's parameters.
    pub fn props(&self) -> DeviceProps {
        self.props
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.props.mem_bytes - self.used
    }

    /// Live allocation count.
    pub fn allocations(&self) -> usize {
        self.buffers.len()
    }

    /// Allocate `size` bytes (zero-initialised).
    pub fn malloc(&mut self, size: u64) -> Result<DevPtr, DevError> {
        if size > self.free_bytes() {
            return Err(DevError::OutOfMemory { requested: size, free: self.free_bytes() });
        }
        let ptr = self.next;
        // Pointer space is virtual: bump by size (min 1) with alignment.
        self.next += size.max(1).next_multiple_of(256);
        self.used += size;
        self.buffers.insert(ptr, vec![0u8; size as usize]);
        Ok(DevPtr(ptr))
    }

    /// Free an allocation.
    pub fn mem_free(&mut self, ptr: DevPtr) -> Result<(), DevError> {
        match self.buffers.remove(&ptr.0) {
            Some(b) => {
                self.used -= b.len() as u64;
                Ok(())
            }
            None => Err(DevError::BadPointer(ptr)),
        }
    }

    /// Free everything (daemon teardown).
    pub fn free_all(&mut self) {
        self.buffers.clear();
        self.used = 0;
    }

    fn check(&self, ptr: DevPtr, offset: u64, len: u64) -> Result<(), DevError> {
        let size =
            self.buffers.get(&ptr.0).map(|b| b.len() as u64).ok_or(DevError::BadPointer(ptr))?;
        if offset.saturating_add(len) > size {
            return Err(DevError::OutOfBounds { ptr, offset, len, size });
        }
        Ok(())
    }

    /// Copy host bytes into device memory.
    pub fn write(&mut self, ptr: DevPtr, offset: u64, data: &[u8]) -> Result<(), DevError> {
        self.check(ptr, offset, data.len() as u64)?;
        let buf = self.buffers.get_mut(&ptr.0).expect("checked");
        buf[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Copy device memory out to the host.
    pub fn read(&self, ptr: DevPtr, offset: u64, len: u64) -> Result<Vec<u8>, DevError> {
        self.check(ptr, offset, len)?;
        let buf = self.buffers.get(&ptr.0).expect("checked");
        Ok(buf[offset as usize..(offset + len) as usize].to_vec())
    }

    /// Borrow an allocation immutably (kernel inputs).
    pub fn buffer(&self, ptr: DevPtr) -> Result<&[u8], DevError> {
        self.buffers.get(&ptr.0).map(|b| b.as_slice()).ok_or(DevError::BadPointer(ptr))
    }

    /// Take an allocation out for mutation, to be restored with
    /// [`AccDevice::put_back`] — lets kernels read one buffer while
    /// writing another.
    pub fn take_buffer(&mut self, ptr: DevPtr) -> Result<Vec<u8>, DevError> {
        self.buffers.remove(&ptr.0).ok_or(DevError::BadPointer(ptr))
    }

    /// Restore a buffer taken with [`AccDevice::take_buffer`].
    pub fn put_back(&mut self, ptr: DevPtr, buf: Vec<u8>) {
        self.buffers.insert(ptr.0, buf);
    }
}

/// View a byte slice as `f64`s (device buffers hold raw bytes).
pub fn as_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
}

/// Serialise `f64`s into device-transferable bytes.
pub fn f64s_to_bytes(values: &[f64]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> AccDevice {
        AccDevice::new(DeviceProps::tiny(4096))
    }

    #[test]
    fn malloc_free_accounting() {
        let mut d = dev();
        let a = d.malloc(1000).unwrap();
        let b = d.malloc(2000).unwrap();
        assert_ne!(a, b);
        assert_eq!(d.used(), 3000);
        assert_eq!(d.allocations(), 2);
        d.mem_free(a).unwrap();
        assert_eq!(d.used(), 2000);
        assert_eq!(d.mem_free(a), Err(DevError::BadPointer(a)));
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut d = dev();
        d.malloc(4000).unwrap();
        match d.malloc(200) {
            Err(DevError::OutOfMemory { requested: 200, free: 96 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn write_read_round_trip() {
        let mut d = dev();
        let p = d.malloc(64).unwrap();
        d.write(p, 8, &[1, 2, 3, 4]).unwrap();
        assert_eq!(d.read(p, 8, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(d.read(p, 0, 8).unwrap(), vec![0; 8]); // zero-initialised
    }

    #[test]
    fn bounds_are_enforced() {
        let mut d = dev();
        let p = d.malloc(16).unwrap();
        assert!(matches!(d.write(p, 12, &[0; 8]), Err(DevError::OutOfBounds { .. })));
        assert!(matches!(d.read(p, 0, 17), Err(DevError::OutOfBounds { .. })));
        assert!(matches!(d.read(DevPtr(0xdead), 0, 1), Err(DevError::BadPointer(_))));
    }

    #[test]
    fn take_and_put_back() {
        let mut d = dev();
        let p = d.malloc(8).unwrap();
        let mut buf = d.take_buffer(p).unwrap();
        buf[0] = 42;
        d.put_back(p, buf);
        assert_eq!(d.read(p, 0, 1).unwrap(), vec![42]);
    }

    #[test]
    fn free_all_resets() {
        let mut d = dev();
        d.malloc(100).unwrap();
        d.malloc(100).unwrap();
        d.free_all();
        assert_eq!(d.used(), 0);
        assert_eq!(d.allocations(), 0);
    }

    #[test]
    fn f64_round_trip() {
        let v = vec![1.5, -2.25, 1e9];
        assert_eq!(as_f64s(&f64s_to_bytes(&v)), v);
    }

    #[test]
    fn copy_times_scale_with_bytes() {
        let p = DeviceProps::gpu_2013();
        assert!(p.h2d_time(1 << 30) > p.h2d_time(1 << 20));
        assert_eq!(p.h2d_time(0), SimDuration::ZERO);
    }
}
