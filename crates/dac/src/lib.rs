//! # darms-dac — the Dynamic Accelerator-Cluster architecture
//!
//! The accelerator half of the paper: network-attached accelerators
//! (host CPU + GPU-like device, Fig. 1(b)) exposed to compute nodes
//! through a transparent offload stack (Fig. 3):
//!
//! - [`AccDevice`]: the device model — real byte buffers, a bounds-checked
//!   allocator, and bandwidth/FLOP parameters for timing;
//! - [`KernelRegistry`]: named compute kernels with a cost model *and* a
//!   functional body, so offloaded work produces verifiable results;
//! - the **back-end daemon** ([`DAEMON_EXE`]): runs on each
//!   accelerator, executes computation requests arriving over MPI;
//! - [`AcSession`]: the compute-node front-end — the computation API
//!   (`mem_alloc`/`mem_write`/`kernel_run`/...) and the
//!   resource-management API (`AC_Init`/`AC_Get`/`AC_Free`/`AC_Finalize`)
//!   built on MPI-2 dynamic process management exactly as §III describes;
//! - [`DacStarter`]: the mother superior's hook for starting static
//!   daemon sets.

#![warn(missing_docs)]

pub mod collective;
pub mod cost;
pub mod device;
pub mod frontend;
pub mod kernel;
pub mod runtime;
pub mod starter;

pub use collective::TaskComm;
pub use cost::DacCostModel;
pub use device::{as_f64s, f64s_to_bytes, AccDevice, DevError, DevPtr, DeviceProps};
pub use frontend::{AcHandle, AcSession, AcSet, DacError, Launch};
pub use kernel::{register_builtins, Kernel, KernelArgs, KernelRegistry, Param};
pub use runtime::{DacRuntime, DAEMON_EXE};
pub use starter::DacStarter;
