//! Processing-time constants for the DAC software stack.

use darms_sim::SimDuration;

/// Costs of the accelerator daemons and the front-end library.
#[derive(Clone, Debug)]
pub struct DacCostModel {
    /// Daemon startup on an accelerator node: process launch, device
    /// context creation, `MPI_Init`. Dominates the waiting portion of
    /// `AC_Init()` in the paper's Fig. 7(a).
    pub daemon_startup: SimDuration,
    /// Stagger between consecutive daemon starts of one set (the mother
    /// superior starts them sequentially) — the per-accelerator growth of
    /// Fig. 7(a).
    pub daemon_stagger: SimDuration,
    /// Relative jitter on daemon startup (process creation and device
    /// context initialisation vary run to run on real nodes; this is the
    /// trial-to-trial variance visible in the paper's averaged bars).
    pub startup_jitter: f64,
    /// Interval at which `AC_Init()` polls for the port file.
    pub port_poll: SimDuration,
    /// Daemon-side handling of one computation request.
    pub request_overhead: SimDuration,
    /// Front-end per-request bookkeeping.
    pub frontend_overhead: SimDuration,
    /// Chunk size of the pipelined transfer protocol (\[7\]).
    pub chunk_bytes: u64,
    /// Overlap device copies with the wire transfer (the pipelined
    /// protocol of \[7\]); disabled by the transfer ablation study.
    pub pipelined: bool,
    /// How long the front end waits for a daemon reply before declaring
    /// the accelerator lost (fault tolerance; the paper's future work).
    pub request_timeout: SimDuration,
    /// Wire size modelled for small control requests.
    pub ctl_bytes: u64,
}

impl DacCostModel {
    /// Calibrated against the paper's testbed.
    pub fn paper_testbed() -> Self {
        DacCostModel {
            daemon_startup: SimDuration::from_millis(110),
            daemon_stagger: SimDuration::from_millis(28),
            startup_jitter: 0.12,
            port_poll: SimDuration::from_millis(2),
            request_overhead: SimDuration::from_micros(50),
            frontend_overhead: SimDuration::from_micros(20),
            chunk_bytes: 1 << 20,
            pipelined: true,
            request_timeout: SimDuration::from_secs(5),
            ctl_bytes: 128,
        }
    }

    /// Near-zero costs for logic-focused tests.
    pub fn instant() -> Self {
        DacCostModel {
            daemon_startup: SimDuration::ZERO,
            daemon_stagger: SimDuration::ZERO,
            startup_jitter: 0.0,
            port_poll: SimDuration::from_micros(100),
            request_overhead: SimDuration::ZERO,
            frontend_overhead: SimDuration::ZERO,
            chunk_bytes: 1 << 20,
            pipelined: true,
            request_timeout: SimDuration::from_secs(5),
            ctl_bytes: 0,
        }
    }
}

impl Default for DacCostModel {
    fn default() -> Self {
        DacCostModel::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let p = DacCostModel::paper_testbed();
        assert!(p.daemon_startup > p.daemon_stagger);
        assert!(p.port_poll < p.daemon_stagger);
        assert!(DacCostModel::instant().daemon_startup.is_zero());
    }
}
