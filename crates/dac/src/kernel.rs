//! Compute kernels: named, registered functions with a timing model and a
//! *functional* effect on device memory, so offloaded computations return
//! real results (the examples verify them numerically).

use std::collections::BTreeMap;
use std::sync::Arc;

use darms_sim::SimDuration;
use parking_lot::RwLock;

use crate::device::{as_f64s, f64s_to_bytes, AccDevice, DevPtr, DeviceProps};

/// A kernel launch parameter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Param {
    /// A device pointer.
    Ptr(DevPtr),
    /// An integer scalar.
    U64(u64),
    /// A float scalar.
    F64(f64),
}

impl Param {
    /// The pointer, or an error naming the parameter index.
    pub fn ptr(&self, ix: usize) -> Result<DevPtr, String> {
        match self {
            Param::Ptr(p) => Ok(*p),
            other => Err(format!("param {ix}: expected pointer, got {other:?}")),
        }
    }

    /// The integer, or an error naming the parameter index.
    pub fn u64(&self, ix: usize) -> Result<u64, String> {
        match self {
            Param::U64(v) => Ok(*v),
            other => Err(format!("param {ix}: expected u64, got {other:?}")),
        }
    }

    /// The float, or an error naming the parameter index.
    pub fn f64(&self, ix: usize) -> Result<f64, String> {
        match self {
            Param::F64(v) => Ok(*v),
            other => Err(format!("param {ix}: expected f64, got {other:?}")),
        }
    }
}

/// Arguments of one kernel launch (grid/block mirror the CUDA-style API
/// of the paper's Listing 1).
#[derive(Clone, Debug)]
pub struct KernelArgs {
    /// Number of blocks.
    pub grid: u64,
    /// Threads per block.
    pub block: u64,
    /// Positional parameters.
    pub params: Vec<Param>,
}

impl KernelArgs {
    /// Convenience constructor.
    pub fn new(grid: u64, block: u64, params: Vec<Param>) -> Self {
        KernelArgs { grid, block, params }
    }
}

/// Timing model of a kernel: duration as a function of arguments and the
/// device executing it.
pub type KernelCost = Arc<dyn Fn(&KernelArgs, &DeviceProps) -> SimDuration + Send + Sync>;

/// Functional effect of a kernel on device memory.
pub type KernelBody = Arc<dyn Fn(&mut AccDevice, &KernelArgs) -> Result<(), String> + Send + Sync>;

/// A registered kernel.
#[derive(Clone)]
pub struct Kernel {
    /// Timing model.
    pub cost: KernelCost,
    /// Functional effect.
    pub body: KernelBody,
}

/// Thread-safe kernel registry shared by all daemons.
#[derive(Clone, Default)]
pub struct KernelRegistry {
    inner: Arc<RwLock<BTreeMap<String, Kernel>>>,
}

impl KernelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with the built-in kernels.
    pub fn with_builtins() -> Self {
        let r = Self::new();
        register_builtins(&r);
        r
    }

    /// Register (or replace) a kernel.
    pub fn register(
        &self,
        name: impl Into<String>,
        cost: impl Fn(&KernelArgs, &DeviceProps) -> SimDuration + Send + Sync + 'static,
        body: impl Fn(&mut AccDevice, &KernelArgs) -> Result<(), String> + Send + Sync + 'static,
    ) {
        self.inner
            .write()
            .insert(name.into(), Kernel { cost: Arc::new(cost), body: Arc::new(body) });
    }

    /// Look up a kernel.
    pub fn get(&self, name: &str) -> Option<Kernel> {
        self.inner.read().get(name).cloned()
    }

    /// Registered kernel names, sorted (the `BTreeMap` key order).
    pub fn names(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }
}

/// FLOP-proportional cost helper for builtin kernels: a fixed launch
/// overhead plus compute time at an effective rate well below peak, as
/// real kernels achieve.
fn flop_cost(flops: f64, props: &DeviceProps) -> SimDuration {
    SimDuration::from_micros(5) + SimDuration::from_secs_f64(flops / (props.flops * 0.3).max(1.0))
}

/// Register the built-in kernels:
///
/// - `vector_add(a, b, c, n)`: `c[i] = a[i] + b[i]` over `n` f64s;
/// - `scale(x, n, alpha)`: `x[i] *= alpha`;
/// - `saxpy(x, y, n, alpha)`: `y[i] += alpha * x[i]`;
/// - `matmul(a, b, c, m, k, n)`: row-major f64 GEMM, `C = A×B`;
/// - `reduce_sum(x, out, n)`: `out[0] = Σ x[i]`;
/// - `stencil3(src, dst, n, alpha)`: one Jacobi step of the 1-D heat
///   equation, `dst[i] = src[i] + alpha*(src[i-1] - 2 src[i] + src[i+1])`
///   over the interior `1..n-1`; the two boundary values pass through
///   (halo cells, exchanged by the host between steps).
pub fn register_builtins(reg: &KernelRegistry) {
    reg.register(
        "vector_add",
        |args, props| flop_cost(args.params[3].u64(3).unwrap_or(0) as f64, props),
        |dev, args| {
            let (a, b, c) =
                (args.params[0].ptr(0)?, args.params[1].ptr(1)?, args.params[2].ptr(2)?);
            let n = args.params[3].u64(3)? as usize;
            let av = as_f64s(dev.buffer(a).map_err(|e| e.to_string())?);
            let bv = as_f64s(dev.buffer(b).map_err(|e| e.to_string())?);
            if av.len() < n || bv.len() < n {
                return Err("vector_add: inputs shorter than n".into());
            }
            let cv: Vec<f64> = (0..n).map(|i| av[i] + bv[i]).collect();
            dev.write(c, 0, &f64s_to_bytes(&cv)).map_err(|e| e.to_string())
        },
    );
    reg.register(
        "scale",
        |args, props| flop_cost(args.params[1].u64(1).unwrap_or(0) as f64, props),
        |dev, args| {
            let x = args.params[0].ptr(0)?;
            let n = args.params[1].u64(1)? as usize;
            let alpha = args.params[2].f64(2)?;
            let mut xv = as_f64s(dev.buffer(x).map_err(|e| e.to_string())?);
            if xv.len() < n {
                return Err("scale: input shorter than n".into());
            }
            for v in xv.iter_mut().take(n) {
                *v *= alpha;
            }
            dev.write(x, 0, &f64s_to_bytes(&xv)).map_err(|e| e.to_string())
        },
    );
    reg.register(
        "saxpy",
        |args, props| flop_cost(2.0 * args.params[2].u64(2).unwrap_or(0) as f64, props),
        |dev, args| {
            let (x, y) = (args.params[0].ptr(0)?, args.params[1].ptr(1)?);
            let n = args.params[2].u64(2)? as usize;
            let alpha = args.params[3].f64(3)?;
            let xv = as_f64s(dev.buffer(x).map_err(|e| e.to_string())?);
            let mut yv = as_f64s(dev.buffer(y).map_err(|e| e.to_string())?);
            if xv.len() < n || yv.len() < n {
                return Err("saxpy: inputs shorter than n".into());
            }
            for i in 0..n {
                yv[i] += alpha * xv[i];
            }
            dev.write(y, 0, &f64s_to_bytes(&yv)).map_err(|e| e.to_string())
        },
    );
    reg.register(
        "matmul",
        |args, props| {
            let m = args.params[3].u64(3).unwrap_or(0) as f64;
            let k = args.params[4].u64(4).unwrap_or(0) as f64;
            let n = args.params[5].u64(5).unwrap_or(0) as f64;
            flop_cost(2.0 * m * k * n, props)
        },
        |dev, args| {
            let (a, b, c) =
                (args.params[0].ptr(0)?, args.params[1].ptr(1)?, args.params[2].ptr(2)?);
            let m = args.params[3].u64(3)? as usize;
            let k = args.params[4].u64(4)? as usize;
            let n = args.params[5].u64(5)? as usize;
            let av = as_f64s(dev.buffer(a).map_err(|e| e.to_string())?);
            let bv = as_f64s(dev.buffer(b).map_err(|e| e.to_string())?);
            if av.len() < m * k || bv.len() < k * n {
                return Err("matmul: inputs too small".into());
            }
            let mut cv = vec![0.0f64; m * n];
            for i in 0..m {
                for p in 0..k {
                    let aip = av[i * k + p];
                    if aip == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        cv[i * n + j] += aip * bv[p * n + j];
                    }
                }
            }
            dev.write(c, 0, &f64s_to_bytes(&cv)).map_err(|e| e.to_string())
        },
    );
    reg.register(
        "stencil3",
        |args, props| flop_cost(4.0 * args.params[2].u64(2).unwrap_or(0) as f64, props),
        |dev, args| {
            let (src, dst) = (args.params[0].ptr(0)?, args.params[1].ptr(1)?);
            let n = args.params[2].u64(2)? as usize;
            let alpha = args.params[3].f64(3)?;
            let sv = as_f64s(dev.buffer(src).map_err(|e| e.to_string())?);
            if sv.len() < n || n < 2 {
                return Err("stencil3: need at least 2 points".into());
            }
            let mut dv = sv[..n].to_vec();
            for i in 1..n - 1 {
                dv[i] = sv[i] + alpha * (sv[i - 1] - 2.0 * sv[i] + sv[i + 1]);
            }
            dev.write(dst, 0, &f64s_to_bytes(&dv)).map_err(|e| e.to_string())
        },
    );
    reg.register(
        "reduce_sum",
        |args, props| flop_cost(args.params[2].u64(2).unwrap_or(0) as f64, props),
        |dev, args| {
            let (x, out) = (args.params[0].ptr(0)?, args.params[1].ptr(1)?);
            let n = args.params[2].u64(2)? as usize;
            let xv = as_f64s(dev.buffer(x).map_err(|e| e.to_string())?);
            if xv.len() < n {
                return Err("reduce_sum: input shorter than n".into());
            }
            let s: f64 = xv.iter().take(n).sum();
            dev.write(out, 0, &f64s_to_bytes(&[s])).map_err(|e| e.to_string())
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev_with(values: &[f64]) -> (AccDevice, DevPtr) {
        let mut d = AccDevice::new(DeviceProps::gpu_2013());
        let p = d.malloc((values.len() * 8) as u64).unwrap();
        d.write(p, 0, &f64s_to_bytes(values)).unwrap();
        (d, p)
    }

    #[test]
    fn vector_add_computes() {
        let reg = KernelRegistry::with_builtins();
        let (mut d, a) = dev_with(&[1.0, 2.0, 3.0]);
        let b = d.malloc(24).unwrap();
        d.write(b, 0, &f64s_to_bytes(&[10.0, 20.0, 30.0])).unwrap();
        let c = d.malloc(24).unwrap();
        let k = reg.get("vector_add").unwrap();
        let args =
            KernelArgs::new(1, 3, vec![Param::Ptr(a), Param::Ptr(b), Param::Ptr(c), Param::U64(3)]);
        (k.body)(&mut d, &args).unwrap();
        assert_eq!(as_f64s(&d.read(c, 0, 24).unwrap()), vec![11.0, 22.0, 33.0]);
        assert!((k.cost)(&args, &d.props()) > SimDuration::ZERO);
    }

    #[test]
    fn saxpy_and_scale_compute() {
        let reg = KernelRegistry::with_builtins();
        let (mut d, x) = dev_with(&[1.0, 2.0]);
        let y = d.malloc(16).unwrap();
        d.write(y, 0, &f64s_to_bytes(&[5.0, 5.0])).unwrap();
        let saxpy = reg.get("saxpy").unwrap();
        (saxpy.body)(
            &mut d,
            &KernelArgs::new(
                1,
                2,
                vec![Param::Ptr(x), Param::Ptr(y), Param::U64(2), Param::F64(3.0)],
            ),
        )
        .unwrap();
        assert_eq!(as_f64s(&d.read(y, 0, 16).unwrap()), vec![8.0, 11.0]);
        let scale = reg.get("scale").unwrap();
        (scale.body)(
            &mut d,
            &KernelArgs::new(1, 2, vec![Param::Ptr(y), Param::U64(2), Param::F64(0.5)]),
        )
        .unwrap();
        assert_eq!(as_f64s(&d.read(y, 0, 16).unwrap()), vec![4.0, 5.5]);
    }

    #[test]
    fn matmul_computes() {
        let reg = KernelRegistry::with_builtins();
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] => C = [[19,22],[43,50]]
        let (mut d, a) = dev_with(&[1.0, 2.0, 3.0, 4.0]);
        let b = d.malloc(32).unwrap();
        d.write(b, 0, &f64s_to_bytes(&[5.0, 6.0, 7.0, 8.0])).unwrap();
        let c = d.malloc(32).unwrap();
        let k = reg.get("matmul").unwrap();
        (k.body)(
            &mut d,
            &KernelArgs::new(
                1,
                4,
                vec![
                    Param::Ptr(a),
                    Param::Ptr(b),
                    Param::Ptr(c),
                    Param::U64(2),
                    Param::U64(2),
                    Param::U64(2),
                ],
            ),
        )
        .unwrap();
        assert_eq!(as_f64s(&d.read(c, 0, 32).unwrap()), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn reduce_sum_computes() {
        let reg = KernelRegistry::with_builtins();
        let (mut d, x) = dev_with(&[1.0, 2.0, 3.5]);
        let out = d.malloc(8).unwrap();
        let k = reg.get("reduce_sum").unwrap();
        (k.body)(
            &mut d,
            &KernelArgs::new(1, 3, vec![Param::Ptr(x), Param::Ptr(out), Param::U64(3)]),
        )
        .unwrap();
        assert_eq!(as_f64s(&d.read(out, 0, 8).unwrap()), vec![6.5]);
    }

    #[test]
    fn bad_params_are_reported() {
        let reg = KernelRegistry::with_builtins();
        let (mut d, x) = dev_with(&[1.0]);
        let k = reg.get("vector_add").unwrap();
        let err = (k.body)(
            &mut d,
            &KernelArgs::new(
                1,
                1,
                vec![Param::U64(1), Param::Ptr(x), Param::Ptr(x), Param::U64(1)],
            ),
        )
        .unwrap_err();
        assert!(err.contains("expected pointer"), "{err}");
    }

    #[test]
    fn stencil3_computes_one_jacobi_step() {
        let reg = KernelRegistry::with_builtins();
        let (mut d, src) = dev_with(&[0.0, 0.0, 4.0, 0.0, 0.0]);
        let dst = d.malloc(40).unwrap();
        let k = reg.get("stencil3").unwrap();
        (k.body)(
            &mut d,
            &KernelArgs::new(
                1,
                5,
                vec![Param::Ptr(src), Param::Ptr(dst), Param::U64(5), Param::F64(0.25)],
            ),
        )
        .unwrap();
        let out = as_f64s(&d.read(dst, 0, 40).unwrap());
        // boundaries pass through; heat spreads from the spike
        assert_eq!(out, vec![0.0, 1.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn registry_register_and_names() {
        let reg = KernelRegistry::new();
        assert!(reg.get("custom").is_none());
        reg.register("custom", |_, _| SimDuration::from_micros(1), |_, _| Ok(()));
        assert!(reg.get("custom").is_some());
        assert_eq!(reg.names(), vec!["custom".to_string()]);
        let full = KernelRegistry::with_builtins();
        assert!(full.names().len() >= 6);
    }

    #[test]
    fn matmul_cost_grows_with_size() {
        let reg = KernelRegistry::with_builtins();
        let k = reg.get("matmul").unwrap();
        let props = DeviceProps::gpu_2013();
        let args_small = KernelArgs::new(
            1,
            1,
            vec![
                Param::Ptr(DevPtr(0)),
                Param::Ptr(DevPtr(0)),
                Param::Ptr(DevPtr(0)),
                Param::U64(16),
                Param::U64(16),
                Param::U64(16),
            ],
        );
        let args_big = KernelArgs::new(
            1,
            1,
            vec![
                Param::Ptr(DevPtr(0)),
                Param::Ptr(DevPtr(0)),
                Param::Ptr(DevPtr(0)),
                Param::U64(256),
                Param::U64(256),
                Param::U64(256),
            ],
        );
        assert!((k.cost)(&args_big, &props) > (k.cost)(&args_small, &props));
    }
}
