//! Sampling distributions for synthetic workloads.

use rand::rngs::SmallRng;
use rand::Rng;

/// A one-dimensional sampling distribution.
#[derive(Clone, Debug)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Exponential with the given mean (inter-arrival times).
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Log-normal parameterised by the underlying normal's `mu`/`sigma`
    /// (job runtimes are classically log-normal).
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Weighted discrete choice.
    Choice(Vec<(f64, f64)>),
}

impl Dist {
    /// Draw one sample (clamped to be non-negative).
    pub fn sample(&self, rng: &mut SmallRng) -> f64 {
        let v = match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => {
                if hi <= lo {
                    *lo
                } else {
                    rng.gen_range(*lo..*hi)
                }
            }
            Dist::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -mean * u.ln()
            }
            Dist::LogNormal { mu, sigma } => {
                // Box-Muller.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mu + sigma * z).exp()
            }
            Dist::Choice(items) => {
                let total: f64 = items.iter().map(|(w, _)| w.max(0.0)).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                let mut roll = rng.gen_range(0.0..total);
                for (w, v) in items {
                    roll -= w.max(0.0);
                    if roll <= 0.0 {
                        return *v;
                    }
                }
                items.last().map(|(_, v)| *v).unwrap_or(0.0)
            }
        };
        v.max(0.0)
    }

    /// Draw an integer sample (rounded, floored at `min`).
    pub fn sample_int(&self, rng: &mut SmallRng, min: u64) -> u64 {
        (self.sample(rng).round() as u64).max(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn constant_is_constant() {
        let mut r = rng();
        assert_eq!(Dist::Constant(4.0).sample(&mut r), 4.0);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = rng();
        let d = Dist::Uniform { lo: 2.0, hi: 5.0 };
        for _ in 0..500 {
            let v = d.sample(&mut r);
            assert!((2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let mut r = rng();
        assert_eq!(Dist::Uniform { lo: 3.0, hi: 3.0 }.sample(&mut r), 3.0);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = rng();
        let d = Dist::Exponential { mean: 10.0 };
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = rng();
        let d = Dist::LogNormal { mu: 1.0, sigma: 1.0 };
        for _ in 0..500 {
            assert!(d.sample(&mut r) > 0.0);
        }
    }

    #[test]
    fn choice_respects_weights() {
        let mut r = rng();
        let d = Dist::Choice(vec![(0.0, 1.0), (1.0, 2.0)]);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 2.0);
        }
        let d = Dist::Choice(vec![(3.0, 1.0), (1.0, 2.0)]);
        let ones = (0..4000).filter(|_| d.sample(&mut r) == 1.0).count();
        assert!(ones > 2700 && ones < 3300, "ones {ones}");
    }

    #[test]
    fn sample_int_floors_at_min() {
        let mut r = rng();
        assert_eq!(Dist::Constant(0.2).sample_int(&mut r, 1), 1);
        assert_eq!(Dist::Constant(3.6).sample_int(&mut r, 1), 4);
    }
}
