//! Plain-text table rendering for experiment output (the rows/series the
//! paper's figures plot).

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "# {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ =
            writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV (for plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Format seconds with millisecond precision (the unit of the figures).
pub fn secs(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.row(vec!["1".into(), "0.123".into()]);
        t.row(vec!["10".into(), "4.5".into()]);
        let s = t.render();
        assert!(s.contains("# demo"));
        assert!(s.contains(" x"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trips_cells() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        Table::new("", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn secs_formats_millis() {
        assert_eq!(secs(0.12345), "0.123");
    }
}
