//! Batch-system metrics computed from final job statuses.

use darms_sim::{SimDuration, SimTime};

/// A minimal view of one finished job (decoupled from the RMS types so
/// this crate stays dependency-light).
#[derive(Clone, Copy, Debug)]
pub struct JobOutcome {
    /// Submission time.
    pub submitted: SimTime,
    /// Start time (None = never started).
    pub started: Option<SimTime>,
    /// Completion time (None = never finished).
    pub completed: Option<SimTime>,
    /// Compute nodes held while running.
    pub nodes: usize,
    /// Accelerator nodes held while running (static; dynamic usage is
    /// tracked separately by the experiments).
    pub accs: usize,
}

/// Aggregate metrics over a workload.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadReport {
    /// Jobs that completed.
    pub finished: usize,
    /// Jobs that never started.
    pub unstarted: usize,
    /// Mean wait (submission → start) in seconds.
    pub mean_wait: f64,
    /// 95th-percentile wait in seconds.
    pub p95_wait: f64,
    /// Mean turnaround (submission → completion) in seconds.
    pub mean_turnaround: f64,
    /// Time from first submission to last completion.
    pub makespan: SimDuration,
    /// Compute-node-seconds consumed.
    pub node_seconds: f64,
    /// Accelerator-node-seconds consumed (static allocations).
    pub acc_seconds: f64,
}

impl WorkloadReport {
    /// Compute the report; returns `None` if no job completed.
    pub fn from_outcomes(outcomes: &[JobOutcome]) -> Option<WorkloadReport> {
        let finished: Vec<&JobOutcome> =
            outcomes.iter().filter(|o| o.completed.is_some()).collect();
        if finished.is_empty() {
            return None;
        }
        let mut waits: Vec<f64> = finished
            .iter()
            .filter_map(|o| o.started.map(|s| (s - o.submitted).as_secs_f64()))
            .collect();
        waits.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean_wait = waits.iter().sum::<f64>() / waits.len().max(1) as f64;
        let p95_wait = if waits.is_empty() { 0.0 } else { darms_sim::percentile(&waits, 0.95) };
        let turnarounds: Vec<f64> = finished
            .iter()
            .map(|o| (o.completed.expect("filtered") - o.submitted).as_secs_f64())
            .collect();
        let mean_turnaround = turnarounds.iter().sum::<f64>() / turnarounds.len() as f64;
        let first_submit = finished.iter().map(|o| o.submitted).min().expect("non-empty");
        let last_complete =
            finished.iter().map(|o| o.completed.expect("filtered")).max().expect("non-empty");
        let mut node_seconds = 0.0;
        let mut acc_seconds = 0.0;
        for o in &finished {
            if let (Some(s), Some(c)) = (o.started, o.completed) {
                let dur = (c - s).as_secs_f64();
                node_seconds += dur * o.nodes as f64;
                acc_seconds += dur * o.accs as f64;
            }
        }
        Some(WorkloadReport {
            finished: finished.len(),
            unstarted: outcomes.len() - finished.len(),
            mean_wait,
            p95_wait,
            mean_turnaround,
            makespan: last_complete - first_submit,
            node_seconds,
            acc_seconds,
        })
    }

    /// Average accelerator-pool utilisation over the makespan, given the
    /// pool size (0..=1).
    pub fn acc_utilisation(&self, pool: usize) -> f64 {
        let denom = self.makespan.as_secs_f64() * pool as f64;
        if denom <= 0.0 {
            0.0
        } else {
            (self.acc_seconds / denom).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn outcome(sub: u64, start: u64, end: u64, nodes: usize, accs: usize) -> JobOutcome {
        JobOutcome {
            submitted: t(sub),
            started: Some(t(start)),
            completed: Some(t(end)),
            nodes,
            accs,
        }
    }

    #[test]
    fn empty_has_no_report() {
        assert!(WorkloadReport::from_outcomes(&[]).is_none());
        let unfinished =
            [JobOutcome { submitted: t(0), started: None, completed: None, nodes: 1, accs: 0 }];
        assert!(WorkloadReport::from_outcomes(&unfinished).is_none());
    }

    #[test]
    fn basic_aggregates() {
        let r =
            WorkloadReport::from_outcomes(&[outcome(0, 10, 110, 2, 1), outcome(5, 15, 65, 1, 0)])
                .unwrap();
        assert_eq!(r.finished, 2);
        assert_eq!(r.unstarted, 0);
        assert!((r.mean_wait - 10.0).abs() < 1e-9);
        assert!((r.mean_turnaround - ((110.0 - 0.0) + (65.0 - 5.0)) / 2.0).abs() < 1e-9);
        assert_eq!(r.makespan, SimDuration::from_secs(110));
        assert!((r.node_seconds - (100.0 * 2.0 + 50.0)).abs() < 1e-9);
        assert!((r.acc_seconds - 100.0).abs() < 1e-9);
    }

    #[test]
    fn unstarted_jobs_are_counted() {
        let r = WorkloadReport::from_outcomes(&[
            outcome(0, 1, 2, 1, 0),
            JobOutcome { submitted: t(0), started: None, completed: None, nodes: 1, accs: 0 },
        ])
        .unwrap();
        assert_eq!(r.finished, 1);
        assert_eq!(r.unstarted, 1);
    }

    #[test]
    fn utilisation_is_bounded() {
        let r = WorkloadReport::from_outcomes(&[outcome(0, 0, 100, 1, 2)]).unwrap();
        let u = r.acc_utilisation(4);
        assert!((u - 0.5).abs() < 1e-9, "u={u}");
        assert_eq!(r.acc_utilisation(0), 0.0);
    }
}
