//! # darms-workload — synthetic workloads and batch-system metrics
//!
//! The paper evaluated its batch system with sample programs because real
//! network-attached-accelerator applications did not exist yet (§IV).
//! This crate provides the synthetic equivalents the experiment harness
//! drives: deterministic job-trace generation (arrival processes, job-mix
//! distributions) and the aggregate metrics (wait, turnaround, makespan,
//! accelerator-pool utilisation) used by the extended studies, plus the
//! plain-text tables every experiment binary prints.

#![warn(missing_docs)]

pub mod dist;
pub mod metrics;
pub mod swf;
pub mod table;
pub mod trace;

pub use dist::Dist;
pub use metrics::{JobOutcome, WorkloadReport};
pub use swf::{overlay_accelerator_demand, parse_swf, to_swf, SwfError};
pub use table::{secs, Table};
pub use trace::{TraceJob, WorkloadConfig};
