//! Synthetic job-trace generation: arrival processes and job mixes.

use darms_sim::SimDuration;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::dist::Dist;

/// One job of a generated trace (batch-system-agnostic description; the
/// experiment harness turns it into a `JobSpec`).
#[derive(Clone, Debug)]
pub struct TraceJob {
    /// Arrival offset from trace start.
    pub arrival: SimDuration,
    /// Owner (fairshare key).
    pub owner: String,
    /// Compute nodes requested.
    pub nodes: usize,
    /// Cores per node requested.
    pub ppn: u32,
    /// Static accelerators per node requested.
    pub acpn: u32,
    /// Actual runtime.
    pub runtime: SimDuration,
    /// User-supplied walltime estimate (≥ runtime).
    pub walltime_estimate: SimDuration,
}

/// Configuration of the synthetic workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Inter-arrival time distribution (seconds).
    pub interarrival: Dist,
    /// Compute nodes per job.
    pub nodes: Dist,
    /// Cores per node.
    pub ppn: Dist,
    /// Static accelerators per node (0 = CPU-only job).
    pub acpn: Dist,
    /// Runtime in seconds.
    pub runtime: Dist,
    /// Walltime estimate as a multiple of runtime (≥ 1).
    pub estimate_factor: Dist,
    /// Owners to round-robin-sample from.
    pub owners: Vec<String>,
}

impl WorkloadConfig {
    /// A mixed workload in the spirit of the paper's motivation: mostly
    /// small CPU jobs, some requesting one or two network-attached
    /// accelerators per node.
    pub fn mixed() -> Self {
        WorkloadConfig {
            interarrival: Dist::Exponential { mean: 30.0 },
            nodes: Dist::Choice(vec![(6.0, 1.0), (3.0, 2.0), (1.0, 3.0)]),
            ppn: Dist::Choice(vec![(1.0, 1.0), (1.0, 2.0), (1.0, 4.0)]),
            acpn: Dist::Choice(vec![(5.0, 0.0), (3.0, 1.0), (2.0, 2.0)]),
            runtime: Dist::LogNormal { mu: 4.0, sigma: 0.8 },
            estimate_factor: Dist::Uniform { lo: 1.1, hi: 2.5 },
            owners: vec!["alice".into(), "bob".into(), "carol".into(), "dave".into()],
        }
    }

    /// A CPU-only workload (no accelerator requests).
    pub fn cpu_only() -> Self {
        let mut c = Self::mixed();
        c.acpn = Dist::Constant(0.0);
        c
    }

    /// Generate `n` jobs deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<TraceJob> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = 0.0f64;
        let mut jobs = Vec::with_capacity(n);
        for i in 0..n {
            t += self.interarrival.sample(&mut rng);
            let runtime_s = self.runtime.sample(&mut rng).max(1.0);
            let factor = self.estimate_factor.sample(&mut rng).max(1.0);
            let owner = self.owners[i % self.owners.len().max(1)].clone();
            jobs.push(TraceJob {
                arrival: SimDuration::from_secs_f64(t),
                owner,
                nodes: self.nodes.sample_int(&mut rng, 1) as usize,
                ppn: self.ppn.sample_int(&mut rng, 1) as u32,
                acpn: self.acpn.sample_int(&mut rng, 0) as u32,
                runtime: SimDuration::from_secs_f64(runtime_s),
                walltime_estimate: SimDuration::from_secs_f64(runtime_s * factor),
            });
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let c = WorkloadConfig::mixed();
        let a = c.generate(50, 9);
        let b = c.generate(50, 9);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.nodes, y.nodes);
            assert_eq!(x.acpn, y.acpn);
            assert_eq!(x.runtime, y.runtime);
        }
    }

    #[test]
    fn arrivals_are_monotonic() {
        let jobs = WorkloadConfig::mixed().generate(100, 3);
        for w in jobs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn estimates_dominate_runtimes() {
        for j in WorkloadConfig::mixed().generate(200, 5) {
            assert!(j.walltime_estimate >= j.runtime);
            assert!(j.nodes >= 1);
            assert!(j.ppn >= 1);
        }
    }

    #[test]
    fn cpu_only_has_no_accelerators() {
        assert!(WorkloadConfig::cpu_only().generate(100, 1).iter().all(|j| j.acpn == 0));
    }

    #[test]
    fn mixed_has_some_accelerator_jobs() {
        let jobs = WorkloadConfig::mixed().generate(200, 1);
        let acc = jobs.iter().filter(|j| j.acpn > 0).count();
        assert!(acc > 40, "accelerator jobs: {acc}/200");
    }
}
