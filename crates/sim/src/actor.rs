//! Reactive actors: daemon-style state machines dispatched inline by the
//! engine. The `pbs_server`, `pbs_mom`s and the Maui scheduler are
//! actors; sequential application logic uses stackless async
//! [processes](crate::process::Proc) instead.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use rand::rngs::SmallRng;

use crate::envelope::{ActorId, Endpoint, Envelope, ProcessId};
use crate::kernel::{EventKind, Kernel};
use crate::process::spawn_process;
use crate::time::{SimDuration, SimTime};

/// A reactive component. Handlers run to completion with exclusive access
/// to the kernel via [`Ctx`]; all outbound effects are scheduled events.
pub trait Actor: Send {
    /// Handle a delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, env: Envelope);

    /// Handle a timer set via [`Ctx::set_timer`].
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Called once at t = 0 before the event loop starts.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Name used in traces.
    fn name(&self) -> &str {
        "actor"
    }
}

/// Capability handle passed to actor callbacks.
pub struct Ctx<'a> {
    pub(crate) k: &'a mut Kernel,
    pub(crate) arc: &'a Rc<RefCell<Kernel>>,
    pub(crate) me: ActorId,
}

impl Ctx<'_> {
    /// This actor's id.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// This actor's endpoint.
    pub fn endpoint(&self) -> Endpoint {
        Endpoint::Actor(self.me)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.k.now()
    }

    /// Send a payload to `dst`, arriving after `delay`.
    pub fn send<T: std::any::Any + Send>(&mut self, dst: Endpoint, payload: T, delay: SimDuration) {
        let env = Envelope::from_src(self.endpoint(), payload);
        self.k.send(dst, env, delay);
    }

    /// Send a pre-built envelope.
    pub fn send_env(&mut self, dst: Endpoint, env: Envelope, delay: SimDuration) {
        self.k.send(dst, env, delay);
    }

    /// Schedule `on_timer(token)` after `delay`. The event is stamped
    /// with the token's current generation; re-arming after a cancel
    /// picks up the bumped generation, which revives the token.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let at = self.k.now() + delay;
        let me = self.me;
        let gen = self.k.timer_gen(me.index(), token);
        self.k.schedule(at, EventKind::Timer { actor: me, token, gen });
    }

    /// Cancel a pending timer: when its event fires it is discarded
    /// without advancing the virtual clock (so abandoned deadlines, e.g.
    /// a walltime kill for a job that finished, cannot inflate the
    /// simulation's end time). Implemented as a generation bump — no
    /// per-event bookkeeping survives to the fire path.
    pub fn cancel_timer(&mut self, token: u64) {
        let me = self.me;
        self.k.bump_timer_gen(me.index(), token);
    }

    /// Spawn a process whose `async` entry runs after `delay`.
    pub fn spawn_process_after<F, Fut>(
        &mut self,
        name: impl Into<String>,
        delay: SimDuration,
        entry: F,
    ) -> ProcessId
    where
        F: FnOnce(crate::process::Proc) -> Fut + 'static,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        spawn_process(self.k, self.arc, name.into(), delay, entry)
    }

    /// Spawn a process starting now.
    pub fn spawn_process<F, Fut>(&mut self, name: impl Into<String>, entry: F) -> ProcessId
    where
        F: FnOnce(crate::process::Proc) -> Fut + 'static,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        self.spawn_process_after(name, SimDuration::ZERO, entry)
    }

    /// Record an instant trace event attributed to this actor.
    pub fn trace(&mut self, event: impl Into<String>) {
        self.trace_detail(event, String::new());
    }

    /// Record an instant trace event with a detail payload. The interned
    /// actor name makes this a refcount bump, not a `String` clone.
    pub fn trace_detail(&mut self, event: impl Into<String>, detail: impl Into<String>) {
        let name: Arc<str> = self
            .k
            .actor_names
            .get(self.me.0)
            .cloned()
            .unwrap_or_else(|| format!("actor#{}", self.me.0).into());
        self.k.emit(crate::trace::TraceSource::Actor(self.me), &name, event, detail);
    }

    /// Cloneable handle to the structured tracer.
    pub fn tracer(&self) -> crate::trace::Tracer {
        self.k.tracer()
    }

    /// Cloneable handle to the shared metrics registry.
    pub fn metrics(&self) -> crate::metrics::MetricsRegistry {
        self.k.metrics()
    }

    /// Draw from the deterministic RNG.
    pub fn with_rng<R>(&mut self, f: impl FnOnce(&mut SmallRng) -> R) -> R {
        self.k.with_rng(f)
    }

    /// Resolve an endpoint to its registered name (for diagnostics).
    pub fn endpoint_name(&self, ep: Endpoint) -> Arc<str> {
        self.k.endpoint_name(ep)
    }
}
