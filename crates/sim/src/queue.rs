//! Pluggable event queues: the default binary heap and an experimental
//! calendar queue, both yielding events in strict `(time, seq)` order.
//!
//! The engine only talks to [`EventQueue`]; which structure backs it is
//! a [`SimConfig`](crate::SimConfig) knob (`queue_kind`). The heap is
//! the default and what every golden trace was recorded with; the
//! calendar queue ([Brown 1988]'s multi-list design) trades the heap's
//! `O(log n)` push/pop for amortized `O(1)` when event times are spread
//! roughly uniformly, and is benchmarked against the heap by
//! `perf_report`. Both yield the exact same order — `(time, seq)` keys
//! are unique because `seq` is a monotone scheduling counter — so the
//! choice is a pure performance knob (see the cross-queue property test
//! in `tests/queue_order.rs`).
//!
//! ## Indexed payloads
//!
//! The ordering structures do not store events. A full
//! [`Scheduled`] is ~72 bytes (the `EventKind` carries an envelope),
//! and a binary-heap sift memmoves the element once per level — at
//! tens of millions of events per second that memory traffic dominates
//! the kernel's profile. Instead, payloads live in a free-list slab and
//! the heap/calendar order 24-byte `(time, seq, slab index)` keys; each
//! `EventKind` is written once on push and read once on pop no matter
//! how far its key travels.
//!
//! [Brown 1988]: "Calendar Queues: A Fast O(1) Priority Queue
//! Implementation for the Simulation Event Set Problem", CACM 31(10).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::kernel::{EventKind, Scheduled};
use crate::time::SimTime;

/// Which data structure backs the kernel's event queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueKind {
    /// Binary heap ordered by `(time, seq)` — the default.
    #[default]
    Heap,
    /// Calendar queue (bucketed by time band, amortized O(1) for
    /// uniformly spread events).
    Calendar,
}

/// Compact ordering key: the `(time, seq)` sort key plus the payload's
/// slab slot. `(time, seq)` alone is unique, so `idx` never decides a
/// comparison; it rides along in the derived lexicographic `Ord`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: SimTime,
    seq: u64,
    idx: u32,
}

/// Free-list slab holding the `EventKind` of every pending event.
struct PayloadSlab {
    slots: Vec<Option<EventKind>>,
    free: Vec<u32>,
}

impl PayloadSlab {
    #[inline]
    fn insert(&mut self, kind: EventKind) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(kind);
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("pending events fit in u32");
                self.slots.push(Some(kind));
                i
            }
        }
    }

    #[inline]
    fn take(&mut self, i: u32) -> EventKind {
        let kind = self.slots[i as usize].take().expect("live slab slot");
        self.free.push(i);
        kind
    }
}

/// The kernel's pending-event set behind a uniform interface.
pub(crate) struct EventQueue {
    slab: PayloadSlab,
    q: QueueImpl,
}

enum QueueImpl {
    Heap(BinaryHeap<Reverse<Key>>),
    Calendar(CalendarQueue),
}

impl EventQueue {
    pub(crate) fn new(kind: QueueKind) -> Self {
        // Pre-sized: cluster scenarios keep hundreds of in-flight
        // events; growing the structures mid-run is avoidable churn.
        let slab = PayloadSlab { slots: Vec::with_capacity(256), free: Vec::with_capacity(64) };
        let q = match kind {
            QueueKind::Heap => QueueImpl::Heap(BinaryHeap::with_capacity(256)),
            QueueKind::Calendar => QueueImpl::Calendar(CalendarQueue::new()),
        };
        EventQueue { slab, q }
    }

    #[inline]
    pub(crate) fn push(&mut self, ev: Scheduled) {
        let key = Key { time: ev.time, seq: ev.seq, idx: self.slab.insert(ev.kind) };
        match &mut self.q {
            QueueImpl::Heap(h) => h.push(Reverse(key)),
            QueueImpl::Calendar(c) => c.push(key),
        }
    }

    /// Remove and return the event with the smallest `(time, seq)` key.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Scheduled> {
        let key = match &mut self.q {
            QueueImpl::Heap(h) => h.pop().map(|Reverse(k)| k),
            QueueImpl::Calendar(c) => c.pop(),
        }?;
        Some(Scheduled { time: key.time, seq: key.seq, kind: self.slab.take(key.idx) })
    }

    /// The `(time, seq)` key of the next event without removing it.
    #[inline]
    pub(crate) fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        match &mut self.q {
            QueueImpl::Heap(h) => h.peek().map(|Reverse(k)| (k.time, k.seq)),
            QueueImpl::Calendar(c) => c.peek_key(),
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        match &self.q {
            QueueImpl::Heap(h) => h.len(),
            QueueImpl::Calendar(c) => c.len,
        }
    }
}

/// A calendar queue: events are hashed by time into `width`-nanosecond
/// buckets on a ring; pops scan forward from the current bucket, one
/// "day" (bucket window) at a time. Within a bucket events are kept
/// unsorted and the pop min-scans the bucket — `(time, seq)` keys are
/// unique, so the minimum is unambiguous and pop order is deterministic
/// no matter how events landed in the bucket.
struct CalendarQueue {
    /// Ring of unsorted buckets.
    buckets: Vec<Vec<Key>>,
    /// Bucket width in nanoseconds (>= 1).
    width: u64,
    /// Total pending events.
    len: usize,
    /// Ring index of the bucket whose window we are draining.
    cur: usize,
    /// Low edge (nanos) of bucket `cur`'s current window.
    cur_floor: u64,
    /// Cached key of the next event (kept warm by `peek_key`, refined
    /// by `push`, invalidated by `pop`).
    min_cache: Option<(SimTime, u64)>,
    /// Location `(bucket, index)` of the cached min, when known: lets a
    /// pop right after a peek (the engine's per-event pattern) take the
    /// slot directly instead of re-scanning.
    min_loc: Option<(usize, usize)>,
}

const MIN_BUCKETS: usize = 16;

impl CalendarQueue {
    fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1_000, // 1 µs; resizes adapt it to the real spread
            len: 0,
            cur: 0,
            cur_floor: 0,
            min_cache: None,
            min_loc: None,
        }
    }

    fn bucket_of(&self, t: u64) -> usize {
        ((t / self.width) as usize) % self.buckets.len()
    }

    fn push(&mut self, key: Key) {
        let b = self.bucket_of(key.time.as_nanos());
        if let Some(min) = self.min_cache {
            if (key.time, key.seq) < min {
                self.min_cache = Some((key.time, key.seq));
                self.min_loc = Some((b, self.buckets[b].len()));
            }
        }
        self.buckets[b].push(key);
        self.len += 1;
        if self.len > self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
    }

    fn pop(&mut self) -> Option<Key> {
        if self.len == 0 {
            return None;
        }
        self.min_cache = None;
        // Fast path: a peek (or a push that undercut it) already located
        // the min; take it directly and re-anchor the drain position on
        // its window (nothing earlier can exist or be pushed — the
        // kernel clamps schedule times to `now`).
        if let Some((b, i)) = self.min_loc.take() {
            let key = self.buckets[b].swap_remove(i);
            self.len -= 1;
            self.cur = b;
            let t = key.time.as_nanos();
            self.cur_floor = t - (t % self.width);
            if self.len < self.buckets.len() / 2 && self.buckets.len() > MIN_BUCKETS {
                self.resize(self.buckets.len() / 2);
            }
            return Some(key);
        }
        let n = self.buckets.len();
        for _ in 0..n {
            let end = self.cur_floor.saturating_add(self.width);
            let bucket = &self.buckets[self.cur];
            let mut best: Option<(usize, (SimTime, u64))> = None;
            for (i, k) in bucket.iter().enumerate() {
                if k.time.as_nanos() < end {
                    let key = (k.time, k.seq);
                    if best.is_none_or(|(_, b)| key < b) {
                        best = Some((i, key));
                    }
                }
            }
            if let Some((i, _)) = best {
                let key = self.buckets[self.cur].swap_remove(i);
                self.len -= 1;
                if self.len < self.buckets.len() / 2 && self.buckets.len() > MIN_BUCKETS {
                    self.resize(self.buckets.len() / 2);
                }
                return Some(key);
            }
            self.cur = (self.cur + 1) % n;
            self.cur_floor = end;
        }
        // A full year passed with nothing in-window: the events are
        // sparse relative to the calendar. Jump straight to the global
        // minimum and re-anchor the calendar on its window.
        let (b, i) = self.global_min().expect("len > 0");
        let key = self.buckets[b].swap_remove(i);
        self.len -= 1;
        self.cur = b;
        let t = key.time.as_nanos();
        self.cur_floor = t - (t % self.width);
        Some(key)
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if self.len == 0 {
            return None;
        }
        if self.min_cache.is_none() {
            let (b, i) = self.global_min().expect("len > 0");
            let k = &self.buckets[b][i];
            self.min_cache = Some((k.time, k.seq));
            self.min_loc = Some((b, i));
        }
        self.min_cache
    }

    /// `(bucket, index)` of the event with the globally smallest key.
    /// O(len); used by `peek_key` (cached) and the sparse-pop fallback.
    fn global_min(&self) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize, (SimTime, u64))> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, k) in bucket.iter().enumerate() {
                let key = (k.time, k.seq);
                if best.is_none_or(|(_, _, b)| key < b) {
                    best = Some((b, i, key));
                }
            }
        }
        best.map(|(b, i, _)| (b, i))
    }

    /// Rebuild with `nbuckets` buckets and a width fitted to the
    /// current spread (mean gap between pending events, so that one
    /// bucket holds a handful). Deterministic: depends only on the
    /// pending event set.
    fn resize(&mut self, nbuckets: usize) {
        let keys: Vec<Key> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for k in &keys {
            let t = k.time.as_nanos();
            lo = lo.min(t);
            hi = hi.max(t);
        }
        let span = hi.saturating_sub(lo);
        // Mean gap; clamp so same-time storms (span 0) still work.
        self.width = (span / keys.len().max(1) as u64).max(1);
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        self.cur_floor = lo - (lo % self.width);
        self.cur = ((lo / self.width) as usize) % nbuckets;
        self.len = 0;
        let cache = self.min_cache;
        for k in keys {
            self.push(k);
        }
        self.min_cache = cache;
        // Reinsertion scrambled bucket indices; the next pop re-scans.
        self.min_loc = None;
    }
}
