//! Trace exporters: JSON-lines event dumps and Chrome `trace_event`
//! JSON (loadable in `chrome://tracing` / Perfetto).
//!
//! Serialization is hand-rolled (no external JSON dependency) and fully
//! deterministic: identical event streams produce byte-identical
//! output, which the determinism regression tests rely on.

use std::io::{self, Write};
use std::path::Path;

use crate::metrics::MetricsRegistry;
use crate::time::SimTime;
use crate::trace::{TraceEvent, TraceEventKind, TraceSource};

/// Append `s` to `out` as a JSON string literal (with quotes).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format a finite `f64` deterministically for JSON embedding.
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        // JSON has no NaN/Inf; encode as null.
        out.push_str("null");
    }
}

fn source_tag(src: TraceSource) -> (&'static str, u64) {
    match src {
        TraceSource::Kernel => ("kernel", 0),
        TraceSource::Actor(a) => ("actor", a.index() as u64),
        TraceSource::Process(p) => ("process", p.0 as u64),
    }
}

fn kind_tag(kind: &TraceEventKind) -> &'static str {
    match kind {
        TraceEventKind::Instant => "instant",
        TraceEventKind::SpanBegin => "span_begin",
        TraceEventKind::SpanEnd => "span_end",
        TraceEventKind::Counter(_) => "counter",
    }
}

/// Serialize events as JSON-lines: one self-contained JSON object per
/// line, in stream order.
pub fn to_json_lines(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        let (src_kind, src_id) = source_tag(ev.source);
        out.push_str("{\"t_ns\":");
        out.push_str(&ev.time.as_nanos().to_string());
        out.push_str(",\"src\":");
        push_json_str(&mut out, src_kind);
        out.push_str(",\"src_id\":");
        out.push_str(&src_id.to_string());
        out.push_str(",\"src_name\":");
        push_json_str(&mut out, &ev.source_name);
        out.push_str(",\"kind\":");
        push_json_str(&mut out, kind_tag(&ev.kind));
        out.push_str(",\"name\":");
        push_json_str(&mut out, &ev.name);
        if let TraceEventKind::Counter(v) = ev.kind {
            out.push_str(",\"value\":");
            push_json_f64(&mut out, v);
        }
        if !ev.detail.is_empty() {
            out.push_str(",\"detail\":");
            push_json_str(&mut out, &ev.detail);
        }
        out.push_str("}\n");
    }
    out
}

/// Serialize events in Chrome `trace_event` format (the "JSON object
/// format" with a `traceEvents` array). Virtual nanoseconds map to the
/// format's microsecond timestamps with 3 decimal places. Each
/// [`TraceSource`] becomes a named thread lane; spans use `B`/`E`
/// pairs, instants `i`, counters `C`.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push_obj = |out: &mut String, body: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&body);
    };

    // Thread-name metadata: one entry per distinct source lane, in
    // order of first appearance (deterministic).
    let mut seen: Vec<(u64, &str)> = Vec::new();
    for ev in events {
        let lane = ev.source.lane();
        if !seen.iter().any(|&(l, _)| l == lane) {
            seen.push((lane, &*ev.source_name));
        }
    }
    for (lane, name) in seen {
        let mut body = String::new();
        body.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":");
        body.push_str(&lane.to_string());
        body.push_str(",\"args\":{\"name\":");
        push_json_str(&mut body, name);
        body.push_str("}}");
        push_obj(&mut out, body);
    }

    for ev in events {
        let lane = ev.source.lane();
        let us_whole = ev.time.as_nanos() / 1_000;
        let us_frac = ev.time.as_nanos() % 1_000;
        let mut body = String::new();
        body.push_str("{\"name\":");
        push_json_str(&mut body, &ev.name);
        body.push_str(",\"ph\":\"");
        body.push_str(match ev.kind {
            TraceEventKind::Instant => "i",
            TraceEventKind::SpanBegin => "B",
            TraceEventKind::SpanEnd => "E",
            TraceEventKind::Counter(_) => "C",
        });
        body.push_str("\",\"ts\":");
        body.push_str(&format!("{us_whole}.{us_frac:03}"));
        body.push_str(",\"pid\":0,\"tid\":");
        body.push_str(&lane.to_string());
        match &ev.kind {
            TraceEventKind::Instant => {
                body.push_str(",\"s\":\"t\"");
                if !ev.detail.is_empty() {
                    body.push_str(",\"args\":{\"detail\":");
                    push_json_str(&mut body, &ev.detail);
                    body.push('}');
                }
            }
            TraceEventKind::Counter(v) => {
                body.push_str(",\"args\":{\"value\":");
                push_json_f64(&mut body, *v);
                body.push('}');
            }
            TraceEventKind::SpanBegin => {
                if !ev.detail.is_empty() {
                    body.push_str(",\"args\":{\"detail\":");
                    push_json_str(&mut body, &ev.detail);
                    body.push('}');
                }
            }
            TraceEventKind::SpanEnd => {}
        }
        body.push('}');
        push_obj(&mut out, body);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Write a Chrome `trace_event` file to `path`.
pub fn write_chrome_trace(path: impl AsRef<Path>, events: &[TraceEvent]) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_chrome_trace(events).as_bytes())
}

/// Write a JSON-lines event dump to `path`.
pub fn write_json_lines(path: impl AsRef<Path>, events: &[TraceEvent]) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json_lines(events).as_bytes())
}

/// Serialize a registry snapshot as one JSON object: counters and
/// gauges verbatim, histograms as quantile summaries, time-weighted
/// gauges as `{last, mean}` with the mean integrated up to `until`.
pub fn metrics_to_json(metrics: &MetricsRegistry, until: SimTime) -> String {
    let (counters, gauges, twgs, histograms) = metrics.names();
    let mut out = String::new();
    out.push_str("{\"counters\":{");
    for (i, name) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, name);
        out.push(':');
        out.push_str(&metrics.counter(name).to_string());
    }
    out.push_str("},\"gauges\":{");
    for (i, name) in gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, name);
        out.push(':');
        push_json_f64(&mut out, metrics.gauge(name).unwrap_or(f64::NAN));
    }
    out.push_str("},\"time_weighted\":{");
    for (i, name) in twgs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, name);
        out.push_str(":{\"last\":");
        push_json_f64(&mut out, metrics.twg_value(name).unwrap_or(f64::NAN));
        out.push_str(",\"mean\":");
        match metrics.twg_mean(name, until) {
            Some(m) => push_json_f64(&mut out, m),
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("},\"histograms\":{");
    for (i, name) in histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, name);
        match metrics.histogram(name) {
            Some(h) => {
                out.push_str(":{\"count\":");
                out.push_str(&h.count.to_string());
                for (k, v) in [
                    ("min", h.min),
                    ("max", h.max),
                    ("mean", h.mean),
                    ("p50", h.p50),
                    ("p95", h.p95),
                    ("p99", h.p99),
                ] {
                    out.push_str(",\"");
                    out.push_str(k);
                    out.push_str("\":");
                    push_json_f64(&mut out, v);
                }
                out.push('}');
            }
            None => out.push_str(":null"),
        }
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{ActorId, ProcessId};
    use crate::trace::Tracer;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample_events() -> Vec<TraceEvent> {
        let tr = Tracer::enabled_tracer();
        tr.instant(t(1_500), TraceSource::Kernel, "kernel", "boot", || "x=\"1\"".into());
        tr.span_begin(t(2_000), TraceSource::Actor(ActorId(0)), "pbs_server", "qsub");
        tr.counter(t(2_500), TraceSource::Actor(ActorId(0)), "pbs_server", "queue_depth", 3.0);
        tr.span_end(t(9_000), TraceSource::Actor(ActorId(0)), "pbs_server", "qsub");
        tr.instant(t(10_000), TraceSource::Process(ProcessId(2)), "job:a", "done", String::new);
        tr.take()
    }

    #[test]
    fn json_lines_one_object_per_event() {
        let evs = sample_events();
        let s = to_json_lines(&evs);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), evs.len());
        assert!(lines[0].contains("\"t_ns\":1500"));
        assert!(lines[0].contains("\\\"1\\\""), "escaped quotes: {}", lines[0]);
        assert!(lines[2].contains("\"value\":3"));
        assert!(lines[4].contains("\"src\":\"process\""));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn chrome_trace_has_metadata_and_phases() {
        let evs = sample_events();
        let s = to_chrome_trace(&evs);
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"thread_name\""));
        assert!(s.contains("\"ph\":\"B\""));
        assert!(s.contains("\"ph\":\"E\""));
        assert!(s.contains("\"ph\":\"C\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"ts\":1.500"), "ns → µs with 3 decimals");
        // lane mapping: actor 0 → tid 1, process 2 → tid 1003
        assert!(s.contains("\"tid\":1,"));
        assert!(s.contains("\"tid\":1003"));
    }

    #[test]
    fn exporters_are_deterministic() {
        let a = sample_events();
        let b = sample_events();
        assert_eq!(to_json_lines(&a), to_json_lines(&b));
        assert_eq!(to_chrome_trace(&a), to_chrome_trace(&b));
    }

    #[test]
    fn metrics_json_shape() {
        let m = MetricsRegistry::new();
        m.counter_add("net.messages", 7);
        m.gauge_set("g", t(5), 1.5);
        m.twg_set("util", t(0), 2.0);
        m.observe("lat", 0.25);
        let s = metrics_to_json(&m, t(1_000_000_000));
        assert!(s.contains("\"net.messages\":7"));
        assert!(s.contains("\"g\":1.5"));
        assert!(s.contains("\"last\":2"));
        assert!(s.contains("\"count\":1"));
    }
}
