//! # darms-sim — deterministic process-oriented discrete-event simulation
//!
//! The substrate every other `darms` crate runs on. It provides:
//!
//! - a virtual clock ([`SimTime`], [`SimDuration`]);
//! - an event heap ordered by `(time, sequence)` for deterministic
//!   simultaneous-event handling;
//! - **reactive actors** ([`Actor`]) — state machines dispatched inline,
//!   used for daemons such as `pbs_server`, `pbs_mom` and the scheduler;
//! - **stackless processes** ([`Proc`]) — `async` bodies with awaitable
//!   `sleep`/`recv`, used for sequential logic such as user applications
//!   and MPI ranks. The bodies are futures polled one at a time by a
//!   purpose-built single-threaded executor inside the engine (no OS
//!   threads, no `Send` bounds), so runs are bit-for-bit reproducible
//!   for a given seed;
//! - a seeded RNG, an optional event trace, and a [`Recorder`] for
//!   collecting experiment measurements;
//! - an observability layer: a structured event stream ([`Tracer`],
//!   exported as JSON-lines or Chrome `trace_event` via [`export`]), a
//!   [`MetricsRegistry`] of counters / gauges / time-weighted gauges /
//!   histograms, and engine profiling counters in [`SimStats`].
//!
//! ## Example
//!
//! ```
//! use darms_sim::{Engine, SimDuration};
//! use std::sync::Arc;
//! use parking_lot::Mutex;
//!
//! let mut sim = Engine::with_seed(7);
//! let out = Arc::new(Mutex::new(0u32));
//! let o = out.clone();
//! let server = sim.spawn_process("server", |p| async move {
//!     let (n, src) = p.recv_as::<u32>().await;
//!     p.send(src.unwrap(), n + 1, SimDuration::from_millis(1));
//! });
//! sim.spawn_process("client", move |p| async move {
//!     p.send(server.into(), 41u32, SimDuration::from_millis(1));
//!     let (n, _) = p.recv_as::<u32>().await;
//!     *o.lock() = n;
//! });
//! sim.run();
//! assert_eq!(*out.lock(), 42);
//! ```

#![warn(missing_docs)]

mod actor;
mod engine;
mod envelope;
pub mod export;
mod kernel;
pub mod metrics;
mod process;
mod queue;
mod recorder;
mod time;
pub mod trace;

pub use actor::{Actor, Ctx};
pub use engine::Engine;
pub use envelope::{ActorId, Endpoint, Envelope, ProcessId};
pub use export::{
    metrics_to_json, to_chrome_trace, to_json_lines, write_chrome_trace, write_json_lines,
};
pub use kernel::{Kernel, SimConfig, SimStats, TraceRecord};
pub use metrics::{
    exact_quantile, HistogramSummary, MetricsRegistry, QuantileEstimator, SloSummary,
};
pub use process::{Proc, ProcFuture};
pub use queue::QueueKind;
pub use recorder::{percentile, Recorder, Sample, Summary};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceEventKind, TraceSource, Tracer};
