//! The simulation kernel: virtual clock, event queue, process table, RNG,
//! structured tracer, and metrics registry.
//!
//! The kernel lives behind an `Rc<RefCell<..>>` shared by the engine and
//! every [`Proc`](crate::Proc) handle. Everything runs on the engine
//! thread — process bodies are stackless futures the engine polls one at
//! a time — so borrows are never contended; the cell exists so handles
//! can be owned by the bodies themselves without borrowing the engine,
//! and a `RefCell` borrow is an integer flag check instead of the mutex
//! acquisition the previous runtime paid 4–6 times per event. The
//! process table is a slab: slots are indexed by `ProcessId` (wakeups
//! and handle lookups are integer ops), never reused (a recycled id
//! could mis-deliver a late message), and retired on completion — the
//! body is dropped and the mailbox buffer recycled into a pool for
//! future spawns.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::envelope::{ActorId, Endpoint, Envelope, ProcessId};
use crate::metrics::MetricsRegistry;
use crate::process::ProcBody;
use crate::queue::{EventQueue, QueueKind};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceEventKind, TraceSource, Tracer};

/// What a scheduled event does when it fires.
pub(crate) enum EventKind {
    /// Deliver a message to an endpoint.
    Deliver { dst: Endpoint, env: Envelope },
    /// Wake a parked process. Stale wakes (epoch mismatch) are ignored,
    /// which is how sleep timeouts and message arrivals coexist safely.
    Wake { pid: ProcessId, epoch: u64 },
    /// Fire a timer registered by a reactive actor. Stale generations
    /// (the token was cancelled after scheduling) are discarded without
    /// advancing the clock.
    Timer { actor: ActorId, token: u64, gen: u64 },
}

/// An entry in the event queue, ordered by `(time, seq)` so that
/// simultaneous events fire in scheduling order (deterministic).
pub(crate) struct Scheduled {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Why a process is not currently running.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ProcState {
    /// Spawned; the body future has not been constructed yet.
    NotStarted,
    /// Currently being polled by the engine.
    Active,
    /// Suspended in `recv`; a message delivery wakes it.
    ParkedRecv,
    /// Suspended in `sleep`; only the matching `Wake` event resumes it.
    ParkedSleep,
    /// Body ran to completion (or was dropped at shutdown).
    Finished,
}

/// Bookkeeping for one stackless process.
pub(crate) struct ProcSlot {
    /// Interned once at spawn; trace emission and `endpoint_name` hand
    /// out refcount bumps instead of fresh `String`s.
    pub name: Arc<str>,
    pub mailbox: VecDeque<Envelope>,
    pub state: ProcState,
    /// Park epoch; bumped every time the process parks or is woken so
    /// stale `Wake` events can be discarded.
    pub epoch: u64,
    /// The body state machine. Taken out (and put back) by the engine
    /// around each poll so polling happens without the kernel lock.
    pub body: ProcBody,
}

/// One line of the simulation trace, in the legacy flat form. The
/// structured stream ([`TraceEvent`]) is the source of truth; records
/// are derived from it by [`Engine::take_trace`](crate::Engine::take_trace)
/// for existing consumers.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Component that produced the record.
    pub source: String,
    /// Human-readable description.
    pub event: String,
}

impl From<TraceEvent> for TraceRecord {
    fn from(ev: TraceEvent) -> Self {
        let event = match (&ev.kind, ev.detail.is_empty()) {
            (TraceEventKind::Counter(v), _) => format!("{} = {v}", ev.name),
            (_, true) => ev.name,
            (_, false) => format!("{}: {}", ev.name, ev.detail),
        };
        TraceRecord { time: ev.time, source: ev.source_name.to_string(), event }
    }
}

/// Engine configuration knobs.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for the deterministic RNG.
    pub seed: u64,
    /// Hard cap on processed events (guards against livelock).
    pub max_events: u64,
    /// Virtual-time horizon; events after it are not processed.
    pub horizon: SimTime,
    /// Record trace lines.
    pub trace: bool,
    /// Echo trace lines to stderr as they happen (debugging aid).
    pub trace_echo: bool,
    /// Which data structure backs the event queue. Both kinds yield the
    /// exact same `(time, seq)` order; this is a performance knob.
    pub queue_kind: QueueKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x5eed_dac5,
            max_events: 50_000_000,
            horizon: SimTime::MAX,
            trace: false,
            trace_echo: false,
            queue_kind: QueueKind::Heap,
        }
    }
}

/// Aggregate statistics returned by [`Engine::run`](crate::engine::Engine::run).
///
/// Equality compares only the *deterministic* fields: `wall_nanos`
/// (real time, varies run to run) is excluded, so two runs of the same
/// seed still compare equal.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimStats {
    /// Number of events dispatched.
    pub events: u64,
    /// Final virtual time.
    pub end_time: SimTime,
    /// Processes spawned over the run.
    pub processes_spawned: u64,
    /// Processes that ran to completion.
    pub processes_finished: u64,
    /// True if the run stopped because `max_events` was hit.
    pub hit_event_cap: bool,
    /// True if the run stopped at the virtual-time horizon.
    pub hit_horizon: bool,
    /// Process bodies that terminated by a genuine panic.
    pub process_panics: u64,
    /// Largest event-queue depth observed at a dispatch (including the
    /// event being dispatched).
    pub peak_queue_depth: u64,
    /// Sum of the queue depth sampled at every dispatch; divide by
    /// `events` for the mean (see [`SimStats::mean_queue_depth`]).
    pub queue_depth_sum: u64,
    /// Process resumes (one per poll of a process body). The name is
    /// historical: the threaded runtime paid an engine↔thread hand-off
    /// here, the stackless runtime a future poll.
    pub context_switches: u64,
    /// Real (wall-clock) nanoseconds spent inside the event loop.
    /// **Non-deterministic**; excluded from equality.
    pub wall_nanos: u64,
}

impl PartialEq for SimStats {
    fn eq(&self, other: &Self) -> bool {
        (
            self.events,
            self.end_time,
            self.processes_spawned,
            self.processes_finished,
            self.hit_event_cap,
            self.hit_horizon,
            self.process_panics,
            self.peak_queue_depth,
            self.queue_depth_sum,
            self.context_switches,
        ) == (
            other.events,
            other.end_time,
            other.processes_spawned,
            other.processes_finished,
            other.hit_event_cap,
            other.hit_horizon,
            other.process_panics,
            other.peak_queue_depth,
            other.queue_depth_sum,
            other.context_switches,
        )
    }
}

impl Eq for SimStats {}

impl SimStats {
    /// Mean event-queue depth over all dispatches.
    pub fn mean_queue_depth(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.events as f64
        }
    }

    /// Real seconds spent inside the event loop.
    pub fn wall_secs(&self) -> f64 {
        self.wall_nanos as f64 / 1e9
    }

    /// Real (wall-clock) seconds burned per simulated second — the
    /// engine's slowdown factor (values below 1.0 mean faster than
    /// real time). Zero when no virtual time elapsed.
    pub fn wall_per_sim_second(&self) -> f64 {
        let sim = self.end_time.as_secs_f64();
        if sim <= 0.0 {
            0.0
        } else {
            self.wall_secs() / sim
        }
    }
}

/// The mutable heart of the simulation. See module docs for the locking
/// discipline.
pub struct Kernel {
    pub(crate) now: SimTime,
    pub(crate) seq: u64,
    pub(crate) queue: EventQueue,
    pub(crate) procs: Vec<ProcSlot>,
    pub(crate) shutdown: bool,
    pub(crate) rng: SmallRng,
    pub(crate) config: SimConfig,
    pub(crate) tracer: Tracer,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) stats: SimStats,
    pub(crate) actor_names: Vec<Arc<str>>,
    /// Per-actor timer generations, keyed by token. A timer event fires
    /// only if its generation still matches; `cancel_timer` bumps the
    /// generation, so cancellation is a counter increment instead of
    /// `HashSet` insert/remove churn on every fire.
    pub(crate) timer_gens: Vec<Vec<(u64, u64)>>,
    /// Mailbox buffers reclaimed from retired process slots, handed
    /// back out to new spawns. Spawn-churn workloads recycle the same
    /// few buffers instead of allocating one per process.
    pub(crate) mailbox_pool: Vec<VecDeque<Envelope>>,
}

impl Kernel {
    pub(crate) fn new(config: SimConfig) -> Self {
        let tracer = Tracer::new();
        tracer.set_enabled(config.trace);
        tracer.set_echo(config.trace_echo);
        Kernel {
            now: SimTime::ZERO,
            seq: 0,
            queue: EventQueue::new(config.queue_kind),
            procs: Vec::new(),
            shutdown: false,
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            tracer,
            metrics: MetricsRegistry::new(),
            stats: SimStats::default(),
            actor_names: Vec::new(),
            timer_gens: Vec::new(),
            mailbox_pool: Vec::new(),
        }
    }

    /// Hand out a mailbox buffer: a recycled one when available,
    /// otherwise a fresh allocation (most daemons hold only a few
    /// undelivered messages at a time).
    pub(crate) fn alloc_mailbox(&mut self) -> VecDeque<Envelope> {
        self.mailbox_pool.pop().unwrap_or_else(|| VecDeque::with_capacity(4))
    }

    /// Retire a finished process slot: drop any undelivered mail and
    /// recycle the mailbox buffer. The slot itself stays (ids are never
    /// reused), but its heap footprint shrinks to the name handle.
    pub(crate) fn retire_slot(&mut self, pid: ProcessId) {
        let slot = &mut self.procs[pid.0];
        let mut mailbox = std::mem::take(&mut slot.mailbox);
        mailbox.clear();
        if self.mailbox_pool.len() < 256 {
            self.mailbox_pool.push(mailbox);
        }
    }

    /// Current timer generation for `(actor, token)`; zero if never set
    /// or cancelled. The per-actor token lists are tiny (daemons use a
    /// handful of tokens), so a linear scan beats hashing.
    pub(crate) fn timer_gen(&self, actor: usize, token: u64) -> u64 {
        self.timer_gens
            .get(actor)
            .and_then(|v| v.iter().find(|&&(t, _)| t == token))
            .map_or(0, |&(_, g)| g)
    }

    /// Bump the generation of `(actor, token)`, invalidating every
    /// pending timer event scheduled under the old generation.
    pub(crate) fn bump_timer_gen(&mut self, actor: usize, token: u64) {
        if self.timer_gens.len() <= actor {
            self.timer_gens.resize_with(actor + 1, Vec::new);
        }
        let v = &mut self.timer_gens[actor];
        match v.iter_mut().find(|(t, _)| *t == token) {
            Some((_, g)) => *g += 1,
            None => v.push((token, 1)),
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Push an event onto the queue at absolute time `at` (clamped to now).
    #[inline]
    pub(crate) fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { time: at, seq, kind });
    }

    /// Schedule delivery of `env` to `dst` after `delay`.
    #[inline]
    pub fn send(&mut self, dst: Endpoint, env: Envelope, delay: SimDuration) {
        let at = self.now + delay;
        self.schedule(at, EventKind::Deliver { dst, env });
    }

    /// Bump a process's park epoch and return the new value.
    #[inline]
    pub(crate) fn bump_epoch(&mut self, pid: ProcessId) -> u64 {
        let slot = &mut self.procs[pid.0];
        slot.epoch += 1;
        slot.epoch
    }

    /// Record an instant trace event attributed to the kernel itself
    /// (no-op unless tracing is enabled).
    pub fn trace(&mut self, source: &str, event: impl Into<String>) {
        let now = self.now;
        self.tracer.emit_with(|| TraceEvent {
            time: now,
            source: TraceSource::Kernel,
            source_name: Arc::from(source),
            name: event.into(),
            detail: String::new(),
            kind: TraceEventKind::Instant,
        });
    }

    /// Record an instant trace event with a typed source (no-op unless
    /// tracing is enabled; the strings are only built when it is). The
    /// source name is an interned handle, so emission never copies it.
    pub fn emit(
        &self,
        source: TraceSource,
        source_name: &Arc<str>,
        name: impl Into<String>,
        detail: impl Into<String>,
    ) {
        let now = self.now;
        self.tracer.emit_with(|| TraceEvent {
            time: now,
            source,
            source_name: source_name.clone(),
            name: name.into(),
            detail: detail.into(),
            kind: TraceEventKind::Instant,
        });
    }

    /// The structured-event tracer handle (cloneable; shared with all
    /// clones). Enabled iff [`SimConfig::trace`] was set, until toggled.
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// The shared metrics registry all instrumented subsystems write to.
    pub fn metrics(&self) -> MetricsRegistry {
        self.metrics.clone()
    }

    /// Draw from the deterministic RNG.
    pub fn with_rng<R>(&mut self, f: impl FnOnce(&mut SmallRng) -> R) -> R {
        f(&mut self.rng)
    }

    /// Human-readable name of an endpoint (for traces and errors). A
    /// refcount bump for registered endpoints; allocates only for the
    /// unknown-id fallback.
    pub fn endpoint_name(&self, ep: Endpoint) -> Arc<str> {
        match ep {
            Endpoint::Actor(a) => self
                .actor_names
                .get(a.0)
                .cloned()
                .unwrap_or_else(|| format!("actor#{}", a.0).into()),
            Endpoint::Process(p) => self
                .procs
                .get(p.0)
                .map(|s| s.name.clone())
                .unwrap_or_else(|| format!("proc#{}", p.0).into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_orders_by_time_then_seq() {
        let mut k = Kernel::new(SimConfig::default());
        k.schedule(SimTime::from_nanos(20), EventKind::Wake { pid: ProcessId(0), epoch: 0 });
        k.schedule(SimTime::from_nanos(10), EventKind::Wake { pid: ProcessId(1), epoch: 0 });
        k.schedule(SimTime::from_nanos(10), EventKind::Wake { pid: ProcessId(2), epoch: 0 });
        let order: Vec<usize> = std::iter::from_fn(|| k.queue.pop())
            .map(|s| match s.kind {
                EventKind::Wake { pid, .. } => pid.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 0]); // same-time ties broken by schedule order
    }

    #[test]
    fn schedule_clamps_to_now() {
        let mut k = Kernel::new(SimConfig::default());
        k.now = SimTime::from_nanos(100);
        k.schedule(
            SimTime::from_nanos(5),
            EventKind::Timer { actor: ActorId(0), token: 0, gen: 0 },
        );
        let s = k.queue.pop().unwrap();
        assert_eq!(s.time, SimTime::from_nanos(100));
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut k = Kernel::new(SimConfig::default());
        k.trace("x", "hello");
        assert!(k.tracer.is_empty());
        k.tracer.set_enabled(true);
        k.trace("x", "hello");
        assert_eq!(k.tracer.len(), 1);
        let evs = k.tracer.take();
        assert_eq!(evs[0].name, "hello");
        assert_eq!(&*evs[0].source_name, "x");
        assert_eq!(evs[0].source, TraceSource::Kernel);
    }

    #[test]
    fn rng_is_seed_deterministic() {
        use rand::Rng;
        let mut a = Kernel::new(SimConfig { seed: 42, ..Default::default() });
        let mut b = Kernel::new(SimConfig { seed: 42, ..Default::default() });
        let xa: Vec<u32> = (0..8).map(|_| a.with_rng(|r| r.gen())).collect();
        let xb: Vec<u32> = (0..8).map(|_| b.with_rng(|r| r.gen())).collect();
        assert_eq!(xa, xb);
    }
}
