//! Structured event tracing: a public, typed event stream replacing the
//! kernel-private string trace.
//!
//! Every event carries the virtual time, a typed [`TraceSource`]
//! (kernel, actor, or process), the source's registered name, an event
//! kind (instant, span begin/end, counter sample) and a free-form
//! detail payload. Events are collected by a cloneable [`Tracer`]
//! handle that is **zero-cost when disabled**: emission sites pass a
//! closure to [`Tracer::emit_with`], so a disabled tracer performs one
//! relaxed atomic load and never constructs the event.
//!
//! The stream serializes to JSON-lines and Chrome `trace_event` format
//! via [`crate::export`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::envelope::{ActorId, ProcessId};
use crate::time::SimTime;

/// Which component emitted an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceSource {
    /// The simulation kernel / engine itself.
    Kernel,
    /// A reactive actor, by id.
    Actor(ActorId),
    /// A threaded process, by id.
    Process(ProcessId),
}

impl TraceSource {
    /// A stable small integer identifying the source's "thread lane" in
    /// exported traces: 0 for the kernel, actors from 1, processes from
    /// 1001 (clusters never approach 1000 actors).
    pub fn lane(&self) -> u64 {
        match self {
            TraceSource::Kernel => 0,
            TraceSource::Actor(a) => 1 + a.index() as u64,
            TraceSource::Process(p) => 1001 + p.0 as u64,
        }
    }
}

/// What kind of mark an event is.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEventKind {
    /// A point-in-time occurrence.
    Instant,
    /// The opening edge of a span; matched with the next
    /// [`TraceEventKind::SpanEnd`] of the same source and name.
    SpanBegin,
    /// The closing edge of a span.
    SpanEnd,
    /// A sampled numeric series (rendered as a counter track).
    Counter(f64),
}

/// One structured trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Typed source id.
    pub source: TraceSource,
    /// Registered name of the source at emission time. Interned: clones
    /// of one source's events share a single allocation.
    pub source_name: Arc<str>,
    /// Event name (the taxonomy key, e.g. `rms.qsub`, `sched.iteration`).
    pub name: String,
    /// Free-form payload.
    pub detail: String,
    /// Mark kind.
    pub kind: TraceEventKind,
}

#[derive(Default)]
struct TracerInner {
    enabled: AtomicBool,
    echo: AtomicBool,
    buf: Mutex<Vec<TraceEvent>>,
}

/// Cloneable collector handle for the structured event stream.
///
/// All clones share one buffer. When disabled, [`Tracer::emit_with`]
/// costs a single relaxed atomic load.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A new, disabled tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// A new tracer with collection turned on.
    pub fn enabled_tracer() -> Self {
        let t = Tracer::default();
        t.set_enabled(true);
        t
    }

    /// Whether events are currently collected.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn collection on or off.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Echo events to stderr as they are recorded (debugging aid).
    pub fn set_echo(&self, on: bool) {
        self.inner.echo.store(on, Ordering::Relaxed);
    }

    /// Record an already-built event (use [`Tracer::emit_with`] on hot
    /// paths so the event is only built when tracing is on).
    pub fn emit(&self, ev: TraceEvent) {
        if !self.enabled() {
            return;
        }
        if self.inner.echo.load(Ordering::Relaxed) {
            eprintln!("[{}] {}: {} {}", ev.time, ev.source_name, ev.name, ev.detail);
        }
        self.inner.buf.lock().push(ev);
    }

    /// Record the event built by `f`, constructing it only when enabled.
    pub fn emit_with(&self, f: impl FnOnce() -> TraceEvent) {
        if !self.enabled() {
            return;
        }
        self.emit(f());
    }

    /// Convenience: record an [`TraceEventKind::Instant`] event.
    pub fn instant(
        &self,
        time: SimTime,
        source: TraceSource,
        source_name: &str,
        name: &str,
        detail: impl FnOnce() -> String,
    ) {
        self.emit_with(|| TraceEvent {
            time,
            source,
            source_name: Arc::from(source_name),
            name: name.to_string(),
            detail: detail(),
            kind: TraceEventKind::Instant,
        });
    }

    /// Convenience: record a [`TraceEventKind::SpanBegin`] edge.
    pub fn span_begin(&self, time: SimTime, source: TraceSource, source_name: &str, name: &str) {
        self.emit_with(|| TraceEvent {
            time,
            source,
            source_name: Arc::from(source_name),
            name: name.to_string(),
            detail: String::new(),
            kind: TraceEventKind::SpanBegin,
        });
    }

    /// Convenience: record a [`TraceEventKind::SpanEnd`] edge.
    pub fn span_end(&self, time: SimTime, source: TraceSource, source_name: &str, name: &str) {
        self.emit_with(|| TraceEvent {
            time,
            source,
            source_name: Arc::from(source_name),
            name: name.to_string(),
            detail: String::new(),
            kind: TraceEventKind::SpanEnd,
        });
    }

    /// Convenience: record a [`TraceEventKind::Counter`] sample.
    pub fn counter(
        &self,
        time: SimTime,
        source: TraceSource,
        source_name: &str,
        name: &str,
        value: f64,
    ) {
        self.emit_with(|| TraceEvent {
            time,
            source,
            source_name: Arc::from(source_name),
            name: name.to_string(),
            detail: String::new(),
            kind: TraceEventKind::Counter(value),
        });
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.buf.lock().len()
    }

    /// True if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the buffered events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.inner.buf.lock())
    }

    /// Copy the buffered events without draining.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.buf.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_tracer_collects_nothing_and_never_builds() {
        let tr = Tracer::new();
        let mut built = false;
        tr.emit_with(|| {
            built = true;
            TraceEvent {
                time: t(1),
                source: TraceSource::Kernel,
                source_name: "k".into(),
                name: "x".into(),
                detail: String::new(),
                kind: TraceEventKind::Instant,
            }
        });
        assert!(!built, "closure must not run while disabled");
        assert!(tr.is_empty());
    }

    #[test]
    fn clones_share_one_buffer() {
        let tr = Tracer::enabled_tracer();
        let tr2 = tr.clone();
        tr.instant(t(5), TraceSource::Kernel, "k", "a", String::new);
        tr2.instant(t(6), TraceSource::Process(ProcessId(3)), "p3", "b", || "d".into());
        assert_eq!(tr.len(), 2);
        let evs = tr2.take();
        assert_eq!(evs.len(), 2);
        assert!(tr.is_empty());
        assert_eq!(evs[1].source.lane(), 1004);
        assert_eq!(evs[1].detail, "d");
    }

    #[test]
    fn span_and_counter_kinds_round_trip() {
        let tr = Tracer::enabled_tracer();
        tr.span_begin(t(1), TraceSource::Actor(ActorId(0)), "srv", "work");
        tr.counter(t(2), TraceSource::Kernel, "k", "depth", 4.0);
        tr.span_end(t(3), TraceSource::Actor(ActorId(0)), "srv", "work");
        let evs = tr.take();
        assert_eq!(evs[0].kind, TraceEventKind::SpanBegin);
        assert_eq!(evs[1].kind, TraceEventKind::Counter(4.0));
        assert_eq!(evs[2].kind, TraceEventKind::SpanEnd);
    }
}
