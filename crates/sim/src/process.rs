//! Stackless simulation processes: `async` bodies on a single-threaded
//! executor inside the kernel.
//!
//! Daemons with sequential logic (user applications, MPI ranks,
//! accelerator back-ends) are written as ordinary `async` closures
//! taking a [`Proc`] handle: `|p| async move { … }`. Each body is
//! compiled by rustc into a stackless state machine (a [`Future`]) that
//! the engine polls directly on its own thread — there are no OS
//! threads, no stacks to park, and no `Send` bound on bodies.
//!
//! ## Await points and the event kernel
//!
//! `sleep`, `recv`, `recv_timeout` and friends are futures whose
//! `poll` registers with the event kernel instead of blocking: parking
//! the process is setting [`ProcState::ParkedSleep`]/[`ProcState::ParkedRecv`]
//! on its slot (plus scheduling a `Wake` event for deadlines) and
//! returning [`Poll::Pending`]. Readiness is decided by kernel state,
//! not by wakers — the engine resumes exactly the one process named by
//! the event it is dispatching — so the executor uses a no-op [`Waker`]
//! and a spurious `wake()` from user code is harmless.
//!
//! Every park bumps the slot's *epoch*; `Wake` events carry the epoch
//! they were scheduled under and are discarded as stale when it no
//! longer matches (e.g. the deadline of a timed `recv` that was
//! satisfied by a message arrives later). This is exactly the discipline
//! the previous one-OS-thread-per-process runtime used, and the poll
//! bodies replicate its `schedule()` call sequence verbatim, so event
//! `(time, seq)` ordering — and therefore traces and figure outputs —
//! are byte-identical to the threaded runtime (see the golden-trace
//! tests in `darms-experiments`).
//!
//! ## Why this is fast
//!
//! The threaded runtime paid two park/unpark hand-offs (a futex pair)
//! per delivered message; resuming a stackless body is a virtual call
//! into an inline state machine plus a few uncontended mutex
//! acquisitions. Ping-pong throughput measured by `perf_report` rose
//! from ~330k events/sec (threads) to well over 1M events/sec, and a
//! process now costs one heap allocation instead of an OS thread, so
//! scenarios with tens of thousands of short-lived processes (the
//! `spawn_churn` benchmark) are practical.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::Poll;

use rand::rngs::SmallRng;

use crate::envelope::{Endpoint, Envelope, ProcessId};
use crate::kernel::{EventKind, Kernel, ProcSlot, ProcState};
use crate::time::{SimDuration, SimTime};

/// A boxed process body: the stackless state machine the engine polls.
/// No `Send` bound — bodies never leave the engine thread.
pub type ProcFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// Storage for a process body across its lifecycle.
pub(crate) enum ProcBody {
    /// Spawned but not yet started; the closure builds the future on
    /// the first wake (so the body's locals are not constructed until
    /// its virtual start time).
    Entry(Box<dyn FnOnce() -> ProcFuture + 'static>),
    /// Started and suspended at an await point.
    Future(ProcFuture),
    /// Ran to completion (or was dropped at shutdown).
    Done,
}

/// Handle given to a process body; all interaction with the simulated
/// world goes through it.
///
/// The handle is cloneable so that layered libraries (MPI runtime, job
/// context, resource-management library) can each hold one. All clones
/// refer to the same process and **must only be awaited from that
/// process's own body** — the engine resumes a process only when an
/// event names it, so awaiting another process's handle would park the
/// wrong slot. The single-active-process discipline makes this easy to
/// satisfy: simulation code only ever sees its own handle.
#[derive(Clone)]
pub struct Proc {
    pub(crate) pid: ProcessId,
    pub(crate) kernel: Rc<RefCell<Kernel>>,
    pub(crate) name: Arc<str>,
}

impl Proc {
    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.pid
    }

    /// This process's endpoint (give it to peers so they can reply).
    pub fn endpoint(&self) -> Endpoint {
        Endpoint::Process(self.pid)
    }

    /// The name the process was spawned with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.borrow().now()
    }

    /// Record an instant trace event attributed to this process.
    pub fn trace(&self, event: impl Into<String>) {
        self.trace_detail(event, String::new());
    }

    /// Record an instant trace event with a detail payload.
    pub fn trace_detail(&self, event: impl Into<String>, detail: impl Into<String>) {
        let k = self.kernel.borrow();
        k.emit(crate::trace::TraceSource::Process(self.pid), &self.name, event, detail);
    }

    /// Cloneable handle to the structured tracer.
    pub fn tracer(&self) -> crate::trace::Tracer {
        self.kernel.borrow().tracer()
    }

    /// Cloneable handle to the shared metrics registry.
    pub fn metrics(&self) -> crate::metrics::MetricsRegistry {
        self.kernel.borrow().metrics()
    }

    /// Draw from the deterministic RNG.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut SmallRng) -> R) -> R {
        self.kernel.borrow_mut().with_rng(f)
    }

    /// Advance virtual time by `d` (models compute or I/O work).
    /// Messages arriving meanwhile queue up in the mailbox.
    pub fn sleep(&self, d: SimDuration) -> impl Future<Output = ()> + '_ {
        let mut parked = false;
        std::future::poll_fn(move |_cx| {
            if parked {
                // The matching Wake fired; virtual time has advanced.
                return Poll::Ready(());
            }
            parked = true;
            let mut k = self.kernel.borrow_mut();
            let at = k.now() + d;
            let epoch = k.bump_epoch(self.pid);
            k.procs[self.pid.0].state = ProcState::ParkedSleep;
            k.schedule(at, EventKind::Wake { pid: self.pid, epoch });
            Poll::Pending
        })
    }

    /// Send a payload to `dst`, arriving after `delay`.
    pub fn send<T: std::any::Any + Send>(&self, dst: Endpoint, payload: T, delay: SimDuration) {
        self.send_env(dst, Envelope::from_src(self.endpoint(), payload), delay);
    }

    /// Send a pre-built envelope.
    pub fn send_env(&self, dst: Endpoint, env: Envelope, delay: SimDuration) {
        let mut k = self.kernel.borrow_mut();
        k.send(dst, env, delay);
    }

    /// Pop the next mailbox message without blocking.
    pub fn try_recv(&self) -> Option<Envelope> {
        let mut k = self.kernel.borrow_mut();
        k.procs[self.pid.0].mailbox.pop_front()
    }

    /// Pop the first mailbox message satisfying `pred` without blocking;
    /// earlier non-matching messages stay queued in order.
    pub fn try_recv_where(&self, mut pred: impl FnMut(&Envelope) -> bool) -> Option<Envelope> {
        let mut k = self.kernel.borrow_mut();
        let slot = &mut k.procs[self.pid.0];
        let ix = slot.mailbox.iter().position(&mut pred)?;
        slot.mailbox.remove(ix)
    }

    /// Wait until a message arrives, then return it (FIFO).
    pub async fn recv(&self) -> Envelope {
        self.recv_where_deadline(|_| true, None)
            .await
            .expect("recv without deadline cannot time out")
    }

    /// Wait until a message satisfying `pred` arrives; earlier
    /// non-matching messages stay queued in order. This is the matching
    /// primitive the MPI layer builds tag/source matching on.
    pub async fn recv_where(&self, pred: impl FnMut(&Envelope) -> bool) -> Envelope {
        self.recv_where_deadline(pred, None)
            .await
            .expect("recv_where without deadline cannot time out")
    }

    /// Like [`Proc::recv`] but gives up after `d`, returning `None`.
    pub async fn recv_timeout(&self, d: SimDuration) -> Option<Envelope> {
        let deadline = self.now() + d;
        self.recv_where_deadline(|_| true, Some(deadline)).await
    }

    /// Like [`Proc::recv_where`] but gives up at `deadline`.
    pub async fn recv_where_timeout(
        &self,
        pred: impl FnMut(&Envelope) -> bool,
        d: SimDuration,
    ) -> Option<Envelope> {
        let deadline = self.now() + d;
        self.recv_where_deadline(pred, Some(deadline)).await
    }

    /// Wait until a message whose payload is a `T` arrives; returns the
    /// downcast payload and the source endpoint.
    pub async fn recv_as<T: std::any::Any + Send>(&self) -> (T, Option<Endpoint>) {
        let env = self.recv_where(|e| e.is::<T>()).await;
        let src = env.src;
        (env.downcast::<T>().expect("type matched by predicate"), src)
    }

    /// Every poll is one iteration of the old blocking loop: scan the
    /// mailbox, check the deadline, otherwise park (re-scheduling the
    /// deadline wake under the fresh epoch) and suspend. A delivery or
    /// the deadline wake makes the engine poll again.
    fn recv_where_deadline<'a>(
        &'a self,
        mut pred: impl FnMut(&Envelope) -> bool + 'a,
        deadline: Option<SimTime>,
    ) -> impl Future<Output = Option<Envelope>> + 'a {
        std::future::poll_fn(move |_cx| {
            let mut k = self.kernel.borrow_mut();
            let slot = &mut k.procs[self.pid.0];
            if let Some(ix) = slot.mailbox.iter().position(&mut pred) {
                return Poll::Ready(slot.mailbox.remove(ix));
            }
            if let Some(dl) = deadline {
                if k.now() >= dl {
                    return Poll::Ready(None);
                }
            }
            let epoch = k.bump_epoch(self.pid);
            k.procs[self.pid.0].state = ProcState::ParkedRecv;
            if let Some(dl) = deadline {
                k.schedule(dl, EventKind::Wake { pid: self.pid, epoch });
            }
            Poll::Pending
        })
    }

    /// Spawn a new process whose entry runs after `delay`.
    pub fn spawn_after<F, Fut>(
        &self,
        name: impl Into<String>,
        delay: SimDuration,
        entry: F,
    ) -> ProcessId
    where
        F: FnOnce(Proc) -> Fut + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        let mut k = self.kernel.borrow_mut();
        spawn_process(&mut k, &self.kernel, name.into(), delay, entry)
    }

    /// Spawn a new process starting now.
    pub fn spawn<F, Fut>(&self, name: impl Into<String>, entry: F) -> ProcessId
    where
        F: FnOnce(Proc) -> Fut + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        self.spawn_after(name, SimDuration::ZERO, entry)
    }
}

/// Engine-internal: allocate a slot holding the deferred body and
/// schedule its first wake. Also used by actor contexts.
pub(crate) fn spawn_process<F, Fut>(
    k: &mut Kernel,
    arc: &Rc<RefCell<Kernel>>,
    name: String,
    delay: SimDuration,
    entry: F,
) -> ProcessId
where
    F: FnOnce(Proc) -> Fut + 'static,
    Fut: Future<Output = ()> + 'static,
{
    let name: Arc<str> = name.into();
    let pid = ProcessId(k.procs.len());
    let proc = Proc { pid, kernel: arc.clone(), name: name.clone() };
    let mailbox = k.alloc_mailbox();
    k.procs.push(ProcSlot {
        name,
        mailbox,
        state: ProcState::NotStarted,
        epoch: 0,
        body: ProcBody::Entry(Box::new(move || Box::pin(entry(proc)))),
    });
    k.stats.processes_spawned += 1;
    let at = k.now() + delay;
    k.schedule(at, EventKind::Wake { pid, epoch: 0 });
    pid
}
