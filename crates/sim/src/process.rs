//! Threaded simulation processes with blocking `sleep`/`recv` semantics.
//!
//! Daemons with sequential logic (user applications, MPI ranks, accelerator
//! back-ends) are written as ordinary Rust closures taking a [`Proc`]
//! handle. Under the hood each process is an OS thread, but the engine
//! resumes **at most one** thread at a time and waits for it to yield, so
//! execution is fully deterministic — the threads exist only to give
//! blocking calls a stack to park on.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::{self, Thread};

use parking_lot::Mutex;
use rand::rngs::SmallRng;

use std::collections::VecDeque;

use crate::envelope::{Endpoint, Envelope, ProcessId};
use crate::kernel::{EventKind, Kernel, ProcSlot, ProcState};
use crate::time::{SimDuration, SimTime};

/// Whose turn it is to run (values of [`ProcCtl::turn`]).
const TURN_ENGINE: u8 = 0;
const TURN_PROCESS: u8 = 1;
const TURN_DONE: u8 = 2;

/// The hand-off primitive between the engine thread and a process thread.
///
/// Built on `thread::park`/`unpark` rather than a mutex + condvar: the
/// turn flag is a single atomic, an unpark that races ahead of the
/// matching park is absorbed by the park permit, and the waiting side
/// re-checks the flag after every wake. This shaves a lock round-trip
/// and a futex operation off both directions of the hand-off, which is
/// the hottest path in the whole simulator (two hand-offs per delivered
/// process message).
pub(crate) struct ProcCtl {
    turn: AtomicU8,
    /// Thread to unpark when the turn flips to `TURN_ENGINE`/`TURN_DONE`
    /// (written by the engine on every resume).
    engine: Mutex<Option<Thread>>,
    /// Thread to unpark when the turn flips to `TURN_PROCESS` (written
    /// once when the process thread starts).
    process: Mutex<Option<Thread>>,
}

impl ProcCtl {
    pub(crate) fn new() -> Self {
        ProcCtl {
            turn: AtomicU8::new(TURN_ENGINE),
            engine: Mutex::new(None),
            process: Mutex::new(None),
        }
    }

    /// Engine side: give the process the turn and block until it yields.
    /// Returns true if the process finished.
    pub(crate) fn resume_and_wait(&self) -> bool {
        debug_assert_ne!(self.turn.load(Ordering::Acquire), TURN_PROCESS, "double resume");
        if self.turn.load(Ordering::Acquire) == TURN_DONE {
            return true;
        }
        *self.engine.lock() = Some(thread::current());
        self.turn.store(TURN_PROCESS, Ordering::Release);
        if let Some(t) = &*self.process.lock() {
            t.unpark();
        }
        loop {
            let t = self.turn.load(Ordering::Acquire);
            if t != TURN_PROCESS {
                return t == TURN_DONE;
            }
            thread::park();
        }
    }

    /// Process side: yield to the engine and block until resumed.
    fn yield_to_engine(&self) {
        self.turn.store(TURN_ENGINE, Ordering::Release);
        self.unpark_engine();
        while self.turn.load(Ordering::Acquire) == TURN_ENGINE {
            thread::park();
        }
    }

    /// Process side: wait for the very first resume (before entry runs).
    fn wait_first_turn(&self) {
        *self.process.lock() = Some(thread::current());
        while self.turn.load(Ordering::Acquire) == TURN_ENGINE {
            thread::park();
        }
    }

    /// Process side: mark completion and hand control back permanently.
    fn finish(&self) {
        self.turn.store(TURN_DONE, Ordering::Release);
        self.unpark_engine();
    }

    fn unpark_engine(&self) {
        if let Some(t) = &*self.engine.lock() {
            t.unpark();
        }
    }
}

/// Panic payload used to unwind process threads on simulation shutdown.
/// The engine installs a panic hook that silences it.
pub(crate) struct SimShutdown;

/// Install (once) a panic hook that suppresses the internal shutdown
/// unwind while delegating real panics to the previous hook.
pub(crate) fn install_shutdown_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<SimShutdown>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Handle given to a process closure; all interaction with the simulated
/// world goes through it.
///
/// The handle is cloneable so that layered libraries (MPI runtime, job
/// context, resource-management library) can each hold one. All clones
/// refer to the same process and **must only be used from that process's
/// own closure** — blocking on another thread's handle would corrupt the
/// engine hand-off. The engine's single-active-thread discipline makes
/// this easy to satisfy: simulation code only ever sees its own handle.
#[derive(Clone)]
pub struct Proc {
    pub(crate) pid: ProcessId,
    pub(crate) kernel: Arc<Mutex<Kernel>>,
    pub(crate) ctl: Arc<ProcCtl>,
    pub(crate) name: Arc<str>,
}

impl Proc {
    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.pid
    }

    /// This process's endpoint (give it to peers so they can reply).
    pub fn endpoint(&self) -> Endpoint {
        Endpoint::Process(self.pid)
    }

    /// The name the process was spawned with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.lock().now()
    }

    /// Record an instant trace event attributed to this process.
    pub fn trace(&self, event: impl Into<String>) {
        self.trace_detail(event, String::new());
    }

    /// Record an instant trace event with a detail payload.
    pub fn trace_detail(&self, event: impl Into<String>, detail: impl Into<String>) {
        let k = self.kernel.lock();
        k.emit(crate::trace::TraceSource::Process(self.pid), &self.name, event, detail);
    }

    /// Cloneable handle to the structured tracer.
    pub fn tracer(&self) -> crate::trace::Tracer {
        self.kernel.lock().tracer()
    }

    /// Cloneable handle to the shared metrics registry.
    pub fn metrics(&self) -> crate::metrics::MetricsRegistry {
        self.kernel.lock().metrics()
    }

    /// Draw from the deterministic RNG.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut SmallRng) -> R) -> R {
        self.kernel.lock().with_rng(f)
    }

    /// Advance virtual time by `d` (models compute or I/O work).
    /// Messages arriving meanwhile queue up in the mailbox.
    pub fn sleep(&self, d: SimDuration) {
        let epoch = {
            let mut k = self.kernel.lock();
            self.check_shutdown(&k);
            let at = k.now() + d;
            let epoch = k.bump_epoch(self.pid);
            k.procs[self.pid.0].state = ProcState::ParkedSleep;
            k.schedule(at, EventKind::Wake { pid: self.pid, epoch });
            epoch
        };
        let _ = epoch;
        self.ctl.yield_to_engine();
        let k = self.kernel.lock();
        self.check_shutdown(&k);
    }

    /// Send a payload to `dst`, arriving after `delay`.
    pub fn send<T: std::any::Any + Send>(&self, dst: Endpoint, payload: T, delay: SimDuration) {
        self.send_env(dst, Envelope::from_src(self.endpoint(), payload), delay);
    }

    /// Send a pre-built envelope.
    pub fn send_env(&self, dst: Endpoint, env: Envelope, delay: SimDuration) {
        let mut k = self.kernel.lock();
        self.check_shutdown(&k);
        k.send(dst, env, delay);
    }

    /// Pop the next mailbox message without blocking.
    pub fn try_recv(&self) -> Option<Envelope> {
        let mut k = self.kernel.lock();
        self.check_shutdown(&k);
        k.procs[self.pid.0].mailbox.pop_front()
    }

    /// Pop the first mailbox message satisfying `pred` without blocking;
    /// earlier non-matching messages stay queued in order.
    pub fn try_recv_where(&self, mut pred: impl FnMut(&Envelope) -> bool) -> Option<Envelope> {
        let mut k = self.kernel.lock();
        self.check_shutdown(&k);
        let slot = &mut k.procs[self.pid.0];
        let ix = slot.mailbox.iter().position(&mut pred)?;
        slot.mailbox.remove(ix)
    }

    /// Block until a message arrives, then return it (FIFO).
    pub fn recv(&self) -> Envelope {
        self.recv_where_deadline(|_| true, None).expect("recv without deadline cannot time out")
    }

    /// Block until a message satisfying `pred` arrives; earlier
    /// non-matching messages stay queued in order. This is the matching
    /// primitive the MPI layer builds tag/source matching on.
    pub fn recv_where(&self, pred: impl FnMut(&Envelope) -> bool) -> Envelope {
        self.recv_where_deadline(pred, None).expect("recv_where without deadline cannot time out")
    }

    /// Like [`Proc::recv`] but gives up after `d`, returning `None`.
    pub fn recv_timeout(&self, d: SimDuration) -> Option<Envelope> {
        let deadline = self.now() + d;
        self.recv_where_deadline(|_| true, Some(deadline))
    }

    /// Like [`Proc::recv_where`] but gives up at `deadline`.
    pub fn recv_where_timeout(
        &self,
        pred: impl FnMut(&Envelope) -> bool,
        d: SimDuration,
    ) -> Option<Envelope> {
        let deadline = self.now() + d;
        self.recv_where_deadline(pred, Some(deadline))
    }

    /// Block until a message whose payload is a `T` arrives; returns the
    /// downcast payload and the source endpoint.
    pub fn recv_as<T: std::any::Any + Send>(&self) -> (T, Option<Endpoint>) {
        let env = self.recv_where(|e| e.is::<T>());
        let src = env.src;
        (env.downcast::<T>().expect("type matched by predicate"), src)
    }

    fn recv_where_deadline(
        &self,
        mut pred: impl FnMut(&Envelope) -> bool,
        deadline: Option<SimTime>,
    ) -> Option<Envelope> {
        loop {
            {
                let mut k = self.kernel.lock();
                self.check_shutdown(&k);
                let slot = &mut k.procs[self.pid.0];
                if let Some(ix) = slot.mailbox.iter().position(&mut pred) {
                    return slot.mailbox.remove(ix);
                }
                if let Some(dl) = deadline {
                    if k.now() >= dl {
                        return None;
                    }
                }
                let epoch = k.bump_epoch(self.pid);
                k.procs[self.pid.0].state = ProcState::ParkedRecv;
                if let Some(dl) = deadline {
                    k.schedule(dl, EventKind::Wake { pid: self.pid, epoch });
                }
            }
            self.ctl.yield_to_engine();
            // Woken either by a delivery or the timeout; loop re-checks.
        }
    }

    /// Spawn a new process whose entry runs after `delay`.
    pub fn spawn_after(
        &self,
        name: impl Into<String>,
        delay: SimDuration,
        entry: impl FnOnce(Proc) + Send + 'static,
    ) -> ProcessId {
        let mut k = self.kernel.lock();
        self.check_shutdown(&k);
        spawn_process(&mut k, &self.kernel, name.into(), delay, entry)
    }

    /// Spawn a new process starting now.
    pub fn spawn(
        &self,
        name: impl Into<String>,
        entry: impl FnOnce(Proc) + Send + 'static,
    ) -> ProcessId {
        self.spawn_after(name, SimDuration::ZERO, entry)
    }

    fn check_shutdown(&self, k: &Kernel) {
        if k.shutdown {
            drop_lock_and_unwind();
        }
        fn drop_lock_and_unwind() -> ! {
            // The MutexGuard is released by unwinding through the caller.
            panic::panic_any(SimShutdown)
        }
    }
}

/// Engine-internal: allocate a slot, create the (initially parked) thread,
/// and schedule its first wake. Also used by actor contexts.
pub(crate) fn spawn_process(
    k: &mut Kernel,
    arc: &Arc<Mutex<Kernel>>,
    name: String,
    delay: SimDuration,
    entry: impl FnOnce(Proc) + Send + 'static,
) -> ProcessId {
    let name: Arc<str> = name.into();
    let pid = ProcessId(k.procs.len());
    let ctl = Arc::new(ProcCtl::new());
    k.procs.push(ProcSlot {
        name: name.clone(),
        ctl: ctl.clone(),
        // Most daemons hold only a few undelivered messages at a time.
        mailbox: VecDeque::with_capacity(4),
        state: ProcState::NotStarted,
        epoch: 0,
    });
    k.stats.processes_spawned += 1;
    let at = k.now() + delay;
    k.schedule(at, EventKind::Wake { pid, epoch: 0 });

    let proc = Proc { pid, kernel: arc.clone(), ctl: ctl.clone(), name };
    let kernel_for_thread = arc.clone();
    let handle = std::thread::Builder::new()
        .name(proc.name.to_string())
        .spawn(move || {
            proc.ctl.wait_first_turn();
            // Shutdown may arrive before the first wake fires.
            let run = !proc.kernel.lock().shutdown;
            let ctl = proc.ctl.clone();
            if run {
                let result = panic::catch_unwind(AssertUnwindSafe(move || entry(proc)));
                if let Err(payload) = result {
                    if !payload.is::<SimShutdown>() {
                        // A genuine panic inside a process body: the engine
                        // is blocked in resume_and_wait and does not hold
                        // the kernel lock, so recording the failure is safe.
                        kernel_for_thread.lock().stats_mut().process_panics += 1;
                    }
                }
            }
            ctl.finish();
        })
        .expect("spawn simulation process thread");
    k.threads.push(handle);
    pid
}
