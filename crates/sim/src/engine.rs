//! The event loop and process executor: pops `(time, seq)`-ordered
//! events, advances the virtual clock, dispatches to actors, and polls
//! stackless process bodies one at a time.

use std::cmp::Reverse;
use std::future::Future;
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

use crate::actor::{Actor, Ctx};
use crate::envelope::{ActorId, Endpoint, Envelope, ProcessId};
use crate::kernel::{EventKind, Kernel, ProcState, SimConfig, SimStats, TraceRecord};
use crate::process::{spawn_process, ProcBody};
use crate::time::{SimDuration, SimTime};

/// A complete simulation: kernel + registered actors + event loop.
pub struct Engine {
    kernel: Rc<Mutex<Kernel>>,
    actors: Vec<Box<dyn Actor>>,
    started: bool,
    finished: bool,
}

impl Engine {
    /// Create an engine with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Engine {
            kernel: Rc::new(Mutex::new(Kernel::new(config))),
            actors: Vec::new(),
            started: false,
            finished: false,
        }
    }

    /// Create an engine with default configuration and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Engine::new(SimConfig { seed, ..Default::default() })
    }

    /// Register a reactive actor; returns its id. Must be called before
    /// [`Engine::run`].
    pub fn add_actor(&mut self, actor: Box<dyn Actor>) -> ActorId {
        assert!(!self.started, "actors must be registered before run()");
        let id = ActorId(self.actors.len());
        self.kernel.lock().actor_names.push(Arc::from(actor.name()));
        self.actors.push(actor);
        id
    }

    /// Spawn a process whose `async` entry runs at the given virtual-time
    /// offset from now.
    pub fn spawn_process_after<F, Fut>(
        &mut self,
        name: impl Into<String>,
        delay: SimDuration,
        entry: F,
    ) -> ProcessId
    where
        F: FnOnce(crate::process::Proc) -> Fut + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        let mut k = self.kernel.lock();
        spawn_process(&mut k, &self.kernel, name.into(), delay, entry)
    }

    /// Spawn a process starting at the current virtual time.
    pub fn spawn_process<F, Fut>(&mut self, name: impl Into<String>, entry: F) -> ProcessId
    where
        F: FnOnce(crate::process::Proc) -> Fut + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        self.spawn_process_after(name, SimDuration::ZERO, entry)
    }

    /// Shared handle to the kernel (for composing subsystems at setup time).
    pub fn kernel(&self) -> Rc<Mutex<Kernel>> {
        self.kernel.clone()
    }

    /// Run to completion: until the event queue drains, the horizon or
    /// event cap is reached. Afterwards all process threads are unwound
    /// and joined. Returns run statistics.
    pub fn run(&mut self) -> SimStats {
        self.run_until(SimTime::MAX);
        self.finish()
    }

    /// Process events up to and including virtual time `until` (bounded
    /// also by the configured horizon and event cap). The engine can be
    /// resumed with further `run_until` calls.
    pub fn run_until(&mut self, until: SimTime) {
        assert!(!self.finished, "engine already finished");
        if !self.started {
            self.started = true;
            self.start_actors();
        }
        // darms-lint: allow(nondet, reason = "wall-clock profiling only; SimStats equality excludes wall_ns")
        let wall_start = std::time::Instant::now();
        // Debug-build heap-order check: the `(time, seq)` key of every
        // pop must strictly exceed the previous one. An equal key would
        // mean two events share a tie-break seq, leaving their relative
        // dispatch order unspecified.
        #[cfg(debug_assertions)]
        let mut last_key: Option<(SimTime, u64)> = None;
        loop {
            // Decide what to do while holding the lock, then act on it
            // with the lock released (polling a process must not hold it).
            enum Step {
                Done,
                Deliver(Endpoint, Envelope),
                WakeProc(ProcessId),
                Timer(ActorId, u64),
            }
            let step = {
                let mut k = self.kernel.lock();
                let horizon = k.config.horizon.min(until);
                match k.queue.peek() {
                    None => Step::Done,
                    Some(Reverse(ev)) if ev.time > horizon => {
                        if ev.time > k.config.horizon {
                            k.stats.hit_horizon = true;
                        }
                        Step::Done
                    }
                    Some(_) => {
                        if k.stats.events >= k.config.max_events {
                            k.stats.hit_event_cap = true;
                            Step::Done
                        } else {
                            let Reverse(ev) = k.queue.pop().expect("peeked");
                            #[cfg(debug_assertions)]
                            {
                                let key = (ev.time, ev.seq);
                                debug_assert!(
                                    last_key.is_none_or(|prev| prev < key),
                                    "event heap popped non-increasing key {key:?} after {last_key:?}"
                                );
                                last_key = Some(key);
                            }
                            // Stale wakes (e.g. the deadline of a timed
                            // recv that was satisfied by a message) are
                            // discarded without advancing the clock, so
                            // abandoned timeouts cannot inflate the
                            // simulation's end time.
                            if let EventKind::Wake { pid, epoch } = &ev.kind {
                                let stale = k.procs.get(pid.0).is_none_or(|slot| {
                                    slot.epoch != *epoch
                                        || !matches!(
                                            slot.state,
                                            ProcState::ParkedRecv
                                                | ProcState::ParkedSleep
                                                | ProcState::NotStarted
                                        )
                                });
                                if stale {
                                    continue;
                                }
                            }
                            if let EventKind::Timer { actor, token, gen } = &ev.kind {
                                if *gen != k.timer_gen(actor.index(), *token) {
                                    continue; // cancelled before firing
                                }
                            }
                            k.now = ev.time;
                            k.stats.events += 1;
                            // Queue-depth profile, counting the event
                            // being dispatched itself.
                            let depth = k.queue.len() as u64 + 1;
                            k.stats.peak_queue_depth = k.stats.peak_queue_depth.max(depth);
                            k.stats.queue_depth_sum += depth;
                            match ev.kind {
                                EventKind::Deliver { dst, env } => match dst {
                                    Endpoint::Actor(_) => Step::Deliver(dst, env),
                                    Endpoint::Process(pid) => {
                                        match self.deliver_to_process(&mut k, pid, env) {
                                            Some(p) => {
                                                k.stats.context_switches += 1;
                                                Step::WakeProc(p)
                                            }
                                            None => continue,
                                        }
                                    }
                                },
                                EventKind::Wake { pid, epoch } => {
                                    let slot = &mut k.procs[pid.0];
                                    let parked = matches!(
                                        slot.state,
                                        ProcState::ParkedRecv
                                            | ProcState::ParkedSleep
                                            | ProcState::NotStarted
                                    );
                                    if parked && slot.epoch == epoch {
                                        slot.state = ProcState::Active;
                                        slot.epoch += 1;
                                        k.stats.context_switches += 1;
                                        Step::WakeProc(pid)
                                    } else {
                                        continue; // stale wake
                                    }
                                }
                                EventKind::Timer { actor, token, .. } => Step::Timer(actor, token),
                            }
                        }
                    }
                }
            };
            match step {
                Step::Done => break,
                Step::Deliver(Endpoint::Actor(aid), env) => self.dispatch_actor(aid, env),
                Step::Deliver(_, _) => unreachable!("process deliveries resolved above"),
                Step::WakeProc(pid) => self.resume(pid),
                Step::Timer(aid, token) => self.dispatch_timer(aid, token),
            }
        }
        let wall = wall_start.elapsed().as_nanos() as u64;
        self.kernel.lock().stats.wall_nanos += wall;
    }

    /// Deliver to a process mailbox; returns `Some(pid)` if the process
    /// must be resumed (it was parked in `recv`).
    fn deliver_to_process(
        &self,
        k: &mut Kernel,
        pid: ProcessId,
        env: Envelope,
    ) -> Option<ProcessId> {
        let slot = k.procs.get_mut(pid.0)?;
        if slot.state == ProcState::Finished {
            return None; // message to a dead process is dropped
        }
        slot.mailbox.push_back(env);
        if slot.state == ProcState::ParkedRecv {
            slot.state = ProcState::Active;
            slot.epoch += 1; // invalidate any pending recv-timeout wake
            Some(pid)
        } else {
            None
        }
    }

    fn dispatch_actor(&mut self, aid: ActorId, env: Envelope) {
        let actor = &mut self.actors[aid.0];
        let mut k = self.kernel.lock();
        let mut ctx = Ctx { k: &mut k, arc: &self.kernel, me: aid };
        actor.on_message(&mut ctx, env);
    }

    fn dispatch_timer(&mut self, aid: ActorId, token: u64) {
        let actor = &mut self.actors[aid.0];
        let mut k = self.kernel.lock();
        let mut ctx = Ctx { k: &mut k, arc: &self.kernel, me: aid };
        actor.on_timer(&mut ctx, token);
    }

    fn start_actors(&mut self) {
        for i in 0..self.actors.len() {
            let actor = &mut self.actors[i];
            let mut k = self.kernel.lock();
            let mut ctx = Ctx { k: &mut k, arc: &self.kernel, me: ActorId(i) };
            actor.on_start(&mut ctx);
        }
    }

    /// Poll a process body once. The caller has already counted the
    /// context switch and must not hold the kernel lock: the body is
    /// taken out of the slot, polled lock-free (its await points re-lock
    /// the kernel themselves), and put back if it suspended.
    fn resume(&self, pid: ProcessId) {
        let body = {
            let mut k = self.kernel.lock();
            std::mem::replace(&mut k.procs[pid.0].body, ProcBody::Done)
        };
        let mut fut = match body {
            ProcBody::Entry(make) => make(),
            ProcBody::Future(f) => f,
            ProcBody::Done => return, // already finished; nothing to poll
        };
        // Readiness is tracked by kernel state (park states + Wake
        // events), so the executor needs no real waker.
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        let polled = panic::catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
        let mut k = self.kernel.lock();
        match polled {
            Ok(Poll::Pending) => k.procs[pid.0].body = ProcBody::Future(fut),
            Ok(Poll::Ready(())) | Err(_) => {
                if polled.is_err() {
                    // A genuine panic inside a process body; the unwind
                    // already dropped the body's locals.
                    k.stats.process_panics += 1;
                }
                let slot = &mut k.procs[pid.0];
                if slot.state != ProcState::Finished {
                    slot.state = ProcState::Finished;
                    slot.epoch += 1;
                    k.stats.processes_finished += 1;
                }
                drop(k);
                // Completed futures hold no locals, but drop outside the
                // lock anyway: a Drop impl is free to lock the kernel.
                drop(fut);
            }
        }
    }

    /// Drop every unfinished process body (their locals' destructors run,
    /// like the unwind of a cancelled thread) and seal the run. Returns
    /// final statistics. Idempotent.
    pub fn finish(&mut self) -> SimStats {
        if !self.finished {
            self.finished = true;
            let bodies: Vec<ProcBody> = {
                let mut k = self.kernel.lock();
                k.shutdown = true;
                let mut unfinished = 0u64;
                let mut bodies = Vec::with_capacity(k.procs.len());
                for slot in k.procs.iter_mut() {
                    if slot.state != ProcState::Finished {
                        unfinished += 1;
                        slot.state = ProcState::Finished;
                        slot.epoch += 1;
                    }
                    bodies.push(std::mem::replace(&mut slot.body, ProcBody::Done));
                }
                k.stats.context_switches += unfinished;
                k.stats.processes_finished += unfinished;
                bodies
            };
            // Dropped outside the lock, in pid order (matching the old
            // runtime's unwind order): destructors may lock the kernel.
            drop(bodies);
        }
        let mut k = self.kernel.lock();
        k.stats.end_time = k.now;
        k.stats
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.lock().now()
    }

    /// Statistics so far.
    pub fn stats(&self) -> SimStats {
        self.kernel.lock().stats
    }

    /// Take the accumulated trace as legacy flat records (empty unless
    /// tracing was enabled). Derived from the structured stream; prefer
    /// [`Engine::take_events`] for new code.
    pub fn take_trace(&self) -> Vec<TraceRecord> {
        self.take_events().into_iter().map(TraceRecord::from).collect()
    }

    /// Drain the structured event stream (empty unless tracing was
    /// enabled).
    pub fn take_events(&self) -> Vec<crate::trace::TraceEvent> {
        self.kernel.lock().tracer.take()
    }

    /// Cloneable handle to the structured tracer. Collection can be
    /// toggled at any point, including mid-run.
    pub fn tracer(&self) -> crate::trace::Tracer {
        self.kernel.lock().tracer()
    }

    /// Cloneable handle to the shared metrics registry.
    pub fn metrics(&self) -> crate::metrics::MetricsRegistry {
        self.kernel.lock().metrics()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn empty_engine_runs_to_zero() {
        let mut e = Engine::with_seed(1);
        let stats = e.run();
        assert_eq!(stats.events, 0);
        assert_eq!(stats.end_time, SimTime::ZERO);
    }

    #[test]
    fn process_sleep_advances_clock() {
        let mut e = Engine::with_seed(1);
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = out.clone();
        e.spawn_process("sleeper", move |p| async move {
            p.sleep(ms(5)).await;
            o.lock().push(p.now());
            p.sleep(ms(7)).await;
            o.lock().push(p.now());
        });
        let stats = e.run();
        assert_eq!(stats.processes_finished, 1);
        let v = out.lock();
        assert_eq!(v[0], SimTime::ZERO + ms(5));
        assert_eq!(v[1], SimTime::ZERO + ms(12));
    }

    #[test]
    fn ping_pong_between_processes() {
        let mut e = Engine::with_seed(1);
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = out.clone();
        let ponger = e.spawn_process("ponger", move |p| async move {
            let (n, src) = p.recv_as::<u32>().await;
            p.send(src.unwrap(), n + 1, ms(3));
        });
        let o2 = out.clone();
        e.spawn_process("pinger", move |p| async move {
            p.send(ponger.into(), 41u32, ms(2));
            let (n, _) = p.recv_as::<u32>().await;
            o2.lock().push((p.now(), n));
        });
        e.run();
        let v = out.lock();
        assert_eq!(v[0], (SimTime::ZERO + ms(5), 42));
        drop(v);
        let _ = o;
    }

    #[test]
    fn recv_timeout_expires() {
        let mut e = Engine::with_seed(1);
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        e.spawn_process("waiter", move |p| async move {
            let r = p.recv_timeout(ms(10)).await;
            *o.lock() = Some((r.is_none(), p.now()));
        });
        e.run();
        let (timed_out, at) = out.lock().unwrap();
        assert!(timed_out);
        assert_eq!(at, SimTime::ZERO + ms(10));
    }

    #[test]
    fn recv_where_skips_non_matching() {
        let mut e = Engine::with_seed(1);
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = out.clone();
        let rx = e.spawn_process("rx", move |p| async move {
            let env = p.recv_where(|e| e.peek::<u32>().is_some_and(|v| *v == 7)).await;
            o.lock().push(env.downcast::<u32>().unwrap());
            // earlier non-matching message still queued
            let env = p.recv().await;
            o.lock().push(env.downcast::<u32>().unwrap());
        });
        e.spawn_process("tx", move |p| async move {
            p.send(rx.into(), 3u32, ms(1));
            p.send(rx.into(), 7u32, ms(2));
        });
        e.run();
        assert_eq!(*out.lock(), vec![7, 3]);
    }

    #[test]
    fn actor_timer_and_message() {
        struct Echo {
            fired: Arc<AtomicU64>,
        }
        impl Actor for Echo {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(ms(4), 99);
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
                if let Some(src) = env.src {
                    let n = env.downcast::<u32>().unwrap();
                    ctx.send(src, n * 2, ms(1));
                }
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.fired.store(token, Ordering::SeqCst);
            }
            fn name(&self) -> &str {
                "echo"
            }
        }
        let fired = Arc::new(AtomicU64::new(0));
        let mut e = Engine::with_seed(1);
        let echo = e.add_actor(Box::new(Echo { fired: fired.clone() }));
        let out = Arc::new(Mutex::new(0u32));
        let o = out.clone();
        e.spawn_process("client", move |p| async move {
            p.send(echo.into(), 21u32, ms(1));
            let (n, _) = p.recv_as::<u32>().await;
            *o.lock() = n;
        });
        e.run();
        assert_eq!(*out.lock(), 42);
        assert_eq!(fired.load(Ordering::SeqCst), 99);
    }

    #[test]
    fn spawned_processes_run() {
        let mut e = Engine::with_seed(1);
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        e.spawn_process("parent", move |p| async move {
            for i in 0..4 {
                let c2 = c.clone();
                p.spawn_after(format!("child{i}"), ms(i), move |cp| async move {
                    cp.sleep(ms(1)).await;
                    c2.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        let stats = e.run();
        assert_eq!(count.load(Ordering::SeqCst), 4);
        assert_eq!(stats.processes_finished, 5);
    }

    #[test]
    fn horizon_stops_engine_and_parked_threads_unwind() {
        let mut e = Engine::new(SimConfig {
            horizon: SimTime::from_nanos(5_000_000),
            ..Default::default()
        });
        e.spawn_process("forever", move |p| async move {
            loop {
                p.sleep(ms(1)).await;
            }
        });
        let stats = e.run();
        assert!(stats.hit_horizon);
        assert!(stats.end_time <= SimTime::from_nanos(5_000_000));
    }

    #[test]
    fn event_cap_stops_livelock() {
        let mut e = Engine::new(SimConfig { max_events: 100, ..Default::default() });
        e.spawn_process("spin", move |p| async move {
            loop {
                p.sleep(SimDuration::ZERO).await;
            }
        });
        let stats = e.run();
        assert!(stats.hit_event_cap);
    }

    #[test]
    fn message_to_finished_process_is_dropped() {
        let mut e = Engine::with_seed(1);
        let dead = e.spawn_process("dead", |_p| async move {});
        e.spawn_process("tx", move |p| async move {
            p.sleep(ms(5)).await;
            p.send(dead.into(), 1u32, ms(1));
        });
        let stats = e.run(); // must not hang or panic
        assert_eq!(stats.processes_finished, 2);
    }

    #[test]
    fn deterministic_trace_across_runs() {
        fn run_once(seed: u64) -> Vec<(u64, String)> {
            let mut e = Engine::new(SimConfig { seed, trace: true, ..Default::default() });
            let a = e.spawn_process("a", move |p| async move {
                let jitter = p.with_rng(|r| rand::Rng::gen_range(r, 0..1000u64));
                p.sleep(SimDuration::from_micros(jitter)).await;
                p.trace(format!("slept {jitter}"));
                let (v, src) = p.recv_as::<u32>().await;
                p.send(src.unwrap(), v + 1, ms(1));
            });
            e.spawn_process("b", move |p| async move {
                p.send(a.into(), 10u32, ms(2));
                let (v, _) = p.recv_as::<u32>().await;
                p.trace(format!("got {v}"));
            });
            e.run();
            e.take_trace().into_iter().map(|r| (r.time.as_nanos(), r.event)).collect()
        }
        let t1 = run_once(77);
        let t2 = run_once(77);
        assert_eq!(t1, t2);
        assert!(!t1.is_empty());
    }

    #[test]
    fn process_panic_is_counted_and_run_continues() {
        let mut e = Engine::with_seed(1);
        e.spawn_process("bad", |_p| async { panic!("intentional test panic") });
        let ok = Arc::new(AtomicU64::new(0));
        let o = ok.clone();
        e.spawn_process("good", move |p| async move {
            p.sleep(ms(1)).await;
            o.fetch_add(1, Ordering::SeqCst);
        });
        let stats = e.run();
        assert_eq!(stats.process_panics, 1);
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }
}
