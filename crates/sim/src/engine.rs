//! The event loop and process executor: pops `(time, seq)`-ordered
//! events, advances the virtual clock, dispatches to actors, and polls
//! stackless process bodies one at a time.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use crate::actor::{Actor, Ctx};
use crate::envelope::{ActorId, Endpoint, Envelope, ProcessId};
use crate::kernel::{EventKind, Kernel, ProcState, Scheduled, SimConfig, SimStats, TraceRecord};
use crate::process::{spawn_process, ProcBody};
use crate::time::{SimDuration, SimTime};

/// A complete simulation: kernel + registered actors + event loop.
pub struct Engine {
    kernel: Rc<RefCell<Kernel>>,
    actors: Vec<Box<dyn Actor>>,
    started: bool,
    finished: bool,
}

impl Engine {
    /// Create an engine with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Engine {
            kernel: Rc::new(RefCell::new(Kernel::new(config))),
            actors: Vec::new(),
            started: false,
            finished: false,
        }
    }

    /// Create an engine with default configuration and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Engine::new(SimConfig { seed, ..Default::default() })
    }

    /// Register a reactive actor; returns its id. Must be called before
    /// [`Engine::run`].
    pub fn add_actor(&mut self, actor: Box<dyn Actor>) -> ActorId {
        assert!(!self.started, "actors must be registered before run()");
        let id = ActorId(self.actors.len());
        self.kernel.borrow_mut().actor_names.push(Arc::from(actor.name()));
        self.actors.push(actor);
        id
    }

    /// Spawn a process whose `async` entry runs at the given virtual-time
    /// offset from now.
    pub fn spawn_process_after<F, Fut>(
        &mut self,
        name: impl Into<String>,
        delay: SimDuration,
        entry: F,
    ) -> ProcessId
    where
        F: FnOnce(crate::process::Proc) -> Fut + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        let mut k = self.kernel.borrow_mut();
        spawn_process(&mut k, &self.kernel, name.into(), delay, entry)
    }

    /// Spawn a process starting at the current virtual time.
    pub fn spawn_process<F, Fut>(&mut self, name: impl Into<String>, entry: F) -> ProcessId
    where
        F: FnOnce(crate::process::Proc) -> Fut + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        self.spawn_process_after(name, SimDuration::ZERO, entry)
    }

    /// Shared handle to the kernel (for composing subsystems at setup time).
    pub fn kernel(&self) -> Rc<RefCell<Kernel>> {
        self.kernel.clone()
    }

    /// Run to completion: until the event queue drains, the horizon or
    /// event cap is reached. Afterwards all process threads are unwound
    /// and joined. Returns run statistics.
    pub fn run(&mut self) -> SimStats {
        self.run_until(SimTime::MAX);
        self.finish()
    }

    /// Process events up to and including virtual time `until` (bounded
    /// also by the configured horizon and event cap). The engine can be
    /// resumed with further `run_until` calls.
    ///
    /// Events are pulled off the queue in *batches*: every event sharing
    /// the earliest pending timestamp is popped under one kernel borrow
    /// and dispatched back-to-back. New events scheduled by batch
    /// handlers always carry a later `(time, seq)` key than the
    /// remaining batch members (time is clamped to `now`, seq is
    /// monotone), so dispatching the prefetched run before re-consulting
    /// the queue preserves the exact `(time, seq)` order. Staleness
    /// (wake epochs, timer generations) is re-checked per event at
    /// dispatch time because an earlier batch member may invalidate a
    /// later one.
    pub fn run_until(&mut self, until: SimTime) {
        assert!(!self.finished, "engine already finished");
        if !self.started {
            self.started = true;
            self.start_actors();
        }
        // darms-lint: allow(nondet, reason = "wall-clock profiling only; SimStats equality excludes wall_ns")
        let wall_start = std::time::Instant::now();
        // Debug-build queue-order check: the `(time, seq)` key of every
        // pop must strictly exceed the previous one. An equal key would
        // mean two events share a tie-break seq, leaving their relative
        // dispatch order unspecified.
        #[cfg(debug_assertions)]
        let mut last_key: Option<(SimTime, u64)> = None;
        // Prefetched remainder of the current same-timestamp run,
        // reused across iterations; untouched (and cost-free) when runs
        // are singletons, which is the common case.
        let mut batch: VecDeque<Scheduled> = VecDeque::new();
        // A body that suspended on the previous iteration, not yet put
        // back in its slot: the put-back is deferred to the next borrow
        // (here or the post-loop flush) to save a borrow cycle per
        // resume. Restoring before any dispatch keeps the invariant
        // that a dispatched-to process always has its body in place.
        let mut parked: Option<(ProcessId, crate::process::ProcFuture)> = None;
        loop {
            let mut k = self.kernel.borrow_mut();
            if let Some((pid, fut)) = parked.take() {
                k.procs[pid.0].body = ProcBody::Future(fut);
            }
            let ev = match batch.pop_front() {
                Some(ev) => ev,
                None => {
                    // Start a new run: peek, check the horizon, then pull
                    // every event sharing the earliest timestamp under
                    // this same borrow.
                    let horizon = k.config.horizon.min(until);
                    let t0 = match k.queue.peek_key() {
                        None => break,
                        Some((t, _)) if t > horizon => {
                            if t > k.config.horizon {
                                k.stats.hit_horizon = true;
                            }
                            break;
                        }
                        Some((t, _)) => t,
                    };
                    let ev = k.queue.pop().expect("peeked");
                    // Cap the prefetch at the event budget so a same-time
                    // storm is not popped past the cap just to be pushed
                    // back (the per-event check below still decides).
                    let budget =
                        k.config.max_events.saturating_sub(k.stats.events).saturating_add(1);
                    while (batch.len() as u64) < budget.saturating_sub(1) {
                        match k.queue.peek_key() {
                            Some((t, _)) if t == t0 => {
                                batch.push_back(k.queue.pop().expect("peeked"));
                            }
                            _ => break,
                        }
                    }
                    ev
                }
            };
            {
                if k.stats.events >= k.config.max_events {
                    k.stats.hit_event_cap = true;
                    // Undispatched prefetched events go back on the
                    // queue (seqs are preserved, so a resumed run pops
                    // them in the same order).
                    k.queue.push(ev);
                    while let Some(rest) = batch.pop_front() {
                        k.queue.push(rest);
                    }
                    break;
                }
                #[cfg(debug_assertions)]
                {
                    let key = (ev.time, ev.seq);
                    debug_assert!(
                        last_key.is_none_or(|prev| prev < key),
                        "event queue popped non-increasing key {key:?} after {last_key:?}"
                    );
                    last_key = Some(key);
                }
                // Stale wakes (e.g. the deadline of a timed recv that
                // was satisfied by a message) are discarded without
                // advancing the clock, so abandoned timeouts cannot
                // inflate the simulation's end time.
                if let EventKind::Wake { pid, epoch } = &ev.kind {
                    let stale = k.procs.get(pid.0).is_none_or(|slot| {
                        slot.epoch != *epoch
                            || !matches!(
                                slot.state,
                                ProcState::ParkedRecv
                                    | ProcState::ParkedSleep
                                    | ProcState::NotStarted
                            )
                    });
                    if stale {
                        continue;
                    }
                }
                if let EventKind::Timer { actor, token, gen } = &ev.kind {
                    if *gen != k.timer_gen(actor.index(), *token) {
                        continue; // cancelled before firing
                    }
                }
                k.now = ev.time;
                k.stats.events += 1;
                // Queue-depth profile, counting the event being
                // dispatched itself plus the prefetched remainder of
                // its batch (still logically queued).
                let depth = k.queue.len() as u64 + batch.len() as u64 + 1;
                k.stats.peak_queue_depth = k.stats.peak_queue_depth.max(depth);
                k.stats.queue_depth_sum += depth;
                match ev.kind {
                    EventKind::Deliver { dst: Endpoint::Actor(aid), env } => {
                        // Actors are dispatched inline under the borrow:
                        // `self.actors` and `self.kernel` are disjoint
                        // fields, and handlers only see the kernel via
                        // the `Ctx` re-borrow.
                        let actor = &mut self.actors[aid.0];
                        let mut ctx = Ctx { k: &mut k, arc: &self.kernel, me: aid };
                        actor.on_message(&mut ctx, env);
                    }
                    EventKind::Deliver { dst: Endpoint::Process(pid), env } => {
                        if let Some(p) = Self::deliver_to_process(&mut k, pid, env) {
                            k.stats.context_switches += 1;
                            parked = self.resume(k, p);
                        }
                    }
                    EventKind::Wake { pid, epoch } => {
                        let slot = &mut k.procs[pid.0];
                        let is_parked = matches!(
                            slot.state,
                            ProcState::ParkedRecv | ProcState::ParkedSleep | ProcState::NotStarted
                        );
                        if is_parked && slot.epoch == epoch {
                            slot.state = ProcState::Active;
                            slot.epoch += 1;
                            k.stats.context_switches += 1;
                            parked = self.resume(k, pid);
                        }
                        // else: stale wake, skip
                    }
                    EventKind::Timer { actor: aid, token, .. } => {
                        let actor = &mut self.actors[aid.0];
                        let mut ctx = Ctx { k: &mut k, arc: &self.kernel, me: aid };
                        actor.on_timer(&mut ctx, token);
                    }
                }
            }
        }
        let wall = wall_start.elapsed().as_nanos() as u64;
        let mut k = self.kernel.borrow_mut();
        // Flush a still-deferred body (unreachable today — every loop
        // exit passes the top-of-loop restore first — but cheap and
        // keeps the invariant local).
        if let Some((pid, fut)) = parked.take() {
            k.procs[pid.0].body = ProcBody::Future(fut);
        }
        k.stats.wall_nanos += wall;
    }

    /// Deliver to a process mailbox; returns `Some(pid)` if the process
    /// must be resumed (it was parked in `recv`).
    fn deliver_to_process(k: &mut Kernel, pid: ProcessId, env: Envelope) -> Option<ProcessId> {
        let slot = k.procs.get_mut(pid.0)?;
        if slot.state == ProcState::Finished {
            return None; // message to a dead process is dropped
        }
        slot.mailbox.push_back(env);
        if slot.state == ProcState::ParkedRecv {
            slot.state = ProcState::Active;
            slot.epoch += 1; // invalidate any pending recv-timeout wake
            Some(pid)
        } else {
            None
        }
    }

    fn start_actors(&mut self) {
        for i in 0..self.actors.len() {
            let mut k = self.kernel.borrow_mut();
            let actor = &mut self.actors[i];
            let mut ctx = Ctx { k: &mut k, arc: &self.kernel, me: ActorId(i) };
            actor.on_start(&mut ctx);
        }
    }

    /// Poll a process body once. The caller has already counted the
    /// context switch and hands over its kernel borrow: the body is
    /// taken out of the slot under it, the borrow is released, and the
    /// body is polled borrow-free (its await points re-borrow the
    /// kernel themselves). A suspended body is *returned* rather than
    /// stored — the caller puts it back under its next borrow.
    #[must_use]
    fn resume(
        &self,
        mut k: std::cell::RefMut<'_, Kernel>,
        pid: ProcessId,
    ) -> Option<(ProcessId, crate::process::ProcFuture)> {
        let body = std::mem::replace(&mut k.procs[pid.0].body, ProcBody::Done);
        drop(k);
        let mut fut = match body {
            ProcBody::Entry(make) => make(),
            ProcBody::Future(f) => f,
            ProcBody::Done => return None, // already finished; nothing to poll
        };
        // Readiness is tracked by kernel state (park states + Wake
        // events), so the executor needs no real waker.
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        let polled = panic::catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
        match polled {
            Ok(Poll::Pending) => return Some((pid, fut)),
            Ok(Poll::Ready(())) | Err(_) => {
                let mut k = self.kernel.borrow_mut();
                if polled.is_err() {
                    // A genuine panic inside a process body; the unwind
                    // already dropped the body's locals.
                    k.stats.process_panics += 1;
                }
                let slot = &mut k.procs[pid.0];
                if slot.state != ProcState::Finished {
                    slot.state = ProcState::Finished;
                    slot.epoch += 1;
                    k.stats.processes_finished += 1;
                }
                // Retire the slot: undelivered mail is dropped and the
                // mailbox buffer recycled for future spawns.
                k.retire_slot(pid);
                drop(k);
                // Completed futures hold no locals, but drop outside the
                // borrow anyway: a Drop impl is free to borrow the kernel.
                drop(fut);
            }
        }
        None
    }

    /// Drop every unfinished process body (their locals' destructors run,
    /// like the unwind of a cancelled thread) and seal the run. Returns
    /// final statistics. Idempotent.
    pub fn finish(&mut self) -> SimStats {
        if !self.finished {
            self.finished = true;
            let bodies: Vec<ProcBody> = {
                let mut k = self.kernel.borrow_mut();
                k.shutdown = true;
                let mut unfinished = 0u64;
                let mut bodies = Vec::with_capacity(k.procs.len());
                for slot in k.procs.iter_mut() {
                    if slot.state != ProcState::Finished {
                        unfinished += 1;
                        slot.state = ProcState::Finished;
                        slot.epoch += 1;
                    }
                    bodies.push(std::mem::replace(&mut slot.body, ProcBody::Done));
                }
                k.stats.context_switches += unfinished;
                k.stats.processes_finished += unfinished;
                bodies
            };
            // Dropped outside the lock, in pid order (matching the old
            // runtime's unwind order): destructors may lock the kernel.
            drop(bodies);
        }
        let mut k = self.kernel.borrow_mut();
        k.stats.end_time = k.now;
        k.stats
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.borrow().now()
    }

    /// Statistics so far.
    pub fn stats(&self) -> SimStats {
        self.kernel.borrow().stats
    }

    /// Take the accumulated trace as legacy flat records (empty unless
    /// tracing was enabled). Derived from the structured stream; prefer
    /// [`Engine::take_events`] for new code.
    pub fn take_trace(&self) -> Vec<TraceRecord> {
        self.take_events().into_iter().map(TraceRecord::from).collect()
    }

    /// Drain the structured event stream (empty unless tracing was
    /// enabled).
    pub fn take_events(&self) -> Vec<crate::trace::TraceEvent> {
        self.kernel.borrow().tracer.take()
    }

    /// Cloneable handle to the structured tracer. Collection can be
    /// toggled at any point, including mid-run.
    pub fn tracer(&self) -> crate::trace::Tracer {
        self.kernel.borrow().tracer()
    }

    /// Cloneable handle to the shared metrics registry.
    pub fn metrics(&self) -> crate::metrics::MetricsRegistry {
        self.kernel.borrow().metrics()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn empty_engine_runs_to_zero() {
        let mut e = Engine::with_seed(1);
        let stats = e.run();
        assert_eq!(stats.events, 0);
        assert_eq!(stats.end_time, SimTime::ZERO);
    }

    #[test]
    fn process_sleep_advances_clock() {
        let mut e = Engine::with_seed(1);
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = out.clone();
        e.spawn_process("sleeper", move |p| async move {
            p.sleep(ms(5)).await;
            o.lock().push(p.now());
            p.sleep(ms(7)).await;
            o.lock().push(p.now());
        });
        let stats = e.run();
        assert_eq!(stats.processes_finished, 1);
        let v = out.lock();
        assert_eq!(v[0], SimTime::ZERO + ms(5));
        assert_eq!(v[1], SimTime::ZERO + ms(12));
    }

    #[test]
    fn ping_pong_between_processes() {
        let mut e = Engine::with_seed(1);
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = out.clone();
        let ponger = e.spawn_process("ponger", move |p| async move {
            let (n, src) = p.recv_as::<u32>().await;
            p.send(src.unwrap(), n + 1, ms(3));
        });
        let o2 = out.clone();
        e.spawn_process("pinger", move |p| async move {
            p.send(ponger.into(), 41u32, ms(2));
            let (n, _) = p.recv_as::<u32>().await;
            o2.lock().push((p.now(), n));
        });
        e.run();
        let v = out.lock();
        assert_eq!(v[0], (SimTime::ZERO + ms(5), 42));
        drop(v);
        let _ = o;
    }

    #[test]
    fn recv_timeout_expires() {
        let mut e = Engine::with_seed(1);
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        e.spawn_process("waiter", move |p| async move {
            let r = p.recv_timeout(ms(10)).await;
            *o.lock() = Some((r.is_none(), p.now()));
        });
        e.run();
        let (timed_out, at) = out.lock().unwrap();
        assert!(timed_out);
        assert_eq!(at, SimTime::ZERO + ms(10));
    }

    #[test]
    fn recv_where_skips_non_matching() {
        let mut e = Engine::with_seed(1);
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = out.clone();
        let rx = e.spawn_process("rx", move |p| async move {
            let env = p.recv_where(|e| e.peek::<u32>().is_some_and(|v| *v == 7)).await;
            o.lock().push(env.downcast::<u32>().unwrap());
            // earlier non-matching message still queued
            let env = p.recv().await;
            o.lock().push(env.downcast::<u32>().unwrap());
        });
        e.spawn_process("tx", move |p| async move {
            p.send(rx.into(), 3u32, ms(1));
            p.send(rx.into(), 7u32, ms(2));
        });
        e.run();
        assert_eq!(*out.lock(), vec![7, 3]);
    }

    #[test]
    fn actor_timer_and_message() {
        struct Echo {
            fired: Arc<AtomicU64>,
        }
        impl Actor for Echo {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(ms(4), 99);
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
                if let Some(src) = env.src {
                    let n = env.downcast::<u32>().unwrap();
                    ctx.send(src, n * 2, ms(1));
                }
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.fired.store(token, Ordering::SeqCst);
            }
            fn name(&self) -> &str {
                "echo"
            }
        }
        let fired = Arc::new(AtomicU64::new(0));
        let mut e = Engine::with_seed(1);
        let echo = e.add_actor(Box::new(Echo { fired: fired.clone() }));
        let out = Arc::new(Mutex::new(0u32));
        let o = out.clone();
        e.spawn_process("client", move |p| async move {
            p.send(echo.into(), 21u32, ms(1));
            let (n, _) = p.recv_as::<u32>().await;
            *o.lock() = n;
        });
        e.run();
        assert_eq!(*out.lock(), 42);
        assert_eq!(fired.load(Ordering::SeqCst), 99);
    }

    #[test]
    fn spawned_processes_run() {
        let mut e = Engine::with_seed(1);
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        e.spawn_process("parent", move |p| async move {
            for i in 0..4 {
                let c2 = c.clone();
                p.spawn_after(format!("child{i}"), ms(i), move |cp| async move {
                    cp.sleep(ms(1)).await;
                    c2.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        let stats = e.run();
        assert_eq!(count.load(Ordering::SeqCst), 4);
        assert_eq!(stats.processes_finished, 5);
    }

    #[test]
    fn horizon_stops_engine_and_parked_threads_unwind() {
        let mut e = Engine::new(SimConfig {
            horizon: SimTime::from_nanos(5_000_000),
            ..Default::default()
        });
        e.spawn_process("forever", move |p| async move {
            loop {
                p.sleep(ms(1)).await;
            }
        });
        let stats = e.run();
        assert!(stats.hit_horizon);
        assert!(stats.end_time <= SimTime::from_nanos(5_000_000));
    }

    #[test]
    fn event_cap_stops_livelock() {
        let mut e = Engine::new(SimConfig { max_events: 100, ..Default::default() });
        e.spawn_process("spin", move |p| async move {
            loop {
                p.sleep(SimDuration::ZERO).await;
            }
        });
        let stats = e.run();
        assert!(stats.hit_event_cap);
    }

    #[test]
    fn message_to_finished_process_is_dropped() {
        let mut e = Engine::with_seed(1);
        let dead = e.spawn_process("dead", |_p| async move {});
        e.spawn_process("tx", move |p| async move {
            p.sleep(ms(5)).await;
            p.send(dead.into(), 1u32, ms(1));
        });
        let stats = e.run(); // must not hang or panic
        assert_eq!(stats.processes_finished, 2);
    }

    #[test]
    fn deterministic_trace_across_runs() {
        fn run_once(seed: u64) -> Vec<(u64, String)> {
            let mut e = Engine::new(SimConfig { seed, trace: true, ..Default::default() });
            let a = e.spawn_process("a", move |p| async move {
                let jitter = p.with_rng(|r| rand::Rng::gen_range(r, 0..1000u64));
                p.sleep(SimDuration::from_micros(jitter)).await;
                p.trace(format!("slept {jitter}"));
                let (v, src) = p.recv_as::<u32>().await;
                p.send(src.unwrap(), v + 1, ms(1));
            });
            e.spawn_process("b", move |p| async move {
                p.send(a.into(), 10u32, ms(2));
                let (v, _) = p.recv_as::<u32>().await;
                p.trace(format!("got {v}"));
            });
            e.run();
            e.take_trace().into_iter().map(|r| (r.time.as_nanos(), r.event)).collect()
        }
        let t1 = run_once(77);
        let t2 = run_once(77);
        assert_eq!(t1, t2);
        assert!(!t1.is_empty());
    }

    #[test]
    fn process_panic_is_counted_and_run_continues() {
        let mut e = Engine::with_seed(1);
        e.spawn_process("bad", |_p| async { panic!("intentional test panic") });
        let ok = Arc::new(AtomicU64::new(0));
        let o = ok.clone();
        e.spawn_process("good", move |p| async move {
            p.sleep(ms(1)).await;
            o.fetch_add(1, Ordering::SeqCst);
        });
        let stats = e.run();
        assert_eq!(stats.process_panics, 1);
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }
}
