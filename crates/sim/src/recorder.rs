//! Lightweight measurement collection for experiments.
//!
//! A [`Recorder`] is a cloneable handle that simulation processes use to
//! record named samples (durations or scalars). After the run, the
//! experiment harness pulls summaries out of it. All experiment figures in
//! this repository are produced through this type.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::{SimDuration, SimTime};

/// One recorded sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Virtual time the sample was recorded at.
    pub at: SimTime,
    /// The value (seconds for durations, raw units otherwise).
    pub value: f64,
}

#[derive(Default)]
struct Inner {
    series: BTreeMap<String, Vec<Sample>>,
}

/// Cloneable, thread-safe sample sink.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Arc<Mutex<Inner>>,
}

impl Recorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a raw value into the named series.
    pub fn record(&self, series: &str, at: SimTime, value: f64) {
        self.inner.lock().series.entry(series.to_string()).or_default().push(Sample { at, value });
    }

    /// Record a duration (stored in seconds) into the named series.
    pub fn record_duration(&self, series: &str, at: SimTime, d: SimDuration) {
        self.record(series, at, d.as_secs_f64());
    }

    /// Names of all series recorded so far, sorted.
    pub fn series_names(&self) -> Vec<String> {
        self.inner.lock().series.keys().cloned().collect()
    }

    /// All samples of a series, in recording order.
    pub fn samples(&self, series: &str) -> Vec<Sample> {
        self.inner.lock().series.get(series).cloned().unwrap_or_default()
    }

    /// Raw values of a series.
    pub fn values(&self, series: &str) -> Vec<f64> {
        self.samples(series).into_iter().map(|s| s.value).collect()
    }

    /// Number of samples in a series.
    pub fn count(&self, series: &str) -> usize {
        self.inner.lock().series.get(series).map_or(0, Vec::len)
    }

    /// Summary statistics of a series, or `None` if it is empty.
    pub fn summary(&self, series: &str) -> Option<Summary> {
        let values = self.values(series);
        Summary::of(&values)
    }

    /// Remove all samples (reuse between trials).
    pub fn clear(&self) {
        self.inner.lock().series.clear();
    }
}

/// Order statistics over a sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (linear interpolation).
    pub p50: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Compute a summary; `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Some(Summary {
            n,
            mean,
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            stddev: var.sqrt(),
        })
    }
}

/// Linear-interpolation percentile of an already sorted slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_summarise() {
        let r = Recorder::new();
        for (i, v) in [1.0, 2.0, 3.0, 4.0].iter().enumerate() {
            r.record("x", SimTime::from_nanos(i as u64), *v);
        }
        let s = r.summary("x").unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.p50 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_series_has_no_summary() {
        let r = Recorder::new();
        assert!(r.summary("missing").is_none());
        assert_eq!(r.count("missing"), 0);
        assert!(r.values("missing").is_empty());
    }

    #[test]
    fn durations_stored_as_seconds() {
        let r = Recorder::new();
        r.record_duration("d", SimTime::ZERO, SimDuration::from_millis(250));
        assert_eq!(r.values("d"), vec![0.25]);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 1.0), 40.0);
        assert!((percentile(&v, 0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets() {
        let r = Recorder::new();
        r.record("x", SimTime::ZERO, 1.0);
        r.clear();
        assert_eq!(r.count("x"), 0);
    }

    #[test]
    fn series_names_sorted() {
        let r = Recorder::new();
        r.record("b", SimTime::ZERO, 1.0);
        r.record("a", SimTime::ZERO, 1.0);
        assert_eq!(r.series_names(), vec!["a".to_string(), "b".to_string()]);
    }
}
