//! A uniform metrics registry: counters, gauges, time-weighted gauges
//! integrated over *virtual* time, and histograms with quantile
//! summaries.
//!
//! The registry complements the sample-series [`crate::Recorder`]: the
//! `Recorder` keeps raw named samples for offline analysis, the
//! `MetricsRegistry` is the uniform instrumentation surface every
//! subsystem (server, scheduler, DAC, network, engine) writes through.
//! It is cloneable — all clones share state — and mergeable:
//! [`MetricsRegistry::merge_from`] folds another registry in such that
//! the result equals having recorded everything into one registry
//! (counters sum; histograms pool samples; gauges keep the latest
//! update; time-weighted gauges merge their update timelines).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::recorder::percentile;
use crate::time::{SimDuration, SimTime};

/// Exact nearest-rank quantile of a **sorted** sample slice: the
/// smallest sample `x` such that at least `q · n` samples are `<= x`
/// (`sorted[ceil(q·n) - 1]`, clamped to the valid range). Unlike
/// [`crate::percentile`] this never interpolates — the result is always
/// an observed sample, which is the right definition for latency SLOs
/// ("p999 = the slowest request among the fastest 99.9%"). Returns
/// `None` on an empty slice.
pub fn exact_quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.max(1).min(sorted.len()) - 1])
}

/// Exact SLO quantiles of a latency stream: count and nearest-rank
/// p50/p99/p999 (see [`exact_quantile`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// 99.9th percentile (nearest rank).
    pub p999: f64,
}

/// Accumulates a latency stream and answers exact quantile queries.
///
/// The estimator is *exact*: it keeps every sample (the soak workloads
/// produce at most a few hundred thousand latency points, so the memory
/// cost is trivial next to the event heap) and sorts lazily per query.
/// Mergeable: [`QuantileEstimator::absorb`] pools two streams such that
/// the result equals one estimator having observed both.
#[derive(Clone, Debug, Default)]
pub struct QuantileEstimator {
    samples: Vec<f64>,
}

impl QuantileEstimator {
    /// A new, empty estimator.
    pub fn new() -> Self {
        QuantileEstimator::default()
    }

    /// Record one sample.
    pub fn observe(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Record every sample of `values`.
    pub fn observe_all(&mut self, values: &[f64]) {
        self.samples.extend_from_slice(values);
    }

    /// Pool another estimator's samples into this one.
    pub fn absorb(&mut self, other: &QuantileEstimator) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of samples observed so far.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// True when no sample has been observed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Exact nearest-rank `q`-quantile of the stream so far; `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile samples must be ordered"));
        exact_quantile(&sorted, q)
    }

    /// Exact p50/p99/p999 summary; `None` when empty.
    pub fn summary(&self) -> Option<SloSummary> {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile samples must be ordered"));
        Some(SloSummary {
            count: sorted.len() as u64,
            p50: exact_quantile(&sorted, 0.50)?,
            p99: exact_quantile(&sorted, 0.99)?,
            p999: exact_quantile(&sorted, 0.999)?,
        })
    }
}

/// Quantile summary of a histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (linear interpolation).
    pub p50: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
    /// 99th percentile (linear interpolation).
    pub p99: f64,
}

#[derive(Default)]
struct RegState {
    counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges, with the virtual time of the write so
    /// merges can keep the later value.
    gauges: BTreeMap<String, (SimTime, f64)>,
    /// Full update timelines `(time, value)`, kept sorted by time, so
    /// time-weighted means are exact and merges are lossless.
    time_weighted: BTreeMap<String, Vec<(SimTime, f64)>>,
    histograms: BTreeMap<String, Vec<f64>>,
}

/// Cloneable, shareable metrics registry. See module docs.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegState>>,
}

impl MetricsRegistry {
    /// A new, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    // ----- counters ------------------------------------------------------

    /// Add `n` to counter `name` (creating it at zero). The key string
    /// is only allocated on a counter's first write; steady-state
    /// increments are a map lookup.
    pub fn counter_add(&self, name: &str, n: u64) {
        let mut s = self.inner.lock();
        if let Some(c) = s.counters.get_mut(name) {
            *c = c.saturating_add(n);
        } else {
            s.counters.insert(name.to_string(), n);
        }
    }

    /// Increment counter `name` by one.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Current value of counter `name` (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().counters.get(name).copied().unwrap_or(0)
    }

    // ----- gauges --------------------------------------------------------

    /// Set gauge `name` to `value` as of virtual time `now`.
    pub fn gauge_set(&self, name: &str, now: SimTime, value: f64) {
        let mut s = self.inner.lock();
        if let Some(g) = s.gauges.get_mut(name) {
            *g = (now, value);
        } else {
            s.gauges.insert(name.to_string(), (now, value));
        }
    }

    /// Last value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.lock().gauges.get(name).map(|&(_, v)| v)
    }

    // ----- time-weighted gauges ------------------------------------------

    /// Record that time-weighted gauge `name` changed to `value` at
    /// virtual time `now`. Updates must be fed in non-decreasing time
    /// order per registry (the simulator's clock guarantees this);
    /// out-of-order updates are re-sorted on read.
    pub fn twg_set(&self, name: &str, now: SimTime, value: f64) {
        fn push(series: &mut Vec<(SimTime, f64)>, now: SimTime, value: f64) {
            match series.last() {
                Some(&(t, _)) if t > now => {
                    // Rare out-of-order write: insert at the right
                    // position to keep the timeline sorted.
                    let ix = series.partition_point(|&(t, _)| t <= now);
                    series.insert(ix, (now, value));
                }
                _ => series.push((now, value)),
            }
        }
        let mut s = self.inner.lock();
        // Key allocation only on the series' first update.
        if let Some(series) = s.time_weighted.get_mut(name) {
            push(series, now, value);
            return;
        }
        push(s.time_weighted.entry(name.to_string()).or_default(), now, value);
    }

    /// Last value of time-weighted gauge `name`.
    pub fn twg_value(&self, name: &str) -> Option<f64> {
        self.inner.lock().time_weighted.get(name).and_then(|s| s.last()).map(|&(_, v)| v)
    }

    /// Time-weighted mean of gauge `name` over `[first_update, until]`:
    /// each value is weighted by how long it was in effect. Returns
    /// `None` if the gauge has no updates or the window is empty.
    pub fn twg_mean(&self, name: &str, until: SimTime) -> Option<f64> {
        let s = self.inner.lock();
        let series = s.time_weighted.get(name)?;
        let first = series.first()?.0;
        let window = until.since(first);
        if window.is_zero() {
            return None;
        }
        let mut integral = 0.0;
        for (i, &(t, v)) in series.iter().enumerate() {
            if t >= until {
                break;
            }
            let end = series.get(i + 1).map_or(until, |&(t2, _)| t2.min(until));
            integral += v * end.since(t).as_secs_f64();
        }
        Some(integral / window.as_secs_f64())
    }

    /// The raw update timeline of time-weighted gauge `name`.
    pub fn twg_updates(&self, name: &str) -> Vec<(SimTime, f64)> {
        self.inner.lock().time_weighted.get(name).cloned().unwrap_or_default()
    }

    // ----- histograms ----------------------------------------------------

    /// Record one sample into histogram `name`. The key string is only
    /// allocated on the histogram's first sample.
    pub fn observe(&self, name: &str, value: f64) {
        let mut s = self.inner.lock();
        if let Some(samples) = s.histograms.get_mut(name) {
            samples.push(value);
            return;
        }
        s.histograms.entry(name.to_string()).or_default().push(value);
    }

    /// Record a virtual duration (in seconds) into histogram `name`.
    pub fn observe_duration(&self, name: &str, d: SimDuration) {
        self.observe(name, d.as_secs_f64());
    }

    /// Quantile summary of histogram `name`; `None` when the histogram
    /// is missing or empty.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        let s = self.inner.lock();
        let samples = s.histograms.get(name)?;
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("histogram samples must be ordered"));
        let count = sorted.len() as u64;
        let sum: f64 = sorted.iter().sum();
        Some(HistogramSummary {
            count,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean: sum / count as f64,
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
        })
    }

    /// Raw samples of histogram `name` (recording order).
    pub fn histogram_samples(&self, name: &str) -> Vec<f64> {
        self.inner.lock().histograms.get(name).cloned().unwrap_or_default()
    }

    /// Exact nearest-rank SLO quantiles (p50/p99/p999) of histogram
    /// `name`; `None` when the histogram is missing or empty. Unlike
    /// [`MetricsRegistry::histogram`] the quantiles are observed
    /// samples, never interpolations (see [`exact_quantile`]).
    pub fn slo_summary(&self, name: &str) -> Option<SloSummary> {
        let mut est = QuantileEstimator::new();
        {
            let s = self.inner.lock();
            est.observe_all(s.histograms.get(name)?);
        }
        est.summary()
    }

    // ----- introspection & merge -----------------------------------------

    /// Names of all metrics, grouped as (counters, gauges,
    /// time-weighted gauges, histograms).
    #[allow(clippy::type_complexity)]
    pub fn names(&self) -> (Vec<String>, Vec<String>, Vec<String>, Vec<String>) {
        let s = self.inner.lock();
        (
            s.counters.keys().cloned().collect(),
            s.gauges.keys().cloned().collect(),
            s.time_weighted.keys().cloned().collect(),
            s.histograms.keys().cloned().collect(),
        )
    }

    /// Drop all recorded data.
    pub fn clear(&self) {
        *self.inner.lock() = RegState::default();
    }

    /// Fold `other`'s data into `self`, equivalent to having recorded
    /// both streams into one registry: counters add, histograms pool,
    /// gauges keep the later-timestamped write (ties: `other` wins),
    /// time-weighted timelines merge sorted by time. `other` is left
    /// untouched.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        let o = other.inner.lock();
        let mut s = self.inner.lock();
        for (k, v) in &o.counters {
            let c = s.counters.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (k, &(t, v)) in &o.gauges {
            match s.gauges.get(k) {
                Some(&(t0, _)) if t0 > t => {}
                _ => {
                    s.gauges.insert(k.clone(), (t, v));
                }
            }
        }
        for (k, updates) in &o.time_weighted {
            let series = s.time_weighted.entry(k.clone()).or_default();
            series.extend(updates.iter().copied());
            series.sort_by_key(|&(t, _)| t);
        }
        for (k, samples) in &o.histograms {
            s.histograms.entry(k.clone()).or_default().extend(samples.iter().copied());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.counter_inc("x");
        m.counter_add("x", 4);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = MetricsRegistry::new();
        assert_eq!(m.gauge("g"), None);
        m.gauge_set("g", t(1), 2.0);
        m.gauge_set("g", t(2), 7.0);
        assert_eq!(m.gauge("g"), Some(7.0));
    }

    #[test]
    fn twg_integrates_over_virtual_time() {
        let m = MetricsRegistry::new();
        // 0 for 10s, then 4 for 10s, then 2 for 20s → mean over 40s = 2.0
        m.twg_set("util", t(0), 0.0);
        m.twg_set("util", t(10), 4.0);
        m.twg_set("util", t(20), 2.0);
        let mean = m.twg_mean("util", t(40)).unwrap();
        assert!((mean - 2.0).abs() < 1e-12, "(0*10 + 4*10 + 2*20)/40 = 2.0, got {mean}");
        assert_eq!(m.twg_value("util"), Some(2.0));
        // Truncated window: only the first value is in effect.
        let early = m.twg_mean("util", t(10)).unwrap();
        assert_eq!(early, 0.0);
        // Empty window.
        assert_eq!(m.twg_mean("util", t(0)), None);
        assert_eq!(m.twg_mean("missing", t(1)), None);
    }

    #[test]
    fn twg_out_of_order_updates_are_resorted() {
        let m = MetricsRegistry::new();
        m.twg_set("g", t(10), 1.0);
        m.twg_set("g", t(0), 5.0);
        let updates = m.twg_updates("g");
        assert_eq!(updates, vec![(t(0), 5.0), (t(10), 1.0)]);
    }

    #[test]
    fn histogram_quantile_edges() {
        let m = MetricsRegistry::new();
        // Empty / missing.
        assert!(m.histogram("h").is_none());
        // Single sample: every quantile is that sample.
        m.observe("h", 3.0);
        let s = m.histogram("h").unwrap();
        assert_eq!((s.count, s.min, s.max, s.p50, s.p95, s.p99), (1, 3.0, 3.0, 3.0, 3.0, 3.0));
        // Ties: all-equal samples keep every quantile at the tied value.
        let m2 = MetricsRegistry::new();
        for _ in 0..10 {
            m2.observe("h", 2.5);
        }
        let s2 = m2.histogram("h").unwrap();
        assert_eq!((s2.p50, s2.p95, s2.p99, s2.mean), (2.5, 2.5, 2.5, 2.5));
        // Unsorted input is sorted before quantiles.
        let m3 = MetricsRegistry::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            m3.observe("h", v);
        }
        let s3 = m3.histogram("h").unwrap();
        assert_eq!(s3.p50, 3.0);
        assert_eq!((s3.min, s3.max), (1.0, 5.0));
    }

    #[test]
    fn exact_quantiles_are_nearest_rank() {
        // Empty stream: no quantiles.
        assert_eq!(exact_quantile(&[], 0.5), None);
        let e = QuantileEstimator::new();
        assert!(e.is_empty());
        assert_eq!(e.summary(), None);
        // Single sample: every quantile is that sample.
        let mut e = QuantileEstimator::new();
        e.observe(7.0);
        let s = e.summary().unwrap();
        assert_eq!((s.count, s.p50, s.p99, s.p999), (1, 7.0, 7.0, 7.0));
        // 1..=1000: nearest-rank p50 = 500, p99 = 990, p999 = 999 — all
        // observed samples, no interpolation.
        let mut e = QuantileEstimator::new();
        for v in (1..=1000).rev() {
            e.observe(v as f64);
        }
        let s = e.summary().unwrap();
        assert_eq!((s.p50, s.p99, s.p999), (500.0, 990.0, 999.0));
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(1000.0));
    }

    #[test]
    fn estimator_absorb_pools_streams() {
        let mut a = QuantileEstimator::new();
        let mut b = QuantileEstimator::new();
        a.observe_all(&[1.0, 2.0]);
        b.observe_all(&[3.0, 4.0]);
        a.absorb(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.quantile(1.0), Some(4.0));
        assert_eq!(b.count(), 2, "absorb leaves the source untouched");
    }

    #[test]
    fn registry_slo_summary_matches_estimator() {
        let m = MetricsRegistry::new();
        assert_eq!(m.slo_summary("h"), None);
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            m.observe("h", v);
        }
        let s = m.slo_summary("h").unwrap();
        assert_eq!((s.count, s.p50, s.p99, s.p999), (5, 3.0, 5.0, 5.0));
    }

    #[test]
    fn observe_duration_records_seconds() {
        let m = MetricsRegistry::new();
        m.observe_duration("d", SimDuration::from_millis(1500));
        assert_eq!(m.histogram_samples("d"), vec![1.5]);
    }

    #[test]
    fn clones_share_state() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m.counter_inc("c");
        assert_eq!(m2.counter("c"), 1);
    }

    #[test]
    fn merge_sums_counters_and_pools_histograms() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter_add("c", 2);
        b.counter_add("c", 3);
        a.observe("h", 1.0);
        b.observe("h", 9.0);
        a.gauge_set("g", t(1), 1.0);
        b.gauge_set("g", t(2), 2.0);
        a.merge_from(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.histogram("h").unwrap().count, 2);
        assert_eq!(a.gauge("g"), Some(2.0), "later-timestamped gauge wins");
        // b untouched
        assert_eq!(b.counter("c"), 3);
    }

    #[test]
    fn merge_with_self_is_a_no_op() {
        let a = MetricsRegistry::new();
        a.counter_add("c", 2);
        let a2 = a.clone();
        a.merge_from(&a2);
        assert_eq!(a.counter("c"), 2);
    }
}
