//! Message envelopes and addressable endpoints.
//!
//! Every deliverable destination in the simulation is an [`Endpoint`]:
//! either a reactive [`Actor`](crate::actor::Actor) (daemon-style state
//! machine dispatched by the engine) or a threaded
//! [process](crate::process::Proc) with a mailbox and blocking `recv`.
//!
//! Payloads are type-erased (`Box<dyn Any + Send>`) so that each subsystem
//! (RMS, scheduler, MPI runtime, accelerator daemons) can define its own
//! protocol enums without a central message registry.

use std::any::Any;
use std::fmt;

/// Identifier of a reactive actor registered with the engine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ActorId(pub(crate) usize);

impl ActorId {
    /// Raw index (stable for the lifetime of the simulation).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a threaded simulation process.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(pub(crate) usize);

impl ProcessId {
    /// Raw index (stable for the lifetime of the simulation).
    pub fn index(self) -> usize {
        self.0
    }

    /// Fabricate an id from a raw index. Only meaningful for ids that the
    /// engine actually handed out; intended for tests and serialisation.
    pub fn from_raw(index: usize) -> Self {
        ProcessId(index)
    }
}

/// A deliverable destination: reactive actor or threaded process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Endpoint {
    /// Reactive actor dispatched inline by the engine.
    Actor(ActorId),
    /// Threaded process; delivery appends to its mailbox.
    Process(ProcessId),
}

impl From<ActorId> for Endpoint {
    fn from(a: ActorId) -> Self {
        Endpoint::Actor(a)
    }
}

impl From<ProcessId> for Endpoint {
    fn from(p: ProcessId) -> Self {
        Endpoint::Process(p)
    }
}

/// A message in flight: type-erased payload plus provenance.
pub struct Envelope {
    /// Originating endpoint, if known (used for request/reply patterns).
    pub src: Option<Endpoint>,
    /// The payload. Downcast with [`Envelope::downcast`] / [`Envelope::is`].
    pub payload: Box<dyn Any + Send>,
}

impl Envelope {
    /// Wrap a payload with no recorded source.
    pub fn new<T: Any + Send>(payload: T) -> Self {
        Envelope { src: None, payload: Box::new(payload) }
    }

    /// Wrap a payload recording the sending endpoint.
    pub fn from_src<T: Any + Send>(src: Endpoint, payload: T) -> Self {
        Envelope { src: Some(src), payload: Box::new(payload) }
    }

    /// Whether the payload is of type `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.payload.is::<T>()
    }

    /// Consume the envelope, returning the payload if it is a `T`,
    /// otherwise giving the envelope back.
    pub fn downcast<T: Any>(self) -> Result<T, Envelope> {
        match self.payload.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(payload) => Err(Envelope { src: self.src, payload }),
        }
    }

    /// Borrow the payload as a `T` if it is one.
    pub fn peek<T: Any>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

impl fmt::Debug for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Envelope")
            .field("src", &self.src)
            .field("payload_type", &(*self.payload).type_id())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Ping(u32);
    #[derive(Debug, PartialEq)]
    struct Pong(u32);

    #[test]
    fn downcast_success_and_failure() {
        let env = Envelope::new(Ping(7));
        assert!(env.is::<Ping>());
        assert!(!env.is::<Pong>());
        let env = env.downcast::<Pong>().unwrap_err();
        assert_eq!(env.downcast::<Ping>().unwrap(), Ping(7));
    }

    #[test]
    fn peek_borrows_payload() {
        let env = Envelope::new(Ping(3));
        assert_eq!(env.peek::<Ping>().map(|p| p.0), Some(3));
        assert!(env.peek::<Pong>().is_none());
    }

    #[test]
    fn src_is_preserved_through_failed_downcast() {
        let src = Endpoint::Actor(ActorId(4));
        let env = Envelope::from_src(src, Ping(1));
        let env = env.downcast::<Pong>().unwrap_err();
        assert_eq!(env.src, Some(src));
    }

    #[test]
    fn endpoint_conversions() {
        let a: Endpoint = ActorId(1).into();
        let p: Endpoint = ProcessId(2).into();
        assert_eq!(a, Endpoint::Actor(ActorId(1)));
        assert_eq!(p, Endpoint::Process(ProcessId(2)));
        assert_eq!(ActorId(1).index(), 1);
        assert_eq!(ProcessId(2).index(), 2);
    }
}
