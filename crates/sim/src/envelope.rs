//! Message envelopes and addressable endpoints.
//!
//! Every deliverable destination in the simulation is an [`Endpoint`]:
//! either a reactive [`Actor`](crate::actor::Actor) (daemon-style state
//! machine dispatched by the engine) or a threaded
//! [process](crate::process::Proc) with a mailbox and blocking `recv`.
//!
//! Payloads are type-erased (`Box<dyn Any + Send>`) so that each subsystem
//! (RMS, scheduler, MPI runtime, accelerator daemons) can define its own
//! protocol enums without a central message registry.
//!
//! ## Payload pooling
//!
//! A message send used to cost one heap allocation (the payload box) and
//! the matching free on receipt — the dominant allocator traffic on the
//! kernel's hot path. Payloads are now stored as `Box<Option<T>>` erased
//! to `Box<dyn Any + Send>`: [`Envelope::downcast`] *takes* the value out
//! of the `Option` and recycles the emptied box into a thread-local pool
//! keyed by `TypeId`, and the constructors refill a pooled box instead of
//! allocating. Steady-state messaging (request/reply, ping-pong) reuses
//! the same few boxes indefinitely. Pooling is invisible to behaviour:
//! the same values flow, only their heap cells are reused.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

/// Per-thread pool of emptied payload cells (`Box<Option<T>>` erased),
/// keyed by the *cell's* `TypeId` (i.e. `Option<T>`). A one-slot hot
/// cache front-runs the map: steady-state traffic is dominated by one
/// payload type at a time (`BTreeMap`, not `HashMap`: the determinism
/// lint bans unordered containers in this crate, and the map is never
/// iterated anyway).
struct PayloadPool {
    hot: Option<(TypeId, Vec<Box<dyn Any + Send>>)>,
    by_type: BTreeMap<TypeId, Vec<Box<dyn Any + Send>>>,
}

/// Cap per payload type; beyond this, cells are simply freed.
const POOL_CAP: usize = 64;

thread_local! {
    // `const` init: accesses compile to a direct TLS read with no
    // lazy-initialization branch, which matters at tens of millions of
    // pool hits per second.
    static PAYLOAD_POOL: RefCell<PayloadPool> =
        const { RefCell::new(PayloadPool { hot: None, by_type: BTreeMap::new() }) };
}

impl PayloadPool {
    #[inline]
    fn take(&mut self, tid: TypeId) -> Option<Box<dyn Any + Send>> {
        if let Some((hot_tid, cells)) = &mut self.hot {
            if *hot_tid == tid {
                return cells.pop();
            }
        }
        // Promote this type to the hot slot, demoting the previous one.
        let cells = self.by_type.remove(&tid).unwrap_or_default();
        if let Some((old_tid, old)) = self.hot.replace((tid, cells)) {
            if !old.is_empty() {
                self.by_type.insert(old_tid, old);
            }
        }
        self.hot.as_mut().and_then(|(_, cells)| cells.pop())
    }

    #[inline]
    fn give(&mut self, tid: TypeId, cell: Box<dyn Any + Send>) {
        if let Some((hot_tid, cells)) = &mut self.hot {
            if *hot_tid == tid {
                if cells.len() < POOL_CAP {
                    cells.push(cell);
                }
                return;
            }
        }
        let cells = self.by_type.entry(tid).or_default();
        if cells.len() < POOL_CAP {
            cells.push(cell);
        }
    }
}

/// Wrap `payload` in a (possibly recycled) `Box<Option<T>>` cell, erased.
#[inline]
fn alloc_cell<T: Any + Send>(payload: T) -> Box<dyn Any + Send> {
    let tid = TypeId::of::<Option<T>>();
    let recycled = PAYLOAD_POOL.with(|p| p.borrow_mut().take(tid));
    match recycled {
        Some(mut cell) => {
            *cell.downcast_mut::<Option<T>>().expect("pool keyed by cell type") = Some(payload);
            cell
        }
        None => Box::new(Some(payload)),
    }
}

/// Return an emptied cell (its `Option` is `None`) to the pool.
#[inline]
fn recycle_cell(cell: Box<dyn Any + Send>) {
    let tid = (*cell).type_id();
    PAYLOAD_POOL.with(|p| p.borrow_mut().give(tid, cell));
}

/// Identifier of a reactive actor registered with the engine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ActorId(pub(crate) usize);

impl ActorId {
    /// Raw index (stable for the lifetime of the simulation).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a threaded simulation process.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(pub(crate) usize);

impl ProcessId {
    /// Raw index (stable for the lifetime of the simulation).
    pub fn index(self) -> usize {
        self.0
    }

    /// Fabricate an id from a raw index. Only meaningful for ids that the
    /// engine actually handed out; intended for tests and serialisation.
    pub fn from_raw(index: usize) -> Self {
        ProcessId(index)
    }
}

/// A deliverable destination: reactive actor or threaded process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Endpoint {
    /// Reactive actor dispatched inline by the engine.
    Actor(ActorId),
    /// Threaded process; delivery appends to its mailbox.
    Process(ProcessId),
}

impl From<ActorId> for Endpoint {
    fn from(a: ActorId) -> Self {
        Endpoint::Actor(a)
    }
}

impl From<ProcessId> for Endpoint {
    fn from(p: ProcessId) -> Self {
        Endpoint::Process(p)
    }
}

/// A message in flight: type-erased payload plus provenance.
pub struct Envelope {
    /// Originating endpoint, if known (used for request/reply patterns).
    pub src: Option<Endpoint>,
    /// The payload cell: a `Box<Option<T>>` erased to `dyn Any` (see the
    /// module docs on pooling). The `Option` is always `Some` while the
    /// envelope exists. Downcast with [`Envelope::downcast`] /
    /// [`Envelope::is`].
    cell: Box<dyn Any + Send>,
}

impl Envelope {
    /// Wrap a payload with no recorded source.
    pub fn new<T: Any + Send>(payload: T) -> Self {
        Envelope { src: None, cell: alloc_cell(payload) }
    }

    /// Wrap a payload recording the sending endpoint.
    pub fn from_src<T: Any + Send>(src: Endpoint, payload: T) -> Self {
        Envelope { src: Some(src), cell: alloc_cell(payload) }
    }

    /// Whether the payload is of type `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.cell.is::<Option<T>>()
    }

    /// Consume the envelope, returning the payload if it is a `T`,
    /// otherwise giving the envelope back. On success the emptied
    /// payload cell is recycled into the thread-local pool.
    pub fn downcast<T: Any>(mut self) -> Result<T, Envelope> {
        match self.cell.downcast_mut::<Option<T>>().map(|o| o.take().expect("cell is Some")) {
            Some(v) => {
                recycle_cell(self.cell);
                Ok(v)
            }
            None => Err(self),
        }
    }

    /// Borrow the payload as a `T` if it is one.
    pub fn peek<T: Any>(&self) -> Option<&T> {
        self.cell.downcast_ref::<Option<T>>().and_then(|o| o.as_ref())
    }
}

impl fmt::Debug for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Envelope")
            .field("src", &self.src)
            .field("payload_type", &(*self.cell).type_id())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Ping(u32);
    #[derive(Debug, PartialEq)]
    struct Pong(u32);

    #[test]
    fn downcast_success_and_failure() {
        let env = Envelope::new(Ping(7));
        assert!(env.is::<Ping>());
        assert!(!env.is::<Pong>());
        let env = env.downcast::<Pong>().unwrap_err();
        assert_eq!(env.downcast::<Ping>().unwrap(), Ping(7));
    }

    #[test]
    fn peek_borrows_payload() {
        let env = Envelope::new(Ping(3));
        assert_eq!(env.peek::<Ping>().map(|p| p.0), Some(3));
        assert!(env.peek::<Pong>().is_none());
    }

    #[test]
    fn src_is_preserved_through_failed_downcast() {
        let src = Endpoint::Actor(ActorId(4));
        let env = Envelope::from_src(src, Ping(1));
        let env = env.downcast::<Pong>().unwrap_err();
        assert_eq!(env.src, Some(src));
    }

    #[test]
    fn endpoint_conversions() {
        let a: Endpoint = ActorId(1).into();
        let p: Endpoint = ProcessId(2).into();
        assert_eq!(a, Endpoint::Actor(ActorId(1)));
        assert_eq!(p, Endpoint::Process(ProcessId(2)));
        assert_eq!(ActorId(1).index(), 1);
        assert_eq!(ProcessId(2).index(), 2);
    }
}
