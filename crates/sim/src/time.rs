//! Virtual time for the simulation.
//!
//! All timestamps are nanoseconds since simulation start, wrapped in
//! [`SimTime`]. Durations are [`SimDuration`]. Both are plain `u64`
//! nanosecond counters with saturating arithmetic so that a mis-configured
//! cost model cannot wrap the clock.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual clock (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier`; saturates to zero if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked distance to a later instant.
    pub fn until(self, later: SimTime) -> SimDuration {
        later.since(self)
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale the span by a float factor (clamped to non-negative).
    pub fn mul_f64(self, f: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * f)
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> Self {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> Self {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(4).as_nanos(), 4_000);
        assert_eq!(SimDuration::from_nanos(5).as_nanos(), 5);
    }

    #[test]
    fn float_seconds_round_trip() {
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!(d.as_nanos(), 250_000_000);
        assert!((d.as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_float_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(10);
        assert_eq!(t1.as_nanos(), 10_000_000);
        assert_eq!((t1 - t0).as_nanos(), 10_000_000);
        // saturating: earlier - later = 0
        assert_eq!((t0 - t1), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let max = SimDuration::MAX;
        assert_eq!(max + SimDuration::from_secs(1), SimDuration::MAX);
        assert_eq!(SimDuration::ZERO - SimDuration::from_secs(1), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs(4) / 0, SimDuration::from_secs(4));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(2)), "2ns");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
