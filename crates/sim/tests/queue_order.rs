//! Cross-queue property test: the calendar queue must yield events in
//! exactly the heap's `(time, seq)` order, so a simulation behaves
//! identically under either `QueueKind`. Schedules are randomized and
//! deliberately include same-timestamp batches (duplicate delays and
//! zero-delay sends) and cancelled/re-armed timers.

use std::sync::Arc;

use darms_sim::{Actor, Ctx, Engine, Envelope, QueueKind, SimConfig, SimDuration};
use parking_lot::Mutex;
use proptest::prelude::*;

/// One scheduling op: `(action, delay_ns, token)`.
type Op = (u8, u64, u64);

/// Shared observation log: `(virtual time ns, tag)` in occurrence order.
type Log = Arc<Mutex<Vec<(u64, u32)>>>;

/// Driver actor: replays the op list at start, logs timer fires, and
/// answers each fire with a zero-delay send (a same-timestamp batch
/// with whatever else is pending at that instant).
struct Driver {
    ops: Vec<Op>,
    recorder: darms_sim::ProcessId,
    log: Log,
}

impl Actor for Driver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let recorder = self.recorder.into();
        for (i, &(action, delay, token)) in self.ops.iter().enumerate() {
            let d = SimDuration::from_nanos(delay);
            match action % 4 {
                0 => ctx.send(recorder, i as u32, d),
                1 => ctx.set_timer(d, token),
                2 => {
                    // Armed then immediately cancelled: must never fire
                    // (unless a later op re-arms the token).
                    ctx.set_timer(d, token);
                    ctx.cancel_timer(token);
                }
                _ => {
                    // Same-timestamp pair.
                    ctx.send(recorder, 1_000 + i as u32, d);
                    ctx.send(recorder, 2_000 + i as u32, d);
                }
            }
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _env: Envelope) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.log.lock().push((ctx.now().as_nanos(), 10_000 + token as u32));
        ctx.send(self.recorder.into(), 20_000 + token as u32, SimDuration::ZERO);
    }

    fn name(&self) -> &str {
        "driver"
    }
}

/// Run the scenario under one queue kind; returns the observation log
/// plus the stats the run produced (`SimStats` equality ignores wall
/// time, so this compares event counts, clock, switches, depths...).
fn run_scenario(ops: &[Op], seed: u64, kind: QueueKind) -> (Vec<(u64, u32)>, darms_sim::SimStats) {
    let mut sim = Engine::new(SimConfig { seed, queue_kind: kind, ..Default::default() });
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let l = log.clone();
    let recorder = sim.spawn_process("recorder", move |p| async move {
        loop {
            let (v, _) = p.recv_as::<u32>().await;
            l.lock().push((p.now().as_nanos(), v));
        }
    });
    sim.add_actor(Box::new(Driver { ops: ops.to_vec(), recorder, log: log.clone() }));
    let stats = sim.run();
    let out = log.lock().clone();
    (out, stats)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// The observable history (every delivery and timer fire, with its
    /// virtual timestamp) and the run stats are identical whichever
    /// structure orders the event set.
    #[test]
    fn calendar_queue_matches_heap_order(
        ops in prop::collection::vec((0u8..4, 0u64..5_000, 0u64..6u64), 1..60),
        seed in 0u64..1_000,
    ) {
        let (heap_log, heap_stats) = run_scenario(&ops, seed, QueueKind::Heap);
        let (cal_log, cal_stats) = run_scenario(&ops, seed, QueueKind::Calendar);
        prop_assert_eq!(&heap_log, &cal_log);
        prop_assert_eq!(heap_stats, cal_stats);
        // Sanity: non-degenerate scenarios actually observe something.
        if ops.iter().any(|&(a, _, _)| a % 4 != 2) {
            prop_assert!(!heap_log.is_empty());
        }
    }

    /// Same property under wide time spreads (forces calendar-queue
    /// resizes and the sparse-fallback path) and many duplicate
    /// timestamps (deep same-time batches).
    #[test]
    fn calendar_queue_matches_heap_extremes(
        raw_ops in prop::collection::vec((0u8..4, 0usize..9, 0u64..6u64), 1..40),
        seed in 0u64..1_000,
    ) {
        // Delay palette skewed toward collisions (deep same-time
        // batches) and huge gaps (calendar resizes + sparse fallback).
        const DELAYS: [u64; 9] = [0, 1, 2, 1_000, 1_000, 1_000, 50_000, 10_000_000, 4_000_000_000];
        let ops: Vec<Op> =
            raw_ops.iter().map(|&(a, d, t)| (a, DELAYS[d], t)).collect();
        let (heap_log, heap_stats) = run_scenario(&ops, seed, QueueKind::Heap);
        let (cal_log, cal_stats) = run_scenario(&ops, seed, QueueKind::Calendar);
        prop_assert_eq!(&heap_log, &cal_log);
        prop_assert_eq!(heap_stats, cal_stats);
    }
}
