//! Incremental execution: `run_until` advances the clock in bounded
//! steps, state persists between calls, and `finish` is idempotent.

use std::sync::Arc;

use darms_sim::{Engine, SimConfig, SimDuration, SimTime};
use parking_lot::Mutex;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

#[test]
fn run_until_stops_at_the_boundary_and_resumes() {
    let mut sim = Engine::with_seed(5);
    let log = Arc::new(Mutex::new(Vec::new()));
    let l = log.clone();
    sim.spawn_process("ticker", move |p| async move {
        for i in 0..10 {
            p.sleep(ms(10)).await;
            l.lock().push((i, p.now()));
        }
    });
    sim.run_until(SimTime::ZERO + ms(35));
    assert_eq!(log.lock().len(), 3, "ticks at 10, 20, 30 ms");
    assert!(sim.now() <= SimTime::ZERO + ms(35));
    sim.run_until(SimTime::ZERO + ms(95));
    assert_eq!(log.lock().len(), 9);
    let stats = sim.finish();
    // finish() unwinds the parked ticker (its 10th tick never fires).
    assert_eq!(stats.processes_spawned, 1);
    // idempotent
    let again = sim.finish();
    assert_eq!(stats.events, again.events);
}

#[test]
fn state_between_steps_is_observable() {
    let mut sim = Engine::with_seed(6);
    let counter = Arc::new(Mutex::new(0u32));
    let c = counter.clone();
    sim.spawn_process("worker", move |p| async move {
        loop {
            p.sleep(ms(100)).await;
            *c.lock() += 1;
        }
    });
    for expected in 1..=5u32 {
        sim.run_until(SimTime::ZERO + ms(100 * expected as u64));
        assert_eq!(*counter.lock(), expected);
    }
    sim.finish();
}

#[test]
fn trace_survives_incremental_runs() {
    let mut sim = Engine::new(SimConfig { seed: 7, trace: true, ..Default::default() });
    sim.spawn_process("a", |p| async move {
        p.sleep(ms(5)).await;
        p.trace("early");
        p.sleep(ms(50)).await;
        p.trace("late");
    });
    sim.run_until(SimTime::ZERO + ms(10));
    sim.run_until(SimTime::MAX);
    sim.finish();
    let trace = sim.take_trace();
    let events: Vec<&str> = trace.iter().map(|r| r.event.as_str()).collect();
    assert_eq!(events, vec!["early", "late"]);
}
