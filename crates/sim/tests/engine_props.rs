//! Property tests of the engine: virtual-time ordering, determinism, and
//! timeout semantics under arbitrary schedules.

use std::sync::Arc;

use darms_sim::{Engine, SimDuration, SimTime};
use parking_lot::Mutex;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Sleepers with arbitrary durations always wake in duration order,
    /// and the clock never runs backwards.
    #[test]
    fn sleepers_wake_in_order(mut durations in prop::collection::vec(0u64..1_000_000, 1..20)) {
        let mut sim = Engine::with_seed(1);
        let out = Arc::new(Mutex::new(Vec::new()));
        for (i, &d) in durations.iter().enumerate() {
            let o = out.clone();
            sim.spawn_process(format!("s{i}"), move |p| async move {
                p.sleep(SimDuration::from_nanos(d)).await;
                o.lock().push((p.now(), d));
            });
        }
        let stats = sim.run();
        prop_assert_eq!(stats.processes_finished as usize, durations.len());
        let woke = out.lock().clone();
        // Wake times are the durations themselves (all started at t=0)...
        for (at, d) in &woke {
            prop_assert_eq!(at.as_nanos(), *d);
        }
        // ...and observed in non-decreasing time order.
        for w in woke.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        durations.sort();
    }

    /// recv_timeout returns at exactly the deadline when nothing arrives,
    /// and before it when a message lands earlier.
    #[test]
    fn recv_timeout_deadline_is_exact(timeout_ns in 1u64..1_000_000, msg_ns in 1u64..2_000_000) {
        let mut sim = Engine::with_seed(2);
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        let rx = sim.spawn_process("rx", move |p| async move {
            let r = p.recv_timeout(SimDuration::from_nanos(timeout_ns)).await;
            *o.lock() = Some((r.is_some(), p.now()));
        });
        sim.spawn_process("tx", move |p| async move {
            p.send(rx.into(), 1u8, SimDuration::from_nanos(msg_ns));
        });
        sim.run();
        let (got, at) = out.lock().unwrap();
        if msg_ns <= timeout_ns {
            prop_assert!(got);
            prop_assert_eq!(at, SimTime::from_nanos(msg_ns));
        } else {
            prop_assert!(!got);
            prop_assert_eq!(at, SimTime::from_nanos(timeout_ns));
        }
    }

    /// Determinism: the same random scenario produces the same stats.
    #[test]
    fn runs_are_reproducible(seed in 0u64..10_000, n in 1usize..10) {
        fn run(seed: u64, n: usize) -> (u64, u64) {
            let mut sim = Engine::with_seed(seed);
            for i in 0..n {
                sim.spawn_process(format!("p{i}"), move |p| async move {
                    let jitter = p.with_rng(|r| rand::Rng::gen_range(r, 1..1000u64));
                    p.sleep(SimDuration::from_nanos(jitter * (i as u64 + 1))).await;
                });
            }
            let stats = sim.run();
            (stats.events, stats.end_time.as_nanos())
        }
        prop_assert_eq!(run(seed, n), run(seed, n));
    }
}
