//! End-to-end scenarios for the MPI-like runtime: world launch, P2P,
//! collectives, port rendezvous, spawn, merge, shrink — the exact
//! primitive sequences the DAC resource-management library performs.

use std::sync::Arc;

use darms_mpi::{data, launch_world, MpiCostModel, MpiRuntime, WorldSpec, ANY_SOURCE, ANY_TAG};
use darms_net::{HostId, HostKind, LatencyModel, Network};
use darms_sim::{Engine, SimDuration};
use parking_lot::Mutex;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

struct World {
    sim: Engine,
    net: Network,
    rt: MpiRuntime,
    hosts: Vec<HostId>,
}

fn setup(nhosts: usize) -> World {
    let sim = Engine::with_seed(42);
    let net = Network::new(LatencyModel::ideal(), 7);
    let hosts: Vec<HostId> =
        (0..nhosts).map(|i| net.add_host(format!("h{i}"), HostKind::Generic)).collect();
    let rt = MpiRuntime::new(net.clone(), MpiCostModel::instant());
    World { sim, net, rt, hosts }
}

#[test]
fn launched_world_p2p_ring() {
    let mut w = setup(4);
    let out = Arc::new(Mutex::new(Vec::new()));
    let o = out.clone();
    w.rt.register_exe("ring", move |mut mpi, _args| {
        let o = o.clone();
        async move {
            let world = mpi.world().unwrap();
            let n = mpi.size(world) as u32;
            let me = world.rank();
            if me == 0 {
                mpi.send(world, 1, 0, data(0u32), 8).unwrap();
                let msg = mpi.recv(world, Some(n - 1), Some(0)).await;
                o.lock().push(msg.expect::<u32>());
            } else {
                let msg = mpi.recv(world, Some(me - 1), Some(0)).await;
                let v = msg.expect::<u32>() + 1;
                mpi.send(world, (me + 1) % n, 0, data(v), 8).unwrap();
            }
            let _ = mpi.barrier(world).await; // everyone syncs at the end
        }
    });
    let specs = w
        .hosts
        .iter()
        .map(|&h| WorldSpec {
            host: h,
            exe: "ring".into(),
            args: vec![],
            start_delay: SimDuration::ZERO,
        })
        .collect();
    launch_world(&mut w.sim, &w.rt, specs).unwrap();
    let stats = w.sim.run();
    assert_eq!(stats.process_panics, 0);
    assert_eq!(*out.lock(), vec![3]); // 0 -> 1 -> 2 -> 3 -> 0, incremented thrice
}

#[test]
fn bcast_and_gather() {
    let mut w = setup(3);
    let out = Arc::new(Mutex::new(Vec::new()));
    let o = out.clone();
    w.rt.register_exe("coll", move |mut mpi, _| {
        let o = o.clone();
        async move {
            let world = mpi.world().unwrap();
            let me = world.rank();
            // Broadcast a vector from rank 0.
            let payload = if me == 0 { Some((data(vec![5u64, 6, 7]), 24)) } else { None };
            let got = mpi.bcast(world, 0, payload).await.unwrap();
            let v = got.downcast_ref::<Vec<u64>>().unwrap().clone();
            // Gather each rank's contribution (rank * first broadcast value).
            let contribution = v[0] * me as u64;
            let gathered = mpi.gather(world, 0, data(contribution), 8).await.unwrap();
            if let Some(values) = gathered {
                let nums: Vec<u64> =
                    values.iter().map(|d| *d.downcast_ref::<u64>().unwrap()).collect();
                o.lock().push(nums);
            }
        }
    });
    let specs = w
        .hosts
        .iter()
        .map(|&h| WorldSpec {
            host: h,
            exe: "coll".into(),
            args: vec![],
            start_delay: SimDuration::ZERO,
        })
        .collect();
    launch_world(&mut w.sim, &w.rt, specs).unwrap();
    let stats = w.sim.run();
    assert_eq!(stats.process_panics, 0);
    assert_eq!(*out.lock(), vec![vec![0, 5, 10]]);
}

#[test]
fn port_connect_accept_then_merge() {
    // The paper's static-allocation pattern: a daemon world opens a port,
    // a singleton compute-node process connects, both sides merge with the
    // connector low (compute node becomes rank 0).
    let mut w = setup(4);
    let rt = w.rt.clone();
    let port_box: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let out = Arc::new(Mutex::new(Vec::new()));

    let pb = port_box.clone();
    let o = out.clone();
    w.rt.register_exe("daemon", move |mut mpi, _| {
        let pb = pb.clone();
        let o = o.clone();
        async move {
            let world = mpi.world().unwrap();
            if world.rank() == 0 {
                let port = mpi.open_port();
                *pb.lock() = Some(port.clone());
                let inter = mpi.comm_accept(&port, world).await.unwrap();
                let merged = mpi.intercomm_merge(inter, true).await.unwrap();
                o.lock().push(("daemon0", merged.rank()));
            } else {
                let inter = mpi.comm_accept("", world).await.unwrap(); // non-root: announced
                let merged = mpi.intercomm_merge(inter, true).await.unwrap();
                o.lock().push(("daemon1", merged.rank()));
            }
        }
    });
    // Daemons on hosts 1 and 2.
    let specs = vec![
        WorldSpec { host: w.hosts[1], exe: "daemon".into(), args: vec![], start_delay: ms(5) },
        WorldSpec { host: w.hosts[2], exe: "daemon".into(), args: vec![], start_delay: ms(5) },
    ];
    launch_world(&mut w.sim, &w.rt, specs).unwrap();

    // Compute node: singleton attach, connect through the port, merge low.
    let cn_host = w.hosts[0];
    let o2 = out.clone();
    let pb2 = port_box.clone();
    w.sim.spawn_process("cn", move |p| async move {
        let mut mpi = rt.attach(p, cn_host).await;
        // Poll for the port file (the RM library reads it from a file in
        // the paper; here the test polls the shared box).
        let port = loop {
            if let Some(port) = pb2.lock().clone() {
                break port;
            }
            mpi.proc().sleep(ms(1)).await;
        };
        let self_comm = mpi.self_comm();
        let inter = mpi.comm_connect(&port, self_comm).await.unwrap();
        let merged = mpi.intercomm_merge(inter, false).await.unwrap();
        o2.lock().push(("cn", merged.rank()));
        // Address the daemons by their merged ranks 1 and 2.
        for r in 1..=2 {
            mpi.send(merged, r, 9, data(r), 8).unwrap();
        }
    });
    let stats = w.sim.run();
    assert_eq!(stats.process_panics, 0);
    let mut v = out.lock().clone();
    v.sort();
    // Connector passed high=false => rank 0; daemons get 1 and 2.
    assert!(v.contains(&("cn", 0)));
    assert!(v.contains(&("daemon0", 1)));
    assert!(v.contains(&("daemon1", 2)));
}

#[test]
fn spawn_merge_then_shrink() {
    // The paper's dynamic-allocation pattern: a compute node spawns y new
    // daemons over its current communicator, merges (new daemons high),
    // later releases a subset (shrink back). Protocol used here:
    //   tag 98 + removed set  => participate in a shrink of the current comm
    //   tag 99                => disconnect and exit
    let mut w = setup(4);
    let rt = w.rt.clone();
    let out = Arc::new(Mutex::new(Vec::new()));

    let o = out.clone();
    w.rt.register_exe("dyn-daemon", move |mut mpi, _| {
        let o = o.clone();
        async move {
            let parent = mpi.parent().expect("spawned daemon has a parent intercomm");
            let mut merged = mpi.intercomm_merge(parent, true).await.unwrap();
            o.lock().push(("daemon-merged", merged.rank()));
            loop {
                let msg = mpi.recv(merged, ANY_SOURCE, ANY_TAG).await;
                match msg.tag {
                    99 => {
                        mpi.comm_disconnect(merged);
                        break;
                    }
                    98 => {
                        let removed = msg.expect::<Vec<u32>>();
                        merged = mpi.comm_shrink(merged, &removed).await.unwrap();
                        o.lock().push(("daemon-shrunk", merged.rank()));
                    }
                    _ => {}
                }
            }
        }
    });

    let cn_host = w.hosts[0];
    let spawn_hosts = vec![w.hosts[1], w.hosts[2], w.hosts[3]];
    let o2 = out.clone();
    w.sim.spawn_process("cn", move |p| async move {
        let mut mpi = rt.attach(p, cn_host).await;
        let self_comm = mpi.self_comm();
        let inter = mpi.comm_spawn(self_comm, "dyn-daemon", &[], &spawn_hosts).await.unwrap();
        assert_eq!(mpi.remote_size(inter), 3);
        let merged = mpi.intercomm_merge(inter, false).await.unwrap();
        assert_eq!(merged.rank(), 0);
        assert_eq!(mpi.size(merged), 4);
        o2.lock().push(("cn-merged", merged.rank()));
        // Release daemons 2 and 3 (a "client-id set"), keep daemon 1:
        // survivor is told to join the shrink, released ones to exit.
        let removed = vec![2u32, 3];
        mpi.send(merged, 1, 98, data(removed.clone()), 16).unwrap();
        for r in removed.iter() {
            mpi.send(merged, *r, 99, data(()), 8).unwrap();
        }
        let shrunk = mpi.comm_shrink(merged, &removed).await.unwrap();
        assert_eq!(mpi.size(shrunk), 2);
        assert_eq!(shrunk.rank(), 0);
        o2.lock().push(("cn-shrunk", shrunk.rank()));
        // Finally release the surviving daemon too.
        mpi.send(shrunk, 1, 99, data(()), 8).unwrap();
    });

    let stats = w.sim.run();
    assert_eq!(stats.process_panics, 0);
    let v = out.lock().clone();
    let merged_ranks: Vec<u32> =
        v.iter().filter(|(who, _)| *who == "daemon-merged").map(|(_, r)| *r).collect();
    assert_eq!(merged_ranks.len(), 3);
    for r in [1, 2, 3] {
        assert!(merged_ranks.contains(&r), "daemon ranks {merged_ranks:?}");
    }
    // Survivor kept rank 1 after the shrink; CN observed the shrunk comm.
    assert!(v.contains(&("daemon-shrunk", 1)));
    assert!(v.contains(&("cn-shrunk", 0)));
    let _ = w.net;
}

#[test]
fn spawn_timing_includes_setup_and_launch() {
    // With the paper cost model, comm_spawn takes at least
    // spawn_setup + child_launch.
    let sim = Engine::with_seed(1);
    let net = Network::new(LatencyModel::ideal(), 7);
    let h0 = net.add_host("h0", HostKind::Generic);
    let h1 = net.add_host("h1", HostKind::Generic);
    let cost = MpiCostModel::paper_testbed();
    let min_expected = cost.spawn_setup + cost.child_launch;
    let rt = MpiRuntime::new(net, cost);
    rt.register_exe("noop", |mut mpi, _| async move {
        if let Some(parent) = mpi.parent() {
            let _ = mpi.intercomm_merge(parent, true).await;
        }
    });
    let out = Arc::new(Mutex::new(None));
    let o = out.clone();
    let rt2 = rt.clone();
    let mut sim = sim;
    sim.spawn_process("cn", move |p| async move {
        let mut mpi = rt2.attach(p, h0).await;
        let self_comm = mpi.self_comm();
        let t0 = mpi.proc().now();
        let inter = mpi.comm_spawn(self_comm, "noop", &[], &[h1]).await.unwrap();
        let merged = mpi.intercomm_merge(inter, false).await.unwrap();
        assert_eq!(merged.rank(), 0);
        *o.lock() = Some(mpi.proc().now() - t0);
    });
    let stats = sim.run();
    assert_eq!(stats.process_panics, 0);
    let elapsed = out.lock().unwrap();
    assert!(
        elapsed >= min_expected,
        "spawn+merge took {elapsed}, expected at least {min_expected}"
    );
    // And it should stay within the sub-second envelope the paper reports.
    assert!(elapsed < SimDuration::from_secs(1), "took {elapsed}");
}

#[test]
fn comm_leak_free_after_disconnects() {
    let mut w = setup(2);
    let rt = w.rt.clone();
    w.rt.register_exe("peer", |mut mpi, _| async move {
        let parent = mpi.parent().unwrap();
        let merged = mpi.intercomm_merge(parent, true).await.unwrap();
        let _ = mpi.recv(merged, ANY_SOURCE, ANY_TAG).await;
        mpi.comm_disconnect(merged);
        // also detach from world and parent
        let world = mpi.world().unwrap();
        mpi.comm_disconnect(world);
        mpi.comm_disconnect(parent);
    });
    let h0 = w.hosts[0];
    let h1 = w.hosts[1];
    let rt_probe = w.rt.clone();
    w.sim.spawn_process("cn", move |p| async move {
        let mut mpi = rt.attach(p, h0).await;
        let self_comm = mpi.self_comm();
        let inter = mpi.comm_spawn(self_comm, "peer", &[], &[h1]).await.unwrap();
        let merged = mpi.intercomm_merge(inter, false).await.unwrap();
        mpi.send(merged, 1, 0, data(()), 8).unwrap();
        mpi.comm_disconnect(merged);
        mpi.comm_disconnect(inter);
        mpi.comm_disconnect(self_comm);
    });
    let stats = w.sim.run();
    assert_eq!(stats.process_panics, 0);
    // world comm: child detached once but it had 1 member only => freed;
    // every other comm had all members detach.
    assert_eq!(rt_probe.live_comms(), 0);
}
