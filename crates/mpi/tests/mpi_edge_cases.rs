//! Edge cases and error paths of the MPI-like runtime: wildcards,
//! timeouts, bad arguments, port reuse, and a property test interleaving
//! collectives.

use std::sync::Arc;

use darms_mpi::{
    data, launch_world, MpiCostModel, MpiError, MpiRuntime, WorldSpec, ANY_SOURCE, ANY_TAG,
};
use darms_net::{HostKind, LatencyModel, Network};
use darms_sim::{Engine, SimDuration};
use parking_lot::Mutex;
use proptest::prelude::*;

fn setup(nhosts: usize, seed: u64) -> (Engine, MpiRuntime, Vec<darms_net::HostId>) {
    let sim = Engine::with_seed(seed);
    let net = Network::new(LatencyModel::ideal(), seed);
    let hosts = (0..nhosts).map(|i| net.add_host(format!("h{i}"), HostKind::Generic)).collect();
    let rt = MpiRuntime::new(net, MpiCostModel::instant());
    (sim, rt, hosts)
}

fn world_specs(hosts: &[darms_net::HostId], exe: &str) -> Vec<WorldSpec> {
    hosts
        .iter()
        .map(|&h| WorldSpec {
            host: h,
            exe: exe.into(),
            args: vec![],
            start_delay: SimDuration::ZERO,
        })
        .collect()
}

#[test]
fn wildcard_source_and_tag_matching() {
    let (mut sim, rt, hosts) = setup(3, 1);
    let out = Arc::new(Mutex::new(Vec::new()));
    let o = out.clone();
    rt.register_exe("wild", move |mut mpi, _| {
        let o = o.clone();
        async move {
            let world = mpi.world().unwrap();
            match world.rank() {
                0 => {
                    // Receive three messages with various filters.
                    let any = mpi.recv(world, ANY_SOURCE, ANY_TAG).await;
                    let from2 = mpi.recv(world, Some(2), ANY_TAG).await;
                    let tag9 = mpi.recv(world, ANY_SOURCE, Some(9)).await;
                    o.lock().push((any.src, from2.src, tag9.tag));
                }
                1 => {
                    // Two tag-9 messages: the wildcard recv may consume one.
                    mpi.send(world, 0, 9, data(1u8), 1).unwrap();
                    mpi.send(world, 0, 9, data(4u8), 1).unwrap();
                }
                2 => {
                    mpi.send(world, 0, 5, data(2u8), 1).unwrap();
                    mpi.send(world, 0, 5, data(3u8), 1).unwrap();
                }
                _ => unreachable!(),
            }
            let _ = mpi.barrier(world).await;
        }
    });
    launch_world(&mut sim, &rt, world_specs(&hosts, "wild")).unwrap();
    let stats = sim.run();
    assert_eq!(stats.process_panics, 0);
    let v = out.lock().clone();
    assert_eq!(v.len(), 1);
    let (_, from2, tag9) = v[0];
    assert_eq!(from2, 2);
    assert_eq!(tag9, 9);
}

#[test]
fn recv_timeout_expires_without_sender() {
    let (mut sim, rt, hosts) = setup(1, 2);
    let out = Arc::new(Mutex::new(None));
    let o = out.clone();
    rt.register_exe("lonely", move |mpi, _| {
        let o = o.clone();
        async move {
            let world = mpi.world().unwrap();
            let r =
                mpi.recv_timeout(world, ANY_SOURCE, ANY_TAG, SimDuration::from_millis(50)).await;
            *o.lock() = Some((r.is_none(), mpi.proc().now()));
        }
    });
    launch_world(&mut sim, &rt, world_specs(&hosts, "lonely")).unwrap();
    sim.run();
    let (timed_out, at) = out.lock().unwrap();
    assert!(timed_out);
    assert_eq!(at.as_nanos(), 50_000_000);
}

#[test]
fn spawn_of_unregistered_exe_fails_cleanly() {
    let (mut sim, rt, hosts) = setup(2, 3);
    let rt2 = rt.clone();
    let h1 = hosts[1];
    let out = Arc::new(Mutex::new(None));
    let o = out.clone();
    let h0 = hosts[0];
    sim.spawn_process("root", move |p| async move {
        let mut mpi = rt2.attach(p, h0).await;
        let self_comm = mpi.self_comm();
        let r = mpi.comm_spawn(self_comm, "ghost", &[], &[h1]).await;
        *o.lock() = Some(matches!(r, Err(MpiError::NoSuchExecutable(_))));
    });
    let stats = sim.run();
    assert_eq!(stats.process_panics, 0);
    assert_eq!(*out.lock(), Some(true));
}

#[test]
fn send_to_nonexistent_rank_fails() {
    let (mut sim, rt, hosts) = setup(2, 4);
    let out = Arc::new(Mutex::new(None));
    let o = out.clone();
    rt.register_exe("pair", move |mpi, _| {
        let o = o.clone();
        async move {
            let world = mpi.world().unwrap();
            if world.rank() == 0 {
                let r = mpi.send(world, 7, 0, data(()), 1);
                *o.lock() = Some(matches!(r, Err(MpiError::NoSuchRank(7))));
            }
        }
    });
    launch_world(&mut sim, &rt, world_specs(&hosts, "pair")).unwrap();
    sim.run();
    assert_eq!(*out.lock(), Some(true));
}

#[test]
fn connect_to_closed_port_fails() {
    let (mut sim, rt, hosts) = setup(1, 5);
    let rt2 = rt.clone();
    let h0 = hosts[0];
    let out = Arc::new(Mutex::new(None));
    let o = out.clone();
    sim.spawn_process("c", move |p| async move {
        let mut mpi = rt2.attach(p, h0).await;
        let self_comm = mpi.self_comm();
        let r = mpi.comm_connect("no-such-port", self_comm).await;
        *o.lock() = Some(matches!(r, Err(MpiError::NoSuchPort(_))));
    });
    sim.run();
    assert_eq!(*out.lock(), Some(true));
}

#[test]
fn two_ports_serve_independent_connectors() {
    // Two separate daemon pairs each open a port; two clients connect to
    // the right one by name.
    let (mut sim, rt, hosts) = setup(3, 6);
    let ports: Arc<Mutex<Vec<(usize, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let results = Arc::new(Mutex::new(Vec::new()));
    #[allow(clippy::needless_range_loop)] // `which` doubles as the port key
    for which in 0..2usize {
        let rtc = rt.clone();
        let pshare = ports.clone();
        let host = hosts[which];
        sim.spawn_process(format!("server{which}"), move |p| async move {
            let mut mpi = rtc.attach(p, host).await;
            let self_comm = mpi.self_comm();
            let port = mpi.open_port();
            pshare.lock().push((which, port.clone()));
            let inter = mpi.comm_accept(&port, self_comm).await.unwrap();
            // Tell the connector which server it reached.
            mpi.send(inter, 0, 0, data(which as u64), 8).unwrap();
        });
    }
    for which in 0..2usize {
        let rtc = rt.clone();
        let pshare = ports.clone();
        let res = results.clone();
        let host = hosts[2];
        sim.spawn_process(format!("client{which}"), move |p| async move {
            let mut mpi = rtc.attach(p, host).await;
            let port = loop {
                if let Some((_, port)) = pshare.lock().iter().find(|(w, _)| *w == which).cloned() {
                    break port;
                }
                mpi.proc().sleep(SimDuration::from_millis(1)).await;
            };
            let self_comm = mpi.self_comm();
            let inter = mpi.comm_connect(&port, self_comm).await.unwrap();
            let msg = mpi.recv(inter, ANY_SOURCE, ANY_TAG).await;
            res.lock().push((which, msg.expect::<u64>()));
        });
    }
    let stats = sim.run();
    assert_eq!(stats.process_panics, 0);
    let mut v = results.lock().clone();
    v.sort();
    assert_eq!(v, vec![(0, 0), (1, 1)], "each client reached its own server");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Arbitrary interleavings of collectives complete and agree: every
    /// member sees the same broadcast values and the gathered vectors
    /// are rank-ordered.
    #[test]
    fn collective_sequences_agree(ops in prop::collection::vec(0u8..3, 1..8), nranks in 2usize..5) {
        let (mut sim, rt, hosts) = setup(nranks, 7);
        let results = Arc::new(Mutex::new(Vec::new()));
        let o = results.clone();
        let ops2 = ops.clone();
        rt.register_exe("mix", move |mut mpi, _| {
            let o = o.clone();
            let ops2 = ops2.clone();
            async move {
                let world = mpi.world().unwrap();
                let me = world.rank() as u64;
                let mut log = Vec::new();
                for (round, op) in ops2.iter().enumerate() {
                    match op % 3 {
                        0 => mpi.barrier(world).await.unwrap(),
                        1 => {
                            let payload = if me == 0 { Some((data(round as u64), 8)) } else { None };
                            let v = mpi.bcast(world, 0, payload).await.unwrap();
                            log.push(*v.downcast_ref::<u64>().unwrap());
                        }
                        _ => {
                            if let Some(all) =
                                mpi.gather(world, 0, data(me * 10 + round as u64), 8).await.unwrap()
                            {
                                let nums: Vec<u64> =
                                    all.iter().map(|d| *d.downcast_ref::<u64>().unwrap()).collect();
                                log.push(nums.iter().sum());
                            }
                        }
                    }
                }
                o.lock().push((me, log));
            }
        });
        launch_world(&mut sim, &rt, world_specs(&hosts, "mix")).unwrap();
        let stats = sim.run();
        prop_assert_eq!(stats.process_panics, 0);
        let v = results.lock().clone();
        prop_assert_eq!(v.len(), nranks);
        // All ranks saw the same broadcast values (rank 0's log contains
        // gather sums too, so compare only bcast rounds across non-roots).
        let bcast_rounds: Vec<u64> = ops.iter().enumerate()
            .filter(|(_, op)| *op % 3 == 1)
            .map(|(i, _)| i as u64)
            .collect();
        for (rank, log) in &v {
            if *rank != 0 {
                let bcasts: Vec<u64> = log.clone();
                prop_assert_eq!(&bcasts, &bcast_rounds, "rank {} saw {:?}", rank, log);
            }
        }
    }
}
