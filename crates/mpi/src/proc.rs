//! Per-process MPI state and point-to-point operations.

use std::collections::BTreeMap;

use darms_net::{Address, HostId};
use darms_sim::{Proc, SimDuration};

use crate::runtime::wire::P2p;
use crate::runtime::MpiRuntime;
use crate::types::{Comm, CommId, Data, Member, MpiError, Rank, RecvMsg, Tag, GROUP_A, GROUP_B};

/// An MPI process: a simulation process plus its MPI identity.
///
/// Obtained either from [`MpiRuntime::attach`] (singleton init, used by
/// user applications before they connect to accelerator daemons) or
/// implicitly by being launched via [`launch_world`](crate::launch_world) /
/// [`comm_spawn`](MpiProc::comm_spawn).
pub struct MpiProc {
    pub(crate) p: Proc,
    pub(crate) rt: MpiRuntime,
    pub(crate) host: HostId,
    pub(crate) addr: Address,
    pub(crate) coll_seq: BTreeMap<CommId, u64>,
    pub(crate) world: Option<Comm>,
    pub(crate) parent: Option<Comm>,
}

impl MpiRuntime {
    /// Attach an already-running simulation process to the MPI runtime
    /// (the equivalent of a singleton `MPI_Init`). Binds an ephemeral
    /// network endpoint for the process.
    pub async fn attach(&self, p: Proc, host: HostId) -> MpiProc {
        let addr = self.net.bind_auto(host, p.endpoint());
        if !self.cost.attach.is_zero() {
            p.sleep(self.cost.attach).await;
        }
        MpiProc {
            p,
            rt: self.clone(),
            host,
            addr,
            coll_seq: BTreeMap::new(),
            world: None,
            parent: None,
        }
    }
}

impl MpiProc {
    /// The underlying simulation process (for `sleep`, tracing, and
    /// non-MPI protocol traffic such as IFL calls).
    pub fn proc(&self) -> &Proc {
        &self.p
    }

    /// Host this process runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Network address of this process's MPI endpoint.
    pub fn addr(&self) -> Address {
        self.addr
    }

    /// The runtime handle.
    pub fn runtime(&self) -> &MpiRuntime {
        &self.rt
    }

    /// `MPI_COMM_WORLD` for processes started as part of a world
    /// (launched or spawned); `None` for singleton attaches.
    pub fn world(&self) -> Option<Comm> {
        self.world
    }

    /// The parent inter-communicator (`MPI_Comm_get_parent`); `Some` only
    /// for processes created by [`MpiProc::comm_spawn`].
    pub fn parent(&self) -> Option<Comm> {
        self.parent
    }

    /// Size of this process's group in `comm`.
    pub fn size(&self, comm: Comm) -> usize {
        self.rt.group_size(comm)
    }

    /// Size of the remote group of an inter-communicator.
    pub fn remote_size(&self, comm: Comm) -> usize {
        self.rt.remote_size(comm)
    }

    /// Create (and register) an intra-communicator containing only this
    /// process — the analogue of `MPI_COMM_SELF`, used as the parent
    /// communicator for spawns from standalone processes.
    pub fn self_comm(&mut self) -> Comm {
        let id = self.rt.fresh_comm_id();
        self.rt.register_intra(id, vec![self.member()]);
        Comm { id, group: GROUP_A, rank: 0 }
    }

    /// This process's membership record.
    pub fn member(&self) -> Member {
        Member { pid: self.p.id(), host: self.host, addr: self.addr }
    }

    /// Next collective sequence number for `comm` (each member calls
    /// collectives on a communicator in the same order, as in MPI).
    pub(crate) fn next_seq(&mut self, comm: CommId) -> u64 {
        let c = self.coll_seq.entry(comm).or_insert(0);
        *c += 1;
        *c
    }

    /// The group a message sent on `comm` is addressed to: the remote
    /// group for inter-communicators, the single group otherwise.
    pub(crate) fn peer_group(&self, comm: Comm) -> u8 {
        match self.rt.group_members(comm.id, GROUP_B) {
            Ok(_) => {
                if comm.group == GROUP_A {
                    GROUP_B
                } else {
                    GROUP_A
                }
            }
            Err(_) => GROUP_A,
        }
    }

    /// Send `data` (modelled as `bytes` on the wire) to `dst` in `comm`
    /// with `tag`. For inter-communicators `dst` is a remote-group rank.
    pub fn send(
        &self,
        comm: Comm,
        dst: Rank,
        tag: Tag,
        data: Data,
        bytes: u64,
    ) -> Result<(), MpiError> {
        let group = self.peer_group(comm);
        let member = self.rt.lookup(comm.id, group, dst)?;
        let msg = P2p { comm: comm.id, src_rank: comm.rank, tag, bytes, data };
        let out = self.rt.net.send_from_proc(&self.p, self.host, member.addr, msg, bytes);
        if out.is_sent() {
            Ok(())
        } else {
            Err(MpiError::NetworkFailure)
        }
    }

    /// Blocking receive on `comm`, optionally filtered by source rank
    /// and/or tag (``None`` = wildcard).
    pub async fn recv(&self, comm: Comm, src: Option<Rank>, tag: Option<Tag>) -> RecvMsg {
        let env = self
            .p
            .recv_where(|e| match e.peek::<P2p>() {
                Some(m) => {
                    m.comm == comm.id
                        && src.is_none_or(|s| s == m.src_rank)
                        && tag.is_none_or(|t| t == m.tag)
                }
                None => false,
            })
            .await;
        let m = env.downcast::<P2p>().expect("matched by predicate");
        RecvMsg { src: m.src_rank, tag: m.tag, bytes: m.bytes, data: m.data }
    }

    /// Like [`MpiProc::recv`] but gives up after `timeout`.
    pub async fn recv_timeout(
        &self,
        comm: Comm,
        src: Option<Rank>,
        tag: Option<Tag>,
        timeout: SimDuration,
    ) -> Option<RecvMsg> {
        let env = self
            .p
            .recv_where_timeout(
                |e| match e.peek::<P2p>() {
                    Some(m) => {
                        m.comm == comm.id
                            && src.is_none_or(|s| s == m.src_rank)
                            && tag.is_none_or(|t| t == m.tag)
                    }
                    None => false,
                },
                timeout,
            )
            .await?;
        let m = env.downcast::<P2p>().expect("matched by predicate");
        Some(RecvMsg { src: m.src_rank, tag: m.tag, bytes: m.bytes, data: m.data })
    }
}
