//! Core MPI-like types: ranks, tags, communicator identifiers, members.

use std::fmt;
use std::sync::Arc;

use darms_net::{Address, HostId};
use darms_sim::ProcessId;

/// Rank of a process within one communicator group.
pub type Rank = u32;

/// Message tag for point-to-point matching.
pub type Tag = i32;

/// Any-source wildcard for [`recv`](crate::MpiProc::recv).
pub const ANY_SOURCE: Option<Rank> = None;

/// Any-tag wildcard for [`recv`](crate::MpiProc::recv).
pub const ANY_TAG: Option<Tag> = None;

/// Globally unique communicator instance id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CommId(pub(crate) u64);

/// One participant in a communicator group.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Member {
    /// The simulation process backing this MPI process.
    pub pid: ProcessId,
    /// Host the process runs on (determines network latency).
    pub host: HostId,
    /// Network address its MPI endpoint is bound at.
    pub addr: Address,
}

/// Which side of an inter-communicator a handle belongs to.
pub(crate) const GROUP_A: u8 = 0;
pub(crate) const GROUP_B: u8 = 1;

/// A communicator handle as seen by one process: the instance id plus this
/// process's group and rank. Intra-communicators use group 0 only.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Comm {
    pub(crate) id: CommId,
    pub(crate) group: u8,
    pub(crate) rank: Rank,
}

impl Comm {
    /// This process's rank in its group.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// The communicator instance id (diagnostics only).
    pub fn id(&self) -> u64 {
        self.id.0
    }
}

impl fmt::Display for Comm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "comm{}[g{} r{}]", self.id.0, self.group, self.rank)
    }
}

/// Reference-counted, type-erased message data. Collectives clone the
/// `Arc`, never the underlying value.
pub type Data = Arc<dyn std::any::Any + Send + Sync>;

/// Build a [`Data`] from a value.
pub fn data<T: std::any::Any + Send + Sync>(value: T) -> Data {
    Arc::new(value)
}

/// A received point-to-point message.
pub struct RecvMsg {
    /// Sender's rank (in the sender's group for inter-communicators).
    pub src: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Modelled wire size in bytes.
    pub bytes: u64,
    /// The payload.
    pub data: Data,
}

impl RecvMsg {
    /// Downcast the payload, panicking with a clear message on mismatch.
    pub fn expect<T: std::any::Any + Send + Sync + Clone>(&self) -> T {
        self.data
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("MPI payload type mismatch (tag {})", self.tag))
            .clone()
    }
}

/// Errors surfaced by the MPI-like runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpiError {
    /// The destination rank does not exist in the communicator.
    NoSuchRank(Rank),
    /// The named port is not open.
    NoSuchPort(String),
    /// The named executable was never registered.
    NoSuchExecutable(String),
    /// The operation is invalid on this communicator kind.
    InvalidComm(&'static str),
    /// The network refused the message (host down / unbound).
    NetworkFailure,
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::NoSuchRank(r) => write!(f, "no such rank {r}"),
            MpiError::NoSuchPort(p) => write!(f, "no such port {p}"),
            MpiError::NoSuchExecutable(e) => write!(f, "no such executable {e}"),
            MpiError::InvalidComm(why) => write!(f, "invalid communicator: {why}"),
            MpiError::NetworkFailure => write!(f, "network failure"),
        }
    }
}

impl std::error::Error for MpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_round_trip() {
        let d = data(vec![1u8, 2, 3]);
        let msg = RecvMsg { src: 0, tag: 0, bytes: 3, data: d };
        assert_eq!(msg.expect::<Vec<u8>>(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "payload type mismatch")]
    fn expect_panics_on_wrong_type() {
        let msg = RecvMsg { src: 0, tag: 5, bytes: 0, data: data(1u32) };
        let _: String = msg.expect();
    }

    #[test]
    fn errors_display() {
        assert_eq!(MpiError::NoSuchRank(3).to_string(), "no such rank 3");
        assert_eq!(MpiError::NoSuchPort("p1".into()).to_string(), "no such port p1");
    }
}
