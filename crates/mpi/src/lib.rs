//! # darms-mpi — an MPI-like runtime over the simulated interconnect
//!
//! Implements the subset of MPI (including the MPI-2 dynamic process
//! management chapter) that the paper's resource-management library is
//! built on:
//!
//! - communicators with ranks, intra and inter ([`Comm`]);
//! - blocking point-to-point `send`/`recv` with `(comm, source, tag)`
//!   matching and wildcards;
//! - collectives: `barrier`, `bcast`, `gather`;
//! - `MPI_Open_port` / `MPI_Comm_connect` / `MPI_Comm_accept` rendezvous
//!   (used by the static allocation path, paper §III-C);
//! - `MPI_Comm_spawn` returning a parent/child inter-communicator (used
//!   by the dynamic allocation path, §III-D);
//! - `MPI_Intercomm_merge` producing the compute-node-rank-0 intra
//!   communicator the computation API addresses accelerators through;
//! - `MPI_Comm_disconnect` plus a `comm_shrink` convenience standing in
//!   for the disconnect-and-re-merge sequence of the release protocol.
//!
//! All blocking behaviour is realised with messages over [`darms_net`], so
//! operation latencies (spawn, merge, connect) contribute to the modelled
//! end-to-end times exactly where the paper's measurements place them.
//!
//! ## Example: spawn, merge, reduce
//!
//! ```
//! use darms_mpi::{data, MpiCostModel, MpiRuntime, ANY_SOURCE, ANY_TAG};
//! use darms_net::{HostKind, LatencyModel, Network};
//! use darms_sim::Engine;
//! use std::sync::Arc;
//! use parking_lot::Mutex;
//!
//! let mut sim = Engine::with_seed(1);
//! let net = Network::new(LatencyModel::ideal(), 1);
//! let h0 = net.add_host("h0", HostKind::Generic);
//! let h1 = net.add_host("h1", HostKind::Generic);
//! let rt = MpiRuntime::new(net, MpiCostModel::instant());
//! rt.register_exe("worker", |mut mpi, _args| async move {
//!     let parent = mpi.parent().unwrap();
//!     let merged = mpi.intercomm_merge(parent, true).await.unwrap();
//!     mpi.send(merged, 0, 0, data(21u64), 8).unwrap();
//! });
//! let out = Arc::new(Mutex::new(0u64));
//! let o = out.clone();
//! let rt2 = rt.clone();
//! sim.spawn_process("root", move |p| async move {
//!     let mut mpi = rt2.attach(p, h0).await;
//!     let self_comm = mpi.self_comm();
//!     let inter = mpi.comm_spawn(self_comm, "worker", &[], &[h1]).await.unwrap();
//!     let merged = mpi.intercomm_merge(inter, false).await.unwrap();
//!     let msg = mpi.recv(merged, ANY_SOURCE, ANY_TAG).await;
//!     *o.lock() = msg.expect::<u64>() * 2;
//! });
//! sim.run();
//! assert_eq!(*out.lock(), 42);
//! ```

#![warn(missing_docs)]

mod collectives;
mod cost;
mod dpm;
mod proc;
mod runtime;
mod types;

pub use cost::MpiCostModel;
pub use dpm::{launch_world, Spawner, WorldSpec};
pub use proc::MpiProc;
pub use runtime::MpiRuntime;
pub use types::{
    data, Comm, CommId, Data, Member, MpiError, Rank, RecvMsg, Tag, ANY_SOURCE, ANY_TAG,
};
