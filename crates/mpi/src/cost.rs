//! Processing-time constants for MPI runtime operations.
//!
//! Network transit time is modelled by `darms-net`; the constants here are
//! the *local* costs the paper's measurements attribute to MPI itself:
//! process launch + `MPI_Init` for spawned daemons, communicator
//! construction, and port rendezvous.

use darms_sim::SimDuration;

/// Local processing costs of MPI operations.
#[derive(Clone, Debug)]
pub struct MpiCostModel {
    /// Singleton attach (`MPI_Init` for an already-running process).
    pub attach: SimDuration,
    /// Root-side one-time overhead of `MPI_Comm_spawn` (launcher setup,
    /// roughly independent of the number of children — the reason the
    /// light region of the paper's Fig. 7(b) is flat).
    pub spawn_setup: SimDuration,
    /// Delay from spawn to a child's entry running (process start +
    /// `MPI_Init` inside the child), per child but overlapping.
    pub child_launch: SimDuration,
    /// Additional stagger between consecutive child launches (children of
    /// one spawn start nearly concurrently).
    pub child_stagger: SimDuration,
    /// Relative jitter on child launch delay (process creation variance).
    pub launch_jitter: f64,
    /// Coordinator-side cost of building a merged intra-communicator.
    pub merge: SimDuration,
    /// Port rendezvous cost (accept/connect handshake processing).
    pub connect: SimDuration,
    /// Wire size modelled for control messages.
    pub ctl_bytes: u64,
}

impl MpiCostModel {
    /// Constants calibrated against the paper's Open MPI 1.6.2 testbed.
    pub fn paper_testbed() -> Self {
        MpiCostModel {
            attach: SimDuration::from_millis(1),
            spawn_setup: SimDuration::from_millis(120),
            child_launch: SimDuration::from_millis(30),
            child_stagger: SimDuration::from_millis(2),
            launch_jitter: 0.15,
            merge: SimDuration::from_millis(8),
            connect: SimDuration::from_millis(6),
            ctl_bytes: 64,
        }
    }

    /// Near-zero costs for fast logic-focused unit tests.
    pub fn instant() -> Self {
        MpiCostModel {
            attach: SimDuration::ZERO,
            spawn_setup: SimDuration::ZERO,
            child_launch: SimDuration::ZERO,
            child_stagger: SimDuration::ZERO,
            launch_jitter: 0.0,
            merge: SimDuration::ZERO,
            connect: SimDuration::ZERO,
            ctl_bytes: 0,
        }
    }
}

impl Default for MpiCostModel {
    fn default() -> Self {
        MpiCostModel::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let p = MpiCostModel::paper_testbed();
        assert!(p.spawn_setup > p.child_launch);
        assert!(p.child_launch > p.merge);
        let i = MpiCostModel::instant();
        assert!(i.spawn_setup.is_zero() && i.attach.is_zero());
    }
}
