//! MPI-2 dynamic process management: ports with connect/accept,
//! `MPI_Comm_spawn`, `MPI_Intercomm_merge`, disconnect, and a world
//! launcher for daemon sets started by the batch system.
//!
//! These are exactly the primitives the paper's resource-management
//! library is built on (§II-C, §III-C/D): static allocation uses
//! `MPI_Open_port` + `MPI_Comm_connect`/`MPI_Comm_accept` followed by
//! `MPI_Intercomm_merge`; dynamic allocation uses `MPI_Comm_spawn`
//! followed by a merge over the compute node, its existing accelerators,
//! and the newly spawned daemons.

use darms_net::HostId;
use darms_sim::{Proc, ProcFuture, ProcessId, SimDuration};

use crate::proc::MpiProc;
use crate::runtime::wire::{Ctl, CtlBody};
use crate::runtime::MpiRuntime;
use crate::types::{Comm, Member, MpiError, Rank, GROUP_A, GROUP_B};

/// Anything that can start a simulation process: the engine (setup code),
/// an actor context (daemons starting daemons), or a process (MPI spawn).
pub trait Spawner {
    /// Start a process whose entry builds its body future after `delay`.
    fn spawn_boxed(
        &mut self,
        name: String,
        delay: SimDuration,
        entry: Box<dyn FnOnce(Proc) -> ProcFuture + 'static>,
    ) -> ProcessId;
}

impl Spawner for darms_sim::Engine {
    fn spawn_boxed(
        &mut self,
        name: String,
        delay: SimDuration,
        entry: Box<dyn FnOnce(Proc) -> ProcFuture + 'static>,
    ) -> ProcessId {
        self.spawn_process_after(name, delay, entry)
    }
}

impl Spawner for darms_sim::Ctx<'_> {
    fn spawn_boxed(
        &mut self,
        name: String,
        delay: SimDuration,
        entry: Box<dyn FnOnce(Proc) -> ProcFuture + 'static>,
    ) -> ProcessId {
        self.spawn_process_after(name, delay, entry)
    }
}

impl Spawner for Proc {
    fn spawn_boxed(
        &mut self,
        name: String,
        delay: SimDuration,
        entry: Box<dyn FnOnce(Proc) -> ProcFuture + 'static>,
    ) -> ProcessId {
        self.spawn_after(name, delay, entry)
    }
}

/// Specification of one process of a launched world.
pub struct WorldSpec {
    /// Host to place the process on.
    pub host: HostId,
    /// Registered executable name.
    pub exe: String,
    /// Arguments passed to the executable.
    pub args: Vec<String>,
    /// Delay before the process entry runs (models daemon startup cost;
    /// the batch system decides this, e.g. staggered starts).
    pub start_delay: SimDuration,
}

/// Launch a set of MPI processes sharing a fresh `MPI_COMM_WORLD` — the
/// equivalent of `mpirun` as used by the moms to start the accelerator
/// daemons for a static allocation. Returns the world communicator id's
/// members (rank order = spec order).
///
/// The world communicator is registered immediately; the processes start
/// after their configured delays. Peers can already address them —
/// messages queue in their mailboxes.
pub fn launch_world(
    spawner: &mut dyn Spawner,
    rt: &MpiRuntime,
    specs: Vec<WorldSpec>,
) -> Result<Vec<Member>, MpiError> {
    let world_id = rt.fresh_comm_id();
    // Resolve executables up front so a bad name fails fast.
    let exes: Vec<_> = specs.iter().map(|s| rt.exe(&s.exe)).collect::<Result<_, _>>()?;

    let mut members = Vec::with_capacity(specs.len());
    let mut launches = Vec::with_capacity(specs.len());
    for (i, spec) in specs.into_iter().enumerate() {
        let name = format!("{}@host{}#w{}r{}", spec.exe, spec.host.index(), world_id.0, i);
        launches.push((name, spec, exes[i].clone()));
    }
    // Create processes and bind their endpoints so the world membership
    // is complete before any entry runs.
    for (i, (name, spec, exe)) in launches.into_iter().enumerate() {
        let rt2 = rt.clone();
        let host = spec.host;
        let args = spec.args.clone();
        let rank = i as Rank;
        // Placeholder: the closure needs the member list, which includes
        // addresses we only know after binding. Bind first using the pid.
        let (tx_member, rx_member) = std::sync::mpsc::channel::<(Member, Comm)>();
        let pid = spawner.spawn_boxed(
            name,
            spec.start_delay,
            Box::new(move |p: Proc| -> ProcFuture {
                Box::pin(async move {
                    // The launcher sends membership before the entry's
                    // first poll, so this never blocks.
                    let (member, world) = rx_member.recv().expect("launcher sends membership");
                    let mpi = MpiProc {
                        p,
                        rt: rt2.clone(),
                        host,
                        addr: member.addr,
                        coll_seq: Default::default(),
                        world: Some(world),
                        parent: None,
                    };
                    exe(mpi, args).await;
                })
            }),
        );
        let addr = rt.net.bind_auto(host, pid.into());
        let member = Member { pid, host, addr };
        tx_member
            .send((member, Comm { id: world_id, group: GROUP_A, rank }))
            .expect("entry not yet running");
        members.push(member);
    }
    rt.register_intra(world_id, members.clone());
    Ok(members)
}

impl MpiProc {
    /// Open a port (`MPI_Open_port`); peers connect to it by name.
    pub fn open_port(&self) -> String {
        self.rt.open_port_at(self.addr)
    }

    /// Close a previously opened port.
    pub fn close_port(&self, name: &str) {
        self.rt.close_port(name);
    }

    /// Accept a connection on `port` (`MPI_Comm_accept`), collective over
    /// `local`. Blocks until a connector arrives. Returns the
    /// inter-communicator (this side is group A).
    pub async fn comm_accept(&mut self, port: &str, local: Comm) -> Result<Comm, MpiError> {
        let seq = self.next_seq(local.id);
        let n = self.rt.group_size(local);
        if local.rank == 0 {
            // Wait for a connector on this port.
            let port_name = port.to_string();
            let env = self
                .p
                .recv_where(|e| match e.peek::<Ctl>() {
                    Some(Ctl { body: CtlBody::ConnectReq { port, .. }, .. }) => *port == port_name,
                    _ => false,
                })
                .await;
            let (token, connector, reply) = match env.downcast::<Ctl>().expect("matched") {
                Ctl { token, body: CtlBody::ConnectReq { connector, reply, .. } } => {
                    (token, connector, reply)
                }
                // darms-lint: allow(proto-wildcard, reason = "variant pinned by the recv_where predicate above")
                _ => unreachable!(),
            };
            if !self.rt.cost.connect.is_zero() {
                self.p.sleep(self.rt.cost.connect).await;
            }
            let inter = self.rt.fresh_comm_id();
            let locals = self.rt.group_members(local.id, local.group)?;
            self.rt.register_inter(inter, locals.clone(), connector);
            self.send_ctl_addr(reply, token, CtlBody::ConnectAck { comm: inter })?;
            for r in 1..n as Rank {
                self.send_ctl(
                    local,
                    GROUP_A,
                    r,
                    seq,
                    CtlBody::Announce {
                        ctx: local.id,
                        comm: Comm { id: inter, group: GROUP_A, rank: r },
                    },
                )?;
            }
            Ok(Comm { id: inter, group: GROUP_A, rank: 0 })
        } else {
            self.wait_announce(local, seq).await
        }
    }

    /// Connect to the port `name` (`MPI_Comm_connect`), collective over
    /// `local`. Returns the inter-communicator (this side is group B).
    pub async fn comm_connect(&mut self, name: &str, local: Comm) -> Result<Comm, MpiError> {
        let seq = self.next_seq(local.id);
        let n = self.rt.group_size(local);
        if local.rank == 0 {
            let acceptor = self.rt.port_addr(name)?;
            let token = self.rt.fresh_token();
            let connector = self.rt.group_members(local.id, local.group)?;
            self.send_ctl_addr(
                acceptor,
                token,
                CtlBody::ConnectReq { port: name.to_string(), connector, reply: self.addr },
            )?;
            let env = self
                .p
                .recv_where(|e| match e.peek::<Ctl>() {
                    Some(Ctl { token: t, body: CtlBody::ConnectAck { .. } }) => *t == token,
                    _ => false,
                })
                .await;
            let inter = match env.downcast::<Ctl>().expect("matched").body {
                CtlBody::ConnectAck { comm } => comm,
                // darms-lint: allow(proto-wildcard, reason = "variant pinned by the recv_where predicate above")
                _ => unreachable!(),
            };
            for r in 1..n as Rank {
                self.send_ctl(
                    local,
                    GROUP_A,
                    r,
                    seq,
                    CtlBody::Announce {
                        ctx: local.id,
                        comm: Comm { id: inter, group: GROUP_B, rank: r },
                    },
                )?;
            }
            Ok(Comm { id: inter, group: GROUP_B, rank: 0 })
        } else {
            self.wait_announce(local, seq).await
        }
    }

    /// Merge an inter-communicator into an intra-communicator
    /// (`MPI_Intercomm_merge`). The group whose members pass
    /// `high = false` receives the low ranks; on a tie, group A does.
    /// Collective over *both* groups.
    pub async fn intercomm_merge(&mut self, inter: Comm, high: bool) -> Result<Comm, MpiError> {
        let seq = self.next_seq(inter.id);
        let a = self.rt.group_members(inter.id, GROUP_A)?;
        let b = self.rt.group_members(inter.id, GROUP_B)?;
        let coordinator_is_me = inter.group == GROUP_A && inter.rank == 0;
        if coordinator_is_me {
            let total = a.len() + b.len();
            let mut my_high = high;
            let mut b_high = None;
            let mut seen = 1usize; // me
            while seen < total {
                let env = self
                    .p
                    .recv_where(|e| match e.peek::<Ctl>() {
                        Some(Ctl { body: CtlBody::Arrive { comm, seq: s, .. }, .. }) => {
                            *comm == inter.id && *s == seq
                        }
                        _ => false,
                    })
                    .await;
                match env.downcast::<Ctl>().expect("matched").body {
                    CtlBody::Arrive { group, high: h, .. } => {
                        if group == GROUP_B {
                            b_high = Some(h);
                        } else {
                            my_high = h || my_high;
                        }
                        seen += 1;
                    }
                    // darms-lint: allow(proto-wildcard, reason = "variant pinned by the recv_where predicate above")
                    _ => unreachable!(),
                }
            }
            if !self.rt.cost.merge.is_zero() {
                self.p.sleep(self.rt.cost.merge).await;
            }
            // Decide ordering from the two groups' flags.
            let a_first = match (my_high, b_high.unwrap_or(true)) {
                (false, true) => true,
                (true, false) => false,
                _ => true, // tie: group A first (deterministic choice)
            };
            let merged: Vec<Member> = if a_first {
                a.iter().chain(b.iter()).copied().collect()
            } else {
                b.iter().chain(a.iter()).copied().collect()
            };
            let new_id = self.rt.fresh_comm_id();
            self.rt.register_intra(new_id, merged.clone());
            let mut my_rank = 0;
            for (new_rank, m) in merged.iter().enumerate() {
                if m.pid == self.p.id() {
                    my_rank = new_rank as Rank;
                    continue;
                }
                let ctl = CtlBody::Announce {
                    ctx: inter.id,
                    comm: Comm { id: new_id, group: GROUP_A, rank: new_rank as Rank },
                };
                let bytes = self.rt.cost.ctl_bytes;
                let out = self.rt.net.send_from_proc(
                    &self.p,
                    self.host,
                    m.addr,
                    Ctl { token: seq, body: ctl },
                    bytes,
                );
                if !out.is_sent() {
                    return Err(MpiError::NetworkFailure);
                }
            }
            Ok(Comm { id: new_id, group: GROUP_A, rank: my_rank })
        } else {
            // Send arrival to the coordinator (group A rank 0).
            let coord = a.first().copied().ok_or(MpiError::NoSuchRank(0))?;
            let body =
                CtlBody::Arrive { comm: inter.id, seq, rank: inter.rank, group: inter.group, high };
            self.send_ctl_addr(coord.addr, seq, body)?;
            self.wait_merge_announce(inter, seq).await
        }
    }

    /// Spawn `count` copies of the registered executable `exe` on the
    /// given hosts (`MPI_Comm_spawn`), collective over `local`. The root
    /// (rank 0 of `local`) provides the spawn specification; other
    /// members' `exe`/`args`/`hosts` are ignored. Returns the
    /// inter-communicator whose group A is `local` and group B the
    /// children. The call returns once every child has initialised.
    pub async fn comm_spawn(
        &mut self,
        local: Comm,
        exe: &str,
        args: &[String],
        hosts: &[HostId],
    ) -> Result<Comm, MpiError> {
        let seq = self.next_seq(local.id);
        if local.rank != 0 {
            return self.wait_announce(local, seq).await;
        }
        let exe_fn = self.rt.exe(exe)?;
        if !self.rt.cost.spawn_setup.is_zero() {
            self.p.sleep(self.rt.cost.spawn_setup).await;
        }
        let world_id = self.rt.fresh_comm_id();
        let inter_id = self.rt.fresh_comm_id();
        let spawn_token = self.rt.fresh_token();
        let my_addr = self.addr;

        let mut children = Vec::with_capacity(hosts.len());
        for (i, &host) in hosts.iter().enumerate() {
            let rt2 = self.rt.clone();
            let exe_fn = exe_fn.clone();
            let args = args.to_vec();
            let rank = i as Rank;
            let nominal = self.rt.cost.child_launch + self.rt.cost.child_stagger * i as u64;
            let jitter = self.rt.cost.launch_jitter;
            let delay = if jitter > 0.0 {
                let f = self.p.with_rng(|r| rand::Rng::gen_range(r, -jitter..=jitter));
                nominal.mul_f64(1.0 + f)
            } else {
                nominal
            };
            let (tx, rx) = std::sync::mpsc::channel::<Member>();
            let name = format!("{exe}@host{}#w{}r{}", host.index(), world_id.0, i);
            let pid = self.p.spawn_after(name, delay, move |p: Proc| async move {
                let member = rx.recv().expect("spawner sends membership");
                let mpi = MpiProc {
                    p,
                    rt: rt2.clone(),
                    host,
                    addr: member.addr,
                    coll_seq: Default::default(),
                    world: Some(Comm { id: world_id, group: GROUP_A, rank }),
                    parent: Some(Comm { id: inter_id, group: GROUP_B, rank }),
                };
                // Report MPI_Init completion to the spawning root.
                let _ = mpi.send_ctl_addr(my_addr, spawn_token, CtlBody::Ready);
                exe_fn(mpi, args).await;
            });
            let addr = self.rt.net.bind_auto(host, pid.into());
            let member = Member { pid, host, addr };
            tx.send(member).expect("entry not yet running");
            children.push(member);
        }
        let locals = self.rt.group_members(local.id, local.group)?;
        self.rt.register_intra(world_id, children.clone());
        self.rt.register_inter(inter_id, locals.clone(), children);

        // MPI_Comm_spawn returns after the children have called MPI_Init.
        let mut ready = 0usize;
        while ready < hosts.len() {
            self.p
                .recv_where(|e| match e.peek::<Ctl>() {
                    Some(Ctl { token, body: CtlBody::Ready }) => *token == spawn_token,
                    _ => false,
                })
                .await;
            ready += 1;
        }
        for r in 1..locals.len() as Rank {
            self.send_ctl(
                local,
                GROUP_A,
                r,
                seq,
                CtlBody::Announce {
                    ctx: local.id,
                    comm: Comm { id: inter_id, group: GROUP_A, rank: r },
                },
            )?;
        }
        Ok(Comm { id: inter_id, group: GROUP_A, rank: 0 })
    }

    /// Build a new intra-communicator from `comm` with the given ranks
    /// removed, preserving the relative order of survivors. Collective
    /// over the *survivors* only; removed members must not call it (they
    /// disconnect instead). Not a standard MPI call — it stands in for
    /// the disconnect-and-re-merge sequence the paper's release protocol
    /// performs, with the same message pattern (survivor arrivals at the
    /// lowest surviving rank, then announcements).
    pub async fn comm_shrink(&mut self, comm: Comm, removed: &[Rank]) -> Result<Comm, MpiError> {
        let seq = self.next_seq(comm.id);
        let members = self.rt.group_members(comm.id, GROUP_A)?;
        let survivors: Vec<(Rank, Member)> = members
            .iter()
            .enumerate()
            .map(|(r, m)| (r as Rank, *m))
            .filter(|(r, _)| !removed.contains(r))
            .collect();
        let coord_rank = survivors.first().map(|(r, _)| *r).ok_or(MpiError::NoSuchRank(0))?;
        if comm.rank == coord_rank {
            let mut seen = 1usize;
            while seen < survivors.len() {
                self.p
                    .recv_where(|e| match e.peek::<Ctl>() {
                        Some(Ctl { body: CtlBody::Arrive { comm: c, seq: s, .. }, .. }) => {
                            *c == comm.id && *s == seq
                        }
                        _ => false,
                    })
                    .await;
                seen += 1;
            }
            let new_id = self.rt.fresh_comm_id();
            let new_members: Vec<Member> = survivors.iter().map(|(_, m)| *m).collect();
            self.rt.register_intra(new_id, new_members);
            let mut my_rank = 0;
            for (new_rank, (_, m)) in survivors.iter().enumerate() {
                if m.pid == self.p.id() {
                    my_rank = new_rank as Rank;
                    continue;
                }
                let body = CtlBody::Announce {
                    ctx: comm.id,
                    comm: Comm { id: new_id, group: GROUP_A, rank: new_rank as Rank },
                };
                let bytes = self.rt.cost.ctl_bytes;
                let out = self.rt.net.send_from_proc(
                    &self.p,
                    self.host,
                    m.addr,
                    Ctl { token: seq, body },
                    bytes,
                );
                if !out.is_sent() {
                    return Err(MpiError::NetworkFailure);
                }
            }
            Ok(Comm { id: new_id, group: GROUP_A, rank: my_rank })
        } else {
            let coord = members[coord_rank as usize];
            self.send_ctl_addr(
                coord.addr,
                seq,
                CtlBody::Arrive {
                    comm: comm.id,
                    seq,
                    rank: comm.rank,
                    group: GROUP_A,
                    high: false,
                },
            )?;
            self.wait_merge_announce(comm, seq).await
        }
    }

    /// Detach from a communicator (`MPI_Comm_disconnect`). Unlike the
    /// standard, this does not synchronise with other members — the
    /// release protocol in the paper tears daemons down asynchronously
    /// while the application continues (§III-D).
    pub fn comm_disconnect(&mut self, comm: Comm) {
        self.coll_seq.remove(&comm.id);
        self.rt.detach(comm.id);
    }

    /// Wait for an `Announce` carrying my handle for a collective that
    /// ran over `local` with sequence number `seq`.
    async fn wait_announce(&mut self, local: Comm, seq: u64) -> Result<Comm, MpiError> {
        let env = self
            .p
            .recv_where(|e| match e.peek::<Ctl>() {
                Some(Ctl { token, body: CtlBody::Announce { ctx, .. } }) => {
                    *token == seq && *ctx == local.id
                }
                _ => false,
            })
            .await;
        match env.downcast::<Ctl>().expect("matched").body {
            CtlBody::Announce { comm, .. } => Ok(comm),
            // darms-lint: allow(proto-wildcard, reason = "variant pinned by the recv_where predicate above")
            _ => unreachable!(),
        }
    }

    /// Same as [`wait_announce`] but used where the announcement token is
    /// the collective sequence of the communicator being merged/shrunk.
    async fn wait_merge_announce(&mut self, over: Comm, seq: u64) -> Result<Comm, MpiError> {
        self.wait_announce(over, seq).await
    }
}
