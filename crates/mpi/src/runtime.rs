//! Shared runtime state: communicator registry, ports, executables.
//!
//! The registry is shared memory (guarded by a mutex), but every *blocking*
//! semantic — collectives completing, `MPI_Comm_spawn` returning only after
//! children initialise, port rendezvous — is realised with real messages
//! over the simulated network so that the timing the paper measures is
//! modelled faithfully.

use std::collections::BTreeMap;
use std::sync::Arc;

use darms_net::{Address, Network};
use parking_lot::Mutex;

use crate::cost::MpiCostModel;
use crate::proc::MpiProc;
use crate::types::{Comm, CommId, Data, Member, MpiError, Rank, Tag, GROUP_A, GROUP_B};

/// Registered executable: entry point for spawned MPI processes. The
/// entry builds the process body future; the factory itself is `Send +
/// Sync` (it lives in the shared registry) but the future it returns
/// runs on the engine's single-threaded executor and need not be.
pub type Exe = Arc<dyn Fn(MpiProc, Vec<String>) -> darms_sim::ProcFuture + Send + Sync>;

/// A communicator's membership.
#[derive(Clone, Debug)]
pub(crate) enum CommKind {
    /// Single group.
    Intra(Vec<Member>),
    /// Two groups (result of accept/connect or spawn).
    Inter { a: Vec<Member>, b: Vec<Member> },
}

pub(crate) struct RtState {
    next_comm: u64,
    next_token: u64,
    next_port: u64,
    pub(crate) comms: BTreeMap<CommId, CommKind>,
    /// Live member count per comm (drops to zero => comm removed).
    pub(crate) attached: BTreeMap<CommId, usize>,
    pub(crate) ports: BTreeMap<String, Address>,
    pub(crate) exes: BTreeMap<String, Exe>,
}

/// Cloneable handle to the MPI-like runtime.
#[derive(Clone)]
pub struct MpiRuntime {
    pub(crate) net: Network,
    pub(crate) cost: MpiCostModel,
    pub(crate) state: Arc<Mutex<RtState>>,
}

impl MpiRuntime {
    /// Create a runtime over the given network.
    pub fn new(net: Network, cost: MpiCostModel) -> Self {
        MpiRuntime {
            net,
            cost,
            state: Arc::new(Mutex::new(RtState {
                next_comm: 1,
                next_token: 1,
                next_port: 1,
                comms: BTreeMap::new(),
                attached: BTreeMap::new(),
                ports: BTreeMap::new(),
                exes: BTreeMap::new(),
            })),
        }
    }

    /// The network this runtime communicates over.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The runtime's cost model.
    pub fn cost(&self) -> &MpiCostModel {
        &self.cost
    }

    /// Register an executable for [`comm_spawn`](crate::MpiProc::comm_spawn)
    /// and [`launch_world`](crate::launch_world). The body is an async
    /// closure: `|mpi, args| async move { … }`.
    pub fn register_exe<F, Fut>(&self, name: impl Into<String>, f: F)
    where
        F: Fn(MpiProc, Vec<String>) -> Fut + Send + Sync + 'static,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        self.state.lock().exes.insert(name.into(), Arc::new(move |p, args| Box::pin(f(p, args))));
    }

    /// Look up a registered executable.
    pub(crate) fn exe(&self, name: &str) -> Result<Exe, MpiError> {
        self.state
            .lock()
            .exes
            .get(name)
            .cloned()
            .ok_or_else(|| MpiError::NoSuchExecutable(name.to_string()))
    }

    pub(crate) fn fresh_comm_id(&self) -> CommId {
        let mut s = self.state.lock();
        let id = CommId(s.next_comm);
        s.next_comm += 1;
        id
    }

    pub(crate) fn fresh_token(&self) -> u64 {
        let mut s = self.state.lock();
        let t = s.next_token;
        s.next_token += 1;
        t
    }

    pub(crate) fn fresh_port_name(&self) -> String {
        let mut s = self.state.lock();
        let p = s.next_port;
        s.next_port += 1;
        format!("mpi-port-{p}")
    }

    /// Register an intra-communicator with the given members; every member
    /// starts attached.
    pub(crate) fn register_intra(&self, id: CommId, members: Vec<Member>) {
        let n = members.len();
        let mut s = self.state.lock();
        s.comms.insert(id, CommKind::Intra(members));
        s.attached.insert(id, n);
    }

    /// Register an inter-communicator.
    pub(crate) fn register_inter(&self, id: CommId, a: Vec<Member>, b: Vec<Member>) {
        let n = a.len() + b.len();
        let mut s = self.state.lock();
        s.comms.insert(id, CommKind::Inter { a, b });
        s.attached.insert(id, n);
    }

    /// Members of one group of a communicator.
    pub(crate) fn group_members(&self, id: CommId, group: u8) -> Result<Vec<Member>, MpiError> {
        let s = self.state.lock();
        match s.comms.get(&id) {
            Some(CommKind::Intra(m)) => {
                if group == GROUP_A {
                    Ok(m.clone())
                } else {
                    Err(MpiError::InvalidComm("intra-communicator has one group"))
                }
            }
            Some(CommKind::Inter { a, b }) => {
                Ok(if group == GROUP_A { a.clone() } else { b.clone() })
            }
            None => Err(MpiError::InvalidComm("communicator no longer exists")),
        }
    }

    /// The member a point-to-point message to `(comm, group, rank)` routes to.
    pub(crate) fn lookup(&self, id: CommId, group: u8, rank: Rank) -> Result<Member, MpiError> {
        let members = self.group_members(id, group)?;
        members.get(rank as usize).copied().ok_or(MpiError::NoSuchRank(rank))
    }

    /// Size of a communicator group.
    pub fn group_size(&self, comm: Comm) -> usize {
        self.group_members(comm.id, comm.group).map(|m| m.len()).unwrap_or(0)
    }

    /// Size of the remote group of an inter-communicator.
    pub fn remote_size(&self, comm: Comm) -> usize {
        let remote = if comm.group == GROUP_A { GROUP_B } else { GROUP_A };
        self.group_members(comm.id, remote).map(|m| m.len()).unwrap_or(0)
    }

    /// Detach one member; the comm is removed once all members detached.
    pub(crate) fn detach(&self, id: CommId) {
        let mut s = self.state.lock();
        if let Some(n) = s.attached.get_mut(&id) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                s.attached.remove(&id);
                s.comms.remove(&id);
            }
        }
    }

    /// Number of live communicators (diagnostics / leak tests).
    pub fn live_comms(&self) -> usize {
        self.state.lock().comms.len()
    }

    /// Open a named port bound at `addr` (the accepting root's endpoint).
    pub(crate) fn open_port_at(&self, addr: Address) -> String {
        let name = self.fresh_port_name();
        self.state.lock().ports.insert(name.clone(), addr);
        name
    }

    /// Resolve a port name to the acceptor's address.
    pub(crate) fn port_addr(&self, name: &str) -> Result<Address, MpiError> {
        self.state
            .lock()
            .ports
            .get(name)
            .copied()
            .ok_or_else(|| MpiError::NoSuchPort(name.to_string()))
    }

    /// Close a named port.
    pub fn close_port(&self, name: &str) {
        self.state.lock().ports.remove(name);
    }
}

/// Wire messages of the MPI layer (delivered into process mailboxes).
pub(crate) mod wire {
    use super::*;

    /// Point-to-point payload.
    #[derive(Clone)]
    pub(crate) struct P2p {
        pub comm: CommId,
        pub src_rank: Rank,
        pub tag: Tag,
        pub bytes: u64,
        pub data: Data,
    }

    /// Control traffic for collectives and dynamic process management.
    #[derive(Clone)]
    pub(crate) struct Ctl {
        pub token: u64,
        pub body: CtlBody,
    }

    // Some fields (arrival ranks, modelled byte counts) exist to mirror
    // the real wire format and for trace debugging, not for control flow.
    #[allow(dead_code)]
    #[derive(Clone)]
    pub(crate) enum CtlBody {
        /// Collective arrival at the coordinator (barrier/merge/shrink).
        Arrive { comm: CommId, seq: u64, rank: Rank, group: u8, high: bool },
        /// Coordinator releases a barrier.
        Release { comm: CommId, seq: u64 },
        /// Broadcast payload.
        Bcast { comm: CommId, seq: u64, bytes: u64, data: Data },
        /// Gather contribution to the root.
        Gather { comm: CommId, seq: u64, rank: Rank, bytes: u64, data: Data },
        /// Connector root -> acceptor root through a port.
        ConnectReq { port: String, connector: Vec<Member>, reply: Address },
        /// Acceptor root -> connector root: the new inter-communicator.
        ConnectAck { comm: CommId },
        /// Root -> group member: your handle for a newly built comm.
        /// `ctx` is the communicator the collective ran over, so that
        /// small per-comm sequence tokens cannot collide across comms.
        Announce { ctx: CommId, comm: Comm },
        /// Spawned child -> spawn root: I have initialised.
        Ready,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darms_net::{HostId, HostKind, LatencyModel};
    use darms_sim::ProcessId;

    fn member(i: usize) -> Member {
        Member {
            pid: ProcessId::from_raw(i),
            host: HostId::from_raw(i),
            addr: Address::new(HostId::from_raw(i), darms_net::Port(1)),
        }
    }

    fn rt() -> MpiRuntime {
        let net = Network::new(LatencyModel::ideal(), 1);
        net.add_host("h0", HostKind::Generic);
        MpiRuntime::new(net, MpiCostModel::instant())
    }

    #[test]
    fn intra_comm_lookup() {
        let rt = rt();
        let id = rt.fresh_comm_id();
        rt.register_intra(id, vec![member(0), member(1)]);
        assert_eq!(rt.lookup(id, GROUP_A, 1).unwrap(), member(1));
        assert_eq!(rt.lookup(id, GROUP_A, 2), Err(MpiError::NoSuchRank(2)));
        assert!(rt.group_members(id, GROUP_B).is_err());
    }

    #[test]
    fn inter_comm_groups() {
        let rt = rt();
        let id = rt.fresh_comm_id();
        rt.register_inter(id, vec![member(0)], vec![member(1), member(2)]);
        assert_eq!(rt.group_members(id, GROUP_A).unwrap().len(), 1);
        assert_eq!(rt.group_members(id, GROUP_B).unwrap().len(), 2);
    }

    #[test]
    fn detach_removes_comm_when_empty() {
        let rt = rt();
        let id = rt.fresh_comm_id();
        rt.register_intra(id, vec![member(0), member(1)]);
        assert_eq!(rt.live_comms(), 1);
        rt.detach(id);
        assert_eq!(rt.live_comms(), 1);
        rt.detach(id);
        assert_eq!(rt.live_comms(), 0);
    }

    #[test]
    fn ports_open_and_close() {
        let rt = rt();
        let addr = Address::new(HostId::from_raw(0), darms_net::Port(5));
        let name = rt.open_port_at(addr);
        assert_eq!(rt.port_addr(&name).unwrap(), addr);
        rt.close_port(&name);
        assert!(rt.port_addr(&name).is_err());
    }

    #[test]
    fn fresh_ids_are_unique() {
        let rt = rt();
        let a = rt.fresh_comm_id();
        let b = rt.fresh_comm_id();
        assert_ne!(a, b);
        assert_ne!(rt.fresh_token(), rt.fresh_token());
        assert_ne!(rt.fresh_port_name(), rt.fresh_port_name());
    }
}
