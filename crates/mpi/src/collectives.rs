//! Collective operations over intra-communicators: barrier, broadcast,
//! gather. The topology is a flat star rooted at the coordinating rank —
//! adequate for the single-digit group sizes of the DAC architecture (the
//! paper's testbed has 8 hosts); the message count is what matters for the
//! modelled timings.

use crate::proc::MpiProc;
use crate::runtime::wire::{Ctl, CtlBody};
use crate::types::{Comm, Data, MpiError, Rank, GROUP_A};

impl MpiProc {
    /// Internal: send a control message to a member of `comm`'s group
    /// `group`, sized per the cost model.
    pub(crate) fn send_ctl(
        &self,
        comm: Comm,
        group: u8,
        rank: Rank,
        token: u64,
        body: CtlBody,
    ) -> Result<(), MpiError> {
        let member = self.rt.lookup(comm.id, group, rank)?;
        let bytes = self.rt.cost.ctl_bytes;
        let out =
            self.rt.net.send_from_proc(&self.p, self.host, member.addr, Ctl { token, body }, bytes);
        if out.is_sent() {
            Ok(())
        } else {
            Err(MpiError::NetworkFailure)
        }
    }

    /// Internal: send a control message directly to an address.
    pub(crate) fn send_ctl_addr(
        &self,
        addr: darms_net::Address,
        token: u64,
        body: CtlBody,
    ) -> Result<(), MpiError> {
        let bytes = self.rt.cost.ctl_bytes;
        let out = self.rt.net.send_from_proc(&self.p, self.host, addr, Ctl { token, body }, bytes);
        if out.is_sent() {
            Ok(())
        } else {
            Err(MpiError::NetworkFailure)
        }
    }

    /// Block until every member of the intra-communicator has arrived.
    pub async fn barrier(&mut self, comm: Comm) -> Result<(), MpiError> {
        let seq = self.next_seq(comm.id);
        let n = self.rt.group_size(comm);
        if n <= 1 {
            return Ok(());
        }
        if comm.rank == 0 {
            let mut seen = 0usize;
            while seen < n - 1 {
                let env = self
                    .p
                    .recv_where(|e| match e.peek::<Ctl>() {
                        Some(Ctl { body: CtlBody::Arrive { comm: c, seq: s, .. }, .. }) => {
                            *c == comm.id && *s == seq
                        }
                        _ => false,
                    })
                    .await;
                drop(env);
                seen += 1;
            }
            for r in 1..n as Rank {
                self.send_ctl(comm, GROUP_A, r, seq, CtlBody::Release { comm: comm.id, seq })?;
            }
        } else {
            self.send_ctl(
                comm,
                GROUP_A,
                0,
                seq,
                CtlBody::Arrive {
                    comm: comm.id,
                    seq,
                    rank: comm.rank,
                    group: comm.group,
                    high: false,
                },
            )?;
            self.p
                .recv_where(|e| match e.peek::<Ctl>() {
                    Some(Ctl { body: CtlBody::Release { comm: c, seq: s }, .. }) => {
                        *c == comm.id && *s == seq
                    }
                    _ => false,
                })
                .await;
        }
        Ok(())
    }

    /// Broadcast from `root` to all members of the intra-communicator.
    /// `data` is the payload at the root (ignored elsewhere); every caller
    /// receives the broadcast value.
    pub async fn bcast(
        &mut self,
        comm: Comm,
        root: Rank,
        data: Option<(Data, u64)>,
    ) -> Result<Data, MpiError> {
        let seq = self.next_seq(comm.id);
        let n = self.rt.group_size(comm);
        if comm.rank == root {
            let (data, bytes) = data.ok_or(MpiError::InvalidComm("bcast root needs data"))?;
            for r in 0..n as Rank {
                if r == root {
                    continue;
                }
                self.send_ctl(
                    comm,
                    GROUP_A,
                    r,
                    seq,
                    CtlBody::Bcast { comm: comm.id, seq, bytes, data: data.clone() },
                )?;
            }
            Ok(data)
        } else {
            let env = self
                .p
                .recv_where(|e| match e.peek::<Ctl>() {
                    Some(Ctl { body: CtlBody::Bcast { comm: c, seq: s, .. }, .. }) => {
                        *c == comm.id && *s == seq
                    }
                    _ => false,
                })
                .await;
            match env.downcast::<Ctl>().expect("matched").body {
                CtlBody::Bcast { data, .. } => Ok(data),
                // darms-lint: allow(proto-wildcard, reason = "variant pinned by the recv_where predicate above")
                _ => unreachable!("predicate matched Bcast"),
            }
        }
    }

    /// Gather every member's contribution at `root`. Returns
    /// `Some(values ordered by rank)` at the root, `None` elsewhere.
    pub async fn gather(
        &mut self,
        comm: Comm,
        root: Rank,
        data: Data,
        bytes: u64,
    ) -> Result<Option<Vec<Data>>, MpiError> {
        let seq = self.next_seq(comm.id);
        let n = self.rt.group_size(comm);
        if comm.rank == root {
            let mut slots: Vec<Option<Data>> = vec![None; n];
            slots[root as usize] = Some(data);
            let mut seen = 1usize;
            while seen < n {
                let env = self
                    .p
                    .recv_where(|e| match e.peek::<Ctl>() {
                        Some(Ctl { body: CtlBody::Gather { comm: c, seq: s, .. }, .. }) => {
                            *c == comm.id && *s == seq
                        }
                        _ => false,
                    })
                    .await;
                match env.downcast::<Ctl>().expect("matched").body {
                    CtlBody::Gather { rank, data, .. } => {
                        slots[rank as usize] = Some(data);
                        seen += 1;
                    }
                    // darms-lint: allow(proto-wildcard, reason = "variant pinned by the recv_where predicate above")
                    _ => unreachable!(),
                }
            }
            Ok(Some(slots.into_iter().map(|s| s.expect("all ranks gathered")).collect()))
        } else {
            self.send_ctl(
                comm,
                GROUP_A,
                root,
                seq,
                CtlBody::Gather { comm: comm.id, seq, rank: comm.rank, bytes, data },
            )?;
            Ok(None)
        }
    }
}
