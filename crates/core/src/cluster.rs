//! Cluster assembly: builds the simulated hosts, the batch-system daemons
//! (server, scheduler, moms), the MPI runtime and the DAC stack, and
//! offers front-end entry points for submitting work.

use std::sync::Arc;

use darms_dac::{DacRuntime, DacStarter, KernelRegistry};
use darms_mpi::MpiRuntime;
use darms_net::{Address, HostId, HostKind, Network};
use darms_rms::{
    ifl, mom_addr, monitor_addr, sched_addr, server_addr, HealthMonitor, JobId, JobSpec, JobState,
    JobStatus, NodeDb, PbsMom, PbsServer, PseudoFs,
};
use darms_sched::MauiScheduler;
use darms_sim::{Endpoint, Engine, MetricsRegistry, Proc, Recorder, SimDuration, SimStats, Tracer};
use parking_lot::Mutex;

use crate::config::ClusterConfig;

/// A fully wired simulated DAC cluster.
pub struct Cluster {
    /// The simulation engine (run it to execute the scenario).
    pub sim: Engine,
    /// The interconnect.
    pub net: Network,
    /// The shared pseudo-filesystem.
    pub fs: PseudoFs,
    /// The MPI runtime.
    pub mpi: MpiRuntime,
    /// The DAC runtime (kernel registry, devices, daemon executable).
    pub dac: DacRuntime,
    /// The head node (server + scheduler + front end).
    pub head: HostId,
    /// Compute nodes.
    pub compute: Vec<HostId>,
    /// Network-attached accelerator hosts (the ARM pool).
    pub accs: Vec<HostId>,
    /// Measurement sink shared with the scheduler and DAC front ends.
    pub recorder: Recorder,
    /// The engine's metrics registry; every instrumented subsystem
    /// (server, scheduler, DAC front ends, network) writes into it.
    pub metrics: MetricsRegistry,
    /// The engine's structured event tracer.
    pub tracer: Tracer,
    /// Shared handle to the server's node database. Read-only use is
    /// intended (invariant auditing); never hold the guard across an
    /// `await`.
    pub node_db: Arc<Mutex<NodeDb>>,
    config: ClusterConfig,
}

impl Cluster {
    /// Build a cluster from the configuration.
    pub fn build(config: ClusterConfig) -> Self {
        let mut sim = Engine::new(config.sim.clone());
        let net = Network::new(config.latency.clone(), config.sim.seed ^ 0x6e65_7477);
        let fs = PseudoFs::new();
        let recorder = Recorder::new();
        let metrics = sim.metrics();
        let tracer = sim.tracer();
        net.attach_metrics(metrics.clone());
        net.set_retry_policy(config.retry);
        if let Some(plan) = config.fault.clone() {
            net.install_fault_plan(plan);
        }
        if config.sim.trace {
            net.attach_tracer(tracer.clone());
        }

        let head = net.add_host("head", HostKind::Head);
        let compute: Vec<HostId> = (0..config.compute_nodes)
            .map(|i| net.add_host(format!("cn{i:02}"), HostKind::Compute))
            .collect();
        let accs: Vec<HostId> = (0..config.accelerators)
            .map(|i| net.add_host(format!("ac{i:02}"), HostKind::Accelerator))
            .collect();

        let mpi = MpiRuntime::new(net.clone(), config.mpi_cost.clone());
        let dac = DacRuntime::new(
            mpi.clone(),
            fs.clone(),
            config.dac_cost.clone(),
            KernelRegistry::with_builtins(),
            config.device,
        );

        let mut db = NodeDb::new();
        for &h in &compute {
            db.add_compute(h, config.cores_per_node);
        }
        for &h in &accs {
            db.add_accelerator(h);
        }

        let server = PbsServer::new(net.clone(), fs.clone(), head, config.rms_cost.clone(), db);
        let node_db = server.db_handle();
        let server_id = sim.add_actor(Box::new(server));
        net.bind(server_addr(head), Endpoint::Actor(server_id));

        let sched = MauiScheduler::new(net.clone(), head, config.sched.clone())
            .with_recorder(recorder.clone());
        let sched_id = sim.add_actor(Box::new(sched));
        net.bind(sched_addr(head), Endpoint::Actor(sched_id));

        if let Some(mc) = config.monitor.clone() {
            let watched: Vec<HostId> = compute.iter().chain(accs.iter()).copied().collect();
            let monitor = HealthMonitor::new(net.clone(), head, monitor_addr(head), watched, mc);
            let monitor_id = sim.add_actor(Box::new(monitor));
            net.bind(monitor_addr(head), Endpoint::Actor(monitor_id));
        }

        let starter = Arc::new(DacStarter::new(dac.clone()));
        for &h in compute.iter().chain(accs.iter()) {
            let mom = PbsMom::new(
                net.clone(),
                fs.clone(),
                h,
                head,
                config.rms_cost.clone(),
                Some(starter.clone()),
            );
            let mom_id = sim.add_actor(Box::new(mom));
            net.bind(mom_addr(h), Endpoint::Actor(mom_id));
        }

        Cluster {
            sim,
            net,
            fs,
            mpi,
            dac,
            head,
            compute,
            accs,
            recorder,
            metrics,
            tracer,
            node_db,
            config,
        }
    }

    /// The server's address (for custom front-end processes).
    pub fn server(&self) -> Address {
        server_addr(self.head)
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Spawn a front-end client process on the head node after `delay`.
    /// The async closure receives a [`ClientCtx`] with awaitable
    /// `qsub`/`qstat`/`qdel` calls: `|c| async move { … }`.
    pub fn client_after<F, Fut>(&mut self, name: impl Into<String>, delay: SimDuration, f: F)
    where
        F: FnOnce(ClientCtx) -> Fut + 'static,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        let ctx_net = self.net.clone();
        let ctx_fs = self.fs.clone();
        let head = self.head;
        let server = self.server();
        self.sim.spawn_process_after(name, delay, move |p| {
            f(ClientCtx { proc: p, net: ctx_net, fs: ctx_fs, head, server })
        });
    }

    /// Spawn a front-end client process starting at time zero.
    pub fn client<F, Fut>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnOnce(ClientCtx) -> Fut + 'static,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        self.client_after(name, SimDuration::ZERO, f);
    }

    /// Convenience: submit a job from the front end after `delay`;
    /// the returned slot is filled with the job id once the server
    /// acknowledges.
    pub fn qsub_after(&mut self, delay: SimDuration, spec: JobSpec) -> Arc<Mutex<Option<JobId>>> {
        let slot = Arc::new(Mutex::new(None));
        let out = slot.clone();
        let name = format!("qsub:{}", spec.name);
        self.client_after(name, delay, move |c| async move {
            let id = c.qsub(spec).await;
            *out.lock() = Some(id);
        });
        slot
    }

    /// Convenience: submit at time zero.
    pub fn qsub(&mut self, spec: JobSpec) -> Arc<Mutex<Option<JobId>>> {
        self.qsub_after(SimDuration::ZERO, spec)
    }

    /// Run the simulation to completion and return engine statistics.
    pub fn run(&mut self) -> SimStats {
        self.sim.run()
    }
}

/// Front-end context for client processes (the analogue of a login shell
/// on the head node with the TORQUE client commands installed).
pub struct ClientCtx {
    /// The client's simulation process.
    pub proc: Proc,
    /// The interconnect.
    pub net: Network,
    /// The shared pseudo-filesystem.
    pub fs: PseudoFs,
    /// The head node this client runs on.
    pub head: HostId,
    /// The server's address.
    pub server: Address,
}

impl ClientCtx {
    /// Submit a job (blocking until the server acknowledges).
    pub async fn qsub(&self, spec: JobSpec) -> JobId {
        ifl::qsub(&self.proc, &self.net, self.head, self.server, spec).await
    }

    /// Query all job statuses.
    pub async fn qstat(&self) -> Vec<JobStatus> {
        ifl::qstat(&self.proc, &self.net, self.head, self.server).await
    }

    /// Cancel a job.
    pub async fn qdel(&self, job: JobId) -> bool {
        ifl::qdel(&self.proc, &self.net, self.head, self.server, job).await
    }

    /// Hold a queued job (`qhold`).
    pub async fn qhold(&self, job: JobId) -> bool {
        ifl::qhold(&self.proc, &self.net, self.head, self.server, job).await
    }

    /// Release a held job (`qrls`).
    pub async fn qrls(&self, job: JobId) -> bool {
        ifl::qrls(&self.proc, &self.net, self.head, self.server, job).await
    }

    /// Poll `qstat` until the job reaches `state` (or a terminal state);
    /// returns its final status. Polls every `poll`.
    pub async fn wait_for_state(
        &self,
        job: JobId,
        state: JobState,
        poll: SimDuration,
    ) -> JobStatus {
        loop {
            let statuses = self.qstat().await;
            if let Some(s) = statuses.into_iter().find(|s| s.id == job) {
                if s.state == state || s.state.is_terminal() {
                    return s;
                }
            }
            self.proc.sleep(poll).await;
        }
    }

    /// Wait until the job completes; returns its final status.
    pub async fn wait_complete(&self, job: JobId, poll: SimDuration) -> JobStatus {
        self.wait_for_state(job, JobState::Complete, poll).await
    }
}
