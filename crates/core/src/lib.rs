//! # darms — Dynamic Resource Management for Network-Attached Accelerator Clusters
//!
//! A from-scratch, fully simulated reproduction of the ICPP 2013 paper
//! *"A Dynamic Resource Management System for Network-Attached Accelerator
//! Clusters"* (Prabhakaran, Iqbal, Rinke, Wolf): a TORQUE/Maui-style batch
//! system extended to allocate network-attached accelerators to jobs both
//! **statically** at submission time (`-l nodes=k:acpn=x`) and
//! **dynamically** at application runtime (`AC_Get`/`AC_Free` backed by
//! `pbs_dynget`/`pbs_dynfree`), on top of the Dynamic Accelerator-Cluster
//! architecture.
//!
//! This crate is the facade: [`Cluster`] wires together
//!
//! - [`darms_sim`] — deterministic process-oriented discrete-event engine,
//! - [`darms_net`] — hosts + interconnect model,
//! - [`darms_mpi`] — MPI-like runtime with MPI-2 dynamic process management,
//! - [`darms_rms`] — the TORQUE-like server/moms with the paper's extensions,
//! - [`darms_sched`] — the Maui-like scheduler with top-priority dynamic
//!   requests, priority/fairshare/backfill policies,
//! - [`darms_dac`] — accelerator devices, back-end daemons, the
//!   computation API and the resource-management library.
//!
//! ## Quickstart
//!
//! ```
//! use darms::prelude::*;
//! use std::sync::Arc;
//! use parking_lot::Mutex;
//!
//! let mut cluster = Cluster::build(ClusterConfig::fast(42).with_split(1, 2));
//! let dac = cluster.dac.clone();
//! let sum = Arc::new(Mutex::new(0.0));
//! let out = sum.clone();
//! let spec = JobSpec::synthetic("demo", SimDuration::from_secs(1))
//!     .acpn(2)
//!     .script(script(move |jc| {
//!         let dac = dac.clone();
//!         let out = out.clone();
//!         async move {
//!             // AC_Init: connect to the two statically allocated accelerators.
//!             let (mut ses, handles) = AcSession::init(&jc, &dac, None).await;
//!             let h = handles[0];
//!             let a = ses.mem_alloc(h, 16).await.unwrap();
//!             let b = ses.mem_alloc(h, 16).await.unwrap();
//!             let c = ses.mem_alloc(h, 16).await.unwrap();
//!             ses.mem_write(h, a, f64s_to_bytes(&[1.0, 2.0])).await.unwrap();
//!             ses.mem_write(h, b, f64s_to_bytes(&[10.0, 20.0])).await.unwrap();
//!             ses.kernel_run(h, "vector_add", KernelArgs::new(1, 2, vec![
//!                 Param::Ptr(a), Param::Ptr(b), Param::Ptr(c), Param::U64(2),
//!             ])).await.unwrap();
//!             let r = as_f64s(&ses.mem_read(h, c, 16).await.unwrap());
//!             *out.lock() = r.iter().sum();
//!             ses.finalize();
//!         }
//!     }));
//! cluster.qsub(spec);
//! cluster.run();
//! assert_eq!(*sum.lock(), 33.0);
//! ```

#![warn(missing_docs)]

mod cluster;
mod config;

pub use cluster::{ClientCtx, Cluster};
pub use config::ClusterConfig;

/// Everything a scenario or example typically needs.
pub mod prelude {
    pub use crate::{ClientCtx, Cluster, ClusterConfig};
    pub use darms_dac::{
        as_f64s, f64s_to_bytes, AcHandle, AcSession, AcSet, DacError, DevPtr, KernelArgs, Param,
        TaskComm,
    };
    pub use darms_net::{FaultPlan, LinkFaults, Outage, Partition, RetryPolicy};
    pub use darms_rms::{script, ClientId, JobCtx, JobId, JobSpec, JobState, JobStatus};
    pub use darms_sim::{
        metrics_to_json, to_chrome_trace, to_json_lines, write_chrome_trace, write_json_lines,
        HistogramSummary, MetricsRegistry, Recorder, SimDuration, SimStats, SimTime, Summary,
        TraceEvent, TraceEventKind, TraceSource, Tracer,
    };
}
