//! Whole-cluster configuration: topology plus every layer's cost model.

use darms_dac::{DacCostModel, DeviceProps};
use darms_mpi::MpiCostModel;
use darms_net::{FaultPlan, LatencyModel, RetryPolicy};
use darms_rms::{MonitorConfig, RmsCostModel};
use darms_sched::SchedConfig;
use darms_sim::SimConfig;

/// Configuration of a simulated DAC cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of compute nodes (excluding the head node).
    pub compute_nodes: usize,
    /// Number of network-attached accelerators.
    pub accelerators: usize,
    /// Cores per compute node.
    pub cores_per_node: u32,
    /// Engine configuration (seed, horizon, tracing).
    pub sim: SimConfig,
    /// Interconnect model.
    pub latency: LatencyModel,
    /// MPI runtime costs.
    pub mpi_cost: MpiCostModel,
    /// Batch-system daemon costs.
    pub rms_cost: RmsCostModel,
    /// DAC stack costs.
    pub dac_cost: DacCostModel,
    /// Scheduler configuration.
    pub sched: SchedConfig,
    /// Accelerator device parameters.
    pub device: DeviceProps,
    /// Run a node health monitor on the head node (fault tolerance).
    /// `None` (the default) keeps the cluster free of periodic traffic so
    /// idle simulations quiesce; enable it for failure scenarios together
    /// with a finite simulation horizon.
    pub monitor: Option<MonitorConfig>,
    /// Control-plane retry policy. `None` (the default) keeps every
    /// protocol exchange single-shot and unbounded — byte-identical to
    /// the pre-chaos system. Set it to harden the cluster against an
    /// installed [`FaultPlan`].
    pub retry: Option<RetryPolicy>,
    /// Deterministic fault-injection plan installed on the network at
    /// build time. Combine with [`ClusterConfig::retry`]; faults without
    /// retries will wedge the control plane.
    pub fault: Option<FaultPlan>,
}

impl ClusterConfig {
    /// The paper's testbed shape: 8 hosts — 1 head node plus 7 hosts
    /// split between compute nodes and accelerators per scenario — with
    /// every cost model calibrated to the 2013 hardware/software stack
    /// (§IV). Use [`ClusterConfig::with_split`] to pick the split.
    pub fn paper_testbed(seed: u64) -> Self {
        ClusterConfig {
            compute_nodes: 1,
            accelerators: 6,
            cores_per_node: 8,
            sim: SimConfig { seed, ..Default::default() },
            latency: LatencyModel::paper_testbed(),
            mpi_cost: MpiCostModel::paper_testbed(),
            rms_cost: RmsCostModel::paper_testbed(),
            dac_cost: DacCostModel::paper_testbed(),
            sched: SchedConfig::paper_testbed(),
            device: DeviceProps::gpu_2013(),
            monitor: None,
            retry: None,
            fault: None,
        }
    }

    /// Near-zero protocol costs: logic-focused tests where virtual-time
    /// calibration does not matter.
    pub fn fast(seed: u64) -> Self {
        ClusterConfig {
            compute_nodes: 2,
            accelerators: 4,
            cores_per_node: 8,
            sim: SimConfig { seed, ..Default::default() },
            latency: LatencyModel::ideal(),
            mpi_cost: MpiCostModel::instant(),
            rms_cost: RmsCostModel::instant(),
            dac_cost: DacCostModel::instant(),
            sched: SchedConfig::instant(),
            device: DeviceProps::gpu_2013(),
            monitor: None,
            retry: None,
            fault: None,
        }
    }

    /// Builder: set the compute/accelerator split.
    pub fn with_split(mut self, compute: usize, accelerators: usize) -> Self {
        self.compute_nodes = compute;
        self.accelerators = accelerators;
        self
    }

    /// Builder: set the scheduler configuration.
    pub fn with_sched(mut self, sched: SchedConfig) -> Self {
        self.sched = sched;
        self
    }

    /// Builder: enable event tracing.
    pub fn with_trace(mut self) -> Self {
        self.sim.trace = true;
        self
    }

    /// Builder: harden the control plane with a retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Builder: install a deterministic fault plan on the interconnect.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Builder: enable the node health monitor and bound the simulation
    /// horizon (monitored clusters produce periodic traffic forever, so a
    /// finite horizon is required for `run()` to return).
    pub fn with_monitor(mut self, monitor: MonitorConfig, horizon: darms_sim::SimTime) -> Self {
        self.monitor = Some(monitor);
        self.sim.horizon = horizon;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_has_eight_hosts_total() {
        let c = ClusterConfig::paper_testbed(1);
        assert_eq!(1 + c.compute_nodes + c.accelerators, 8);
    }

    #[test]
    fn builders_chain() {
        let c = ClusterConfig::fast(1).with_split(3, 2).with_trace();
        assert_eq!(c.compute_nodes, 3);
        assert_eq!(c.accelerators, 2);
        assert!(c.sim.trace);
    }
}
