//! SWF trace replay as a library scenario.
//!
//! Extracted from the `swf_replay` binary so the perf-regression
//! harness and the trial sweeps can drive the same code path: generate
//! (or accept) a Standard Workload Format trace, push every job through
//! the batch system with a synthetic accelerator-demand overlay, and
//! summarise waits, turnaround and pool utilisation.

use std::sync::Arc;

use darms::prelude::*;
use darms_workload::{
    overlay_accelerator_demand, parse_swf, to_swf, Dist, JobOutcome, WorkloadConfig, WorkloadReport,
};
use parking_lot::Mutex;

/// Parameters of one replay run.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Jobs generated for the bundled trace (ignored when an external
    /// SWF text is supplied to [`replay_swf`]).
    pub jobs: usize,
    /// Seed for trace generation and the cluster run.
    pub seed: u64,
    /// Compute nodes in the testbed split.
    pub compute_nodes: usize,
    /// Accelerator pool size in the testbed split.
    pub pool: usize,
    /// Cores per compute node.
    pub cores_per_node: u32,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { jobs: 30, seed: 4242, compute_nodes: 3, pool: 4, cores_per_node: 8 }
    }
}

/// Result of one replay run.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Workload-level summary (waits, turnaround, makespan, pool use).
    pub report: WorkloadReport,
    /// Engine statistics of the run.
    pub stats: SimStats,
    /// Total jobs replayed.
    pub jobs: usize,
    /// Jobs carrying accelerator demand after the overlay.
    pub acc_jobs: usize,
    /// Accelerator pool size used.
    pub pool: usize,
}

/// The bundled demo trace for `cfg`: a generated workload exported to
/// SWF, round-tripping through the printer/parser exactly like a real
/// Parallel Workloads Archive trace would.
pub fn bundled_trace(cfg: &ReplayConfig) -> String {
    let mut jobs = WorkloadConfig::cpu_only().generate(cfg.jobs, cfg.seed);
    for j in &mut jobs {
        j.nodes = j.nodes.min(cfg.compute_nodes);
        j.ppn = j.ppn.min(cfg.cores_per_node);
    }
    to_swf(&jobs, cfg.cores_per_node)
}

/// Replay the bundled trace for `cfg`.
pub fn replay(cfg: &ReplayConfig) -> ReplayOutcome {
    replay_swf(&bundled_trace(cfg), cfg)
}

/// [`replay`] with structured tracing enabled; returns the drained
/// event stream alongside the outcome (for the golden-trace
/// determinism test).
pub fn replay_traced(cfg: &ReplayConfig) -> (ReplayOutcome, Vec<TraceEvent>) {
    replay_swf_run(&bundled_trace(cfg), cfg, true)
}

/// Replay an SWF `text` through the batch system under `cfg`.
///
/// SWF predates network-attached accelerators, so 40% of the jobs get a
/// synthetic accelerator-demand overlay (1–2 accelerators per node,
/// fixed overlay seed) to exercise the DAC path.
pub fn replay_swf(text: &str, cfg: &ReplayConfig) -> ReplayOutcome {
    replay_swf_run(text, cfg, false).0
}

fn replay_swf_run(text: &str, cfg: &ReplayConfig, trace: bool) -> (ReplayOutcome, Vec<TraceEvent>) {
    let mut jobs = parse_swf(text, cfg.cores_per_node).expect("valid SWF");
    overlay_accelerator_demand(&mut jobs, 0.4, &Dist::Choice(vec![(2.0, 1.0), (1.0, 2.0)]), 7);

    let mut cluster_cfg =
        ClusterConfig::paper_testbed(cfg.seed).with_split(cfg.compute_nodes, cfg.pool);
    if trace {
        cluster_cfg = cluster_cfg.with_trace();
    }
    let mut cluster = Cluster::build(cluster_cfg);
    let dac = cluster.dac.clone();
    let pool = cluster.accs.len();
    let n_jobs = jobs.len();
    let acc_jobs = jobs.iter().filter(|j| j.acpn > 0).count();

    for (i, t) in jobs.iter().enumerate() {
        let nodes = t.nodes.min(cfg.compute_nodes);
        let acpn = t.acpn.min((pool / nodes) as u32);
        let runtime = t.runtime;
        let d = dac.clone();
        let spec = JobSpec::synthetic(format!("swf{i:03}"), runtime)
            .owner(&t.owner)
            .nodes(nodes)
            .ppn(t.ppn.min(cfg.cores_per_node))
            .acpn(acpn)
            .walltime(t.walltime_estimate)
            .script(script(move |mut jc| {
                let d = d.clone();
                async move {
                    let (ses, handles) = AcSession::init(&jc, &d, None).await;
                    assert_eq!(handles.len(), jc.acc_hosts.len());
                    let _ = jc.sleep_interruptible(runtime).await;
                    ses.finalize();
                }
            }));
        cluster.qsub_after(t.arrival, spec);
    }

    let statuses = Arc::new(Mutex::new(Vec::new()));
    let out = statuses.clone();
    cluster.client_after("watch", SimDuration::from_secs(1), move |c| async move {
        loop {
            let st = c.qstat().await;
            if st.len() == n_jobs && st.iter().all(|s| s.state.is_terminal()) {
                *out.lock() = st;
                break;
            }
            c.proc.sleep(SimDuration::from_secs(30)).await;
        }
    });
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0, "replay must run cleanly");
    let events = cluster.sim.take_events();

    let statuses = statuses.lock().clone();
    let outcomes: Vec<JobOutcome> = statuses
        .iter()
        .map(|s| JobOutcome {
            submitted: s.submitted,
            started: s.started,
            completed: s.completed,
            nodes: s.compute_hosts.len(),
            accs: s.static_accs.iter().map(Vec::len).sum(),
        })
        .collect();
    let report = WorkloadReport::from_outcomes(&outcomes).expect("jobs completed");
    (ReplayOutcome { report, stats, jobs: n_jobs, acc_jobs, pool }, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_replay_is_deterministic() {
        let cfg = ReplayConfig { jobs: 6, seed: 99, ..ReplayConfig::default() };
        let a = replay(&cfg);
        let b = replay(&cfg);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.report, b.report);
        assert_eq!(a.jobs, 6);
        assert!(a.report.finished > 0);
    }
}
