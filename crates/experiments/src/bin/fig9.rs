//! Regenerate Fig. 9: three compute nodes from three distinct jobs issue
//! a dynamic request for one accelerator at the same instant; the
//! server's serial processing of dynamic requests makes the completion
//! times a staircase (MPI time excluded, as in the paper).
//!
//! Paper reference values (read off the figure): A ≈ 0.33 s, B ≈ 0.55 s,
//! C ≈ 0.75 s.

use darms_experiments::{fig9, TRIALS};
use darms_workload::{secs, Table};

fn main() {
    let rows = fig9(TRIALS);
    let mut t = Table::new(
        format!(
            "Fig 9: concurrent dynamic requests from three compute nodes, mean of {TRIALS} trials"
        ),
        &["compute_node", "batch[s]", "paper[s]"],
    );
    let paper = [0.33, 0.55, 0.75];
    for (i, r) in rows.iter().enumerate() {
        t.row(vec![r.node.to_string(), secs(r.batch), format!("~{}", paper[i])]);
    }
    println!("{}", t.render());
    darms_experiments::figures::shape::check_fig9(&rows);
    println!("shape check: strictly increasing staircase from serial servicing — OK");
}
