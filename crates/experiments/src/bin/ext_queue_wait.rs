//! EXT-8: ablation of the paper's no-reservation design choice (§III-E:
//! "neither is a dynamic request guaranteed to be satisfied nor will it
//! wait in the queue"). Compare immediate rejection against bounded
//! queueing of dynamic requests on a churny accelerator pool: queueing
//! converts rejections into grants at the cost of blocking the
//! application inside `AC_Get`.

use std::sync::Arc;

use darms::prelude::*;
use darms_sched::SchedConfig;
use darms_workload::Table;
use parking_lot::Mutex;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

struct Outcome {
    granted: usize,
    rejected: usize,
    mean_wait_s: f64,
}

fn run(seed: u64, queue_wait: Option<SimDuration>) -> Outcome {
    let mut sched = SchedConfig::paper_testbed();
    sched.dyn_queue_wait = queue_wait;
    sched.dyn_retry = SimDuration::from_millis(300);
    let mut cluster =
        Cluster::build(ClusterConfig::paper_testbed(seed).with_split(3, 3).with_sched(sched));
    let dac = cluster.dac.clone();
    let granted = Arc::new(Mutex::new(0usize));
    let rejected = Arc::new(Mutex::new(0usize));
    let waits = Arc::new(Mutex::new(Vec::new()));
    for i in 0..3 {
        let d = dac.clone();
        let (g, r, w) = (granted.clone(), rejected.clone(), waits.clone());
        let spec =
            JobSpec::synthetic(format!("j{i}"), secs(120)).ppn(2).script(script(move |jc| {
                let d = d.clone();
                let (g, r, w) = (g.clone(), r.clone(), w.clone());
                async move {
                    let (mut ses, _) = AcSession::init(&jc, &d, None).await;
                    for b in 0..4u64 {
                        jc.proc.sleep(secs(2 + b)).await;
                        let t0 = jc.proc.now();
                        match ses.ac_get(2).await {
                            Ok(set) => {
                                w.lock().push((jc.proc.now() - t0).as_secs_f64());
                                *g.lock() += 1;
                                jc.proc.sleep(secs(6)).await;
                                ses.ac_free(&set).await.unwrap();
                            }
                            Err(_) => {
                                w.lock().push((jc.proc.now() - t0).as_secs_f64());
                                *r.lock() += 1;
                                jc.proc.sleep(secs(2)).await;
                            }
                        }
                    }
                    ses.finalize();
                }
            }));
        cluster.qsub_after(secs(i as u64), spec);
    }
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let w = waits.lock().clone();
    let mean = w.iter().sum::<f64>() / w.len().max(1) as f64;
    let (g, r) = (*granted.lock(), *rejected.lock());
    Outcome { granted: g, rejected: r, mean_wait_s: mean }
}

fn main() {
    let trials = 5;
    let policies: [(&str, Option<SimDuration>); 3] =
        [("reject (paper)", None), ("wait ≤ 5 s", Some(secs(5))), ("wait ≤ 30 s", Some(secs(30)))];
    let mut table = Table::new(
        format!("EXT-8: immediate reject vs bounded queueing of dynamic requests (3 jobs × 4 bursts of 2, pool 3, mean of {trials} trials)"),
        &["policy", "granted", "rejected", "mean_AC_Get_latency[s]"],
    );
    let mut results = Vec::new();
    for (name, qw) in policies {
        let mut acc = (0usize, 0usize, 0.0f64);
        for t in 0..trials {
            let o = run(14000 + t as u64, qw);
            acc = (acc.0 + o.granted, acc.1 + o.rejected, acc.2 + o.mean_wait_s);
        }
        let n = trials as f64;
        table.row(vec![
            name.into(),
            format!("{:.1}", acc.0 as f64 / n),
            format!("{:.1}", acc.1 as f64 / n),
            format!("{:.2}", acc.2 / n),
        ]);
        results.push(acc);
    }
    println!("{}", table.render());
    assert!(results[2].1 <= results[0].1, "longer waits reject no more than the paper policy");
    assert!(results[2].2 >= results[0].2, "queueing trades latency for success");
    println!("queueing dynamic requests converts rejections into grants at the price of AC_Get latency —");
    println!("the paper's immediate-reject choice keeps applications responsive and pushes the retry decision to them");
}
