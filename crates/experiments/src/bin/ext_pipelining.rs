//! EXT-4: the pipelined transfer protocol of the DAC implementation \[7\]:
//! device copies overlap the wire transfer. Compare upload latency with
//! pipelining on and off across transfer sizes.

use darms_experiments::extended::ext4_pipelining;
use darms_workload::{secs, Table};

fn main() {
    let sizes_mb = [1usize, 8, 32, 128];
    let mut table = Table::new(
        "EXT-4: host→accelerator upload latency, pipelined vs store-and-forward",
        &["size[MiB]", "pipelined[s]", "serial[s]", "speedup"],
    );
    let mut last_speedup = 0.0;
    for &mb in &sizes_mb {
        let (pipe, serial) = ext4_pipelining(8000 + mb as u64, mb);
        last_speedup = serial / pipe.max(1e-12);
        table.row(vec![mb.to_string(), secs(pipe), secs(serial), format!("{last_speedup:.2}x")]);
        assert!(pipe <= serial + 1e-12, "pipelining can only help");
    }
    println!("{}", table.render());
    // With a ~1 GiB/s wire and a 6 GB/s device copy engine the overlap
    // can hide at most the device share: (wire+dev)/wire ≈ 1.19x. Large
    // transfers must approach that bound.
    assert!(last_speedup > 1.1, "large transfers must approach the overlap bound: {last_speedup}");
    println!("pipelining overlaps wire and device copy — large transfers approach the max(wire, device) bound");
}
