//! EXT-6: collective vs individual `AC_Get` for a multi-compute-node job
//! (§III-D). Individual requests are serviced serially by the server —
//! later compute nodes wait (the Fig. 9 effect *within one job*) but a
//! partial outcome is possible; the collective call is a single request —
//! faster and atomic, at the price of all-or-nothing semantics.

use std::sync::Arc;

use darms::prelude::*;
use darms_workload::{secs as fmt_secs, Table};
use parking_lot::Mutex;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

/// Returns (per-node batch latencies, granted-node count).
fn run(seed: u64, collective: bool, pool: usize) -> (Vec<f64>, usize) {
    let nodes = 3usize;
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(seed).with_split(nodes, pool));
    let dac = cluster.dac.clone();
    let lat = Arc::new(Mutex::new(Vec::new()));
    let granted = Arc::new(Mutex::new(0usize));

    let l = lat.clone();
    let g = granted.clone();
    let spec = JobSpec::synthetic("multi", secs(30)).nodes(nodes).script(script(move |jc| {
        let dac = dac.clone();
        let l = l.clone();
        let g = g.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            let tc = TaskComm::establish(&jc).await;
            // Align all nodes at the same instant.
            let target = SimTime::ZERO + secs(5);
            let now = jc.proc.now();
            if target > now {
                jc.proc.sleep(target - now).await;
            }
            let t0 = jc.proc.now();
            if collective {
                match ses.ac_get_collective(&jc, &tc, 2).await {
                    Ok(set) => {
                        *g.lock() += 1;
                        l.lock().push((jc.proc.now() - t0).as_secs_f64());
                        jc.proc.sleep(secs(10)).await; // hold the grant through the phase
                        ses.ac_free_collective(&jc, &tc, &set).await.unwrap();
                    }
                    Err(_) => {
                        l.lock().push((jc.proc.now() - t0).as_secs_f64());
                        // still must participate in nothing further
                    }
                }
            } else {
                match ses.ac_get(2).await {
                    Ok(set) => {
                        *g.lock() += 1;
                        l.lock().push((jc.proc.now() - t0).as_secs_f64());
                        jc.proc.sleep(secs(10)).await; // hold the grant through the phase
                        ses.ac_free(&set).await.unwrap();
                    }
                    Err(_) => {
                        l.lock().push((jc.proc.now() - t0).as_secs_f64());
                    }
                }
            }
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let mut v = lat.lock().clone();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let g = *granted.lock();
    (v, g)
}

fn main() {
    // Plenty of accelerators: compare latency profiles.
    let (ind, gi) = run(11000, false, 6);
    let (col, gc) = run(11000, true, 6);
    let mut t = Table::new(
        "EXT-6: collective vs individual AC_Get, 3-CN job, 2 accelerators per node, pool 6",
        &["mode", "granted_nodes", "min[s]", "max[s]"],
    );
    t.row(vec!["individual".into(), gi.to_string(), fmt_secs(ind[0]), fmt_secs(ind[2])]);
    t.row(vec!["collective".into(), gc.to_string(), fmt_secs(col[0]), fmt_secs(col[2])]);
    println!("{}", t.render());
    assert_eq!(gi, 3);
    assert_eq!(gc, 3);
    // Serial servicing spreads the individual latencies; the collective
    // completes everyone at (nearly) the same time and no later than the
    // slowest individual.
    assert!(ind[2] - ind[0] > 0.2, "individual requests serialise: {ind:?}");
    assert!(col[2] < ind[2], "collective beats the last individual: {col:?} vs {ind:?}");

    // Scarce pool: 3×2 = 6 needed, only 4 free. Individual: partial
    // success; collective: atomic rejection.
    let (_, gi) = run(12000, false, 4);
    let (_, gc) = run(12000, true, 4);
    let mut t = Table::new("scarce pool (4 free, 6 wanted)", &["mode", "granted_nodes"]);
    t.row(vec!["individual".into(), gi.to_string()]);
    t.row(vec!["collective".into(), gc.to_string()]);
    println!("{}", t.render());
    assert!((1..3).contains(&gi), "individual: partial success ({gi})");
    assert_eq!(gc, 0, "collective: all-or-nothing");
    println!("collective AC_Get: one request, atomic outcome; individual: serialised, partial outcomes possible");
}
