//! EXT-2: dynamic-request rejection rate vs accelerator pool size.
//! Because the scheduler rejects immediately when the pool cannot satisfy
//! a request (§III-E), undersized pools translate straight into rejected
//! `AC_Get` calls.

use darms_experiments::extended::ext2_rejection_sweep;
use darms_workload::Table;

fn main() {
    let trials = 5;
    let pools = [2usize, 3, 4, 5, 6];
    let mut sums = vec![0.0; pools.len()];
    for t in 0..trials {
        for (i, (_, frac)) in ext2_rejection_sweep(6000 + t as u64).into_iter().enumerate() {
            sums[i] += frac;
        }
    }
    let mut table = Table::new(
        format!("EXT-2: AC_Get rejection rate vs pool size (6 jobs × 3 bursts of 2, mean of {trials} trials)"),
        &["pool_size", "rejection_rate"],
    );
    let rates: Vec<f64> = sums.iter().map(|s| s / trials as f64).collect();
    for (i, &pool) in pools.iter().enumerate() {
        table.row(vec![pool.to_string(), format!("{:.1}%", 100.0 * rates[i])]);
    }
    println!("{}", table.render());
    assert!(rates[0] > rates[pools.len() - 1], "bigger pools must reject less: {rates:?}");
    println!("monotonic trend check: larger pools reject less — OK");
}
