//! Regenerate Fig. 8: time to dynamically allocate one accelerator while
//! the Maui scheduler is busy scheduling 0 / 16 / 20 other qsub requests,
//! split into the time the scheduler spent on the other requests and the
//! time servicing the dynamic request itself.
//!
//! Paper reference values (read off the figure): total ≈ 0.35 s at load
//! 0, ≈ 0.75 s at 16, ≈ 0.9 s at 20; the added time is scheduler work on
//! the other requests.

use darms_experiments::{fig8, TRIALS};
use darms_workload::{secs, Table};

fn main() {
    let rows = fig8(TRIALS);
    let mut t = Table::new(
        format!("Fig 8: dynamic allocation under scheduler load, mean of {TRIALS} trials"),
        &["jobs_on_load", "sched_others[s]", "service[s]", "total[s]", "paper_total[s]"],
    );
    let paper = [0.35, 0.75, 0.90];
    for (i, r) in rows.iter().enumerate() {
        t.row(vec![
            r.load.to_string(),
            secs(r.sched_others),
            secs(r.service),
            secs(r.total()),
            format!("~{}", paper[i]),
        ]);
    }
    println!("{}", t.render());
    darms_experiments::figures::shape::check_fig8(&rows);
    println!("shape check: waiting grows with scheduler load; service stays similar — OK");
}
