//! EXT-1: what dynamic allocation buys. Two-phase jobs (long base phase
//! needing 1 accelerator, short burst needing 3) under two provisioning
//! strategies: *static-peak* (classic batch systems: request the peak for
//! the whole runtime) vs *dynamic* (the paper: request the base, grow for
//! the burst with `AC_Get`).

use darms_experiments::extended::ext1_static_vs_dynamic;
use darms_workload::{secs, Table};

fn main() {
    let trials = 5;
    let mut stat = (0.0, 0.0, 0);
    let mut dynm = (0.0, 0.0, 0);
    for t in 0..trials {
        let (s, d) = ext1_static_vs_dynamic(5000 + t as u64);
        stat = (stat.0 + s.makespan, stat.1 + s.mean_wait, stat.2 + s.rejections);
        dynm = (dynm.0 + d.makespan, dynm.1 + d.mean_wait, dynm.2 + d.rejections);
    }
    let n = trials as f64;
    let mut t = Table::new(
        format!("EXT-1: static-peak vs dynamic provisioning (8 two-phase jobs, 2 CN + 4 AC, mean of {trials} trials)"),
        &["strategy", "makespan[s]", "mean_wait[s]", "dyn_rejections"],
    );
    t.row(vec![
        "static-peak".into(),
        secs(stat.0 / n),
        secs(stat.1 / n),
        format!("{:.1}", stat.2 as f64 / n),
    ]);
    t.row(vec![
        "dynamic".into(),
        secs(dynm.0 / n),
        secs(dynm.1 / n),
        format!("{:.1}", dynm.2 as f64 / n),
    ]);
    println!("{}", t.render());
    let speedup = stat.0 / dynm.0.max(1e-9);
    println!("dynamic provisioning shortens the makespan by {:.2}x and cuts queue waits", speedup);
    assert!(dynm.0 < stat.0, "dynamic must beat static-peak on makespan");
    assert!(dynm.1 < stat.1, "dynamic must cut mean wait");
}
