//! Seeded chaos sweep: run N deterministic fault-injection scenarios and
//! audit the safety invariants (see `darms_experiments::chaos`). Every
//! seed is run **twice** and the serialized traces compared, so the
//! sweep also proves byte-for-byte reproducibility.
//!
//! Usage:
//!   chaos_sweep                  # smoke: seeds 0..50
//!   chaos_sweep --seeds 100..600 # soak: any half-open seed range
//!
//! Exits non-zero if any seed violates an invariant.

use darms_experiments::chaos::run_chaos_checked;

fn parse_range(s: &str) -> Option<(u64, u64)> {
    let (a, b) = s.split_once("..")?;
    Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut range = (0u64, 50u64);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                let spec = args.next().unwrap_or_default();
                range = parse_range(&spec).unwrap_or_else(|| {
                    eprintln!("chaos_sweep: bad --seeds '{spec}' (expected A..B)");
                    std::process::exit(2);
                });
            }
            "--smoke" => range = (0, 50),
            other => {
                eprintln!("chaos_sweep: unknown argument '{other}'");
                eprintln!("usage: chaos_sweep [--seeds A..B | --smoke]");
                std::process::exit(2);
            }
        }
    }
    let (from, to) = range;
    if from >= to {
        eprintln!("chaos_sweep: empty seed range {from}..{to}");
        std::process::exit(2);
    }

    let mut dirty = 0usize;
    let (mut jobs, mut completed, mut cancelled, mut reclaims) = (0usize, 0usize, 0usize, 0u64);
    for seed in from..to {
        let o = run_chaos_checked(seed);
        jobs += o.jobs;
        completed += o.completed;
        cancelled += o.cancelled;
        reclaims += o.reclaims;
        if !o.clean() {
            dirty += 1;
            println!("seed {seed}: VIOLATIONS");
            for v in &o.violations {
                println!("  - {v}");
            }
        }
    }
    let n = to - from;
    println!(
        "chaos_sweep: {n} seeds ({from}..{to}), each run twice for byte-identity: \
         {jobs} jobs ({completed} completed, {cancelled} cancelled), \
         {reclaims} host reclamations, {dirty} seed(s) with violations"
    );
    if dirty > 0 {
        std::process::exit(1);
    }
}
