//! `darms-soak`: continuously-runnable chaos + scale soak over the
//! `(seed × fault-plan × workload)` cell matrix.
//!
//! Every cell is run **twice** on the parallel trial runner and audited
//! against the shared invariants (`darms_experiments::invariants`):
//! pool conservation, no wedged jobs, a monotone event clock, and
//! byte-identity of the second run. Latency SLO samples (qsub→run and
//! dynget→grant) are pooled into exact p50/p99/p999 quantiles, split by
//! faulty vs fault-free cells. Any violating cell is packaged into a
//! self-contained triage bundle under `soak_triage/`.
//!
//! Usage:
//!   darms_soak                         # smoke matrix: seeds 0..4 (36 cells)
//!   darms_soak --smoke                 # same, explicitly
//!   darms_soak --seeds 0..50           # a bigger matrix (450 cells)
//!   darms_soak --budget-secs 300       # keep sweeping batches for ~5 min
//!   darms_soak --triage-dir DIR        # where bundles go (default soak_triage/)
//!   darms_soak --force-failure         # mark the first cell violating (triage demo)
//!   darms_soak --replay BUNDLE_DIR     # re-run a bundle, compare byte-for-byte
//!
//! Exits non-zero if any cell violates an invariant (or a replayed
//! bundle fails to reproduce).

use std::path::Path;

use darms_experiments::{runner, soak};
use darms_sim::QuantileEstimator;

fn parse_range(s: &str) -> Option<(u64, u64)> {
    let (a, b) = s.split_once("..")?;
    Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
}

fn usage() -> ! {
    eprintln!(
        "usage: darms_soak [--smoke | --seeds A..B] [--budget-secs S] \
         [--triage-dir DIR] [--force-failure] [--replay BUNDLE_DIR]"
    );
    std::process::exit(2);
}

fn quantile_line(label: &str, est: &QuantileEstimator) -> String {
    match est.summary() {
        Some(s) => format!(
            "{label}: n={} p50={:.6}s p99={:.6}s p999={:.6}s",
            s.count, s.p50, s.p99, s.p999
        ),
        None => format!("{label}: no samples"),
    }
}

fn replay(bundle: &str) -> ! {
    match soak::replay_bundle(Path::new(bundle)) {
        Ok(r) => {
            println!(
                "replayed {} from {bundle}: byte_identical={} fresh_violations={}",
                r.cell.id(),
                r.byte_identical,
                r.violations.len()
            );
            for v in &r.violations {
                println!("  - {v}");
            }
            std::process::exit(if r.byte_identical { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("darms_soak: replay failed: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut range = (0u64, 4u64);
    let mut budget_secs: Option<u64> = None;
    let mut triage_dir = String::from("soak_triage");
    let mut force_failure = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => range = (0, 4),
            "--seeds" => {
                let spec = args.next().unwrap_or_default();
                range = parse_range(&spec).unwrap_or_else(|| {
                    eprintln!("darms_soak: bad --seeds '{spec}' (expected A..B)");
                    std::process::exit(2);
                });
            }
            "--budget-secs" => {
                let spec = args.next().unwrap_or_default();
                budget_secs = Some(spec.parse().unwrap_or_else(|_| {
                    eprintln!("darms_soak: bad --budget-secs '{spec}'");
                    std::process::exit(2);
                }));
            }
            "--triage-dir" => triage_dir = args.next().unwrap_or_else(|| usage()),
            "--force-failure" => force_failure = true,
            "--replay" => {
                let bundle = args.next().unwrap_or_else(|| usage());
                replay(&bundle);
            }
            _ => usage(),
        }
    }
    let (from, to) = range;
    if from >= to {
        eprintln!("darms_soak: empty seed range {from}..{to}");
        std::process::exit(2);
    }

    // The wall-clock budget makes the soak *continuously runnable*: it
    // keeps sweeping fresh seed batches until the budget is spent. The
    // budget only decides how MANY cells run — each cell itself stays a
    // pure function of its seed, so reading real time here cannot leak
    // into any trace.
    // darms-lint: allow(nondet, reason = "soak wall-clock budget: decides how many cells run, never what a cell does")
    let started = std::time::Instant::now();
    let batch = to - from;

    let mut dirty = 0usize;
    let mut cells_run = 0usize;
    let mut total_events = 0u64;
    let (mut jobs, mut completed, mut cancelled) = (0usize, 0usize, 0usize);
    let mut q_faultfree = QuantileEstimator::new();
    let mut q_faulty = QuantileEstimator::new();
    let mut g_faultfree = QuantileEstimator::new();
    let mut g_faulty = QuantileEstimator::new();
    let mut bundles: Vec<String> = Vec::new();

    let mut batch_from = from;
    loop {
        let mut cells = soak::matrix(batch_from..batch_from + batch);
        if force_failure && batch_from == from {
            cells[0].force_failure = true;
        }
        let outcomes = runner::run_indexed(cells.len(), |i| soak::run_cell_checked(&cells[i]));
        for o in &outcomes {
            cells_run += 1;
            // Both runs of the cell dispatched this many events.
            total_events += o.events * 2;
            jobs += o.jobs;
            completed += o.completed;
            cancelled += o.cancelled;
            let (q, g) = if o.cell.faults.faulty() {
                (&mut q_faulty, &mut g_faulty)
            } else {
                (&mut q_faultfree, &mut g_faultfree)
            };
            q.observe_all(&o.qsub_to_run);
            g.observe_all(&o.dynget_to_grant);
            if !o.clean() {
                dirty += 1;
                println!("cell {}: VIOLATIONS", o.cell.id());
                for v in &o.violations {
                    println!("  - {v}");
                }
                match soak::write_triage_bundle(Path::new(&triage_dir), o) {
                    Ok(dir) => {
                        println!("  triage bundle: {}", dir.display());
                        bundles.push(dir.display().to_string());
                    }
                    Err(e) => eprintln!("  failed to write triage bundle: {e}"),
                }
            }
        }
        batch_from += batch;
        match budget_secs {
            // darms-lint: allow(nondet, reason = "soak wall-clock budget: decides how many cells run, never what a cell does")
            Some(budget) if started.elapsed().as_secs() < budget => continue,
            _ => break,
        }
    }

    // darms-lint: allow(nondet, reason = "events/sec is a wall-clock throughput report, not simulation state")
    let wall = started.elapsed().as_secs_f64();
    let eps = total_events as f64 / wall.max(1e-9);
    println!(
        "darms_soak: {cells_run} cells ({} workloads x {} fault classes, seeds from {from}), \
         each run twice for byte-identity: {jobs} jobs ({completed} completed, \
         {cancelled} cancelled), {dirty} cell(s) with violations, \
         {total_events} events in {wall:.2}s ({eps:.0} events/sec)",
        soak::WorkloadClass::ALL.len(),
        soak::FaultClass::ALL.len(),
    );
    println!("  {}", quantile_line("qsub->run     fault-free", &q_faultfree));
    println!("  {}", quantile_line("qsub->run     faulty    ", &q_faulty));
    println!("  {}", quantile_line("dynget->grant fault-free", &g_faultfree));
    println!("  {}", quantile_line("dynget->grant faulty    ", &g_faulty));
    for b in &bundles {
        println!("  bundle: {b}");
    }
    if dirty > 0 {
        std::process::exit(1);
    }
}
