//! Regenerate Fig. 7(b): time for completion of a dynamic request for
//! 1..=6 accelerators, split into the batch-system portion and the
//! resource-management library (MPI) portion.
//!
//! Paper reference values (read off the figure): total grows from about
//! 0.35 s at 1 accelerator to about 0.9 s at 6; the batch-system part
//! dominates and grows, the MPI part stays roughly constant.

use darms_experiments::{fig7b, TRIALS};
use darms_workload::{secs, Table};

fn main() {
    let rows = fig7b(TRIALS);
    let mut t = Table::new(
        format!("Fig 7(b): dynamic request completion, mean of {TRIALS} trials"),
        &["accelerators", "batch[s]", "mpi[s]", "total[s]", "stddev[s]", "paper_total[s]"],
    );
    let paper = [0.35, 0.45, 0.55, 0.65, 0.78, 0.90];
    for r in &rows {
        t.row(vec![
            r.count.to_string(),
            secs(r.dominant),
            secs(r.secondary),
            secs(r.total()),
            secs(r.stddev),
            format!("~{}", paper[r.count - 1]),
        ]);
    }
    println!("{}", t.render());
    darms_experiments::figures::shape::check_fig7b(&rows);
    println!("shape check: batch system dominates and grows; MPI roughly flat — OK");
}
