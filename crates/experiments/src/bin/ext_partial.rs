//! EXT-7: partial grants — the policy the paper names as future work
//! ("allocating less number of accelerators in the case where enough
//! accelerators were not available during a dynamic request", §VI).
//! Burst-heavy jobs request 4 accelerators accepting ≥1; under the strict
//! policy the same requests are all-or-nothing. Partial grants turn
//! rejections into smaller grants, lifting pool utilisation.

use std::sync::Arc;

use darms::prelude::*;
use darms_workload::Table;
use parking_lot::Mutex;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

struct Outcome {
    granted: usize,
    rejected: usize,
    accs_served: usize,
}

fn run(seed: u64, partial: bool) -> Outcome {
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(seed).with_split(2, 5));
    let dac = cluster.dac.clone();
    let granted = Arc::new(Mutex::new(0usize));
    let rejected = Arc::new(Mutex::new(0usize));
    let served = Arc::new(Mutex::new(0usize));
    for i in 0..6 {
        let d = dac.clone();
        let (g, r, sv) = (granted.clone(), rejected.clone(), served.clone());
        let spec = JobSpec::synthetic(format!("j{i}"), secs(80)).ppn(2).script(script(move |jc| {
            let d = d.clone();
            let (g, r, sv) = (g.clone(), r.clone(), sv.clone());
            async move {
                let (mut ses, _) = AcSession::init(&jc, &d, None).await;
                for b in 0..2u64 {
                    jc.proc.sleep(secs(4 + 3 * b)).await;
                    let res =
                        if partial { ses.ac_get_range(4, 1).await } else { ses.ac_get(4).await };
                    match res {
                        Ok(set) => {
                            *g.lock() += 1;
                            *sv.lock() += set.handles.len();
                            jc.proc.sleep(secs(8)).await;
                            ses.ac_free(&set).await.unwrap();
                        }
                        Err(_) => *r.lock() += 1,
                    }
                }
                ses.finalize();
            }
        }));
        cluster.qsub_after(secs(2 * i as u64), spec);
    }
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let (g, r, sv) = (*granted.lock(), *rejected.lock(), *served.lock());
    Outcome { granted: g, rejected: r, accs_served: sv }
}

fn main() {
    let trials = 5;
    let mut strict = (0usize, 0usize, 0usize);
    let mut partial = (0usize, 0usize, 0usize);
    for t in 0..trials {
        let s = run(13000 + t as u64, false);
        strict = (strict.0 + s.granted, strict.1 + s.rejected, strict.2 + s.accs_served);
        let p = run(13000 + t as u64, true);
        partial = (partial.0 + p.granted, partial.1 + p.rejected, partial.2 + p.accs_served);
    }
    let n = trials as f64;
    let mut t = Table::new(
        format!("EXT-7: strict vs partial grants (6 jobs × 2 bursts of 'want 4', pool 5, mean of {trials} trials)"),
        &["policy", "granted", "rejected", "accelerator_grants_total"],
    );
    t.row(vec![
        "strict (paper)".into(),
        format!("{:.1}", strict.0 as f64 / n),
        format!("{:.1}", strict.1 as f64 / n),
        format!("{:.1}", strict.2 as f64 / n),
    ]);
    t.row(vec![
        "partial (min 1)".into(),
        format!("{:.1}", partial.0 as f64 / n),
        format!("{:.1}", partial.1 as f64 / n),
        format!("{:.1}", partial.2 as f64 / n),
    ]);
    println!("{}", t.render());
    assert!(partial.1 < strict.1, "partial grants reject less");
    assert!(partial.0 > strict.0, "partial grants serve more bursts");
    println!("partial grants convert rejections into smaller allocations — fewer stranded bursts");
}
