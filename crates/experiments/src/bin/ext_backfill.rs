//! EXT-5: EASY backfill on/off on a blocked-queue workload (a wide job
//! stuck behind a long hog, short jobs able to slip in).

use darms_experiments::extended::ext5_backfill;
use darms_workload::{secs, Table};

fn main() {
    let trials = 5;
    let mut with = 0.0;
    let mut without = 0.0;
    for t in 0..trials {
        let (w, wo) = ext5_backfill(9000 + t as u64);
        with += w;
        without += wo;
    }
    let n = trials as f64;
    let mut table = Table::new(
        format!("EXT-5: EASY backfill ablation (1 hog + 1 wide + 6 short on 2 CN, mean of {trials} trials)"),
        &["backfill", "makespan[s]"],
    );
    table.row(vec!["on".into(), secs(with / n)]);
    table.row(vec!["off".into(), secs(without / n)]);
    println!("{}", table.render());
    assert!(with < without, "backfill must shorten the makespan");
    println!("backfill shortens the makespan by {:.2}x", (without / n) / (with / n));
}
