//! Perf-regression harness: runs a fixed macro suite and writes
//! `BENCH_sim.json` so engine-throughput regressions show up as a diff.
//!
//! ```text
//! cargo run --release -p darms-experiments --bin perf_report -- \
//!     [--smoke] [--out PATH]
//! ```
//!
//! The suite:
//! 1. **ping-pong** — two processes bouncing a message 200k times: the
//!    pure kernel hot path (send, deliver, park/unpark hand-off). The
//!    pre-PR baseline measured with the same probe on the same class of
//!    machine is embedded for comparison.
//! 2. **fig8** — the paper's scheduler-under-load scenario (the most
//!    actor-heavy figure), serially, events/sec and wall per simulated
//!    second.
//! 3. **swf_replay** — a scaled SWF replay (process-thread heavy).
//! 4. **sweep** — the same fig8 cells serial vs parallel on the trial
//!    runner: records the speedup and that the results are identical.
//!
//! `--smoke` shrinks every dimension (one trial, tiny workload) so the
//! harness can run in CI alongside `make verify`.

use std::fmt::Write as _;
use std::time::Instant;

use darms_experiments::{figures, replay, runner, ReplayConfig};
use darms_sim::{Engine, SimDuration};

/// Ping-pong events/sec measured immediately before this PR's kernel
/// optimizations (best of 4 runs of the identical probe on the same
/// machine). Kept fixed so the JSON shows the cumulative effect.
const PRE_PR_PINGPONG_EPS: f64 = 108_013.0;

fn pingpong_once(round_trips: u32) -> (u64, f64) {
    let n = round_trips;
    let mut sim = Engine::with_seed(1);
    let pong = sim.spawn_process("pong", move |p| {
        for _ in 0..n {
            let (v, src) = p.recv_as::<u32>();
            p.send(src.unwrap(), v + 1, SimDuration::from_micros(1));
        }
    });
    sim.spawn_process("ping", move |p| {
        for i in 0..n {
            p.send(pong.into(), i, SimDuration::from_micros(1));
            let _ = p.recv_as::<u32>();
        }
    });
    let stats = sim.run();
    (stats.events, stats.wall_secs())
}

struct Macro {
    events: u64,
    virtual_secs: f64,
    wall_secs: f64,
}

impl Macro {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs
    }
    fn wall_per_sim_second(&self) -> f64 {
        self.wall_secs / self.virtual_secs
    }
    fn push_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "\"events\":{},\"virtual_secs\":{:.1},\"wall_secs\":{:.3},\
             \"events_per_sec\":{:.0},\"wall_per_sim_second\":{:.6}",
            self.events,
            self.virtual_secs,
            self.wall_secs,
            self.events_per_sec(),
            self.wall_per_sim_second()
        );
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_sim.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument {other}; usage: perf_report [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = runner::default_threads();
    let mode = if smoke { "smoke" } else { "full" };
    println!("perf_report: mode={mode} cores={cores} sweep_threads={threads}");

    // 1. Ping-pong: best of several runs (first doubles as warm-up).
    let round_trips: u32 = if smoke { 20_000 } else { 200_000 };
    let runs = if smoke { 2 } else { 4 };
    let mut pp_events = 0u64;
    let mut pp_best_wall = f64::MAX;
    for _ in 0..runs {
        let (events, wall) = pingpong_once(round_trips);
        pp_events = events;
        if wall < pp_best_wall {
            pp_best_wall = wall;
        }
    }
    let pp_eps = pp_events as f64 / pp_best_wall;
    println!(
        "  pingpong: {pp_events} events in {pp_best_wall:.3}s -> {pp_eps:.0} events/sec \
         ({:.2}x pre-PR baseline)",
        pp_eps / PRE_PR_PINGPONG_EPS
    );

    // 2. fig8 scenario, serial (stable macro numbers).
    let fig8_trials = if smoke { 1 } else { 5 };
    let t0 = Instant::now();
    let fig8_cells =
        runner::run_indexed_with(1, fig8_trials, |t| figures::fig8_trial_full(16, 3000 + t as u64));
    let fig8 = Macro {
        events: fig8_cells.iter().map(|(_, _, s)| s.events).sum(),
        virtual_secs: fig8_cells.iter().map(|(_, _, s)| s.end_time.as_secs_f64()).sum(),
        wall_secs: t0.elapsed().as_secs_f64(),
    };
    println!(
        "  fig8 (load 16, {fig8_trials} trials): {:.0} events/sec, {:.6} wall s per sim s",
        fig8.events_per_sec(),
        fig8.wall_per_sim_second()
    );

    // 3. Scaled SWF replay.
    let swf_jobs = if smoke { 10 } else { 120 };
    let cfg = ReplayConfig { jobs: swf_jobs, seed: 4242, ..ReplayConfig::default() };
    let t0 = Instant::now();
    let outcome = replay(&cfg);
    let swf = Macro {
        events: outcome.stats.events,
        virtual_secs: outcome.stats.end_time.as_secs_f64(),
        wall_secs: t0.elapsed().as_secs_f64(),
    };
    println!(
        "  swf_replay ({swf_jobs} jobs): {:.0} events/sec, {:.6} wall s per sim s",
        swf.events_per_sec(),
        swf.wall_per_sim_second()
    );

    // 4. Serial vs parallel sweep of identical swf_replay cells (the
    // heaviest per-cell scenario, so the speedup is not noise-bound).
    let sweep_cells = if smoke { 2 } else { 8 };
    let cell = |i: usize| {
        replay(&ReplayConfig { jobs: swf_jobs, seed: 4242 + i as u64, ..ReplayConfig::default() })
    };
    let t0 = Instant::now();
    let serial = runner::run_indexed_with(1, sweep_cells, cell);
    let serial_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let parallel = runner::run_indexed_with(threads, sweep_cells, cell);
    let parallel_secs = t0.elapsed().as_secs_f64();
    // Reports compared byte-for-byte (f64 Debug is round-trip exact);
    // SimStats by its deterministic-field equality (wall time excluded).
    let identical = serial.len() == parallel.len()
        && serial.iter().zip(&parallel).all(|(a, b)| {
            format!("{:?}", a.report) == format!("{:?}", b.report)
                && a.stats == b.stats
                && (a.jobs, a.acc_jobs, a.pool) == (b.jobs, b.acc_jobs, b.pool)
        });
    let speedup = serial_secs / parallel_secs;
    println!(
        "  sweep ({sweep_cells} cells, {threads} threads): serial {serial_secs:.2}s, \
         parallel {parallel_secs:.2}s -> {speedup:.2}x, identical={identical}"
    );
    assert!(identical, "parallel sweep must reproduce the serial results exactly");

    let mut json = String::with_capacity(1024);
    let _ = writeln!(
        json,
        "{{\n  \"schema\": 1,\n  \"mode\": \"{mode}\",\n  \"cores\": {cores},\n  \
         \"sweep_threads\": {threads},"
    );
    let _ = writeln!(
        json,
        "  \"pingpong\": {{\"round_trips\": {round_trips}, \"events\": {pp_events}, \
         \"wall_secs\": {pp_best_wall:.3}, \"events_per_sec\": {pp_eps:.0}, \
         \"pre_pr_events_per_sec\": {PRE_PR_PINGPONG_EPS:.0}, \
         \"speedup_vs_pre_pr\": {:.2}}},",
        pp_eps / PRE_PR_PINGPONG_EPS
    );
    json.push_str(&format!("  \"fig8\": {{\"trials\": {fig8_trials}, \"load\": 16, "));
    fig8.push_json(&mut json);
    json.push_str("},\n");
    json.push_str(&format!("  \"swf_replay\": {{\"jobs\": {swf_jobs}, "));
    swf.push_json(&mut json);
    json.push_str("},\n");
    let _ = writeln!(
        json,
        "  \"sweep\": {{\"scenario\": \"swf_replay(jobs={swf_jobs})\", \"cells\": {sweep_cells}, \
         \"threads\": {threads}, \"serial_secs\": {serial_secs:.3}, \
         \"parallel_secs\": {parallel_secs:.3}, \"speedup\": {speedup:.2}, \
         \"byte_identical\": {identical}}}\n}}"
    );

    std::fs::write(&out_path, &json).expect("write bench report");
    println!("wrote {out_path}");
}
