//! Perf-regression harness: runs a fixed macro suite and writes
//! `BENCH_sim.json` so engine-throughput regressions show up as a diff.
//!
//! ```text
//! cargo run --release -p darms-experiments --bin perf_report -- \
//!     [--smoke] [--out PATH] [--check BASELINE] [--swf-jobs N] [--fig8-load N]
//! ```
//!
//! The suite:
//! 1. **ping-pong** — two processes bouncing a message 200k times: the
//!    pure kernel hot path (send, deliver, future-poll hand-off). The
//!    pre-PR baseline measured with the same probe on the same class of
//!    machine is embedded for comparison.
//! 2. **spawn-churn** — 10k short-lived processes spawned, slept and
//!    retired: process-lifecycle throughput. Impossible at this scale
//!    with an OS thread per process; trivial for stackless futures.
//! 3. **fig8** — the paper's scheduler-under-load scenario (the most
//!    actor-heavy figure), serially, events/sec and wall per simulated
//!    second.
//! 4. **swf_replay** — a scaled SWF replay (process heavy).
//! 5. **sweep** — the same swf_replay cells serial vs parallel on the
//!    trial runner with `available_parallelism()` workers: records both
//!    rows (serial and parallel) and that the results are identical.
//! 6. **soak** — a small `(seed × fault-plan × workload)` soak matrix
//!    (every cell run twice for byte-identity, invariants audited):
//!    cells run, violations, events/sec, and the exact p50/p99/p999
//!    latency SLOs (qsub→run and dynget→grant, split faulty vs
//!    fault-free) — "production readiness" as a number.
//! 7. **datacenter** — the diurnal front-door scenario at 1k hosts
//!    (and 10k in full mode): events/sec and peak RSS (`VmHWM`) per
//!    scale, plus the 10k-vs-1k per-event wall ratio that proves no
//!    O(hosts) work is left on a per-event path.
//!
//! `--swf-jobs` / `--fig8-load` override the historical 120-job and
//! load-16 defaults — they are defaults, not ceilings. `--smoke`
//! shrinks every dimension (one trial, tiny workload) so the harness
//! can run in CI alongside `make verify` (the datacenter 1k cell runs
//! at full scale in both modes; only the 10k cell is full-only).
//! `--check BASELINE` compares the measured ping-pong throughput and
//! datacenter@1k events/sec against a committed `BENCH_sim.json` and
//! exits non-zero on a regression of more than 20% in either, and
//! fails on **any** soak invariant violation — this is what
//! `make bench-check` (part of `make verify`) runs.

use std::fmt::Write as _;
use std::time::Instant;

use darms_experiments::{
    datacenter, figures, hostmem, replay, runner, soak, DatacenterConfig, ReplayConfig,
};
use darms_sim::{Engine, QuantileEstimator, QueueKind, SimConfig, SimDuration};

/// Ping-pong events/sec measured immediately before this PR's kernel
/// optimizations (best of 4 runs of the identical probe on the same
/// machine). Kept fixed so the JSON shows the cumulative effect.
const PRE_PR_PINGPONG_EPS: f64 = 108_013.0;

fn pingpong_once(round_trips: u32, queue: QueueKind) -> (u64, f64) {
    let n = round_trips;
    let mut sim = Engine::new(SimConfig { seed: 1, queue_kind: queue, ..Default::default() });
    let pong = sim.spawn_process("pong", move |p| async move {
        for _ in 0..n {
            let (v, src) = p.recv_as::<u32>().await;
            p.send(src.unwrap(), v + 1, SimDuration::from_micros(1));
        }
    });
    sim.spawn_process("ping", move |p| async move {
        for i in 0..n {
            p.send(pong.into(), i, SimDuration::from_micros(1));
            let _ = p.recv_as::<u32>().await;
        }
    });
    let stats = sim.run();
    (stats.events, stats.wall_secs())
}

/// Spawn-churn probe: `procs` short-lived processes, each sleeping a few
/// microseconds and exiting, plus a final full-population wave that is
/// alive at once. Exercises spawn, first-poll, park and retirement — the
/// paths that used to cost an OS thread each.
fn spawn_churn_once(procs: u32) -> (u64, f64, u32) {
    let mut sim = Engine::with_seed(1);
    for i in 0..procs {
        sim.spawn_process_after(
            format!("churn{i}"),
            SimDuration::from_micros((i % 97) as u64),
            move |p| async move {
                p.sleep(SimDuration::from_micros(5)).await;
            },
        );
    }
    let stats = sim.run();
    (stats.events, stats.wall_secs(), procs)
}

struct Macro {
    events: u64,
    virtual_secs: f64,
    wall_secs: f64,
}

impl Macro {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs
    }
    fn wall_per_sim_second(&self) -> f64 {
        self.wall_secs / self.virtual_secs
    }
    fn push_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "\"events\":{},\"virtual_secs\":{:.1},\"wall_secs\":{:.3},\
             \"events_per_sec\":{:.0},\"wall_per_sim_second\":{:.6}",
            self.events,
            self.virtual_secs,
            self.wall_secs,
            self.events_per_sec(),
            self.wall_per_sim_second()
        );
    }
}

/// Pull one numeric field out of a committed `BENCH_sim.json` without a
/// JSON dependency: the harness writes each top-level object on a
/// single line, so a (row, key) substring scan is exact.
fn baseline_field(path: &str, row: &str, key: &str) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--check: cannot read baseline {path}: {e}"));
    let row_tag = format!("\"{row}\"");
    let line = text
        .lines()
        .find(|l| l.contains(&row_tag))
        .unwrap_or_else(|| panic!("--check: no {row_tag} entry in {path}"));
    let key_tag = format!("\"{key}\": ");
    let at = line.find(&key_tag).unwrap_or_else(|| panic!("--check: no {key} in {path}"));
    let rest = &line[at + key_tag.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().unwrap_or_else(|e| panic!("--check: bad {key} in {path}: {e}"))
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_sim.json");
    let mut check_path: Option<String> = None;
    // The historical constants (120 SWF jobs, fig8 load 16) are
    // defaults, not ceilings: both macros take their scale from the
    // command line.
    let mut swf_jobs_arg: Option<usize> = None;
    let mut fig8_load_arg: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let usage = "usage: perf_report [--smoke] [--out PATH] [--check BASELINE] \
                     [--swf-jobs N] [--fig8-load N]";
        let num = |v: Option<String>, flag: &str| -> usize {
            v.unwrap_or_else(|| panic!("{flag} needs a number; {usage}"))
                .parse()
                .unwrap_or_else(|e| panic!("{flag} needs a number: {e}"))
        };
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check_path = Some(args.next().expect("--check needs a baseline path")),
            "--swf-jobs" => swf_jobs_arg = Some(num(args.next(), "--swf-jobs")),
            "--fig8-load" => fig8_load_arg = Some(num(args.next(), "--fig8-load")),
            other => {
                eprintln!("unknown argument {other}; {usage}");
                std::process::exit(2);
            }
        }
    }

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // The sweep's parallel row always uses the machine's full
    // parallelism so the recorded speedup is comparable across runs
    // (DARMS_SWEEP_THREADS and set_threads() still govern other sweeps).
    let threads = cores;
    let mode = if smoke { "smoke" } else { "full" };
    println!("perf_report: mode={mode} cores={cores} sweep_threads={threads}");

    // 1. Ping-pong: best of several runs (first doubles as warm-up),
    // once per queue kind. The default (heap) row is the gated number;
    // the calendar row records what the alternative backend costs on
    // the same probe.
    let round_trips: u32 = if smoke { 20_000 } else { 200_000 };
    let runs = if smoke { 2 } else { 4 };
    let best = |queue: QueueKind| {
        let mut events = 0u64;
        let mut best_wall = f64::MAX;
        for _ in 0..runs {
            let (ev, wall) = pingpong_once(round_trips, queue);
            events = ev;
            if wall < best_wall {
                best_wall = wall;
            }
        }
        (events, best_wall)
    };
    let (pp_events, pp_best_wall) = best(QueueKind::Heap);
    let (cal_events, cal_best_wall) = best(QueueKind::Calendar);
    assert_eq!(pp_events, cal_events, "queue kinds must agree on the event count");
    let pp_eps = pp_events as f64 / pp_best_wall;
    let cal_eps = cal_events as f64 / cal_best_wall;
    println!(
        "  pingpong: {pp_events} events in {pp_best_wall:.3}s -> {pp_eps:.0} events/sec \
         ({:.2}x pre-PR baseline); calendar queue {cal_eps:.0} events/sec",
        pp_eps / PRE_PR_PINGPONG_EPS
    );

    // 2. Spawn churn: thousands of short-lived processes.
    let churn_procs: u32 = if smoke { 1_000 } else { 10_000 };
    let (churn_events, churn_wall, _) = spawn_churn_once(churn_procs);
    let churn_pps = churn_procs as f64 / churn_wall;
    let churn_eps = churn_events as f64 / churn_wall;
    println!(
        "  spawn_churn: {churn_procs} processes, {churn_events} events in {churn_wall:.3}s \
         -> {churn_pps:.0} procs/sec, {churn_eps:.0} events/sec"
    );

    // 3. fig8 scenario, serial (stable macro numbers).
    let fig8_trials = if smoke { 1 } else { 5 };
    let fig8_load = fig8_load_arg.unwrap_or(16);
    let t0 = Instant::now();
    let fig8_cells = runner::run_indexed_with(1, fig8_trials, |t| {
        figures::fig8_trial_full(fig8_load, 3000 + t as u64)
    });
    let fig8 = Macro {
        events: fig8_cells.iter().map(|(_, _, s)| s.events).sum(),
        virtual_secs: fig8_cells.iter().map(|(_, _, s)| s.end_time.as_secs_f64()).sum(),
        wall_secs: t0.elapsed().as_secs_f64(),
    };
    println!(
        "  fig8 (load {fig8_load}, {fig8_trials} trials): {:.0} events/sec, \
         {:.6} wall s per sim s",
        fig8.events_per_sec(),
        fig8.wall_per_sim_second()
    );

    // 4. Scaled SWF replay.
    let swf_jobs = swf_jobs_arg.unwrap_or(if smoke { 10 } else { 120 });
    let cfg = ReplayConfig { jobs: swf_jobs, seed: 4242, ..ReplayConfig::default() };
    let t0 = Instant::now();
    let outcome = replay(&cfg);
    let swf = Macro {
        events: outcome.stats.events,
        virtual_secs: outcome.stats.end_time.as_secs_f64(),
        wall_secs: t0.elapsed().as_secs_f64(),
    };
    println!(
        "  swf_replay ({swf_jobs} jobs): {:.0} events/sec, {:.6} wall s per sim s",
        swf.events_per_sec(),
        swf.wall_per_sim_second()
    );

    // 5. Serial vs parallel sweep of identical swf_replay cells (the
    // heaviest per-cell scenario, so the speedup is not noise-bound).
    let sweep_cells = if smoke { 2 } else { 8 };
    let cell = |i: usize| {
        replay(&ReplayConfig { jobs: swf_jobs, seed: 4242 + i as u64, ..ReplayConfig::default() })
    };
    let t0 = Instant::now();
    let serial = runner::run_indexed_with(1, sweep_cells, cell);
    let serial_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let parallel = runner::run_indexed_with(threads, sweep_cells, cell);
    let parallel_secs = t0.elapsed().as_secs_f64();
    // Reports compared byte-for-byte (f64 Debug is round-trip exact);
    // SimStats by its deterministic-field equality (wall time excluded).
    let identical = serial.len() == parallel.len()
        && serial.iter().zip(&parallel).all(|(a, b)| {
            format!("{:?}", a.report) == format!("{:?}", b.report)
                && a.stats == b.stats
                && (a.jobs, a.acc_jobs, a.pool) == (b.jobs, b.acc_jobs, b.pool)
        });
    let speedup = serial_secs / parallel_secs;
    println!(
        "  sweep ({sweep_cells} cells, {threads} threads): serial {serial_secs:.2}s, \
         parallel {parallel_secs:.2}s -> {speedup:.2}x, identical={identical}"
    );
    assert!(identical, "parallel sweep must reproduce the serial results exactly");

    // 6. Soak matrix: chaos + scale with invariant auditing and SLO
    // quantiles (see darms_experiments::soak and the darms_soak bin).
    let soak_seeds = if smoke { 1 } else { 3 };
    let soak_cells = soak::matrix(0..soak_seeds);
    let t0 = Instant::now();
    let soak_outcomes =
        runner::run_indexed(soak_cells.len(), |i| soak::run_cell_checked(&soak_cells[i]));
    let soak_wall = t0.elapsed().as_secs_f64();
    let soak_violations: usize = soak_outcomes.iter().map(|o| o.violations.len()).sum();
    // Each cell runs twice (byte-identity), so both runs' events count.
    let soak_events: u64 = soak_outcomes.iter().map(|o| o.events * 2).sum();
    let soak_eps = soak_events as f64 / soak_wall;
    let mut q_free = QuantileEstimator::new();
    let mut q_faulty = QuantileEstimator::new();
    let mut g_free = QuantileEstimator::new();
    let mut g_faulty = QuantileEstimator::new();
    for o in &soak_outcomes {
        let (q, g) = if o.cell.faults.faulty() {
            (&mut q_faulty, &mut g_faulty)
        } else {
            (&mut q_free, &mut g_free)
        };
        q.observe_all(&o.qsub_to_run);
        g.observe_all(&o.dynget_to_grant);
    }
    let slo_json = |est: &QuantileEstimator| match est.summary() {
        Some(s) => format!(
            "{{\"count\": {}, \"p50\": {:.6}, \"p99\": {:.6}, \"p999\": {:.6}}}",
            s.count, s.p50, s.p99, s.p999
        ),
        None => "null".to_string(),
    };
    println!(
        "  soak ({} cells, {soak_violations} violations): {soak_events} events in \
         {soak_wall:.2}s -> {soak_eps:.0} events/sec",
        soak_cells.len()
    );
    for o in soak_outcomes.iter().filter(|o| !o.clean()) {
        println!("    cell {}: {:?}", o.cell.id(), o.violations);
    }

    // 7. Datacenter scale: the whole stack — kernel hot path, server
    // indexes, scheduler free-pools, incremental snapshots — under a
    // diurnal front door at 1k hosts and (full mode) 10k hosts. Scales
    // run ascending because `VmHWM` is a process-lifetime high-water
    // mark: the value sampled after the 1k run cannot have been
    // inflated by the 10k run. The 1k row is what `--check` gates.
    let dc_run = |hosts: usize, runs: usize| {
        let cfg = DatacenterConfig::at_scale(hosts, 42);
        let mut best_wall = f64::MAX;
        let mut out = None;
        for _ in 0..runs {
            let t0 = Instant::now();
            let o = datacenter::run_datacenter(&cfg);
            best_wall = best_wall.min(t0.elapsed().as_secs_f64());
            out = Some(o);
        }
        (out.expect("runs >= 1"), best_wall, hostmem::peak_rss_mib())
    };
    let (dc1, dc1_wall, dc1_rss) = dc_run(1_000, 2);
    let dc1_eps = dc1.stats.events as f64 / dc1_wall;
    let rss = |r: Option<f64>| r.map_or_else(|| "null".into(), |m| format!("{m:.1}"));
    println!(
        "  datacenter (1k hosts, {} jobs): {} events in {dc1_wall:.3}s -> {dc1_eps:.0} \
         events/sec, peak RSS {} MiB",
        dc1.jobs,
        dc1.stats.events,
        rss(dc1_rss)
    );
    let dc10 = if smoke {
        None
    } else {
        let (o, wall, rss10) = dc_run(10_000, 1);
        let eps = o.stats.events as f64 / wall;
        // The scale gate: per-event wall cost at 10k within 2x of 1k
        // (i.e. nothing O(hosts) is left on a per-event path).
        let per_event_ratio = dc1_eps / eps;
        println!(
            "  datacenter (10k hosts, {} jobs): {} events in {wall:.3}s -> {eps:.0} \
             events/sec, peak RSS {} MiB, per-event {per_event_ratio:.2}x of 1k",
            o.jobs,
            o.stats.events,
            rss(rss10)
        );
        Some((o, wall, rss10, eps, per_event_ratio))
    };

    let mut json = String::with_capacity(1024);
    let _ = writeln!(
        json,
        "{{\n  \"schema\": 1,\n  \"mode\": \"{mode}\",\n  \"cores\": {cores},\n  \
         \"sweep_threads\": {threads},"
    );
    let _ = writeln!(
        json,
        "  \"pingpong\": {{\"round_trips\": {round_trips}, \"events\": {pp_events}, \
         \"wall_secs\": {pp_best_wall:.3}, \"events_per_sec\": {pp_eps:.0}, \
         \"pre_pr_events_per_sec\": {PRE_PR_PINGPONG_EPS:.0}, \
         \"speedup_vs_pre_pr\": {:.2}}},",
        pp_eps / PRE_PR_PINGPONG_EPS
    );
    let _ = writeln!(
        json,
        "  \"queue_compare\": {{\"probe\": \"pingpong\", \"heap_events_per_sec\": {pp_eps:.0}, \
         \"calendar_events_per_sec\": {cal_eps:.0}, \"calendar_vs_heap\": {:.2}}},",
        cal_eps / pp_eps
    );
    let _ = writeln!(
        json,
        "  \"spawn_churn\": {{\"processes\": {churn_procs}, \"events\": {churn_events}, \
         \"wall_secs\": {churn_wall:.3}, \"procs_per_sec\": {churn_pps:.0}, \
         \"events_per_sec\": {churn_eps:.0}}},"
    );
    json.push_str(&format!("  \"fig8\": {{\"trials\": {fig8_trials}, \"load\": {fig8_load}, "));
    fig8.push_json(&mut json);
    json.push_str("},\n");
    json.push_str(&format!("  \"swf_replay\": {{\"jobs\": {swf_jobs}, "));
    swf.push_json(&mut json);
    json.push_str("},\n");
    let _ = writeln!(
        json,
        "  \"sweep\": {{\"scenario\": \"swf_replay(jobs={swf_jobs})\", \"cells\": {sweep_cells}, \
         \"threads\": {threads}, \"serial_secs\": {serial_secs:.3}, \
         \"parallel_secs\": {parallel_secs:.3}, \"speedup\": {speedup:.2}, \
         \"byte_identical\": {identical}}},"
    );
    let _ = writeln!(
        json,
        "  \"soak\": {{\"cells\": {}, \"violations\": {soak_violations}, \
         \"events\": {soak_events}, \"wall_secs\": {soak_wall:.3}, \
         \"events_per_sec\": {soak_eps:.0}, \
         \"qsub_to_run\": {{\"fault_free\": {}, \"faulty\": {}}}, \
         \"dynget_to_grant\": {{\"fault_free\": {}, \"faulty\": {}}}}},",
        soak_cells.len(),
        slo_json(&q_free),
        slo_json(&q_faulty),
        slo_json(&g_free),
        slo_json(&g_faulty),
    );
    let mut dc_row = format!(
        "  \"datacenter\": {{\"hosts_1k\": 1000, \"jobs_1k\": {}, \"events_1k\": {}, \
         \"wall_secs_1k\": {dc1_wall:.3}, \"events_per_sec_1k\": {dc1_eps:.0}, \
         \"peak_rss_mib_1k\": {}",
        dc1.jobs,
        dc1.stats.events,
        rss(dc1_rss)
    );
    if let Some((o, wall, rss10, eps, ratio)) = &dc10 {
        let _ = write!(
            dc_row,
            ", \"hosts_10k\": 10000, \"jobs_10k\": {}, \"events_10k\": {}, \
             \"wall_secs_10k\": {wall:.3}, \"events_per_sec_10k\": {eps:.0}, \
             \"peak_rss_mib_10k\": {}, \"per_event_ratio_10k_vs_1k\": {ratio:.2}",
            o.jobs,
            o.stats.events,
            rss(*rss10)
        );
    }
    dc_row.push_str("}\n}");
    json.push_str(&dc_row);
    json.push('\n');

    std::fs::write(&out_path, &json).expect("write bench report");
    println!("wrote {out_path}");

    if let Some(baseline) = check_path {
        if soak_violations > 0 {
            eprintln!(
                "bench-check FAILED: the soak matrix reported {soak_violations} invariant \
                 violation(s) — see the cell lines above"
            );
            std::process::exit(1);
        }
        let base_eps = baseline_field(&baseline, "pingpong", "events_per_sec");
        if pp_eps < base_eps * 0.8 {
            eprintln!(
                "bench-check FAILED: pingpong {pp_eps:.0} events/sec is more than 20% below \
                 the committed baseline {base_eps:.0} ({baseline})"
            );
            std::process::exit(1);
        }
        // The datacenter 1k cell is identical in smoke and full mode,
        // so its events/sec is directly comparable to the committed
        // full-mode baseline.
        let base_dc = baseline_field(&baseline, "datacenter", "events_per_sec_1k");
        if dc1_eps < base_dc * 0.8 {
            eprintln!(
                "bench-check FAILED: datacenter@1k {dc1_eps:.0} events/sec is more than 20% \
                 below the committed baseline {base_dc:.0} ({baseline})"
            );
            std::process::exit(1);
        }
        println!(
            "bench-check ok: pingpong {pp_eps:.0} events/sec >= 80% of baseline {base_eps:.0}, \
             datacenter@1k {dc1_eps:.0} >= 80% of {base_dc:.0}, soak matrix clean"
        );
    }
}
