//! Replay a Standard Workload Format trace through the batch system.
//! With no trace argument, a bundled SWF snippet (generated, then
//! round-tripped through the SWF printer/parser) is replayed with a
//! synthetic accelerator-demand overlay — demonstrating how a real
//! Parallel Workloads Archive trace would drive this system:
//!
//! ```text
//! cargo run --release -p darms-experiments --bin swf_replay -- \
//!     [trace.swf] [--jobs N] [--seed S] [--trials T]
//! ```
//!
//! `--jobs` sizes the bundled trace (default 30; ignored with a trace
//! file), `--seed` sets the base seed (default 4242), and `--trials`
//! replays T seeds (`S, S+1, …`) on the parallel sweep runner.

use darms_experiments::{replay, replay_swf, runner, ReplayConfig, ReplayOutcome};
use darms_workload::Table;

struct Args {
    cfg: ReplayConfig,
    trials: usize,
    trace: Option<String>,
}

fn usage() -> ! {
    eprintln!("usage: swf_replay [trace.swf] [--jobs N] [--seed S] [--trials T]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args { cfg: ReplayConfig::default(), trials: 1, trace: None };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> u64 {
            match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => n,
                None => {
                    eprintln!("{name} needs a numeric argument");
                    usage();
                }
            }
        };
        match a.as_str() {
            "--jobs" => out.cfg.jobs = num("--jobs") as usize,
            "--seed" => out.cfg.seed = num("--seed"),
            "--trials" => out.trials = (num("--trials") as usize).max(1),
            "--help" | "-h" => usage(),
            _ if a.starts_with('-') => {
                eprintln!("unknown flag {a}");
                usage();
            }
            _ => out.trace = Some(a),
        }
    }
    out
}

fn print_summary(o: &ReplayOutcome) {
    let mut t = Table::new("SWF replay summary", &["metric", "value"]);
    t.row(vec!["jobs completed".into(), o.report.finished.to_string()]);
    t.row(vec!["mean wait [s]".into(), format!("{:.1}", o.report.mean_wait)]);
    t.row(vec!["p95 wait [s]".into(), format!("{:.1}", o.report.p95_wait)]);
    t.row(vec!["mean turnaround [s]".into(), format!("{:.1}", o.report.mean_turnaround)]);
    t.row(vec!["makespan [s]".into(), format!("{:.1}", o.report.makespan.as_secs_f64())]);
    t.row(vec![
        "acc pool utilisation".into(),
        format!("{:.1}%", 100.0 * o.report.acc_utilisation(o.pool)),
    ]);
    println!("{}", t.render());
    println!(
        "simulated {:.0} virtual seconds in {} events",
        o.stats.end_time.as_secs_f64(),
        o.stats.events
    );
}

fn main() {
    let Args { cfg, trials, trace } = parse_args();
    let text = trace.map(|path| std::fs::read_to_string(&path).expect("readable SWF file"));

    let outcomes = runner::run_indexed(trials, |t| {
        let mut c = cfg;
        c.seed = cfg.seed + t as u64;
        match &text {
            Some(s) => replay_swf(s, &c),
            None => replay(&c),
        }
    });

    let first = &outcomes[0];
    println!(
        "replaying {} SWF jobs ({} with accelerator demand) on {} CN + {} AC\n",
        first.jobs, first.acc_jobs, cfg.compute_nodes, first.pool
    );

    if trials == 1 {
        print_summary(first);
        return;
    }

    let mut t = Table::new(
        format!(
            "SWF replay over {trials} trials (seeds {}..={})",
            cfg.seed,
            cfg.seed + trials as u64 - 1
        ),
        &["seed", "mean wait [s]", "makespan [s]", "acc util", "events"],
    );
    for (i, o) in outcomes.iter().enumerate() {
        t.row(vec![
            (cfg.seed + i as u64).to_string(),
            format!("{:.1}", o.report.mean_wait),
            format!("{:.1}", o.report.makespan.as_secs_f64()),
            format!("{:.1}%", 100.0 * o.report.acc_utilisation(o.pool)),
            o.stats.events.to_string(),
        ]);
    }
    println!("{}", t.render());
    let mean_wait = outcomes.iter().map(|o| o.report.mean_wait).sum::<f64>() / trials as f64;
    let mean_makespan =
        outcomes.iter().map(|o| o.report.makespan.as_secs_f64()).sum::<f64>() / trials as f64;
    println!(
        "mean over trials: wait {:.1} s, makespan {:.1} s ({} sweep threads)",
        mean_wait,
        mean_makespan,
        runner::default_threads().min(trials)
    );
}
