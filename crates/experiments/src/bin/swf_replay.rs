//! Replay a Standard Workload Format trace through the batch system.
//! With no argument, a bundled 30-job SWF snippet (generated, then
//! round-tripped through the SWF printer/parser) is replayed with a
//! synthetic accelerator-demand overlay — demonstrating how a real
//! Parallel Workloads Archive trace would drive this system:
//!
//! `cargo run --release -p darms-experiments --bin swf_replay [trace.swf]`

use std::sync::Arc;

use darms::prelude::*;
use darms_workload::{
    overlay_accelerator_demand, parse_swf, to_swf, Dist, JobOutcome, Table, WorkloadConfig,
    WorkloadReport,
};
use parking_lot::Mutex;

fn main() {
    let cores_per_node = 8;
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).expect("readable SWF file"),
        None => {
            // Bundled demo trace: a generated workload exported to SWF.
            let mut jobs = WorkloadConfig::cpu_only().generate(30, 4242);
            for j in &mut jobs {
                j.nodes = j.nodes.min(3);
                j.ppn = j.ppn.min(cores_per_node);
            }
            to_swf(&jobs, cores_per_node)
        }
    };
    let mut jobs = parse_swf(&text, cores_per_node).expect("valid SWF");
    // SWF predates network-attached accelerators: overlay demand so the
    // DAC path is exercised (40% of jobs, 1-2 accelerators per node).
    overlay_accelerator_demand(&mut jobs, 0.4, &Dist::Choice(vec![(2.0, 1.0), (1.0, 2.0)]), 7);

    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(4242).with_split(3, 4));
    let dac = cluster.dac.clone();
    let pool = cluster.accs.len();
    let n_jobs = jobs.len();
    println!(
        "replaying {} SWF jobs ({} with accelerator demand) on 3 CN + {pool} AC\n",
        n_jobs,
        jobs.iter().filter(|j| j.acpn > 0).count()
    );

    for (i, t) in jobs.iter().enumerate() {
        let nodes = t.nodes.min(3);
        let acpn = t.acpn.min((pool / nodes) as u32);
        let runtime = t.runtime;
        let d = dac.clone();
        let spec = JobSpec::synthetic(format!("swf{i:03}"), runtime)
            .owner(&t.owner)
            .nodes(nodes)
            .ppn(t.ppn.min(cores_per_node))
            .acpn(acpn)
            .walltime(t.walltime_estimate)
            .script(script(move |jc| {
                let (ses, handles) = AcSession::init(jc, &d, None);
                assert_eq!(handles.len(), jc.acc_hosts.len());
                let _ = jc.sleep_interruptible(runtime);
                ses.finalize();
            }));
        cluster.qsub_after(t.arrival, spec);
    }

    let statuses = Arc::new(Mutex::new(Vec::new()));
    let out = statuses.clone();
    cluster.client_after("watch", SimDuration::from_secs(1), move |c| loop {
        let st = c.qstat();
        if st.len() == n_jobs && st.iter().all(|s| s.state.is_terminal()) {
            *out.lock() = st;
            break;
        }
        c.proc.sleep(SimDuration::from_secs(30));
    });
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);

    let statuses = statuses.lock().clone();
    let outcomes: Vec<JobOutcome> = statuses
        .iter()
        .map(|s| JobOutcome {
            submitted: s.submitted,
            started: s.started,
            completed: s.completed,
            nodes: s.compute_hosts.len(),
            accs: s.static_accs.iter().map(Vec::len).sum(),
        })
        .collect();
    let report = WorkloadReport::from_outcomes(&outcomes).expect("jobs completed");
    let mut t = Table::new("SWF replay summary", &["metric", "value"]);
    t.row(vec!["jobs completed".into(), report.finished.to_string()]);
    t.row(vec!["mean wait [s]".into(), format!("{:.1}", report.mean_wait)]);
    t.row(vec!["p95 wait [s]".into(), format!("{:.1}", report.p95_wait)]);
    t.row(vec!["mean turnaround [s]".into(), format!("{:.1}", report.mean_turnaround)]);
    t.row(vec!["makespan [s]".into(), format!("{:.1}", report.makespan.as_secs_f64())]);
    t.row(vec![
        "acc pool utilisation".into(),
        format!("{:.1}%", 100.0 * report.acc_utilisation(pool)),
    ]);
    println!("{}", t.render());
    println!(
        "simulated {:.0} virtual seconds in {} events",
        stats.end_time.as_secs_f64(),
        stats.events
    );
}
