//! EXT-3: the fairness cost of scheduling dynamic requests at top
//! priority — the concern the paper itself raises ("scheduling dynamic
//! requests with top priority may lead to unfair usage scenarios", §VI).
//! A greedy running job hammers `AC_Get`; queued accelerator jobs wait.

use darms_experiments::extended::ext3_fairness;
use darms_workload::{secs, Table};

fn main() {
    let trials = 5;
    let mut top = 0.0;
    let mut low = 0.0;
    for t in 0..trials {
        let (a, b) = ext3_fairness(7000 + t as u64);
        top += a;
        low += b;
    }
    let n = trials as f64;
    let mut table = Table::new(
        format!(
            "EXT-3: queued-job wait under a greedy dynamic requester (mean of {trials} trials)"
        ),
        &["dyn_priority", "mean_queued_wait[s]"],
    );
    table.row(vec!["top (paper's policy)".into(), secs(top / n)]);
    table.row(vec!["low (ablation)".into(), secs(low / n)]);
    println!("{}", table.render());
    println!(
        "top-priority dynamic scheduling makes queued accelerator jobs wait {:.2}x longer",
        (top / n) / (low / n).max(1e-9)
    );
}
