//! Regenerate Fig. 7(a): time for completion of `AC_Init()` for 1..=6
//! statically allocated accelerators, split into waiting time (until the
//! daemons were ready) and connect time (communicator construction).
//!
//! Paper reference values (read off the figure): total grows from about
//! 0.12 s at 1 accelerator to about 0.3 s at 6, with waiting dominating.

use darms_experiments::{fig7a, TRIALS};
use darms_workload::{secs, Table};

fn main() {
    let rows = fig7a(TRIALS);
    let mut t = Table::new(
        format!("Fig 7(a): AC_Init() completion, mean of {TRIALS} trials"),
        &["accelerators", "waiting[s]", "connect[s]", "total[s]", "stddev[s]", "paper_total[s]"],
    );
    let paper = [0.12, 0.16, 0.20, 0.23, 0.27, 0.30];
    for r in &rows {
        t.row(vec![
            r.count.to_string(),
            secs(r.dominant),
            secs(r.secondary),
            secs(r.total()),
            secs(r.stddev),
            format!("~{}", paper[r.count - 1]),
        ]);
    }
    println!("{}", t.render());
    darms_experiments::figures::shape::check_fig7a(&rows);
    println!("shape check: waiting dominates and grows with the accelerator count — OK");
}
