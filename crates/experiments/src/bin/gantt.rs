//! Visual replay: run a generated mixed workload through the batch
//! system and print an ASCII Gantt chart of per-job lifetimes (queued vs
//! running) plus accelerator-pool occupancy over time — the schedule the
//! batch system actually produced.
//!
//! Run with: `cargo run --release -p darms-experiments --bin gantt`
//!
//! The run collects the structured event stream; set
//! `DARMS_CHROME_TRACE=/path/to/trace.json` to also write it in Chrome
//! `trace_event` format (open in `chrome://tracing` or Perfetto), or
//! `DARMS_JSONL_TRACE=/path` for a JSON-lines dump.

use std::sync::Arc;

use darms::prelude::*;
use darms_workload::WorkloadConfig;
use parking_lot::Mutex;

const WIDTH: usize = 88;

fn main() {
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(77).with_split(3, 4));
    cluster.tracer.set_enabled(true);
    let dac = cluster.dac.clone();
    let pool = cluster.accs.len();
    let trace = WorkloadConfig::mixed().generate(14, 21);
    // (time, +/- accelerators held) events for pool occupancy.
    let acc_events = Arc::new(Mutex::new(Vec::<(SimTime, i64)>::new()));

    for (i, t) in trace.iter().enumerate() {
        let nodes = t.nodes.min(3);
        let acpn = t.acpn.min((pool / nodes) as u32);
        let runtime = t.runtime;
        let d = dac.clone();
        let ev = acc_events.clone();
        let statics = (nodes * acpn as usize) as i64;
        let spec = JobSpec::synthetic(format!("job{i:02}"), runtime)
            .owner(&t.owner)
            .nodes(nodes)
            .ppn(t.ppn.min(8))
            .acpn(acpn)
            .walltime(t.walltime_estimate)
            .script(script(move |jc| {
                let d = d.clone();
                let ev = ev.clone();
                async move {
                    if jc.node_index == 0 && statics > 0 {
                        ev.lock().push((jc.proc.now(), statics));
                    }
                    let (mut ses, _) = AcSession::init(&jc, &d, None).await;
                    jc.proc.sleep(runtime / 2).await;
                    if jc.node_index == 0 && i % 3 == 0 {
                        if let Ok(set) = ses.ac_get(1).await {
                            ev.lock().push((jc.proc.now(), 1));
                            jc.proc.sleep(runtime / 2).await;
                            ses.ac_free(&set).await.unwrap();
                            ev.lock().push((jc.proc.now(), -1));
                        } else {
                            jc.proc.sleep(runtime / 2).await;
                        }
                    } else {
                        jc.proc.sleep(runtime / 2).await;
                    }
                    ses.finalize();
                    if jc.node_index == 0 && statics > 0 {
                        ev.lock().push((jc.proc.now(), -statics));
                    }
                }
            }));
        cluster.qsub_after(t.arrival, spec);
    }

    let statuses = Arc::new(Mutex::new(Vec::new()));
    let out = statuses.clone();
    cluster.client_after("watch", SimDuration::from_secs(1), move |c| async move {
        loop {
            let st = c.qstat().await;
            if st.len() == 14 && st.iter().all(|s| s.state.is_terminal()) {
                *out.lock() = st;
                break;
            }
            c.proc.sleep(SimDuration::from_secs(10)).await;
        }
    });
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);

    let statuses = statuses.lock().clone();
    let t_end =
        statuses.iter().filter_map(|s| s.completed).max().expect("jobs finished").as_secs_f64();
    let scale = |t: f64| ((t / t_end) * (WIDTH as f64 - 1.0)) as usize;

    println!(
        "== schedule replay: 14 jobs on 3 CN + 4 AC (one row per job; · queued, █ running) ==\n"
    );
    let axis = format!("0s {:>width$}", format!("{t_end:.0}s"), width = WIDTH - 3);
    println!("{:<7} {:<6} {axis}", "job", "owner");
    for s in &statuses {
        let sub = scale(s.submitted.as_secs_f64());
        let start = scale(s.started.expect("ran").as_secs_f64());
        let end = scale(s.completed.expect("done").as_secs_f64());
        let mut row = vec![' '; WIDTH];
        for c in row.iter_mut().take(start).skip(sub) {
            *c = '·';
        }
        for c in row.iter_mut().take(end + 1).skip(start) {
            *c = '█';
        }
        let line: String = row.into_iter().collect();
        println!("{:<7} {:<6} {}", s.name, s.owner, line);
    }

    // Accelerator pool occupancy sparkline.
    let mut events = acc_events.lock().clone();
    events.sort_by_key(|(t, _)| *t);
    let mut level: i64 = 0;
    let mut occupancy = vec![0i64; WIDTH];
    let mut ei = 0;
    for (x, slot) in occupancy.iter_mut().enumerate() {
        let t_slot = (x as f64 / (WIDTH as f64 - 1.0)) * t_end;
        while ei < events.len() && events[ei].0.as_secs_f64() <= t_slot {
            level += events[ei].1;
            ei += 1;
        }
        *slot = level.clamp(0, pool as i64);
    }
    let glyphs = [' ', '▁', '▂', '▄', '█'];
    let line: String =
        occupancy.iter().map(|&l| glyphs[(l as usize * (glyphs.len() - 1)) / pool]).collect();
    println!("\n{:<14} {}", format!("AC pool (of {pool})"), line);
    println!(
        "\nvirtual time simulated: {:.0} s in {} events",
        stats.end_time.as_secs_f64(),
        stats.events
    );

    // Structured event stream: summarize, and export on request.
    let events = cluster.sim.take_events();
    let (mut from_kernel, mut from_actors, mut from_procs) = (0usize, 0usize, 0usize);
    for ev in &events {
        match ev.source {
            TraceSource::Kernel => from_kernel += 1,
            TraceSource::Actor(_) => from_actors += 1,
            TraceSource::Process(_) => from_procs += 1,
        }
    }
    println!(
        "trace events collected: {} ({from_kernel} kernel, {from_actors} actor, {from_procs} process)",
        events.len()
    );
    if let Ok(path) = std::env::var("DARMS_CHROME_TRACE") {
        write_chrome_trace(&path, &events).expect("write chrome trace");
        println!("chrome trace written to {path}");
    }
    if let Ok(path) = std::env::var("DARMS_JSONL_TRACE") {
        write_json_lines(&path, &events).expect("write jsonl trace");
        println!("json-lines trace written to {path}");
    }

    // Registry metrics: the batch system's own view of the run.
    let m = &cluster.metrics;
    if let Some(h) = m.histogram("rms.qsub_to_run") {
        println!(
            "qsub→run latency: n={} p50={:.1}s p95={:.1}s max={:.1}s",
            h.count, h.p50, h.p95, h.max
        );
    }
    if let Some(util) = m.twg_mean("rms.acc_pool_util", stats.end_time) {
        println!("mean accelerator-pool utilization: {:.1}%", util * 100.0);
    }
    println!(
        "scheduler iterations: {}; backfill hits: {}; dynjoin: {}; disjoin: {}",
        m.counter("sched.iterations"),
        m.counter("sched.backfill_hits"),
        m.counter("rms.dynjoin"),
        m.counter("rms.disjoin"),
    );
    println!(
        "network: {} messages, {} bytes, engine overhead {:.2} ms wall per simulated second",
        m.counter("net.messages"),
        m.counter("net.bytes"),
        stats.wall_per_sim_second() * 1e3,
    );
}
