//! Golden-trace capture: serialize a scenario's full structured event
//! stream plus the deterministic engine statistics into one string.
//!
//! The checked-in golden files under `tests/golden/` were generated
//! with the **pre-refactor threaded runtime** (one OS thread per
//! process). The stackless async runtime must reproduce them
//! byte-for-byte — same events, same order, same virtual timestamps,
//! same engine counters — which pins down the exact `(time, seq)`
//! scheduling behaviour across the rewrite.

use darms::prelude::*;

use crate::{figures, replay, ReplayConfig};

/// Serialize an event stream + deterministic stats as JSON lines: one
/// object per trace event (via [`to_json_lines`]) followed by one
/// `{"stats":…}` line. `wall_nanos` is deliberately excluded (real
/// time, varies run to run).
pub fn serialize(events: &[TraceEvent], stats: &SimStats) -> String {
    let mut out = to_json_lines(events);
    out.push_str(&format!(
        "{{\"stats\":{{\"events\":{},\"end_time_ns\":{},\"processes_spawned\":{},\
         \"processes_finished\":{},\"process_panics\":{},\"peak_queue_depth\":{},\
         \"queue_depth_sum\":{},\"context_switches\":{}}}}}\n",
        stats.events,
        stats.end_time.as_nanos(),
        stats.processes_spawned,
        stats.processes_finished,
        stats.process_panics,
        stats.peak_queue_depth,
        stats.queue_depth_sum,
        stats.context_switches,
    ));
    out
}

/// The fig8 golden scenario: load 16, seed 3000 (the same cell the
/// perf harness runs), traced and serialized.
pub fn fig8_golden() -> String {
    let (events, stats) = figures::fig8_trial_traced(16, 3000);
    serialize(&events, &stats)
}

/// The chaos golden scenario: one fixed fault-injection seed, traced
/// and serialized — pins the complete failure schedule (drops,
/// duplicates, jitter, partitions, outages) and the hardened control
/// plane's recovery behaviour byte-for-byte.
pub fn chaos_golden() -> String {
    crate::chaos::run_chaos(7).trace
}

/// The swf_replay golden scenario: 8 jobs, seed 4242, traced and
/// serialized.
pub fn swf_replay_golden() -> String {
    let cfg = ReplayConfig { jobs: 8, seed: 4242, ..ReplayConfig::default() };
    let (outcome, events) = replay::replay_traced(&cfg);
    serialize(&events, &outcome.stats)
}
