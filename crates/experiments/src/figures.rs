//! Scenario functions regenerating Figures 7(a), 7(b), 8 and 9 of the
//! paper's evaluation (§IV).
//!
//! Setup mirrors the paper: 8-host testbed shape (1 head + 7 hosts used
//! as compute nodes or accelerators, never both at once), paper-calibrated
//! cost models, results averaged over seeded trials.

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

use crate::runner;

/// Trials averaged per data point (the paper uses 10).
pub const TRIALS: usize = 10;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

/// One data point of Fig. 7(a) or 7(b): a stacked pair of components.
#[derive(Clone, Copy, Debug)]
pub struct Fig7Row {
    /// Number of accelerators (x axis).
    pub count: usize,
    /// Fig 7(a): waiting time; Fig 7(b): batch-system time. Seconds.
    pub dominant: f64,
    /// Fig 7(a): connect time; Fig 7(b): MPI (RM library) time. Seconds.
    pub secondary: f64,
    /// Standard deviation of the total across trials (seeded jitter).
    pub stddev: f64,
}

impl Fig7Row {
    /// Total stacked height.
    pub fn total(&self) -> f64 {
        self.dominant + self.secondary
    }
}

/// Fig. 7(a): time for completion of `AC_Init()` for 1..=6 statically
/// allocated accelerators, split into waiting (until the daemons were
/// ready) and connect (MPI communicator construction).
pub fn fig7a(trials: usize) -> Vec<Fig7Row> {
    let grid = runner::run_grid(6, trials, |p, t| fig7a_trial(p + 1, 1000 + t as u64));
    grid.iter().enumerate().map(|(p, cells)| fold_fig7(p + 1, cells)).collect()
}

/// Fold one point's trial cells (in trial order, matching the serial
/// accumulation order exactly) into a [`Fig7Row`].
fn fold_fig7(count: usize, cells: &[(f64, f64)]) -> Fig7Row {
    let trials = cells.len();
    let mut dominant_sum = 0.0;
    let mut secondary_sum = 0.0;
    let mut totals = Vec::with_capacity(trials);
    for &(d, s) in cells {
        dominant_sum += d;
        secondary_sum += s;
        totals.push(d + s);
    }
    Fig7Row {
        count,
        dominant: dominant_sum / trials as f64,
        secondary: secondary_sum / trials as f64,
        stddev: stddev(&totals),
    }
}

/// Population standard deviation of the trial totals.
fn stddev(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

/// One Fig. 7(a) trial: returns (waiting, connect) seconds.
pub fn fig7a_trial(x: usize, seed: u64) -> (f64, f64) {
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(seed).with_split(1, 6));
    let dac = cluster.dac.clone();
    let rec = cluster.recorder.clone();
    let spec = JobSpec::synthetic("acinit", secs(1)).acpn(x as u32).script(script(move |jc| {
        let dac = dac.clone();
        let rec = rec.clone();
        async move {
            let (ses, _) = AcSession::init(&jc, &dac, Some(rec)).await;
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0, "fig7a trial must run cleanly");
    let wait = cluster.recorder.summary("acinit.wait").expect("recorded").mean;
    let connect = cluster.recorder.summary("acinit.connect").expect("recorded").mean;
    (wait, connect)
}

/// Fig. 7(b): time for completion of a dynamic request for 1..=6
/// accelerators, split into the batch-system portion (`pbs_dynget`
/// through the grant) and the resource-management-library portion
/// (`MPI_Comm_spawn` + communicator construction).
pub fn fig7b(trials: usize) -> Vec<Fig7Row> {
    let grid = runner::run_grid(6, trials, |p, t| fig7b_trial(p + 1, 2000 + t as u64));
    grid.iter().enumerate().map(|(p, cells)| fold_fig7(p + 1, cells)).collect()
}

/// One Fig. 7(b) trial: returns (batch, mpi) seconds. As in the paper,
/// the system is otherwise idle and the requesting compute node holds one
/// statically allocated accelerator.
pub fn fig7b_trial(y: usize, seed: u64) -> (f64, f64) {
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(seed).with_split(1, 7));
    let dac = cluster.dac.clone();
    let rec = cluster.recorder.clone();
    let spec = JobSpec::synthetic("acget", secs(5)).acpn(1).script(script(move |jc| {
        let dac = dac.clone();
        let rec = rec.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, Some(rec)).await;
            let set = ses.ac_get(y as u32).await.expect("idle pool satisfies the request");
            ses.ac_free(&set).await.unwrap();
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0, "fig7b trial must run cleanly");
    let batch = cluster.recorder.summary("acget.batch").expect("recorded").mean;
    let mpi = cluster.recorder.summary("acget.mpi").expect("recorded").mean;
    (batch, mpi)
}

/// One bar of Fig. 8: servicing a dynamic request for one accelerator
/// while the scheduler is busy with `load` other qsub requests.
#[derive(Clone, Copy, Debug)]
pub struct Fig8Row {
    /// Number of concurrent qsub requests on load (x axis).
    pub load: usize,
    /// Time the scheduler spent on the other requests before reaching the
    /// dynamic one (light region). Seconds.
    pub sched_others: f64,
    /// Time spent servicing the dynamic request itself (dark region).
    /// Seconds.
    pub service: f64,
}

impl Fig8Row {
    /// Total bar height.
    pub fn total(&self) -> f64 {
        self.sched_others + self.service
    }
}

/// The paper's Fig. 8 x-axis: scheduler load of 0, 16 and 20 other
/// qsub requests.
pub const FIG8_LOADS: [usize; 3] = [0, 16, 20];

/// Fig. 8: dynamic allocation of one accelerator under scheduler load of
/// 0, 16 and 20 other qsub requests (the paper's grid).
pub fn fig8(trials: usize) -> Vec<Fig8Row> {
    fig8_at_loads(&FIG8_LOADS, trials)
}

/// [`fig8`] over an arbitrary load axis — the paper's 16/20 points are
/// a default, not a ceiling; scale studies push the load well past 20.
pub fn fig8_at_loads(loads: &[usize], trials: usize) -> Vec<Fig8Row> {
    let grid = runner::run_grid(loads.len(), trials, |p, t| fig8_trial(loads[p], 3000 + t as u64));
    grid.iter()
        .zip(loads.iter().copied())
        .map(|(cells, load)| {
            let mut others = 0.0;
            let mut service = 0.0;
            for &(o, s) in cells {
                others += o;
                service += s;
            }
            Fig8Row { load, sched_others: others / trials as f64, service: service / trials as f64 }
        })
        .collect()
}

/// One Fig. 8 trial: returns (scheduler-on-others, service) seconds.
///
/// Setup: two compute nodes — one runs the DAC job, the other a filler —
/// so the `load` background jobs stay queued and do not interfere with
/// the DAC job's hosts (as the paper took care to arrange). The burst of
/// background submissions lands just before the `AC_Get`, so the dynamic
/// request finds the scheduler mid-iteration.
pub fn fig8_trial(load: usize, seed: u64) -> (f64, f64) {
    let (others, service, _) = fig8_trial_full(load, seed);
    (others, service)
}

/// [`fig8_trial`] variant that also returns the run's [`SimStats`].
///
/// The determinism tests and the perf-regression harness use this to
/// check that a parallel sweep reproduces not just the derived figures
/// but the exact engine behaviour (event count, end time, context
/// switches, …) of the serial run.
pub fn fig8_trial_full(load: usize, seed: u64) -> (f64, f64, SimStats) {
    let (others, service, stats, _) = fig8_trial_run(load, seed, false);
    (others, service, stats)
}

/// [`fig8_trial_full`] with structured tracing enabled; returns the
/// drained event stream alongside the stats. The golden-trace
/// determinism test serializes this to prove the async runtime
/// reproduces the pre-refactor threaded runtime byte-for-byte.
pub fn fig8_trial_traced(load: usize, seed: u64) -> (Vec<TraceEvent>, SimStats) {
    let (_, _, stats, events) = fig8_trial_run(load, seed, true);
    (events, stats)
}

fn fig8_trial_run(load: usize, seed: u64, trace: bool) -> (f64, f64, SimStats, Vec<TraceEvent>) {
    let mut cfg = ClusterConfig::paper_testbed(seed).with_split(2, 1);
    if trace {
        cfg = cfg.with_trace();
    }
    let mut cluster = Cluster::build(cfg);
    let dac = cluster.dac.clone();
    let rec = cluster.recorder.clone();

    // Filler job pins the second compute node for the whole run.
    let filler = JobSpec::synthetic("filler", secs(120)).ppn(8).walltime(secs(150));
    cluster.qsub(filler);

    // Background burst: jobs that cannot start (all cores busy), arriving
    // at t = 10 s.
    for i in 0..load {
        let spec = JobSpec::synthetic(format!("bg{i}"), secs(30)).ppn(8).walltime(secs(60));
        cluster.qsub_after(secs(10), spec);
    }

    // The DAC job issues AC_Get(1) right after the burst.
    let spec = JobSpec::synthetic("dac", secs(60)).ppn(8).script(script(move |jc| {
        let dac = dac.clone();
        let rec = rec.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, Some(rec)).await;
            let now = jc.proc.now();
            let target = SimTime::ZERO + secs(10) + SimDuration::from_millis(5);
            if target > now {
                jc.proc.sleep(target - now).await;
            }
            let set = ses.ac_get(1).await.expect("one accelerator free");
            ses.ac_free(&set).await.unwrap();
            ses.finalize();
        }
    }));
    cluster.qsub(spec);

    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0, "fig8 trial must run cleanly");
    let events = cluster.sim.take_events();
    let batch = cluster.recorder.summary("acget.batch").expect("recorded").mean;
    let mpi = cluster.recorder.summary("acget.mpi").expect("recorded").mean;
    // The Fig. 8 waiting quantity comes straight from the scheduler's
    // registry instrumentation (`sched.dyn_wait` histogram).
    let others = cluster.metrics.histogram("sched.dyn_wait").expect("instrumented").mean;
    (others, (batch + mpi - others).max(0.0), stats, events)
}

/// One bar of Fig. 9: a compute node's dynamic-request completion time
/// when three distinct jobs request simultaneously.
#[derive(Clone, Copy, Debug)]
pub struct Fig9Row {
    /// Compute node label (A, B, C) in completion order.
    pub node: char,
    /// Batch-system time of the request (MPI excluded, as in the paper).
    /// Seconds.
    pub batch: f64,
}

/// Fig. 9: three compute nodes from three distinct jobs issue
/// `AC_Get(1)` at the same instant; the server's serial processing makes
/// the completion times a staircase.
pub fn fig9(trials: usize) -> Vec<Fig9Row> {
    let per_trial = runner::run_indexed(trials, |t| fig9_trial(4000 + t as u64));
    let mut sums = [0.0f64; 3];
    for lat in &per_trial {
        for (i, v) in lat.iter().enumerate() {
            sums[i] += v;
        }
    }
    ['A', 'B', 'C']
        .iter()
        .zip(sums.iter())
        .map(|(&node, &s)| Fig9Row { node, batch: s / trials as f64 })
        .collect()
}

/// One Fig. 9 trial: returns the three batch-system latencies sorted
/// ascending (completion order A, B, C).
pub fn fig9_trial(seed: u64) -> [f64; 3] {
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(seed).with_split(3, 4));
    let dac = cluster.dac.clone();
    let rec = cluster.recorder.clone();
    for i in 0..3 {
        let d = dac.clone();
        let r = rec.clone();
        let spec = JobSpec::synthetic(format!("job{i}"), secs(30)).script(script(move |jc| {
            let d = d.clone();
            let r = r.clone();
            async move {
                let (mut ses, _) = AcSession::init(&jc, &d, Some(r)).await;
                let now = jc.proc.now();
                let target = SimTime::ZERO + secs(5);
                if target > now {
                    jc.proc.sleep(target - now).await;
                }
                let set = ses.ac_get(1).await.expect("pool of 4 covers 3 requests");
                ses.ac_free(&set).await.unwrap();
                ses.finalize();
            }
        }));
        cluster.qsub(spec);
    }
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0, "fig9 trial must run cleanly");
    let mut lat = cluster.recorder.values("acget.batch");
    assert_eq!(lat.len(), 3);
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    [lat[0], lat[1], lat[2]]
}

/// Shared shape assertions used by the integration tests and binaries.
pub mod shape {
    use super::*;

    /// Fig. 7(a): waiting dominates, grows with x; totals sub-second.
    pub fn check_fig7a(rows: &[Fig7Row]) {
        assert_eq!(rows.len(), 6);
        for r in rows {
            assert!(r.dominant > r.secondary, "waiting dominates at x={}", r.count);
            assert!(r.total() < 1.0, "sub-second at x={}", r.count);
        }
        assert!(rows[5].dominant > rows[0].dominant, "waiting grows with accelerators: {:?}", rows);
    }

    /// Fig. 7(b): batch dominates and grows; MPI roughly flat; totals
    /// sub-second.
    pub fn check_fig7b(rows: &[Fig7Row]) {
        assert_eq!(rows.len(), 6);
        for r in rows {
            assert!(r.dominant > r.secondary, "batch dominates at y={}", r.count);
            assert!(r.total() < 1.2, "≈sub-second at y={}", r.count);
        }
        assert!(rows[5].dominant > 1.5 * rows[0].dominant, "batch grows: {rows:?}");
        let mpi_min = rows.iter().map(|r| r.secondary).fold(f64::MAX, f64::min);
        let mpi_max = rows.iter().map(|r| r.secondary).fold(0.0, f64::max);
        assert!(mpi_max < 1.8 * mpi_min, "MPI roughly constant: {rows:?}");
    }

    /// Fig. 8: service similar across loads; waiting grows with load.
    pub fn check_fig8(rows: &[Fig8Row]) {
        assert_eq!(rows.len(), 3);
        assert!(rows[0].sched_others < 0.1, "idle scheduler adds no wait: {rows:?}");
        assert!(rows[1].sched_others > 0.15, "16 jobs delay the request: {rows:?}");
        assert!(rows[2].sched_others > rows[1].sched_others, "20 > 16: {rows:?}");
        for r in rows {
            assert!(r.total() < 1.5, "bounded total at load {}", r.load);
        }
    }

    /// Fig. 9: strictly increasing staircase.
    pub fn check_fig9(rows: &[Fig9Row]) {
        assert_eq!(rows.len(), 3);
        assert!(
            rows[0].batch < rows[1].batch && rows[1].batch < rows[2].batch,
            "staircase: {rows:?}"
        );
        assert!(rows[2].batch < 1.5, "bounded: {rows:?}");
    }
}

// Keep the Arc/Mutex imports referenced for scenario extensions.
#[allow(dead_code)]
fn _unused(_: Arc<Mutex<()>>) {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single-trial smoke of every figure scenario (the binaries run 10
    /// trials; one suffices to validate the harness in `cargo test`).
    #[test]
    fn single_trial_figures_have_paper_shapes() {
        let (wait, connect) = fig7a_trial(3, 1);
        assert!(wait > connect && wait + connect < 1.0, "fig7a: {wait} {connect}");
        let (batch, mpi) = fig7b_trial(2, 2);
        assert!(batch > 0.1 && mpi > 0.05 && batch + mpi < 1.2, "fig7b: {batch} {mpi}");
        let (others, service) = fig8_trial(0, 3);
        assert!(others < 0.1 && service > 0.1, "fig8 idle: {others} {service}");
        let lat = fig9_trial(4);
        assert!(lat[0] < lat[1] && lat[1] < lat[2], "fig9 staircase: {lat:?}");
    }

    #[test]
    fn stddev_matches_hand_computation() {
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[2.0, 2.0]), 0.0);
        let s = stddev(&[1.0, 3.0]);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
