//! Deterministic chaos harness: seeded, end-to-end fault-injection
//! scenarios over the full batch system, with invariant auditing.
//!
//! Each seed deterministically derives a cluster shape, a job mix, and a
//! [`FaultPlan`] (lossy/duplicating/reordering links, transient
//! partitions, host outages), installs the plan together with the
//! standard [`RetryPolicy`], runs the scenario, and audits the safety
//! invariants the hardened control plane must uphold:
//!
//! 1. no simulated process panics and the engine's event cap is not hit;
//! 2. every submitted job reaches a terminal state before the horizon
//!    (no wedged job, no leaked queue entry) — requeue-then-cancel after
//!    repeated node failures counts as terminal, a hang does not;
//! 3. pool accounting is conserved per node (`free + allocated ==
//!    capacity`) and at the end every node is fully free: no leaked
//!    cores, no leaked dynamically granted accelerator set;
//! 4. the run is byte-for-byte reproducible from its seed (the
//!    serialized trace is the witness; [`run_chaos_checked`] reruns the
//!    scenario and compares).
//!
//! Scope: the chaos plan exercises the **RMS control plane** (IFL,
//! server ↔ mom, monitor) — the layers hardened with retries and
//! idempotent request ids. The MPI data plane intentionally stays on
//! reliable links; see DESIGN.md §11 for the fault-model boundary.

use std::sync::Arc;

use darms::prelude::*;
use darms_net::HostId;
use darms_rms::{ifl, MonitorConfig};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::golden;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

/// Virtual-time horizon of every chaos scenario.
const HORIZON_SECS: u64 = 400;

/// One generated job of the chaos workload.
#[derive(Clone, Debug)]
struct ChaosJob {
    arrival: SimDuration,
    nodes: usize,
    ppn: u32,
    runtime: SimDuration,
    /// Number of `pbs_dynget(1)` → hold → `pbs_dynfree` rounds the
    /// mother-superior task performs before its compute phase.
    dyn_rounds: u32,
    dyn_hold: SimDuration,
}

/// What one audited chaos run produced.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// The scenario seed.
    pub seed: u64,
    /// Invariant violations (empty on a clean run).
    pub violations: Vec<String>,
    /// Jobs submitted by the generated workload.
    pub jobs: usize,
    /// Jobs that finished normally.
    pub completed: usize,
    /// Jobs cancelled by the server (requeue budget exhausted after
    /// repeated node failures) or by walltime enforcement.
    pub cancelled: usize,
    /// Server-side host reclamations triggered by offline reports.
    pub reclaims: u64,
    /// Serialized trace + deterministic engine stats: the byte-identity
    /// witness for this seed.
    pub trace: String,
}

impl ChaosOutcome {
    /// True when every invariant held.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Deterministically derive the workload and fault schedule for `seed`.
fn generate(seed: u64, rng: &mut SmallRng) -> (usize, usize, Vec<ChaosJob>) {
    let _ = seed;
    let compute = rng.gen_range(2usize..=3);
    let accs = rng.gen_range(3usize..=4);
    let n_jobs = rng.gen_range(4usize..=8);
    let jobs = (0..n_jobs)
        .map(|_| ChaosJob {
            arrival: SimDuration::from_millis(rng.gen_range(0u64..60_000)),
            nodes: rng.gen_range(1usize..=2.min(compute)),
            ppn: rng.gen_range(1u32..=2),
            runtime: SimDuration::from_millis(rng.gen_range(2_000u64..=8_000)),
            dyn_rounds: rng.gen_range(0u32..=3),
            dyn_hold: SimDuration::from_millis(rng.gen_range(1_000u64..=3_000)),
        })
        .collect();
    (compute, accs, jobs)
}

/// Derive the fault plan. Hosts must already exist (plan windows name
/// [`HostId`]s), so this runs after [`Cluster::build`].
fn generate_plan(rng: &mut SmallRng, cluster: &Cluster) -> FaultPlan {
    let lf = LinkFaults {
        drop: rng.gen_range(0.05..0.25),
        duplicate: rng.gen_range(0.0..0.15),
        jitter: SimDuration::from_millis(rng.gen_range(0u64..=20)),
        reorder: rng.gen_range(0.0..0.2),
        reorder_window: SimDuration::from_millis(50),
    };
    let mut plan = FaultPlan::new(rng.gen_range(0u64..=u64::MAX)).with_default_link(lf);
    let others: Vec<HostId> = cluster.compute.iter().chain(cluster.accs.iter()).copied().collect();
    for _ in 0..rng.gen_range(0u32..=2) {
        let from = SimTime::ZERO + secs(rng.gen_range(20u64..=90));
        let len = secs(rng.gen_range(5u64..=15));
        let host = others[rng.gen_range(0usize..others.len())];
        plan = plan.with_partition(vec![host], from, from + len);
    }
    for _ in 0..rng.gen_range(0u32..=2) {
        let from = SimTime::ZERO + secs(rng.gen_range(20u64..=90));
        let len = secs(rng.gen_range(5u64..=15));
        let host = others[rng.gen_range(0usize..others.len())];
        plan = plan.with_outage(host, from, from + len);
    }
    plan
}

/// Run one seeded chaos scenario and audit it.
pub fn run_chaos(seed: u64) -> ChaosOutcome {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC4A0_5EED);
    let (compute, accs, jobs) = generate(seed, &mut rng);
    let horizon = SimTime::ZERO + secs(HORIZON_SECS);
    // A higher miss threshold than the default keeps purely probabilistic
    // ping loss from constantly flapping nodes offline; sustained outages
    // are still detected within ~12 s.
    let mc = MonitorConfig { interval: secs(2), miss_threshold: 5, ctl_bytes: 64 };
    let config = ClusterConfig::fast(seed)
        .with_split(compute, accs)
        .with_monitor(mc, horizon)
        .with_retry(RetryPolicy::standard())
        .with_trace();
    let mut cluster = Cluster::build(config);
    cluster.net.install_fault_plan(generate_plan(&mut rng, &cluster));

    let n_jobs = jobs.len();
    for (i, j) in jobs.iter().enumerate() {
        let jc_cfg = j.clone();
        let spec = JobSpec::synthetic(format!("chaos{i}"), j.runtime)
            .nodes(j.nodes)
            .ppn(j.ppn)
            .walltime(secs(120))
            .script(script(move |mut jc| {
                let jc_cfg = jc_cfg.clone();
                async move {
                    if jc.node_index == 0 {
                        for _ in 0..jc_cfg.dyn_rounds {
                            if let Ok(grant) = jc.dynget(1).await {
                                jc.proc.sleep(jc_cfg.dyn_hold).await;
                                let _ = jc.dynfree(grant.client_id).await;
                            }
                        }
                    }
                    let _ = jc.sleep_interruptible(jc_cfg.runtime).await;
                }
            }));
        cluster.qsub_after(j.arrival, spec);
    }

    // The auditor: a head-node client polling qstat until every job is
    // terminal (or the horizon closes in), then sampling pool accounting
    // under load.
    #[derive(Default)]
    struct Audit {
        all_terminal: bool,
        completed: usize,
        cancelled: usize,
        mid_run_violations: Vec<String>,
    }
    let audit = Arc::new(Mutex::new(Audit::default()));
    let out = audit.clone();
    let node_db = cluster.node_db.clone();
    cluster.client_after("auditor", secs(5), move |c| async move {
        loop {
            c.proc.sleep(secs(10)).await;
            // Mid-run pool-conservation sample (scoped lock; the server
            // shares this database).
            {
                let db = node_db.lock();
                for n in db.nodes() {
                    let allocated: u32 = n.jobs.values().sum();
                    if n.cores_free + allocated != n.cores_total {
                        out.lock().mid_run_violations.push(format!(
                            "pool accounting broken on host{}: {} free + {} allocated != {} total",
                            n.host.index(),
                            n.cores_free,
                            allocated,
                            n.cores_total
                        ));
                    }
                }
            }
            let now = c.proc.now();
            if let Ok(statuses) = ifl::try_qstat(&c.proc, &c.net, c.head, c.server).await {
                if statuses.len() == n_jobs && statuses.iter().all(|s| s.state.is_terminal()) {
                    let mut a = out.lock();
                    a.all_terminal = true;
                    a.completed = statuses.iter().filter(|s| s.state == JobState::Complete).count();
                    a.cancelled = statuses.len() - a.completed;
                    return;
                }
            }
            if now >= SimTime::ZERO + secs(HORIZON_SECS - 30) {
                return; // Ran out of time: all_terminal stays false.
            }
        }
    });

    let stats = cluster.run();
    let events = cluster.tracer.snapshot();
    let trace = golden::serialize(&events, &stats);

    let mut violations = Vec::new();
    if stats.process_panics != 0 {
        violations.push(format!("{} process panic(s)", stats.process_panics));
    }
    if stats.hit_event_cap {
        violations.push("engine event cap hit".to_string());
    }
    let a = audit.lock();
    if !a.all_terminal {
        violations.push("jobs still not terminal near the horizon".to_string());
    }
    violations.extend(a.mid_run_violations.iter().cloned());
    {
        let db = cluster.node_db.lock();
        for n in db.nodes() {
            let allocated: u32 = n.jobs.values().sum();
            if n.cores_free + allocated != n.cores_total {
                violations.push(format!(
                    "final pool accounting broken on host{}: {} free + {} allocated != {} total",
                    n.host.index(),
                    n.cores_free,
                    allocated,
                    n.cores_total
                ));
            }
            if a.all_terminal && !n.jobs.is_empty() {
                violations.push(format!(
                    "leaked allocation on host{}: jobs {:?} still hold cores/sets",
                    n.host.index(),
                    n.jobs.keys().collect::<Vec<_>>()
                ));
            }
        }
    }

    ChaosOutcome {
        seed,
        violations,
        jobs: n_jobs,
        completed: a.completed,
        cancelled: a.cancelled,
        reclaims: cluster.metrics.counter("rms.reclaims"),
        trace,
    }
}

/// Run `seed` twice and additionally check byte-identical reproduction;
/// a mismatch is reported as a violation on the returned outcome.
pub fn run_chaos_checked(seed: u64) -> ChaosOutcome {
    let mut first = run_chaos(seed);
    let second = run_chaos(seed);
    if first.trace != second.trace {
        first
            .violations
            .push("rerun of the same seed diverged (trace not byte-identical)".to_string());
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_seed_runs_clean_and_reproduces() {
        let o = run_chaos_checked(1);
        assert!(o.clean(), "violations: {:?}", o.violations);
        assert_eq!(o.jobs, o.completed + o.cancelled);
    }
}
