//! Deterministic chaos harness: seeded, end-to-end fault-injection
//! scenarios over the full batch system, with invariant auditing.
//!
//! Each seed deterministically derives a cluster shape, a job mix, and a
//! [`FaultPlan`](darms_net::FaultPlan) (lossy/duplicating/reordering
//! links, transient partitions, host outages), installs the plan
//! together with the standard retry policy, runs the scenario, and
//! audits the safety invariants the hardened control plane must uphold
//! (see [`crate::invariants`] for the shared checker):
//!
//! 1. no simulated process panics and the engine's event cap is not hit;
//! 2. every submitted job reaches a terminal state before the horizon
//!    (no wedged job, no leaked queue entry) — requeue-then-cancel after
//!    repeated node failures counts as terminal, a hang does not;
//! 3. pool accounting is conserved per node (`free + allocated ==
//!    capacity`) and at the end every node is fully free: no leaked
//!    cores, no leaked dynamically granted accelerator set;
//! 4. the virtual clock of the serialized trace never goes backwards;
//! 5. the run is byte-for-byte reproducible from its seed (the
//!    serialized trace is the witness; [`run_chaos_checked`] reruns the
//!    scenario and compares).
//!
//! Since the soak refactor the harness is a thin wrapper over
//! [`crate::soak`]: `run_chaos(seed)` runs exactly the soak cell
//! `(seed, WorkloadClass::Classic, FaultClass::Chaotic)` — pinned
//! byte-for-byte by the chaos golden trace — and the soak matrix
//! generalises the same scenario across workload and fault classes.
//!
//! Scope: the chaos plan exercises the **RMS control plane** (IFL,
//! server ↔ mom, monitor) — the layers hardened with retries and
//! idempotent request ids. The MPI data plane intentionally stays on
//! reliable links; see DESIGN.md §11 for the fault-model boundary.

use crate::soak::{run_cell, run_cell_checked, CellOutcome, SoakCell};

/// What one audited chaos run produced.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// The scenario seed.
    pub seed: u64,
    /// Invariant violations (empty on a clean run).
    pub violations: Vec<String>,
    /// Jobs submitted by the generated workload.
    pub jobs: usize,
    /// Jobs that finished normally.
    pub completed: usize,
    /// Jobs cancelled by the server (requeue budget exhausted after
    /// repeated node failures) or by walltime enforcement.
    pub cancelled: usize,
    /// Server-side host reclamations triggered by offline reports.
    pub reclaims: u64,
    /// Serialized trace + deterministic engine stats: the byte-identity
    /// witness for this seed.
    pub trace: String,
}

impl ChaosOutcome {
    /// True when every invariant held.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl From<CellOutcome> for ChaosOutcome {
    fn from(o: CellOutcome) -> ChaosOutcome {
        ChaosOutcome {
            seed: o.cell.seed,
            violations: o.violations,
            jobs: o.jobs,
            completed: o.completed,
            cancelled: o.cancelled,
            reclaims: o.reclaims,
            trace: o.trace,
        }
    }
}

/// Run one seeded chaos scenario and audit it.
pub fn run_chaos(seed: u64) -> ChaosOutcome {
    run_cell(&SoakCell::classic(seed)).into()
}

/// Run `seed` twice and additionally check byte-identical reproduction;
/// a mismatch is reported as a violation on the returned outcome.
pub fn run_chaos_checked(seed: u64) -> ChaosOutcome {
    run_cell_checked(&SoakCell::classic(seed)).into()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_seed_runs_clean_and_reproduces() {
        let o = run_chaos_checked(1);
        assert!(o.clean(), "violations: {:?}", o.violations);
        assert_eq!(o.jobs, o.completed + o.cancelled);
    }
}
