//! Datacenter-scale scenario: a synthetic front door drives a
//! 1k/10k-host cluster with a diurnal load curve of qsub submissions
//! plus dynamic `AC_Get`/`AC_Free` traffic, and the run goes to
//! quiescence. This is the macro benchmark behind the `datacenter` row
//! of `BENCH_sim.json` — it measures the whole stack (kernel hot path,
//! server indexes, scheduler free-pools) at a scale where any O(hosts)
//! or O(jobs) scan left on a per-event path dominates immediately.
//!
//! Scale discipline: the front-door volume is *fixed* across scales
//! (same diurnal job curve at 1k and 10k hosts), so the 10k-vs-1k
//! per-event wall ratio isolates the cost of **hosts** — snapshots,
//! free-pool maintenance, node indexes — which is exactly what the
//! bench gate checks (10k within 2x of 1k). Scaling the job count
//! instead is a *load* knob: a Maui-style scheduler rescans its queue
//! every iteration, so deeper queues grow both the per-iteration work
//! and the iteration count, quadratically in load at any cluster size.
//! No health monitor and no fault plan: the cluster quiesces on its
//! own once the last job drains.

use std::sync::Arc;

use darms::prelude::*;
use darms_workload::Dist;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of one datacenter run.
#[derive(Clone, Copy, Debug)]
pub struct DatacenterConfig {
    /// Total hosts (compute + accelerator, excluding the head node).
    /// A quarter of them form the accelerator pool.
    pub hosts: usize,
    /// Seed for workload generation and the cluster run.
    pub seed: u64,
    /// Jobs submitted over one diurnal period. The default is a fixed
    /// volume (2000) independent of `hosts`: see the module docs for
    /// why the scale comparison holds the workload constant.
    pub jobs: usize,
    /// The compressed "day": arrivals follow one full sine period of
    /// this length (trough at both ends, peak mid-day).
    pub day: SimDuration,
}

impl DatacenterConfig {
    /// Scenario at `hosts` total hosts with the standard fixed
    /// front-door volume.
    pub fn at_scale(hosts: usize, seed: u64) -> Self {
        DatacenterConfig { hosts, seed, jobs: 2000, day: SimDuration::from_secs(3600) }
    }

    /// Accelerator pool size (a quarter of the hosts).
    pub fn pool(&self) -> usize {
        (self.hosts / 4).max(1)
    }

    /// Compute-node count (the remaining hosts).
    pub fn compute_nodes(&self) -> usize {
        (self.hosts - self.pool()).max(1)
    }
}

/// Result of one datacenter run.
#[derive(Clone, Debug)]
pub struct DatacenterOutcome {
    /// Engine statistics of the run.
    pub stats: SimStats,
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that reached a terminal state (all of them, or the run
    /// would not have quiesced).
    pub completed: usize,
    /// Jobs that carried static accelerator demand.
    pub static_acc_jobs: usize,
    /// Jobs that issued a dynamic `AC_Get` mid-run.
    pub dyn_jobs: usize,
    /// Compute-node count.
    pub compute_nodes: usize,
    /// Accelerator pool size.
    pub pool: usize,
}

/// Number of slices the diurnal curve is discretized into.
const SLICES: usize = 48;

/// Distribute `n` arrivals over one `day` following a diurnal curve:
/// per-slice weights `1 + 0.85·sin(2π·x − π/2)` (quiet at the day's
/// edges, peak mid-day), integer counts by largest remainder, uniform
/// seeded jitter within each slice. Returned sorted ascending.
pub fn diurnal_arrivals(n: usize, day: SimDuration, rng: &mut SmallRng) -> Vec<SimDuration> {
    let weights: Vec<f64> = (0..SLICES)
        .map(|s| {
            let x = (s as f64 + 0.5) / SLICES as f64;
            1.0 + 0.85 * (std::f64::consts::TAU * x - std::f64::consts::FRAC_PI_2).sin()
        })
        .collect();
    let total: f64 = weights.iter().sum();
    // Largest-remainder apportionment of n jobs to slices.
    let mut counts: Vec<usize> = Vec::with_capacity(SLICES);
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(SLICES);
    let mut assigned = 0usize;
    for (s, w) in weights.iter().enumerate() {
        let exact = n as f64 * w / total;
        let base = exact.floor() as usize;
        counts.push(base);
        assigned += base;
        remainders.push((s, exact - base as f64));
    }
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    for &(s, _) in remainders.iter().take(n - assigned) {
        counts[s] += 1;
    }
    let slice_secs = day.as_secs_f64() / SLICES as f64;
    let mut out = Vec::with_capacity(n);
    for (s, &c) in counts.iter().enumerate() {
        let start = s as f64 * slice_secs;
        let mut in_slice: Vec<f64> =
            (0..c).map(|_| start + rng.gen::<f64>() * slice_secs).collect();
        in_slice.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        out.extend(in_slice.into_iter().map(SimDuration::from_secs_f64));
    }
    out
}

/// Run the datacenter scenario to quiescence.
pub fn run_datacenter(cfg: &DatacenterConfig) -> DatacenterOutcome {
    let compute_nodes = cfg.compute_nodes();
    let pool = cfg.pool();
    let cores_per_node = 8u32;

    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xdc_0dc0);
    let arrivals = diurnal_arrivals(cfg.jobs, cfg.day, &mut rng);

    // Job-shape distributions: mostly small jobs, a tail of wider ones;
    // runtimes of minutes so several diurnal phases overlap in flight.
    let nodes_dist = Dist::Choice(vec![(6.0, 1.0), (3.0, 2.0), (1.0, 4.0)]);
    let ppn_dist = Dist::Choice(vec![(1.0, 2.0), (1.0, 4.0), (2.0, 8.0)]);
    let acpn_dist = Dist::Choice(vec![(7.0, 0.0), (2.0, 1.0), (1.0, 2.0)]);
    let runtime_dist = Dist::LogNormal { mu: 5.0, sigma: 0.6 };

    let mut cluster_cfg = ClusterConfig::paper_testbed(cfg.seed).with_split(compute_nodes, pool);
    cluster_cfg.cores_per_node = cores_per_node;
    // One poll chain, not one per wake-up: without coalescing, every
    // event-driven scheduler wake spawns another 10s poll chain and the
    // scheduler degenerates into a busy loop of O(hosts) snapshots.
    cluster_cfg.sched.poll_coalesce = true;
    cluster_cfg.sched.incremental_snapshots = true;
    let mut cluster = Cluster::build(cluster_cfg);
    let dac = cluster.dac.clone();

    let mut static_acc_jobs = 0usize;
    let mut dyn_jobs = 0usize;
    for (i, arrival) in arrivals.iter().enumerate() {
        let nodes = (nodes_dist.sample_int(&mut rng, 1) as usize).min(compute_nodes);
        let ppn = (ppn_dist.sample_int(&mut rng, 1) as u32).min(cores_per_node);
        let acpn = (acpn_dist.sample_int(&mut rng, 0) as u32).min((pool / nodes) as u32);
        let runtime_s = runtime_dist.sample(&mut rng).clamp(45.0, 900.0);
        let runtime = SimDuration::from_secs_f64(runtime_s);
        let walltime = SimDuration::from_secs_f64(runtime_s * 2.0 + 120.0);
        // A quarter of the jobs exercise the dynamic path: AC_Get a
        // couple of accelerators mid-run, AC_Free before exiting.
        let dynamic = rng.gen_bool(0.25);
        let dyn_count = 1 + u32::from(rng.gen_bool(0.3));
        static_acc_jobs += usize::from(acpn > 0);
        dyn_jobs += usize::from(dynamic);

        let d = dac.clone();
        let spec = JobSpec::synthetic(format!("dc{i:05}"), runtime)
            .owner(["ops", "sim", "ml", "cfd"][i % 4])
            .nodes(nodes)
            .ppn(ppn)
            .acpn(acpn)
            .walltime(walltime)
            .script(script(move |mut jc| {
                let d = d.clone();
                async move {
                    let (mut ses, handles) = AcSession::init(&jc, &d, None).await;
                    assert_eq!(handles.len(), jc.acc_hosts.len());
                    if dynamic {
                        let _ = jc.sleep_interruptible(runtime / 4).await;
                        // Front doors take "no" for an answer: a busy
                        // pool rejects (§III-E, no reservations).
                        if let Ok(set) = ses.ac_get(dyn_count).await {
                            let _ = jc.sleep_interruptible(runtime / 2).await;
                            let _ = ses.ac_free(&set).await;
                        }
                        let _ = jc.sleep_interruptible(runtime / 4).await;
                    } else {
                        let _ = jc.sleep_interruptible(runtime).await;
                    }
                    ses.finalize();
                }
            }));
        cluster.qsub_after(*arrival, spec);
    }

    // Watch for quiescence: every job terminal. The poll is coarse so
    // the watcher contributes negligible traffic next to the workload.
    let n_jobs = cfg.jobs;
    let completed = Arc::new(Mutex::new(0usize));
    let out = completed.clone();
    cluster.client_after("watch", SimDuration::from_secs(5), move |c| async move {
        loop {
            let st = c.qstat().await;
            if st.len() == n_jobs && st.iter().all(|s| s.state.is_terminal()) {
                *out.lock() = st.len();
                break;
            }
            c.proc.sleep(SimDuration::from_secs(60)).await;
        }
    });

    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0, "datacenter run must be clean");
    let completed = *completed.lock();
    assert_eq!(completed, cfg.jobs, "all jobs must reach a terminal state");
    DatacenterOutcome {
        stats,
        jobs: cfg.jobs,
        completed,
        static_acc_jobs,
        dyn_jobs,
        compute_nodes,
        pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_arrivals_are_sorted_and_shaped() {
        let mut rng = SmallRng::seed_from_u64(7);
        let day = SimDuration::from_secs(3600);
        let arr = diurnal_arrivals(480, day, &mut rng);
        assert_eq!(arr.len(), 480);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(*arr.last().unwrap() <= day);
        // Mid-day third must carry more arrivals than the first third.
        let third = day.as_nanos() / 3;
        let first = arr.iter().filter(|a| a.as_nanos() < third).count();
        let mid = arr.iter().filter(|a| (third..2 * third).contains(&a.as_nanos())).count();
        assert!(mid > 2 * first, "diurnal peak mid-day: first={first} mid={mid}");
    }

    #[test]
    fn small_datacenter_runs_clean_and_deterministic() {
        // Tiny instance of the same scenario shape (the bench runs 1k
        // and 10k hosts; 40 suffices to validate the harness).
        let cfg = DatacenterConfig { jobs: 16, ..DatacenterConfig::at_scale(40, 11) };
        let a = run_datacenter(&cfg);
        let b = run_datacenter(&cfg);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.completed, 16);
        assert!(a.dyn_jobs > 0, "dynamic path exercised: {a:?}");
        assert!(a.stats.events > 1_000, "non-trivial event count: {}", a.stats.events);
    }
}
