//! Shared invariant checker for chaos and soak runs.
//!
//! One implementation of the control-plane safety invariants, consumed
//! by the chaos harness ([`crate::chaos`]), the soak subsystem
//! ([`crate::soak`] and the `darms_soak` binary) and the property tests
//! (`tests/chaos_properties.rs`) alike — so every surface asserts the
//! *same* conditions with the same strength:
//!
//! 1. **Engine health** — no simulated-process panic, event cap not hit
//!    ([`check_engine`]);
//! 2. **Pool conservation** — per node, `free + allocated == capacity`,
//!    sampleable mid-run and at the end ([`check_pool`]);
//! 3. **No leaked allocations / wedged jobs** — once every job is
//!    terminal, no node may still hold cores or a dynamically granted
//!    accelerator set ([`check_no_leaks`]); job-terminality itself is
//!    observed by the caller's in-sim auditor (it needs `qstat`);
//! 4. **Monotone event clock** — the serialized trace's virtual
//!    timestamps never decrease ([`check_monotone_clock`]);
//! 5. **Replay identity** — a rerun from the same seed reproduces the
//!    serialized trace byte-for-byte ([`check_replay_identity`];
//!    [`first_divergence`] locates the first differing line for triage).
//!
//! Every check returns a `Vec<String>` of human-readable violations —
//! empty means the invariant held — so callers can aggregate freely.

use darms::prelude::*;
use darms_rms::NodeDb;

/// Engine-health invariant: the run must finish without a simulated
/// process panicking and without hitting the engine's event cap (a cap
/// hit means the scenario never quiesced — a wedge or a livelock).
pub fn check_engine(stats: &SimStats) -> Vec<String> {
    let mut v = Vec::new();
    if stats.process_panics != 0 {
        v.push(format!("{} process panic(s)", stats.process_panics));
    }
    if stats.hit_event_cap {
        v.push("engine event cap hit (scenario did not quiesce)".to_string());
    }
    v
}

/// Pool-conservation invariant: on every node, free cores plus cores
/// held by jobs must equal the node's capacity. `phase` labels the
/// sample point in the violation text (e.g. `"mid-run"`, `"final"`).
pub fn check_pool(db: &NodeDb, phase: &str) -> Vec<String> {
    let mut v = Vec::new();
    for n in db.nodes() {
        let allocated: u32 = n.jobs.values().sum();
        if n.cores_free + allocated != n.cores_total {
            v.push(format!(
                "{phase} pool accounting broken on host{}: {} free + {} allocated != {} total",
                n.host.index(),
                n.cores_free,
                allocated,
                n.cores_total
            ));
        }
    }
    v
}

/// Full-reclamation invariant: with every job terminal, no node may
/// still hold an allocation (leaked cores or accelerator sets). Only
/// meaningful once the caller has observed all jobs terminal.
pub fn check_no_leaks(db: &NodeDb) -> Vec<String> {
    let mut v = Vec::new();
    for n in db.nodes() {
        if !n.jobs.is_empty() {
            v.push(format!(
                "leaked allocation on host{}: jobs {:?} still hold cores/sets",
                n.host.index(),
                n.jobs.keys().collect::<Vec<_>>()
            ));
        }
    }
    v
}

/// Monotone-clock invariant: virtual timestamps in the event stream
/// never decrease (the engine dispatches in `(time, seq)` order; a
/// decrease means trace corruption or an engine bug).
pub fn check_monotone_clock(events: &[TraceEvent]) -> Vec<String> {
    for (i, w) in events.windows(2).enumerate() {
        if w[1].time < w[0].time {
            return vec![format!(
                "event clock went backwards at event {}: {} after {} ({} after {})",
                i + 1,
                w[1].time,
                w[0].time,
                w[1].name,
                w[0].name
            )];
        }
    }
    Vec::new()
}

/// Replay-identity invariant: `second` (a rerun from the same seed)
/// must equal `first` byte-for-byte. On divergence the violation names
/// the first differing trace line (see [`first_divergence`]).
pub fn check_replay_identity(first: &str, second: &str) -> Vec<String> {
    if first == second {
        return Vec::new();
    }
    let at = first_divergence(first, second);
    vec![match at {
        Some(line) => format!(
            "rerun of the same seed diverged (trace not byte-identical; first divergence at \
             trace line {line})"
        ),
        None => "rerun of the same seed diverged (trace not byte-identical)".to_string(),
    }]
}

/// Zero-based index of the first line where two serialized traces
/// differ (a missing line on one side counts as a difference). `None`
/// when the traces are identical.
pub fn first_divergence(first: &str, second: &str) -> Option<usize> {
    let mut a = first.lines();
    let mut b = second.lines();
    let mut i = 0usize;
    loop {
        match (a.next(), b.next()) {
            (None, None) => return None,
            (x, y) if x == y => i += 1,
            _ => return Some(i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darms_net::{HostId, HostKind, LatencyModel, Network};
    use darms_rms::JobId;

    fn db_with_one_node() -> (NodeDb, HostId) {
        let net = Network::new(LatencyModel::ideal(), 1);
        let h = net.add_host("cn00", HostKind::Compute);
        let mut db = NodeDb::new();
        db.add_compute(h, 4);
        (db, h)
    }

    #[test]
    fn healthy_engine_and_conserved_pool_pass() {
        let stats = SimStats::default();
        assert!(check_engine(&stats).is_empty());
        let (db, _) = db_with_one_node();
        assert!(check_pool(&db, "final").is_empty());
        assert!(check_no_leaks(&db).is_empty());
    }

    #[test]
    fn allocation_is_conserved_but_leaks_are_reported() {
        let (mut db, h) = db_with_one_node();
        db.allocate_compute(h, JobId(1), 2);
        // Allocation moves cores, it does not break conservation.
        assert!(check_pool(&db, "mid-run").is_empty());
        // But with all jobs terminal it is a leak.
        let leaks = check_no_leaks(&db);
        assert_eq!(leaks.len(), 1);
        assert!(leaks[0].contains("leaked allocation"), "{leaks:?}");
        db.release(h, JobId(1));
        assert!(check_no_leaks(&db).is_empty());
    }

    #[test]
    fn engine_failures_are_reported() {
        let stats = SimStats { process_panics: 2, hit_event_cap: true, ..Default::default() };
        let v = check_engine(&stats);
        assert_eq!(v.len(), 2);
        assert!(v[0].contains("panic"));
        assert!(v[1].contains("event cap"));
    }

    #[test]
    fn monotone_clock_detects_a_backwards_step() {
        let mk = |secs: u64| TraceEvent {
            time: SimTime::ZERO + SimDuration::from_secs(secs),
            source: TraceSource::Kernel,
            source_name: "kernel".into(),
            name: "tick".to_string(),
            detail: String::new(),
            kind: TraceEventKind::Instant,
        };
        assert!(check_monotone_clock(&[]).is_empty());
        assert!(check_monotone_clock(&[mk(1), mk(1), mk(2)]).is_empty());
        let v = check_monotone_clock(&[mk(1), mk(3), mk(2)]);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("event 2"), "{v:?}");
    }

    #[test]
    fn divergence_names_the_first_differing_line() {
        assert!(check_replay_identity("a\nb\n", "a\nb\n").is_empty());
        assert_eq!(first_divergence("a\nb\nc\n", "a\nX\nc\n"), Some(1));
        assert_eq!(first_divergence("a\n", "a\nb\n"), Some(1), "length mismatch diverges");
        let v = check_replay_identity("a\nb\n", "a\nc\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("trace line 1"), "{v:?}");
    }
}
