//! `darms-soak`: the continuously-runnable chaos + scale soak.
//!
//! A soak run sweeps a matrix of **cells** — one cell per
//! `(seed × fault-plan class × workload class)` combination — on the
//! parallel trial runner, runs every cell **twice**, and audits the
//! shared safety invariants ([`crate::invariants`]) per cell:
//!
//! - engine health (no process panics, no event-cap hit),
//! - pool conservation (mid-run samples and final state),
//! - no wedged jobs / leaked allocations,
//! - a monotone event clock,
//! - byte-identical trace on the second run.
//!
//! Alongside the invariants every cell reports its latency SLO samples
//! (`qsub→run` and `dynget→grant`, in seconds) so the sweep can
//! aggregate exact p50/p99/p999 quantiles with and without faults
//! (see [`darms_sim::QuantileEstimator`]).
//!
//! On any violation the cell is packaged into a **triage bundle** — a
//! self-contained directory under `soak_triage/` holding the cell
//! config, the seed, the fault-plan class, the violations, the full
//! serialized trace and a slice around the first divergence — that
//! [`replay_bundle`] can re-run and compare byte-for-byte.
//!
//! The classic chaos harness ([`crate::chaos`]) is now a thin wrapper
//! over one fixed cell class: `run_chaos(seed)` ≡
//! `run_cell(SoakCell::classic(seed))`, pinned by the chaos golden
//! trace.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use darms::prelude::*;
use darms_net::HostId;
use darms_rms::{ifl, MonitorConfig};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{golden, invariants};

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

/// Virtual-time horizon of every soak cell.
const HORIZON_SECS: u64 = 400;

/// Trace lines kept on each side of the anchor in a bundle's slice.
const SLICE_CONTEXT: usize = 25;

/// Bundle format version written into `cell.json`.
pub const BUNDLE_SCHEMA: u32 = 1;

// ---------------------------------------------------------------------
// Cell axes
// ---------------------------------------------------------------------

/// The job-mix class of a soak cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadClass {
    /// The classic chaos mix (PR 4): 4–8 mid-sized jobs, up to 3
    /// dynget/hold/dynfree rounds each. `run_chaos` runs exactly this.
    Classic,
    /// Accelerator-hungry: fewer jobs, 2–5 dynamic rounds with longer
    /// holds — stresses the dynget/dynfree path and pool reclamation.
    DynHeavy,
    /// Arrival churn: 8–14 short jobs — stresses queueing, backfill and
    /// start/exit bookkeeping under faults.
    Churn,
}

impl WorkloadClass {
    /// Every workload class, in matrix order.
    pub const ALL: [WorkloadClass; 3] =
        [WorkloadClass::Classic, WorkloadClass::DynHeavy, WorkloadClass::Churn];

    /// Stable lower-case name (used in cell ids and `cell.json`).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadClass::Classic => "classic",
            WorkloadClass::DynHeavy => "dynheavy",
            WorkloadClass::Churn => "churn",
        }
    }

    /// Inverse of [`WorkloadClass::name`].
    pub fn parse(s: &str) -> Option<WorkloadClass> {
        WorkloadClass::ALL.into_iter().find(|w| w.name() == s)
    }

    fn params(self) -> WorkloadParams {
        match self {
            // Must stay identical to PR 4's chaos generator: the chaos
            // golden pins the resulting trace byte-for-byte.
            WorkloadClass::Classic => WorkloadParams {
                compute: (2, 3),
                accs: (3, 4),
                n_jobs: (4, 8),
                arrival_ms: 60_000,
                max_nodes: 2,
                max_ppn: 2,
                runtime_ms: (2_000, 8_000),
                dyn_rounds: (0, 3),
                dyn_hold_ms: (1_000, 3_000),
            },
            WorkloadClass::DynHeavy => WorkloadParams {
                compute: (2, 3),
                accs: (3, 4),
                n_jobs: (3, 6),
                arrival_ms: 40_000,
                max_nodes: 2,
                max_ppn: 2,
                runtime_ms: (1_000, 5_000),
                dyn_rounds: (2, 5),
                dyn_hold_ms: (2_000, 5_000),
            },
            WorkloadClass::Churn => WorkloadParams {
                compute: (2, 3),
                accs: (3, 4),
                n_jobs: (8, 14),
                arrival_ms: 60_000,
                max_nodes: 2,
                max_ppn: 2,
                runtime_ms: (500, 2_000),
                dyn_rounds: (0, 1),
                dyn_hold_ms: (500, 1_500),
            },
        }
    }
}

/// The fault-plan class of a soak cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// No fault plan: the baseline the SLO quantiles are compared
    /// against (and a determinism check of the fault-free path).
    None,
    /// Link-level faults only: drop, duplicate, jitter, reorder.
    Lossy,
    /// The full PR 4 schedule: lossy links plus transient partitions
    /// and host outages.
    Chaotic,
}

impl FaultClass {
    /// Every fault class, in matrix order.
    pub const ALL: [FaultClass; 3] = [FaultClass::None, FaultClass::Lossy, FaultClass::Chaotic];

    /// Stable lower-case name (used in cell ids and `cell.json`).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::None => "none",
            FaultClass::Lossy => "lossy",
            FaultClass::Chaotic => "chaotic",
        }
    }

    /// Inverse of [`FaultClass::name`].
    pub fn parse(s: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|f| f.name() == s)
    }

    /// True when the cell runs with an installed fault plan.
    pub fn faulty(self) -> bool {
        self != FaultClass::None
    }
}

/// One cell of the soak matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SoakCell {
    /// Scenario seed: derives the cluster shape, job mix and fault plan.
    pub seed: u64,
    /// Job-mix class.
    pub workload: WorkloadClass,
    /// Fault-plan class.
    pub faults: FaultClass,
    /// Testing hook: mark the cell as violating regardless of the audit
    /// (the trace is untouched). Lets the triage-bundle round trip be
    /// exercised without needing a real invariant bug.
    pub force_failure: bool,
}

impl SoakCell {
    /// A cell of the soak matrix.
    pub fn new(seed: u64, workload: WorkloadClass, faults: FaultClass) -> SoakCell {
        SoakCell { seed, workload, faults, force_failure: false }
    }

    /// The cell `run_chaos(seed)` runs: classic workload, full chaos.
    pub fn classic(seed: u64) -> SoakCell {
        SoakCell::new(seed, WorkloadClass::Classic, FaultClass::Chaotic)
    }

    /// Stable identifier, also the bundle directory name:
    /// `s<seed>-<workload>-<faults>[-forced]`.
    pub fn id(&self) -> String {
        let forced = if self.force_failure { "-forced" } else { "" };
        format!("s{}-{}-{}{forced}", self.seed, self.workload.name(), self.faults.name())
    }
}

/// The full soak matrix for a seed range: every
/// `(seed × workload × fault)` combination, seed-major, in
/// deterministic order.
pub fn matrix(seeds: std::ops::Range<u64>) -> Vec<SoakCell> {
    let mut cells = Vec::new();
    for seed in seeds {
        for workload in WorkloadClass::ALL {
            for faults in FaultClass::ALL {
                cells.push(SoakCell::new(seed, workload, faults));
            }
        }
    }
    cells
}

// ---------------------------------------------------------------------
// Scenario generation (shared with the classic chaos harness)
// ---------------------------------------------------------------------

/// Inclusive `(lo, hi)` bounds except `arrival_ms` (exclusive upper,
/// lower 0) — the bounds are threaded through `gen_range` in exactly
/// PR 4's call order so the `Classic` class reproduces the chaos golden.
struct WorkloadParams {
    compute: (usize, usize),
    accs: (usize, usize),
    n_jobs: (usize, usize),
    arrival_ms: u64,
    max_nodes: usize,
    max_ppn: u32,
    runtime_ms: (u64, u64),
    dyn_rounds: (u32, u32),
    dyn_hold_ms: (u64, u64),
}

/// One generated job of the soak workload.
#[derive(Clone, Debug)]
struct SoakJob {
    arrival: SimDuration,
    nodes: usize,
    ppn: u32,
    runtime: SimDuration,
    /// Number of `pbs_dynget(1)` → hold → `pbs_dynfree` rounds the
    /// mother-superior task performs before its compute phase.
    dyn_rounds: u32,
    dyn_hold: SimDuration,
}

/// Deterministically derive the cluster shape and job mix.
fn generate(p: &WorkloadParams, rng: &mut SmallRng) -> (usize, usize, Vec<SoakJob>) {
    let compute = rng.gen_range(p.compute.0..=p.compute.1);
    let accs = rng.gen_range(p.accs.0..=p.accs.1);
    let n_jobs = rng.gen_range(p.n_jobs.0..=p.n_jobs.1);
    let jobs = (0..n_jobs)
        .map(|_| SoakJob {
            arrival: SimDuration::from_millis(rng.gen_range(0u64..p.arrival_ms)),
            nodes: rng.gen_range(1usize..=p.max_nodes.min(compute)),
            ppn: rng.gen_range(1u32..=p.max_ppn),
            runtime: SimDuration::from_millis(rng.gen_range(p.runtime_ms.0..=p.runtime_ms.1)),
            dyn_rounds: rng.gen_range(p.dyn_rounds.0..=p.dyn_rounds.1),
            dyn_hold: SimDuration::from_millis(rng.gen_range(p.dyn_hold_ms.0..=p.dyn_hold_ms.1)),
        })
        .collect();
    (compute, accs, jobs)
}

/// Derive the fault plan for the cell's fault class. Hosts must already
/// exist (plan windows name [`HostId`]s), so this runs after
/// [`Cluster::build`]. `FaultClass::Chaotic` draws in exactly PR 4's
/// order (golden-pinned); `Lossy` stops after the link faults; `None`
/// draws nothing.
fn generate_plan(class: FaultClass, rng: &mut SmallRng, cluster: &Cluster) -> Option<FaultPlan> {
    if class == FaultClass::None {
        return None;
    }
    let lf = LinkFaults {
        drop: rng.gen_range(0.05..0.25),
        duplicate: rng.gen_range(0.0..0.15),
        jitter: SimDuration::from_millis(rng.gen_range(0u64..=20)),
        reorder: rng.gen_range(0.0..0.2),
        reorder_window: SimDuration::from_millis(50),
    };
    let mut plan = FaultPlan::new(rng.gen_range(0u64..=u64::MAX)).with_default_link(lf);
    if class == FaultClass::Lossy {
        return Some(plan);
    }
    let others: Vec<HostId> = cluster.compute.iter().chain(cluster.accs.iter()).copied().collect();
    for _ in 0..rng.gen_range(0u32..=2) {
        let from = SimTime::ZERO + secs(rng.gen_range(20u64..=90));
        let len = secs(rng.gen_range(5u64..=15));
        let host = others[rng.gen_range(0usize..others.len())];
        plan = plan.with_partition(vec![host], from, from + len);
    }
    for _ in 0..rng.gen_range(0u32..=2) {
        let from = SimTime::ZERO + secs(rng.gen_range(20u64..=90));
        let len = secs(rng.gen_range(5u64..=15));
        let host = others[rng.gen_range(0usize..others.len())];
        plan = plan.with_outage(host, from, from + len);
    }
    Some(plan)
}

// ---------------------------------------------------------------------
// Cell execution
// ---------------------------------------------------------------------

/// What one audited soak cell produced.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The cell that ran.
    pub cell: SoakCell,
    /// Invariant violations (empty on a clean run).
    pub violations: Vec<String>,
    /// Jobs submitted by the generated workload.
    pub jobs: usize,
    /// Jobs that finished normally.
    pub completed: usize,
    /// Jobs cancelled by the server (requeue budget exhausted after
    /// repeated node failures) or by walltime enforcement.
    pub cancelled: usize,
    /// Server-side host reclamations triggered by offline reports.
    pub reclaims: u64,
    /// Events the engine dispatched (per single run).
    pub events: u64,
    /// qsub→run latency samples, in seconds (`rms.qsub_to_run`).
    pub qsub_to_run: Vec<f64>,
    /// dynget→grant latency samples, in seconds
    /// (`rms.dynget_to_grant`; grants only, rejections excluded).
    pub dynget_to_grant: Vec<f64>,
    /// Serialized trace + deterministic engine stats: the byte-identity
    /// witness for this cell.
    pub trace: String,
    /// The second run's trace, kept only when it diverged from the
    /// first (for triage slicing).
    pub rerun_trace: Option<String>,
}

impl CellOutcome {
    /// True when every invariant held.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Zero-based line of the first trace divergence, when the second
    /// run diverged.
    pub fn divergence_line(&self) -> Option<usize> {
        let rerun = self.rerun_trace.as_deref()?;
        invariants::first_divergence(&self.trace, rerun)
    }
}

/// Run one soak cell (a single run) and audit every invariant except
/// replay identity — for that, use [`run_cell_checked`].
pub fn run_cell(cell: &SoakCell) -> CellOutcome {
    let mut rng = SmallRng::seed_from_u64(cell.seed ^ 0xC4A0_5EED);
    let (compute, accs, jobs) = generate(&cell.workload.params(), &mut rng);
    let horizon = SimTime::ZERO + secs(HORIZON_SECS);
    // A higher miss threshold than the default keeps purely probabilistic
    // ping loss from constantly flapping nodes offline; sustained outages
    // are still detected within ~12 s.
    let mc = MonitorConfig { interval: secs(2), miss_threshold: 5, ctl_bytes: 64 };
    let config = ClusterConfig::fast(cell.seed)
        .with_split(compute, accs)
        .with_monitor(mc, horizon)
        .with_retry(RetryPolicy::standard())
        .with_trace();
    let mut cluster = Cluster::build(config);
    if let Some(plan) = generate_plan(cell.faults, &mut rng, &cluster) {
        cluster.net.install_fault_plan(plan);
    }

    let n_jobs = jobs.len();
    for (i, j) in jobs.iter().enumerate() {
        let jc_cfg = j.clone();
        let spec = JobSpec::synthetic(format!("chaos{i}"), j.runtime)
            .nodes(j.nodes)
            .ppn(j.ppn)
            .walltime(secs(120))
            .script(script(move |mut jc| {
                let jc_cfg = jc_cfg.clone();
                async move {
                    if jc.node_index == 0 {
                        for _ in 0..jc_cfg.dyn_rounds {
                            if let Ok(grant) = jc.dynget(1).await {
                                jc.proc.sleep(jc_cfg.dyn_hold).await;
                                let _ = jc.dynfree(grant.client_id).await;
                            }
                        }
                    }
                    let _ = jc.sleep_interruptible(jc_cfg.runtime).await;
                }
            }));
        cluster.qsub_after(j.arrival, spec);
    }

    // The auditor: a head-node client polling qstat until every job is
    // terminal (or the horizon closes in), then sampling pool accounting
    // under load.
    #[derive(Default)]
    struct Audit {
        all_terminal: bool,
        completed: usize,
        cancelled: usize,
        mid_run_violations: Vec<String>,
    }
    let audit = Arc::new(Mutex::new(Audit::default()));
    let out = audit.clone();
    let node_db = cluster.node_db.clone();
    cluster.client_after("auditor", secs(5), move |c| async move {
        loop {
            c.proc.sleep(secs(10)).await;
            // Mid-run pool-conservation sample (scoped lock; the server
            // shares this database).
            {
                let db = node_db.lock();
                let sample = invariants::check_pool(&db, "mid-run");
                if !sample.is_empty() {
                    out.lock().mid_run_violations.extend(sample);
                }
            }
            let now = c.proc.now();
            if let Ok(statuses) = ifl::try_qstat(&c.proc, &c.net, c.head, c.server).await {
                if statuses.len() == n_jobs && statuses.iter().all(|s| s.state.is_terminal()) {
                    let mut a = out.lock();
                    a.all_terminal = true;
                    a.completed = statuses.iter().filter(|s| s.state == JobState::Complete).count();
                    a.cancelled = statuses.len() - a.completed;
                    return;
                }
            }
            if now >= SimTime::ZERO + secs(HORIZON_SECS - 30) {
                return; // Ran out of time: all_terminal stays false.
            }
        }
    });

    let stats = cluster.run();
    let events = cluster.tracer.snapshot();
    let trace = golden::serialize(&events, &stats);

    let mut violations = invariants::check_engine(&stats);
    let a = audit.lock();
    if !a.all_terminal {
        violations.push("jobs still not terminal near the horizon".to_string());
    }
    violations.extend(a.mid_run_violations.iter().cloned());
    {
        let db = cluster.node_db.lock();
        violations.extend(invariants::check_pool(&db, "final"));
        if a.all_terminal {
            violations.extend(invariants::check_no_leaks(&db));
        }
    }
    violations.extend(invariants::check_monotone_clock(&events));
    if cell.force_failure {
        violations.push("forced failure (cell ran with force_failure set)".to_string());
    }

    CellOutcome {
        cell: *cell,
        violations,
        jobs: n_jobs,
        completed: a.completed,
        cancelled: a.cancelled,
        reclaims: cluster.metrics.counter("rms.reclaims"),
        events: stats.events,
        qsub_to_run: cluster.metrics.histogram_samples("rms.qsub_to_run"),
        dynget_to_grant: cluster.metrics.histogram_samples("rms.dynget_to_grant"),
        trace,
        rerun_trace: None,
    }
}

/// Run the cell **twice** and additionally check byte-identical
/// reproduction; a divergence is reported as a violation (with the
/// first diverging trace line) and the second trace is kept for
/// triage slicing.
pub fn run_cell_checked(cell: &SoakCell) -> CellOutcome {
    let mut first = run_cell(cell);
    let second = run_cell(cell);
    let identity = invariants::check_replay_identity(&first.trace, &second.trace);
    if !identity.is_empty() {
        first.violations.extend(identity);
        first.rerun_trace = Some(second.trace);
    }
    first
}

// ---------------------------------------------------------------------
// Triage bundles
// ---------------------------------------------------------------------

/// Write a self-contained triage bundle for a violating cell under
/// `root` and return the bundle directory
/// (`<root>/<cell-id>/`). Contents:
///
/// - `cell.json` — schema, seed, workload/fault class, forced flag and
///   (when the rerun diverged) the zero-based divergence line;
/// - `violations.txt` — one violation per line;
/// - `trace.jsonl` — the full first-run serialized trace;
/// - `rerun_trace.jsonl` — the second run's trace, only on divergence;
/// - `slice.jsonl` — ±25 trace lines around the anchor (the divergence
///   line, or the trace tail for end-of-run invariant violations).
pub fn write_triage_bundle(root: &Path, out: &CellOutcome) -> std::io::Result<PathBuf> {
    let dir = root.join(out.cell.id());
    std::fs::create_dir_all(&dir)?;

    let divergence = out.divergence_line();
    let mut cell_json = String::new();
    cell_json.push_str("{\n");
    cell_json.push_str(&format!("  \"schema\": {BUNDLE_SCHEMA},\n"));
    cell_json.push_str(&format!("  \"seed\": {},\n", out.cell.seed));
    cell_json.push_str(&format!("  \"workload\": \"{}\",\n", out.cell.workload.name()));
    cell_json.push_str(&format!("  \"faults\": \"{}\",\n", out.cell.faults.name()));
    cell_json.push_str(&format!("  \"force_failure\": {},\n", out.cell.force_failure));
    match divergence {
        Some(line) => cell_json.push_str(&format!("  \"divergence_line\": {line}\n")),
        None => cell_json.push_str("  \"divergence_line\": null\n"),
    }
    cell_json.push_str("}\n");
    std::fs::write(dir.join("cell.json"), cell_json)?;

    let mut violations = out.violations.join("\n");
    violations.push('\n');
    std::fs::write(dir.join("violations.txt"), violations)?;
    std::fs::write(dir.join("trace.jsonl"), &out.trace)?;
    if let Some(rerun) = &out.rerun_trace {
        std::fs::write(dir.join("rerun_trace.jsonl"), rerun)?;
    }

    // Slice: context around the divergence, or the trace tail when the
    // violation was detected by the end-of-run audit.
    let lines: Vec<&str> = out.trace.lines().collect();
    let anchor = divergence.unwrap_or(lines.len().saturating_sub(1));
    let from = anchor.saturating_sub(SLICE_CONTEXT);
    let to = (anchor + SLICE_CONTEXT + 1).min(lines.len());
    let mut slice = String::new();
    for l in &lines[from..to] {
        slice.push_str(l);
        slice.push('\n');
    }
    std::fs::write(dir.join("slice.jsonl"), slice)?;

    Ok(dir)
}

/// The result of replaying a triage bundle.
#[derive(Clone, Debug)]
pub struct BundleReplay {
    /// The cell reconstructed from `cell.json`.
    pub cell: SoakCell,
    /// True when the fresh run's trace equals the bundled
    /// `trace.jsonl` byte-for-byte.
    pub byte_identical: bool,
    /// The fresh run's invariant violations.
    pub violations: Vec<String>,
}

/// Extract the value following `"key":` in the hand-written `cell.json`
/// format (one key per line).
fn json_field<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)?;
    let rest = &text[at + needle.len()..];
    let end = rest.find(['\n', ',']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Re-run the cell recorded in a triage bundle and compare the fresh
/// trace against the bundled one byte-for-byte. Errors describe a
/// malformed or unreadable bundle.
pub fn replay_bundle(bundle: &Path) -> Result<BundleReplay, String> {
    let cell_path = bundle.join("cell.json");
    let text = std::fs::read_to_string(&cell_path)
        .map_err(|e| format!("cannot read {}: {e}", cell_path.display()))?;
    let field =
        |key: &str| json_field(&text, key).ok_or_else(|| format!("cell.json is missing \"{key}\""));
    let schema: u32 =
        field("schema")?.parse().map_err(|e| format!("cell.json: bad schema: {e}"))?;
    if schema != BUNDLE_SCHEMA {
        return Err(format!("unsupported bundle schema {schema} (expected {BUNDLE_SCHEMA})"));
    }
    let seed: u64 = field("seed")?.parse().map_err(|e| format!("cell.json: bad seed: {e}"))?;
    let workload_name = field("workload")?.trim_matches('"');
    let workload = WorkloadClass::parse(workload_name)
        .ok_or_else(|| format!("cell.json: unknown workload class \"{workload_name}\""))?;
    let faults_name = field("faults")?.trim_matches('"');
    let faults = FaultClass::parse(faults_name)
        .ok_or_else(|| format!("cell.json: unknown fault class \"{faults_name}\""))?;
    let force_failure = field("force_failure")? == "true";

    let trace_path = bundle.join("trace.jsonl");
    let expected = std::fs::read_to_string(&trace_path)
        .map_err(|e| format!("cannot read {}: {e}", trace_path.display()))?;

    let cell = SoakCell { seed, workload, faults, force_failure };
    let fresh = run_cell(&cell);
    Ok(BundleReplay { cell, byte_identical: fresh.trace == expected, violations: fresh.violations })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_of_each_fault_class_runs_clean() {
        for faults in FaultClass::ALL {
            let cell = SoakCell::new(3, WorkloadClass::Classic, faults);
            let o = run_cell_checked(&cell);
            assert!(o.clean(), "{}: violations: {:?}", cell.id(), o.violations);
            assert_eq!(o.jobs, o.completed + o.cancelled);
            assert!(o.events > 0);
        }
    }

    #[test]
    fn workload_classes_differ_and_reproduce() {
        let traces: Vec<String> = WorkloadClass::ALL
            .iter()
            .map(|&w| {
                let cell = SoakCell::new(5, w, FaultClass::Lossy);
                let o = run_cell_checked(&cell);
                assert!(o.clean(), "{}: violations: {:?}", cell.id(), o.violations);
                o.trace
            })
            .collect();
        assert_ne!(traces[0], traces[1], "classic and dynheavy must generate distinct scenarios");
        assert_ne!(traces[1], traces[2], "dynheavy and churn must generate distinct scenarios");
    }

    #[test]
    fn matrix_is_seed_major_and_complete() {
        let cells = matrix(0..2);
        assert_eq!(cells.len(), 2 * WorkloadClass::ALL.len() * FaultClass::ALL.len());
        assert_eq!(cells[0].id(), "s0-classic-none");
        assert_eq!(cells[cells.len() - 1].id(), "s1-churn-chaotic");
    }

    #[test]
    fn fault_free_cells_record_slo_samples() {
        let o = run_cell(&SoakCell::new(1, WorkloadClass::DynHeavy, FaultClass::None));
        assert!(o.clean(), "violations: {:?}", o.violations);
        assert!(!o.qsub_to_run.is_empty(), "every started job records qsub→run");
        assert!(!o.dynget_to_grant.is_empty(), "dynheavy cells must see at least one grant");
    }
}
