//! Extended studies beyond the paper's four figures: the design-choice
//! ablations DESIGN.md calls out (EXT-1..EXT-5). The paper names several
//! of these as future work (fairness of top-priority dynamic scheduling,
//! better policies); here they are measured.

use std::sync::Arc;

use darms::prelude::*;
use darms_sched::SchedConfig;
use parking_lot::Mutex;

use crate::runner;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

/// Outcome of one provisioning-strategy run (EXT-1).
#[derive(Clone, Copy, Debug)]
pub struct ProvisioningOutcome {
    /// Time from first submission to last completion (seconds).
    pub makespan: f64,
    /// Mean job wait (seconds).
    pub mean_wait: f64,
    /// Dynamic requests rejected (0 for the static strategy).
    pub rejections: usize,
}

/// EXT-1: static-peak provisioning vs dynamic growth.
///
/// Eight two-phase jobs on 2 CN + 4 AC. Each job computes a long base
/// phase needing 1 accelerator and a short burst phase needing 3.
/// *Static-peak* requests 3 accelerators for the whole runtime (classic
/// batch systems force this); *dynamic* requests 1 statically and grows
/// by 2 only for the burst (the paper's contribution). Dynamic
/// provisioning should pack far better.
pub fn ext1_static_vs_dynamic(seed: u64) -> (ProvisioningOutcome, ProvisioningOutcome) {
    (provisioning_run(seed, false), provisioning_run(seed, true))
}

fn provisioning_run(seed: u64, dynamic: bool) -> ProvisioningOutcome {
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(seed).with_split(2, 4));
    let dac = cluster.dac.clone();
    let rejections = Arc::new(Mutex::new(0usize));
    let n_jobs = 8;
    for i in 0..n_jobs {
        let d = dac.clone();
        let rj = rejections.clone();
        let base = secs(40);
        let burst = secs(10);
        let acpn = if dynamic { 1 } else { 3 };
        let spec = JobSpec::synthetic(format!("j{i}"), base + burst)
            .acpn(acpn)
            .ppn(4)
            .walltime((base + burst) * 2)
            .script(script(move |jc| {
                let d = d.clone();
                let rj = rj.clone();
                async move {
                    let (mut ses, _) = AcSession::init(&jc, &d, None).await;
                    jc.proc.sleep(base).await;
                    if dynamic {
                        match ses.ac_get(2).await {
                            Ok(set) => {
                                jc.proc.sleep(burst).await;
                                ses.ac_free(&set).await.unwrap();
                            }
                            Err(_) => {
                                *rj.lock() += 1;
                                // degrade: run the burst on the single static
                                // accelerator, three times slower
                                jc.proc.sleep(burst * 3).await;
                            }
                        }
                    } else {
                        jc.proc.sleep(burst).await;
                    }
                    ses.finalize();
                }
            }));
        cluster.qsub_after(secs(2 * i as u64), spec);
    }
    let statuses = Arc::new(Mutex::new(Vec::new()));
    let out = statuses.clone();
    cluster.client_after("watch", secs(1), move |c| async move {
        loop {
            let st = c.qstat().await;
            if st.len() == n_jobs as usize && st.iter().all(|s| s.state.is_terminal()) {
                *out.lock() = st;
                break;
            }
            c.proc.sleep(secs(5)).await;
        }
    });
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let st = statuses.lock().clone();
    let first = st.iter().map(|s| s.submitted).min().expect("jobs ran");
    let last = st.iter().filter_map(|s| s.completed).max().expect("jobs finished");
    let mean_wait =
        st.iter().filter_map(|s| s.started.map(|t| (t - s.submitted).as_secs_f64())).sum::<f64>()
            / st.len() as f64;
    let rejections = *rejections.lock();
    ProvisioningOutcome { makespan: (last - first).as_secs_f64(), mean_wait, rejections }
}

/// EXT-2: dynamic-request rejection rate as a function of pool size.
/// Twelve jobs each issue `AC_Get(2)` bursts at random times; returns
/// `(pool_size, rejection_fraction)` per configuration.
pub fn ext2_rejection_sweep(seed: u64) -> Vec<(usize, f64)> {
    const POOLS: [usize; 5] = [2, 3, 4, 5, 6];
    let fracs = runner::run_indexed(POOLS.len(), |i| rejection_run(seed, POOLS[i]));
    POOLS.into_iter().zip(fracs).collect()
}

fn rejection_run(seed: u64, pool: usize) -> f64 {
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(seed).with_split(2, pool));
    let dac = cluster.dac.clone();
    let granted = Arc::new(Mutex::new(0usize));
    let rejected = Arc::new(Mutex::new(0usize));
    let n_jobs = 6;
    for i in 0..n_jobs {
        let d = dac.clone();
        let g = granted.clone();
        let r = rejected.clone();
        let spec = JobSpec::synthetic(format!("j{i}"), secs(60)).ppn(2).script(script(move |jc| {
            let d = d.clone();
            let g = g.clone();
            let r = r.clone();
            async move {
                let (mut ses, _) = AcSession::init(&jc, &d, None).await;
                // Three bursts per job at staggered offsets.
                for b in 0..3u64 {
                    jc.proc.sleep(secs(5 + 3 * b)).await;
                    match ses.ac_get(2).await {
                        Ok(set) => {
                            *g.lock() += 1;
                            jc.proc.sleep(secs(6)).await;
                            ses.ac_free(&set).await.unwrap();
                        }
                        Err(_) => *r.lock() += 1,
                    }
                }
                ses.finalize();
            }
        }));
        cluster.qsub_after(secs(i as u64), spec);
    }
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let g = *granted.lock();
    let r = *rejected.lock();
    r as f64 / (g + r).max(1) as f64
}

/// EXT-3: the fairness cost of top-priority dynamic scheduling. A stream
/// of queued accelerator jobs competes with a running job that issues
/// frequent dynamic requests. Returns mean queued-job wait seconds for
/// `(top_priority, low_priority)` dynamic scheduling.
pub fn ext3_fairness(seed: u64) -> (f64, f64) {
    (fairness_run(seed, true), fairness_run(seed, false))
}

fn fairness_run(seed: u64, dyn_top: bool) -> f64 {
    let mut sched = SchedConfig::paper_testbed();
    sched.dyn_top_priority = dyn_top;
    let mut cluster =
        Cluster::build(ClusterConfig::paper_testbed(seed).with_split(2, 2).with_sched(sched));
    let dac = cluster.dac.clone();

    // The greedy running job grabs and releases both accelerators in a
    // tight loop for 200 s.
    let spec = JobSpec::synthetic("greedy", secs(200)).ppn(8).script(script(move |jc| {
        let dac = dac.clone();
        async move {
            let (mut ses, _) = AcSession::init(&jc, &dac, None).await;
            let end = SimTime::ZERO + secs(200);
            while jc.proc.now() < end {
                if let Ok(set) = ses.ac_get(2).await {
                    jc.proc.sleep(secs(8)).await;
                    ses.ac_free(&set).await.unwrap();
                    jc.proc.sleep(secs(2)).await;
                } else {
                    jc.proc.sleep(secs(2)).await;
                }
            }
            ses.finalize();
        }
    }));
    cluster.qsub(spec);

    // Queued competitors each want one accelerator briefly.
    let n_comp = 6;
    for i in 0..n_comp {
        let spec = JobSpec::synthetic(format!("comp{i}"), secs(5)).acpn(1).walltime(secs(10));
        cluster.qsub_after(secs(10 + 5 * i as u64), spec);
    }
    let statuses = Arc::new(Mutex::new(Vec::new()));
    let out = statuses.clone();
    cluster.client_after("watch", secs(1), move |c| async move {
        loop {
            let st = c.qstat().await;
            let comps: Vec<_> = st.iter().filter(|s| s.name.starts_with("comp")).cloned().collect();
            if comps.len() == n_comp as usize && comps.iter().all(|s| s.state.is_terminal()) {
                *out.lock() = comps;
                break;
            }
            c.proc.sleep(secs(5)).await;
        }
    });
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let st = statuses.lock().clone();
    st.iter().filter_map(|s| s.started.map(|t| (t - s.submitted).as_secs_f64())).sum::<f64>()
        / st.len() as f64
}

/// EXT-5: EASY backfill on/off under a blocked-queue workload. Returns
/// `(makespan_with_backfill, makespan_without)` in seconds.
pub fn ext5_backfill(seed: u64) -> (f64, f64) {
    (backfill_run(seed, true), backfill_run(seed, false))
}

fn backfill_run(seed: u64, backfill: bool) -> f64 {
    let mut sched = SchedConfig::paper_testbed();
    sched.backfill = backfill;
    sched.policy = darms_sched::Policy::Fifo;
    let mut cluster =
        Cluster::build(ClusterConfig::paper_testbed(seed).with_split(2, 0).with_sched(sched));
    // hog: 1 node 120 s; wide: 2 nodes (blocked); then 6 short jobs that
    // can backfill.
    cluster.qsub(JobSpec::synthetic("hog", secs(120)).ppn(8).walltime(secs(130)));
    cluster.qsub(JobSpec::synthetic("wide", secs(20)).nodes(2).ppn(8).walltime(secs(25)));
    for i in 0..6 {
        cluster.qsub(JobSpec::synthetic(format!("short{i}"), secs(15)).ppn(8).walltime(secs(18)));
    }
    let statuses = Arc::new(Mutex::new(Vec::new()));
    let out = statuses.clone();
    cluster.client_after("watch", secs(1), move |c| async move {
        loop {
            let st = c.qstat().await;
            if st.len() == 8 && st.iter().all(|s| s.state.is_terminal()) {
                *out.lock() = st;
                break;
            }
            c.proc.sleep(secs(5)).await;
        }
    });
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let st = statuses.lock().clone();
    let first = st.iter().map(|s| s.submitted).min().expect("ran");
    let last = st.iter().filter_map(|s| s.completed).max().expect("finished");
    (last - first).as_secs_f64()
}

/// EXT-4: pipelined vs store-and-forward transfers. Returns the virtual
/// time (seconds) to upload `mb` megabytes to one accelerator with the
/// pipelined protocol on and off.
pub fn ext4_pipelining(seed: u64, mb: usize) -> (f64, f64) {
    let both = runner::run_indexed(2, |i| transfer_run(seed, mb, i == 0));
    (both[0], both[1])
}

fn transfer_run(seed: u64, mb: usize, pipelined: bool) -> f64 {
    let mut config = ClusterConfig::paper_testbed(seed).with_split(1, 1);
    config.dac_cost.pipelined = pipelined;
    let mut cluster = Cluster::build(config);
    let dac = cluster.dac.clone();
    let elapsed = Arc::new(Mutex::new(0.0f64));
    let out = elapsed.clone();
    let spec = JobSpec::synthetic("xfer", secs(10)).acpn(1).script(script(move |jc| {
        let dac = dac.clone();
        let out = out.clone();
        async move {
            let (mut ses, handles) = AcSession::init(&jc, &dac, None).await;
            let h = handles[0];
            let bytes = (mb * (1 << 20)) as u64;
            let p = ses.mem_alloc(h, bytes).await.unwrap();
            let payload = vec![0xabu8; bytes as usize];
            let t0 = jc.proc.now();
            ses.mem_write(h, p, payload).await.unwrap();
            *out.lock() = (jc.proc.now() - t0).as_secs_f64();
            ses.finalize();
        }
    }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);
    let v = *elapsed.lock();
    v
}
