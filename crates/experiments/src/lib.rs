//! # darms-experiments — the paper's evaluation, regenerated
//!
//! One scenario function per figure of §IV, each runnable standalone
//! (`cargo run -p darms-experiments --bin fig7a` etc.) and shared by the
//! criterion benches. All scenarios run on the paper-calibrated cost
//! models and average over multiple seeded trials, mirroring the paper's
//! "average over 10 trials".

#![warn(missing_docs)]

pub mod chaos;
pub mod datacenter;
pub mod extended;
pub mod figures;
pub mod golden;
pub mod hostmem;
pub mod invariants;
pub mod replay;
pub mod runner;
pub mod soak;

pub use chaos::{run_chaos, run_chaos_checked, ChaosOutcome};
pub use datacenter::{run_datacenter, DatacenterConfig, DatacenterOutcome};
pub use figures::{fig7a, fig7b, fig8, fig9, Fig7Row, Fig8Row, Fig9Row, TRIALS};
pub use replay::{replay, replay_swf, ReplayConfig, ReplayOutcome};
pub use soak::{
    matrix, replay_bundle, run_cell, run_cell_checked, write_triage_bundle, BundleReplay,
    CellOutcome, FaultClass, SoakCell, WorkloadClass,
};
