//! Host memory observability for the bench harness.
//!
//! Peak RSS comes from `/proc/self/status` (`VmHWM`). That is host
//! state — darms-lint's `nondet` rule flags `/proc` reads precisely
//! because they are not functions of the simulation seed — so the one
//! read here carries a waiver: the value feeds `BENCH_sim.json`
//! observability rows only and never enters a simulation.
//!
//! `VmHWM` is the process-lifetime *high-water mark*: it only ever
//! grows. Callers that want a per-phase peak must run the phases in
//! ascending order of expected footprint and sample after each phase
//! (the datacenter bench runs 1k hosts before 10k for this reason).

/// Peak resident set size of this process in MiB (`VmHWM`), or `None`
/// where `/proc` is unavailable (non-Linux hosts). Monotone over the
/// process lifetime; see the module docs for how to attribute it to a
/// phase.
pub fn peak_rss_mib() -> Option<f64> {
    // darms-lint: allow(nondet, reason = "bench observability: VmHWM is reported in BENCH_sim.json and never feeds a simulation")
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_and_plausible_on_linux() {
        if let Some(mib) = peak_rss_mib() {
            // A test binary's peak sits between a few hundred KiB and a
            // few GiB; the parse must not hand back kB-vs-MiB nonsense.
            assert!(mib > 0.1 && mib < 1_000_000.0, "implausible peak RSS: {mib} MiB");
        }
    }
}
