//! Parallel trial-sweep runner.
//!
//! Every figure of the paper's evaluation and every EXT ablation is an
//! average over independent seeded trials; the trials share nothing but
//! their scenario function, so they parallelise perfectly. This module
//! runs `f(0), f(1), …, f(n-1)` on a fixed pool of worker threads and
//! returns the results **in index order**, so a consumer that folds the
//! results sequentially produces output byte-identical to the serial
//! path — parallelism changes wall-clock time, never numbers.
//!
//! Thread-count resolution, in precedence order:
//! 1. a process-wide override installed with [`set_threads`] (used by
//!    the determinism tests to pin both sides of a comparison),
//! 2. the `DARMS_SWEEP_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! A value of 1 selects the serial path (no pool, no extra threads),
//! which is also taken whenever the sweep has at most one cell.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use parking_lot::Mutex;

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pin the worker count for every subsequent sweep in this process
/// (tests use this to compare serial and parallel runs); `0` clears the
/// override.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker count sweeps run with right now (see module docs for the
/// resolution order).
pub fn default_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("DARMS_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `f` over `0..n` on the default worker pool; results in index
/// order.
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(default_threads(), n, f)
}

/// Run `f` over `0..n` on `threads` workers; results in index order.
///
/// Work is handed out through a shared atomic cursor, so a slow cell
/// never stalls the others; each worker writes its result into the slot
/// for that index. A panic inside `f` (e.g. a trial's shape assertion)
/// propagates out of the sweep once the remaining workers drain.
pub fn run_indexed_with<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock() = Some(f(i));
            });
        }
    });
    slots.into_iter().map(|m| m.into_inner().expect("worker filled every slot")).collect()
}

/// Sweep a `points × trials` grid on one shared pool and regroup the
/// cells per point (trials stay in order within each point). Flattening
/// the grid keeps all workers busy even when `trials` is smaller than
/// the pool.
pub fn run_grid<T, F>(points: usize, trials: usize, f: F) -> Vec<Vec<T>>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let flat = run_indexed(points * trials, |i| f(i / trials, i % trials));
    let mut it = flat.into_iter();
    (0..points).map(|_| it.by_ref().take(trials).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn results_are_index_ordered_under_reversed_finish_order() {
        // Later indices finish first: cell i sleeps (n - i) ms, so with
        // more workers than cells every thread races to write its slot
        // in reverse order. Collection must still be by index.
        let n = 8;
        let out = run_indexed_with(n, n, |i| {
            thread::sleep(Duration::from_millis((n - i) as u64 * 3));
            i * 10
        });
        assert_eq!(out, (0..n).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_indexed_with(1, 16, |i| i * i + 1);
        let parallel = run_indexed_with(4, 16, |i| i * i + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn grid_groups_by_point_in_trial_order() {
        let grid = run_grid(3, 4, |p, t| (p, t));
        assert_eq!(grid.len(), 3);
        for (p, cells) in grid.iter().enumerate() {
            assert_eq!(cells, &(0..4).map(|t| (p, t)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_cell_sweeps() {
        assert_eq!(run_indexed_with(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed_with(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn override_wins_over_environment() {
        set_threads(3);
        assert_eq!(default_threads(), 3);
        set_threads(0);
        assert!(default_threads() >= 1);
    }
}
