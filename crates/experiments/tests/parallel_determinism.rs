//! The parallel trial sweep must be invisible in the numbers: running
//! the same cells on a worker pool has to reproduce the serial path
//! byte-for-byte, down to the engine statistics of every trial.

use darms_experiments::{figures, runner};

/// Every fig8 trial run on a 4-thread pool matches its serial twin
/// exactly: the derived (sched-others, service) pair compares equal as
/// formatted bytes (f64 Debug is round-trip exact), and the engine's
/// deterministic statistics (event count, end time, context switches,
/// queue profile) are identical.
#[test]
fn fig8_parallel_sweep_matches_serial_per_trial() {
    let trials = 3;
    let cell = |t: usize| figures::fig8_trial_full(16, 3000 + t as u64);
    let serial = runner::run_indexed_with(1, trials, cell);
    let parallel = runner::run_indexed_with(4, trials, cell);
    assert_eq!(serial.len(), parallel.len());
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            format!("{:?} {:?}", a.0, a.1),
            format!("{:?} {:?}", b.0, b.1),
            "trial {i}: derived figures must be byte-identical"
        );
        assert_eq!(a.2, b.2, "trial {i}: SimStats must be identical");
    }
}

/// The folded figure rows (means over trials) are byte-identical too:
/// the runner returns results in index order, so the serial fold order
/// — and with it every float-summation rounding — is preserved.
#[test]
fn fig8_rows_from_parallel_sweep_match_serial_fold() {
    runner::set_threads(1);
    let serial_rows = figures::fig8(2);
    runner::set_threads(4);
    let parallel_rows = figures::fig8(2);
    runner::set_threads(0);
    assert_eq!(format!("{serial_rows:?}"), format!("{parallel_rows:?}"));
}
