//! Golden-trace determinism guard for the stackless-runtime refactor.
//!
//! The files under `tests/golden/` were captured with the pre-refactor
//! threaded runtime (one OS thread per process, `ProcCtl` park/unpark
//! hand-off). These tests assert the current runtime reproduces them
//! **byte-for-byte**: every structured trace event (virtual time,
//! source, name, detail) in the same order, plus identical
//! deterministic engine counters (events, context switches, queue-depth
//! profile, process counts).
//!
//! Regenerate deliberately with:
//!
//! ```text
//! DARMS_REGEN_GOLDEN=1 cargo test -p darms-experiments --test golden_trace
//! ```

use std::path::PathBuf;

use darms_experiments::golden;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compare `actual` against the checked-in golden file, or rewrite the
/// file when `DARMS_REGEN_GOLDEN` is set. On mismatch, report the first
/// differing line so the divergence is actionable.
fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("DARMS_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with DARMS_REGEN_GOLDEN=1",
            path.display()
        )
    });
    if expected != actual {
        let mut exp_lines = expected.lines();
        let mut act_lines = actual.lines();
        let mut line_no = 1usize;
        loop {
            match (exp_lines.next(), act_lines.next()) {
                (Some(e), Some(a)) if e == a => line_no += 1,
                (e, a) => panic!(
                    "{name} diverged from the pre-refactor golden trace at line {line_no}:\n  \
                     expected: {}\n  actual:   {}",
                    e.unwrap_or("<end of golden file>"),
                    a.unwrap_or("<end of actual output>"),
                ),
            }
        }
    }
}

#[test]
fn fig8_trace_is_byte_identical_to_pre_refactor_runtime() {
    check("fig8_load16_seed3000.jsonl", &golden::fig8_golden());
}

#[test]
fn swf_replay_trace_is_byte_identical_to_pre_refactor_runtime() {
    check("swf_replay_jobs8_seed4242.jsonl", &golden::swf_replay_golden());
}

#[test]
fn chaos_seed7_trace_is_byte_identical() {
    // Captured when the fault-injection layer landed: pins the seeded
    // failure schedule and the retry/reclaim recovery behaviour.
    check("chaos_seed7.jsonl", &golden::chaos_golden());
}
