//! Micro-benchmarks of the substrates: engine event throughput, MPI
//! primitive latency (in real time per simulated operation), scheduler
//! iteration cost scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darms_mpi::{data, launch_world, MpiCostModel, MpiRuntime, WorldSpec};
use darms_net::{HostKind, LatencyModel, Network};
use darms_sim::{Engine, SimDuration};

/// Engine throughput: a ping-pong pair exchanging N messages.
fn bench_engine_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_pingpong");
    for n in [1_000u32, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Engine::with_seed(1);
                let pong = sim.spawn_process("pong", move |p| async move {
                    for _ in 0..n {
                        let (v, src) = p.recv_as::<u32>().await;
                        p.send(src.unwrap(), v + 1, SimDuration::from_micros(1));
                    }
                });
                sim.spawn_process("ping", move |p| async move {
                    for i in 0..n {
                        p.send(pong.into(), i, SimDuration::from_micros(1));
                        let _ = p.recv_as::<u32>().await;
                    }
                });
                sim.run()
            });
        });
    }
    g.finish();
}

/// MPI world launch + barrier + gather across 6 simulated hosts.
fn bench_mpi_collectives(c: &mut Criterion) {
    c.bench_function("mpi_world_barrier_gather", |b| {
        b.iter(|| {
            let mut sim = Engine::with_seed(2);
            let net = Network::new(LatencyModel::ideal(), 3);
            let hosts: Vec<_> =
                (0..6).map(|i| net.add_host(format!("h{i}"), HostKind::Generic)).collect();
            let rt = MpiRuntime::new(net, MpiCostModel::instant());
            rt.register_exe("work", |mut mpi, _| async move {
                let world = mpi.world().unwrap();
                for _ in 0..10 {
                    mpi.barrier(world).await.unwrap();
                    let me = world.rank() as u64;
                    let _ = mpi.gather(world, 0, data(me), 8).await.unwrap();
                }
            });
            let specs = hosts
                .iter()
                .map(|&h| WorldSpec {
                    host: h,
                    exe: "work".into(),
                    args: vec![],
                    start_delay: SimDuration::ZERO,
                })
                .collect();
            launch_world(&mut sim, &rt, specs).unwrap();
            sim.run()
        });
    });
}

/// Whole-cluster boot + one synthetic job end-to-end.
fn bench_cluster_boot_job(c: &mut Criterion) {
    use darms::prelude::*;
    c.bench_function("cluster_boot_and_one_job", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut cluster = Cluster::build(ClusterConfig::fast(seed).with_split(2, 2));
            cluster.qsub(JobSpec::synthetic("j", SimDuration::from_secs(1)).acpn(1));
            cluster.run()
        });
    });
}

/// Tracing overhead: the same cluster scenario with the tracer disabled
/// (default; every instrumented call site is one relaxed atomic load)
/// vs enabled (events buffered). Disabled must be indistinguishable from
/// the pre-instrumentation baseline.
fn bench_trace_overhead(c: &mut Criterion) {
    use darms::prelude::*;
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(60);
    for (label, traced) in [("disabled", false), ("enabled", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &traced, |b, &traced| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let cfg = ClusterConfig::fast(seed).with_split(2, 2);
                let cfg = if traced { cfg.with_trace() } else { cfg };
                let mut cluster = Cluster::build(cfg);
                cluster.qsub(JobSpec::synthetic("j", SimDuration::from_secs(1)).acpn(1));
                cluster.run()
            });
        });
    }
    g.finish();
}

/// Pure scheduler logic: priority ordering + allocation over a synthetic
/// snapshot, scaling with queue depth (the computational kernel behind
/// Fig. 8's per-job cost).
fn bench_scheduler_logic(c: &mut Criterion) {
    use darms_net::HostId;
    use darms_rms::proto::{ClusterSnapshot, NodeSnap, QueuedJobSnap};
    use darms_rms::{JobId, NodeRole};
    use darms_sched::{order_queue, AllocPolicy, Fairshare, FreeTracker, Policy};
    use darms_sim::SimTime;

    let mut g = c.benchmark_group("scheduler_logic");
    for depth in [16usize, 128, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let nodes: Vec<NodeSnap> = (0..64)
                .map(|i| NodeSnap {
                    host: HostId::from_raw(i),
                    role: if i < 32 { NodeRole::Compute } else { NodeRole::Accelerator },
                    cores_total: 8,
                    cores_free: 8,
                    offline: false,
                })
                .collect();
            let snap =
                ClusterSnapshot { nodes, queued: vec![], running: vec![], dyn_pending: None };
            let queued: Vec<QueuedJobSnap> = (0..depth)
                .map(|i| QueuedJobSnap {
                    job: JobId(i as u64),
                    owner: format!("user{}", i % 7),
                    submitted: SimTime::from_nanos((depth - i) as u64 * 1_000_000),
                    nodes: 1 + i % 3,
                    ppn: 1 + (i % 8) as u32,
                    acpn: (i % 3) as u32,
                    walltime_estimate: SimDuration::from_secs(60 + i as u64),
                })
                .collect();
            let fairshare = Fairshare::new(SimDuration::from_secs(3600));
            b.iter(|| {
                let ordered = order_queue(
                    queued.clone(),
                    SimTime::from_nanos(10_000_000_000),
                    &Policy::Priority(Default::default()),
                    &fairshare,
                );
                let mut tracker = FreeTracker::from_snapshot(&snap);
                let mut started = 0;
                for j in &ordered {
                    if tracker.fits(j) {
                        tracker.take_compute(j.nodes, j.ppn, AllocPolicy::FirstFit);
                        tracker.take_accelerators(j.nodes * j.acpn as usize);
                        started += 1;
                    }
                }
                started
            });
        });
    }
    g.finish();
}

/// Device + kernel execution throughput (the functional GPU model).
fn bench_device_kernels(c: &mut Criterion) {
    use darms_dac::{f64s_to_bytes, AccDevice, DeviceProps, KernelArgs, KernelRegistry, Param};
    let reg = KernelRegistry::with_builtins();
    let mut g = c.benchmark_group("device_kernels");
    for n in [1usize << 10, 1 << 14] {
        g.bench_with_input(BenchmarkId::new("vector_add", n), &n, |b, &n| {
            let mut dev = AccDevice::new(DeviceProps::gpu_2013());
            let bytes = (n * 8) as u64;
            let a = dev.malloc(bytes).unwrap();
            let bb = dev.malloc(bytes).unwrap();
            let cc = dev.malloc(bytes).unwrap();
            let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
            dev.write(a, 0, &f64s_to_bytes(&xs)).unwrap();
            dev.write(bb, 0, &f64s_to_bytes(&xs)).unwrap();
            let k = reg.get("vector_add").unwrap();
            let args = KernelArgs::new(
                64,
                256,
                vec![Param::Ptr(a), Param::Ptr(bb), Param::Ptr(cc), Param::U64(n as u64)],
            );
            b.iter(|| (k.body)(&mut dev, &args).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_engine_pingpong,
    bench_mpi_collectives,
    bench_cluster_boot_job,
    bench_trace_overhead,
    bench_scheduler_logic,
    bench_device_kernels
);
criterion_main!(benches);
