//! Criterion benches: one per figure of the paper's evaluation. Each
//! bench runs the complete simulated scenario (cluster boot, batch
//! system, MPI, daemons) for one data point, measuring the *simulator's*
//! real cost of regenerating that figure; the virtual-time results
//! themselves are printed by the `fig7a`/`fig7b`/`fig8`/`fig9` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darms_experiments::figures::{fig7a_trial, fig7b_trial, fig8_trial, fig9_trial};

fn bench_fig7a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7a_acinit");
    g.sample_size(20);
    for x in [1usize, 6] {
        g.bench_with_input(BenchmarkId::from_parameter(x), &x, |b, &x| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                fig7a_trial(x, seed)
            });
        });
    }
    g.finish();
}

fn bench_fig7b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7b_dynamic_request");
    g.sample_size(20);
    for y in [1usize, 6] {
        g.bench_with_input(BenchmarkId::from_parameter(y), &y, |b, &y| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                fig7b_trial(y, seed)
            });
        });
    }
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_loaded_scheduler");
    g.sample_size(10);
    for load in [0usize, 16, 20] {
        g.bench_with_input(BenchmarkId::from_parameter(load), &load, |b, &load| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                fig8_trial(load, seed)
            });
        });
    }
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_concurrent_requests");
    g.sample_size(10);
    g.bench_function("three_jobs", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            fig9_trial(seed)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fig7a, bench_fig7b, bench_fig8, bench_fig9);
criterion_main!(benches);
