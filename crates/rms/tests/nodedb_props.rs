//! NodeDb index property test: the free-pool buckets, job->hosts index
//! and running usage counters must agree with linear recomputation over
//! the flat records after every mutation, across randomized
//! allocate/release/offline sequences (including releases while a host
//! is offline — the reclaim pattern).

use darms_net::HostId;
use darms_rms::{JobId, NodeDb};
use proptest::prelude::*;

fn h(i: usize) -> HostId {
    HostId::from_raw(i)
}

const CORE_PALETTE: [u32; 4] = [4, 8, 16, 1];

/// Every indexed query must equal its linear twin.
fn assert_consistent(db: &NodeDb) {
    for ppn in [0u32, 1, 2, 4, 8, 16] {
        assert_eq!(db.free_compute(ppn), db.free_compute_linear(ppn), "free_compute({ppn})");
    }
    assert_eq!(db.free_accelerators(), db.free_accelerators_linear());
    assert_eq!(db.compute_core_usage(), db.compute_core_usage_linear());
    assert_eq!(db.accelerator_usage(), db.accelerator_usage_linear());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn nodedb_indexes_match_linear_scans(
        computes in prop::collection::vec(0usize..CORE_PALETTE.len(), 1..16),
        n_accs in 0usize..8,
        ops in prop::collection::vec((0u8..6, 0usize..64, 0u64..6, 0u32..5), 1..60),
    ) {
        let mut db = NodeDb::new();
        for (i, &c) in computes.iter().enumerate() {
            db.add_compute(h(i), CORE_PALETTE[c]);
        }
        let n_hosts = computes.len() + n_accs;
        for j in computes.len()..n_hosts {
            db.add_accelerator(h(j));
        }
        assert_consistent(&db);
        for (op, pick, job, ppn) in ops {
            let job = JobId(job);
            match op {
                0 => {
                    // Allocate ppn cores on some currently-fitting host
                    // (free_compute excludes offline, so no panics).
                    let ppn = ppn.max(1);
                    let free = db.free_compute(ppn);
                    if !free.is_empty() {
                        db.allocate_compute(free[pick % free.len()], job, ppn);
                    }
                }
                1 => {
                    let free = db.free_accelerators();
                    if !free.is_empty() {
                        db.allocate_accelerator(free[pick % free.len()], job);
                    }
                }
                2 => {
                    // Per-host release: a no-op when the job holds
                    // nothing there, which the index must also survive.
                    db.release(h(pick % n_hosts), job);
                }
                3 => db.release_job(job),
                4 => db.set_offline(h(pick % n_hosts), true),
                _ => db.set_offline(h(pick % n_hosts), false),
            }
            assert_consistent(&db);
        }
        // Drain everything: the pools must return to the initial state.
        for j in 0..6 {
            db.release_job(JobId(j));
        }
        for i in 0..n_hosts {
            db.set_offline(h(i), false);
        }
        assert_consistent(&db);
        prop_assert_eq!(db.free_accelerators().len(), n_accs);
        let (free, total) = db.compute_core_usage();
        prop_assert_eq!(free, total);
    }
}
