//! The `pbs_server` actor: job intake, node accounting, scheduler
//! liaison, and the paper's serial dynamic-request servicing.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use darms_net::{Address, HostId, Network};
use darms_sim::{Actor, Ctx, Envelope, SimTime};
use parking_lot::Mutex;

use crate::cost::RmsCostModel;
use crate::fs::PseudoFs;
use crate::job::{ClientId, DynSet, JobId, JobSpec, JobState, JobStatus};
use crate::nodes::{NodeDb, NodeRole};
use crate::proto::*;
use crate::{mom_addr, sched_addr};

/// Internal job record.
struct JobRecord {
    id: JobId,
    spec: JobSpec,
    state: JobState,
    submitted: SimTime,
    started: Option<SimTime>,
    completed: Option<SimTime>,
    compute: Vec<HostId>,
    accs: Vec<Vec<HostId>>,
    dyn_sets: Vec<DynSet>,
    /// Bumped on every (re)start; moms echo it so a stale mother
    /// superior of a requeued job cannot complete the new incarnation.
    incarnation: u32,
    /// How often the job has been requeued after losing a node; one
    /// requeue is free, a second failure cancels the job.
    requeues: u32,
}

impl JobRecord {
    fn status(&self) -> JobStatus {
        JobStatus {
            id: self.id,
            name: self.spec.name.clone(),
            owner: self.spec.owner.clone(),
            state: self.state,
            submitted: self.submitted,
            started: self.started,
            completed: self.completed,
            compute_hosts: self.compute.clone(),
            static_accs: self.accs.clone(),
            dyn_sets: self.dyn_sets.clone(),
        }
    }
}

/// A dynamic request waiting at (or being serviced by) the server.
struct PendingDyn {
    /// Server-side token (echoed by the scheduler).
    token: u64,
    job: JobId,
    cn: HostId,
    count: u32,
    min_count: u32,
    kind: DynResource,
    /// Client correlation token + endpoint for the final response.
    client_token: u64,
    reply: Address,
    /// Arrival of the `pbs_dynget` request at the server; the end-to-end
    /// `rms.dyn_wait` metric (the paper's Fig. 8 quantity as the client
    /// experiences it) spans from here to the final response.
    arrived: SimTime,
    /// Set once the request is exposed to the scheduler.
    queued_at: Option<SimTime>,
    /// Granted hosts, filled when the scheduler allocates.
    granted: Vec<HostId>,
    client_id: Option<ClientId>,
}

/// Replies to completed mutating IFL exchanges, cached per correlation
/// token so retransmitted requests are answered without re-executing.
#[derive(Clone)]
enum CachedResp {
    Qsub(QsubResp),
    Qdel(QdelResp),
    Qhold(QholdResp),
    DynGet(DynGetResp),
    DynFree(DynFreeResp),
}

/// Bound on the idempotency cache (tokens evicted FIFO).
const IFL_CACHE_CAP: usize = 4096;

/// Reserved timer token for the retransmit tick (deferred actions use
/// tokens from 1 upward).
const TOKEN_RETRY: u64 = 0;

/// Deferred actions driven by processing-cost timers.
enum Deferred {
    QsubDone { token: u64, spec: JobSpec, reply: Address },
    RunJobDo { cmd: RunJobCmd },
    DynExpose,
    DynGrantDo,
    DynFreeDo { job: JobId, client_id: ClientId, token: u64, reply: Address },
}

/// The `pbs_server` daemon.
pub struct PbsServer {
    net: Network,
    fs: PseudoFs,
    host: HostId,
    cost: RmsCostModel,
    jobs: BTreeMap<JobId, JobRecord>,
    /// Jobs currently `Running` or `DynQueued`. `jobs` accumulates every
    /// job ever submitted (qstat reports history), so the hot paths that
    /// only care about live jobs — scheduler snapshots, host
    /// reclamation, the retransmit tick — iterate this index instead of
    /// scanning the full map.
    active: BTreeSet<JobId>,
    /// Submission order of queued jobs. Entries are removed lazily: a
    /// started or cancelled job's entry goes stale (its state filters it
    /// out everywhere) and `queue_dead` triggers a periodic compaction,
    /// so dequeuing is O(1) instead of O(queue).
    queue_order: Vec<JobId>,
    queue_dead: usize,
    db: Arc<Mutex<NodeDb>>,
    next_job: u64,
    next_client: u64,
    next_dyn_token: u64,
    /// Requests waiting behind the active one (global FIFO — the server
    /// services dynamic requests serially; see Fig. 9).
    dyn_fifo: VecDeque<PendingDyn>,
    /// The request currently being serviced, if any.
    dyn_active: Option<PendingDyn>,
    deferred: BTreeMap<u64, Deferred>,
    next_timer: u64,
    /// Idempotency cache: correlation token -> in-flight (`None`) or the
    /// reply already sent (`Some`), so duplicate requests caused by
    /// client retransmits never re-execute.
    ifl_seen: BTreeMap<u64, Option<(Address, CachedResp)>>,
    ifl_order: VecDeque<u64>,
    /// Released dynamic sets whose `FreeDone` has not arrived yet; the
    /// retransmit tick re-drives the `DisjoinCmd`.
    pending_frees: BTreeMap<ClientId, (JobId, DynSet)>,
    /// Token of the last `ClusterQueryResp` served. A query whose
    /// `cached_token` matches proves the client applied that exact
    /// response, so the node list can be answered as a delta of the
    /// database's dirty set; any mismatch (lost response, fresh client)
    /// falls back to a full snapshot.
    snap_last_token: Option<u64>,
}

impl PbsServer {
    /// Create a server on `host` managing the given nodes.
    pub fn new(net: Network, fs: PseudoFs, host: HostId, cost: RmsCostModel, db: NodeDb) -> Self {
        PbsServer {
            net,
            fs,
            host,
            cost,
            jobs: BTreeMap::new(),
            active: BTreeSet::new(),
            queue_order: Vec::new(),
            queue_dead: 0,
            db: Arc::new(Mutex::new(db)),
            next_job: 1,
            next_client: 1,
            next_dyn_token: 1,
            dyn_fifo: VecDeque::new(),
            dyn_active: None,
            deferred: BTreeMap::new(),
            next_timer: 1,
            ifl_seen: BTreeMap::new(),
            ifl_order: VecDeque::new(),
            pending_frees: BTreeMap::new(),
            snap_last_token: None,
        }
    }

    /// Shared handle to the node database (e.g. for invariant auditors:
    /// the chaos harness checks pool conservation through it). The engine
    /// is single-threaded, so lock contention cannot occur; never hold
    /// the guard across an await point.
    pub fn db_handle(&self) -> Arc<Mutex<NodeDb>> {
        self.db.clone()
    }

    /// True if a duplicate of an already-accepted request was handled
    /// (cached reply re-sent, or silence while the original is still in
    /// flight). False admits the request and marks its token in flight.
    fn dedup_hit(&mut self, ctx: &mut Ctx<'_>, token: u64) -> bool {
        match self.ifl_seen.get(&token) {
            Some(Some((to, resp))) => {
                let (to, resp) = (*to, resp.clone());
                self.resend_cached(ctx, to, resp);
                true
            }
            Some(None) => true,
            None => {
                self.ifl_seen.insert(token, None);
                self.ifl_order.push_back(token);
                if self.ifl_order.len() > IFL_CACHE_CAP {
                    if let Some(old) = self.ifl_order.pop_front() {
                        self.ifl_seen.remove(&old);
                    }
                }
                false
            }
        }
    }

    /// Record the reply sent for `token` so duplicates can be re-answered.
    fn dedup_store(&mut self, token: u64, to: Address, resp: CachedResp) {
        if let Some(slot) = self.ifl_seen.get_mut(&token) {
            *slot = Some((to, resp));
        }
    }

    fn resend_cached(&mut self, ctx: &mut Ctx<'_>, to: Address, resp: CachedResp) {
        match resp {
            CachedResp::Qsub(r) => self.reply(ctx, to, r),
            CachedResp::Qdel(r) => self.reply(ctx, to, r),
            CachedResp::Qhold(r) => self.reply(ctx, to, r),
            CachedResp::DynGet(r) => self.reply(ctx, to, r),
            CachedResp::DynFree(r) => self.reply(ctx, to, r),
        }
    }

    fn defer(&mut self, ctx: &mut Ctx<'_>, after: darms_sim::SimDuration, d: Deferred) {
        let token = self.next_timer;
        self.next_timer += 1;
        self.deferred.insert(token, d);
        ctx.set_timer(after, token);
    }

    fn wake_scheduler(&mut self, ctx: &mut Ctx<'_>) {
        let to = sched_addr(self.host);
        let bytes = self.cost.ctl_bytes;
        self.net.send_from_ctx(ctx, self.host, to, SchedWake, bytes);
    }

    fn send_mom<T: std::any::Any + Send + Clone>(
        &mut self,
        ctx: &mut Ctx<'_>,
        host: HostId,
        msg: T,
    ) {
        let bytes = self.cost.ctl_bytes;
        self.net.send_from_ctx(ctx, self.host, mom_addr(host), msg, bytes);
    }

    fn reply<T: std::any::Any + Send + Clone>(&mut self, ctx: &mut Ctx<'_>, to: Address, msg: T) {
        let bytes = self.cost.ctl_bytes;
        self.net.send_from_ctx(ctx, self.host, to, msg, bytes);
    }

    /// Sample accelerator-pool utilization (busy fraction) into the
    /// `rms.acc_pool_util` time-weighted gauge. Called after every node
    /// (de)allocation that can touch the pool.
    fn record_pool_util(&self, ctx: &mut Ctx<'_>) {
        // O(1): the node database keeps running usage counters.
        let (free, total) = self.db.lock().accelerator_usage();
        if total > 0 {
            let busy = total - free;
            let now = ctx.now();
            ctx.metrics().twg_set("rms.acc_pool_util", now, busy as f64 / total as f64);
        }
    }

    /// Drop stale `queue_order` entries (jobs no longer queued or held)
    /// once they outnumber the live ones. Amortized O(1) per dequeue.
    fn maybe_compact_queue(&mut self) {
        if self.queue_dead >= 64 && self.queue_dead * 2 > self.queue_order.len() {
            let jobs = &self.jobs;
            self.queue_order.retain(|id| {
                jobs.get(id).is_some_and(|j| matches!(j.state, JobState::Queued | JobState::Held))
            });
            self.queue_dead = 0;
        }
    }

    // -- qsub ----------------------------------------------------------

    fn handle_qsub(&mut self, ctx: &mut Ctx<'_>, req: QsubReq) {
        if self.dedup_hit(ctx, req.token) {
            return;
        }
        self.defer(
            ctx,
            self.cost.qsub_handling,
            Deferred::QsubDone { token: req.token, spec: req.spec, reply: req.reply },
        );
    }

    fn finish_qsub(&mut self, ctx: &mut Ctx<'_>, token: u64, spec: JobSpec, reply: Address) {
        let id = JobId(self.next_job);
        self.next_job += 1;
        let rec = JobRecord {
            id,
            spec,
            state: JobState::Queued,
            submitted: ctx.now(),
            started: None,
            completed: None,
            compute: Vec::new(),
            accs: Vec::new(),
            dyn_sets: Vec::new(),
            incarnation: 0,
            requeues: 0,
        };
        ctx.trace(format!("{id} queued ({})", rec.spec.name));
        self.jobs.insert(id, rec);
        self.queue_order.push(id);
        let resp = QsubResp { token, job: id };
        self.dedup_store(token, reply, CachedResp::Qsub(resp.clone()));
        self.reply(ctx, reply, resp);
        self.wake_scheduler(ctx);
    }

    // -- scheduler liaison ----------------------------------------------

    /// Build the response to one cluster query. When the client proves
    /// (via `cached_token`) that it applied the previous response, the
    /// node list is a delta: only nodes the database dirtied since that
    /// response, plus any the client asked to have restated. Queued,
    /// running and dyn-pending lists are always full — they are sized
    /// by activity, not cluster size.
    fn snapshot_for(&mut self, req: &ClusterQueryReq) -> (ClusterSnapshot, bool) {
        let snap_of = |n: &crate::nodes::NodeRecord| NodeSnap {
            host: n.host,
            role: n.role,
            cores_total: n.cores_total,
            cores_free: n.cores_free,
            offline: n.offline,
        };
        let delta_ok = req.cached_token.is_some() && req.cached_token == self.snap_last_token;
        self.snap_last_token = Some(req.token);
        let (nodes, nodes_delta) = {
            let mut db = self.db.lock();
            // Drain in either mode: after this response the client is
            // current, so only later changes matter.
            let mut changed = db.take_dirty();
            if delta_ok {
                for h in &req.refresh {
                    if let Some(i) = db.index_of(*h) {
                        changed.insert(i);
                    }
                }
                let all = db.nodes();
                (changed.iter().map(|&i| snap_of(&all[i])).collect::<Vec<_>>(), true)
            } else {
                (db.nodes().iter().map(snap_of).collect(), false)
            }
        };
        let queued = self
            .queue_order
            .iter()
            .filter_map(|id| self.jobs.get(id))
            .filter(|j| j.state == JobState::Queued)
            .map(|j| QueuedJobSnap {
                job: j.id,
                owner: j.spec.owner.clone(),
                submitted: j.submitted,
                nodes: j.spec.nodes,
                ppn: j.spec.ppn,
                acpn: j.spec.acpn,
                walltime_estimate: j.spec.walltime_estimate,
            })
            .collect();
        let running = self
            .active
            .iter()
            .filter_map(|id| self.jobs.get(id))
            .map(|j| RunningJobSnap {
                job: j.id,
                owner: j.spec.owner.clone(),
                started: j.started.unwrap_or(j.submitted),
                walltime_estimate: j.spec.walltime_estimate,
                compute_hosts: j.compute.clone(),
                ppn: j.spec.ppn,
                acc_hosts: j
                    .accs
                    .iter()
                    .flatten()
                    .chain(j.dyn_sets.iter().flat_map(|s| s.accs.iter()))
                    .copied()
                    .collect(),
            })
            .collect();
        let dyn_pending = self.dyn_active.as_ref().and_then(|p| {
            p.queued_at.map(|t| DynPendingSnap {
                token: p.token,
                job: p.job,
                cn: p.cn,
                count: p.count,
                min_count: p.min_count,
                kind: p.kind,
                queued_at: t,
            })
        });
        (ClusterSnapshot { nodes, queued, running, dyn_pending }, nodes_delta)
    }

    fn handle_run_job(&mut self, ctx: &mut Ctx<'_>, cmd: RunJobCmd) {
        // Validate against the live state; the scheduler may have raced a
        // qdel. Infeasible commands are dropped and the scheduler re-woken.
        let feasible = match self.jobs.get(&cmd.job) {
            Some(j) if j.state == JobState::Queued => {
                let db = self.db.lock();
                cmd.compute.iter().all(|h| {
                    db.get(*h).is_some_and(|n| {
                        n.role == NodeRole::Compute && !n.offline && n.cores_free >= j.spec.ppn
                    })
                }) && cmd.accs.iter().flatten().all(|h| {
                    db.get(*h).is_some_and(|n| {
                        n.role == NodeRole::Accelerator && !n.offline && n.is_free()
                    })
                })
            }
            _ => false,
        };
        if !feasible {
            ctx.trace(format!("dropping infeasible RunJob for {}", cmd.job));
            self.wake_scheduler(ctx);
            return;
        }
        self.defer(ctx, self.cost.run_job_handling, Deferred::RunJobDo { cmd });
    }

    fn finish_run_job(&mut self, ctx: &mut Ctx<'_>, cmd: RunJobCmd) {
        let Some(job) = self.jobs.get_mut(&cmd.job) else { return };
        if job.state != JobState::Queued {
            return;
        }
        let ppn = job.spec.ppn;
        job.state = JobState::Running;
        job.compute = cmd.compute.clone();
        job.accs = cmd.accs.clone();
        job.incarnation += 1;
        let incarnation = job.incarnation;
        let id = job.id;
        {
            let mut db = self.db.lock();
            for h in &cmd.compute {
                db.allocate_compute(*h, id, ppn);
            }
            for h in cmd.accs.iter().flatten() {
                db.allocate_accelerator(*h, id);
            }
        }
        self.record_pool_util(ctx);
        self.active.insert(id);
        self.queue_dead += 1;
        self.maybe_compact_queue();
        let ms = cmd.compute[0];
        ctx.trace(format!("{id} -> mother superior on host{}", ms.index()));
        let launch = JobLaunch {
            job: id,
            incarnation,
            spec: self.jobs[&id].spec.clone(),
            compute: cmd.compute,
            accs: cmd.accs,
        };
        self.send_mom(ctx, ms, SendJob { launch });
    }

    // -- dynamic requests (the paper's extension) ------------------------

    fn handle_dynget(&mut self, ctx: &mut Ctx<'_>, req: DynGetReq) {
        if self.dedup_hit(ctx, req.token) {
            return;
        }
        let valid = self
            .jobs
            .get(&req.job)
            .is_some_and(|j| matches!(j.state, JobState::Running | JobState::DynQueued));
        if !valid || req.count == 0 {
            let resp = DynGetResp { token: req.token, result: Err(DynReject::BadJob) };
            self.dedup_store(req.token, req.reply, CachedResp::DynGet(resp.clone()));
            self.reply(ctx, req.reply, resp);
            return;
        }
        let token = self.next_dyn_token;
        self.next_dyn_token += 1;
        self.dyn_fifo.push_back(PendingDyn {
            token,
            job: req.job,
            cn: req.cn,
            count: req.count,
            min_count: req.min_count.clamp(1, req.count),
            kind: req.kind,
            client_token: req.token,
            reply: req.reply,
            arrived: ctx.now(),
            queued_at: None,
            granted: Vec::new(),
            client_id: None,
        });
        self.maybe_start_dyn(ctx);
    }

    /// Begin servicing the next dynamic request if none is active.
    fn maybe_start_dyn(&mut self, ctx: &mut Ctx<'_>) {
        if self.dyn_active.is_some() {
            return;
        }
        let Some(p) = self.dyn_fifo.pop_front() else { return };
        ctx.trace(format!("servicing dynamic request of {} (count {})", p.job, p.count));
        self.dyn_active = Some(p);
        self.defer(ctx, self.cost.dyn_request_handling, Deferred::DynExpose);
    }

    fn expose_dyn(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        if let Some(p) = self.dyn_active.as_mut() {
            p.queued_at = Some(now);
            if let Some(job) = self.jobs.get_mut(&p.job) {
                job.state = JobState::DynQueued;
            }
            self.wake_scheduler(ctx);
        }
    }

    fn handle_run_dyn(&mut self, ctx: &mut Ctx<'_>, cmd: RunDynCmd) {
        let valid =
            self.dyn_active.as_ref().is_some_and(|p| p.token == cmd.token && p.queued_at.is_some());
        if !valid {
            return; // stale command
        }
        // Validate the grant against the live node state.
        let kind = self.dyn_active.as_ref().expect("checked above").kind;
        let ok = {
            let db = self.db.lock();
            cmd.accs.iter().all(|h| match kind {
                DynResource::Accelerators => db
                    .get(*h)
                    .is_some_and(|n| n.role == NodeRole::Accelerator && !n.offline && n.is_free()),
                DynResource::ComputeNodes { ppn } => db.get(*h).is_some_and(|n| {
                    n.role == NodeRole::Compute && !n.offline && n.cores_free >= ppn
                }),
            })
        };
        let p = self.dyn_active.as_mut().expect("checked above");
        let n = cmd.accs.len();
        if !ok || n < p.min_count as usize || n > p.count as usize {
            ctx.trace(format!("dropping infeasible dyn grant for {}", p.job));
            let p = self.dyn_active.take().expect("active");
            self.finish_dyn_reject(ctx, p);
            return;
        }
        p.granted = cmd.accs;
        let client_id = ClientId(self.next_client);
        self.next_client += 1;
        let p = self.dyn_active.as_mut().expect("active");
        p.client_id = Some(client_id);
        let job = p.job;
        let kind = p.kind;
        let granted = p.granted.clone();
        {
            let mut db = self.db.lock();
            for h in &granted {
                match kind {
                    DynResource::Accelerators => db.allocate_accelerator(*h, job),
                    DynResource::ComputeNodes { ppn } => db.allocate_compute(*h, job, ppn),
                }
            }
        }
        self.record_pool_util(ctx);
        self.defer(ctx, self.cost.dyn_grant_handling, Deferred::DynGrantDo);
    }

    fn finish_dyn_grant(&mut self, ctx: &mut Ctx<'_>) {
        let Some(p) = self.dyn_active.as_ref() else { return };
        let Some(job) = self.jobs.get(&p.job) else { return };
        let ms = job.compute.first().copied();
        let cmd = DynJoinCmd {
            job: p.job,
            token: p.token,
            client_id: p.client_id.expect("granted"),
            cn: p.cn,
            accs: p.granted.clone(),
        };
        match ms {
            Some(ms) => self.send_mom(ctx, ms, cmd),
            None => {
                // Job lost its nodes (qdel race): abort the grant.
                let p = self.dyn_active.take().expect("active");
                {
                    let mut db = self.db.lock();
                    for h in &p.granted {
                        db.release(*h, p.job);
                    }
                }
                self.finish_dyn_reject(ctx, p);
            }
        }
    }

    fn handle_dyn_ready(&mut self, ctx: &mut Ctx<'_>, msg: DynReady) {
        let done =
            self.dyn_active.as_ref().is_some_and(|p| p.token == msg.token && p.job == msg.job);
        if !done {
            return;
        }
        let p = self.dyn_active.take().expect("checked");
        if let Some(job) = self.jobs.get_mut(&p.job) {
            job.state = JobState::Running;
            job.dyn_sets.push(DynSet {
                client_id: p.client_id.expect("granted"),
                cn: p.cn,
                accs: p.granted.clone(),
                ppn: match p.kind {
                    DynResource::Accelerators => 0,
                    DynResource::ComputeNodes { ppn } => ppn,
                },
            });
        }
        let metrics = ctx.metrics();
        metrics.counter_inc("rms.dynjoin");
        metrics.observe_duration("rms.dyn_wait", ctx.now().since(p.arrived));
        // Grant-only latency: the dynget→grant SLO tracked by the soak
        // harness (rms.dyn_wait above also counts rejections).
        metrics.observe_duration("rms.dynget_to_grant", ctx.now().since(p.arrived));
        ctx.trace(format!(
            "{} granted {} accelerator(s) as {}",
            p.job,
            p.granted.len(),
            p.client_id.expect("granted")
        ));
        let resp = DynGetResp {
            token: p.client_token,
            result: Ok(DynGrant {
                client_id: p.client_id.expect("granted"),
                accs: p.granted.clone(),
            }),
        };
        self.dedup_store(p.client_token, p.reply, CachedResp::DynGet(resp.clone()));
        self.reply(ctx, p.reply, resp);
        self.maybe_start_dyn(ctx);
    }

    fn handle_reject_dyn(&mut self, ctx: &mut Ctx<'_>, cmd: RejectDynCmd) {
        let matched = self.dyn_active.as_ref().is_some_and(|p| p.token == cmd.token);
        if !matched {
            return;
        }
        let p = self.dyn_active.take().expect("checked");
        self.finish_dyn_reject(ctx, p);
    }

    fn finish_dyn_reject(&mut self, ctx: &mut Ctx<'_>, p: PendingDyn) {
        if let Some(job) = self.jobs.get_mut(&p.job) {
            if job.state == JobState::DynQueued {
                job.state = JobState::Running;
            }
        }
        let metrics = ctx.metrics();
        metrics.counter_inc("rms.dyn_rejected");
        metrics.observe_duration("rms.dyn_wait", ctx.now().since(p.arrived));
        ctx.trace(format!("{} dynamic request rejected", p.job));
        let resp = DynGetResp { token: p.client_token, result: Err(DynReject::Unavailable) };
        self.dedup_store(p.client_token, p.reply, CachedResp::DynGet(resp.clone()));
        self.reply(ctx, p.reply, resp);
        self.maybe_start_dyn(ctx);
    }

    // -- release ---------------------------------------------------------

    fn handle_dynfree(&mut self, ctx: &mut Ctx<'_>, req: DynFreeReq) {
        if self.dedup_hit(ctx, req.token) {
            return;
        }
        let known = self
            .jobs
            .get(&req.job)
            .is_some_and(|j| j.dyn_sets.iter().any(|s| s.client_id == req.client_id));
        if !known {
            let resp = DynFreeResp { token: req.token, ok: false };
            self.dedup_store(req.token, req.reply, CachedResp::DynFree(resp.clone()));
            self.reply(ctx, req.reply, resp);
            return;
        }
        self.defer(
            ctx,
            self.cost.dyn_free_handling,
            Deferred::DynFreeDo {
                job: req.job,
                client_id: req.client_id,
                token: req.token,
                reply: req.reply,
            },
        );
    }

    fn finish_dynfree(
        &mut self,
        ctx: &mut Ctx<'_>,
        job: JobId,
        client_id: ClientId,
        token: u64,
        reply: Address,
    ) {
        // Positive reply immediately; disassociation continues behind the
        // application's back (§III-D).
        let resp = DynFreeResp { token, ok: true };
        self.dedup_store(token, reply, CachedResp::DynFree(resp.clone()));
        self.reply(ctx, reply, resp);
        let Some(rec) = self.jobs.get(&job) else { return };
        let Some(set) = rec.dyn_sets.iter().find(|s| s.client_id == client_id).cloned() else {
            return;
        };
        let ms = rec.compute.first().copied();
        ctx.trace(format!("{job} dynfree of {client_id}: instructing mother superior"));
        if let Some(ms) = ms {
            self.pending_frees.insert(client_id, (job, set.clone()));
            self.send_mom(ctx, ms, DisjoinCmd { job, client_id, accs: set.accs, ppn: set.ppn });
        }
    }

    fn handle_free_done(&mut self, ctx: &mut Ctx<'_>, msg: FreeDone) {
        let known = self
            .jobs
            .get(&msg.job)
            .is_some_and(|j| j.dyn_sets.iter().any(|s| s.client_id == msg.set.client_id));
        let pending = self.pending_frees.remove(&msg.set.client_id).is_some();
        if !known && !pending {
            // Duplicate FreeDone (mom retransmit): already accounted for.
            return;
        }
        if let Some(rec) = self.jobs.get_mut(&msg.job) {
            rec.dyn_sets.retain(|s| s.client_id != msg.set.client_id);
        }
        {
            let mut db = self.db.lock();
            for h in &msg.set.accs {
                db.release(*h, msg.job);
            }
        }
        self.record_pool_util(ctx);
        ctx.metrics().counter_inc("rms.disjoin");
        ctx.trace(format!("{} released set {}", msg.job, msg.set.client_id));
        self.wake_scheduler(ctx);
    }

    // -- job end ----------------------------------------------------------

    fn handle_job_exit(&mut self, ctx: &mut Ctx<'_>, msg: JobExit) {
        // Hardened mode: acknowledge so the mom stops retransmitting, and
        // aggressively purge dynamic state the job can no longer resolve.
        let hardened = self.net.retry_policy().is_some();
        let Some(rec) = self.jobs.get_mut(&msg.job) else {
            if hardened {
                self.send_mom(ctx, msg.from, JobExitAck { job: msg.job });
            }
            return;
        };
        let stale = rec.incarnation != msg.incarnation;
        let terminal =
            matches!(rec.state, JobState::Complete | JobState::Cancelled | JobState::TimedOut);
        if stale || terminal {
            // A stale mom of a requeued incarnation, or a duplicate of an
            // exit already applied: quench the sender, change nothing.
            if hardened {
                self.send_mom(ctx, msg.from, JobExitAck { job: msg.job });
            }
            return;
        }
        rec.state = if msg.timed_out { JobState::TimedOut } else { JobState::Complete };
        rec.completed = Some(ctx.now());
        self.active.remove(&msg.job);
        if hardened {
            rec.dyn_sets.clear();
        }
        self.db.lock().release_job(msg.job);
        self.fs.remove_job(msg.job);
        self.record_pool_util(ctx);
        ctx.trace(format!(
            "{} {}",
            msg.job,
            if msg.timed_out { "killed: walltime exceeded" } else { "complete" }
        ));
        if hardened {
            self.purge_dyns_for(ctx, msg.job);
            self.purge_frees_for(msg.job);
            self.send_mom(ctx, msg.from, JobExitAck { job: msg.job });
        }
        self.wake_scheduler(ctx);
    }

    /// Reject every queued or in-service dynamic request of `job` (it is
    /// terminating or losing its nodes) and release accelerators that were
    /// granted but never acknowledged as ready.
    fn purge_dyns_for(&mut self, ctx: &mut Ctx<'_>, job: JobId) {
        let mut victims: Vec<PendingDyn> = Vec::new();
        let mut keep = VecDeque::new();
        while let Some(p) = self.dyn_fifo.pop_front() {
            if p.job == job {
                victims.push(p);
            } else {
                keep.push_back(p);
            }
        }
        self.dyn_fifo = keep;
        if self.dyn_active.as_ref().is_some_and(|p| p.job == job) {
            let p = self.dyn_active.take().expect("checked");
            if p.client_id.is_some() {
                let mut db = self.db.lock();
                for h in &p.granted {
                    db.release(*h, p.job);
                }
            }
            victims.push(p);
        }
        if victims.is_empty() {
            return;
        }
        for p in victims {
            self.finish_dyn_reject(ctx, p);
        }
        self.record_pool_util(ctx);
    }

    /// Forget pending disjoins of a job that no longer exists; its node
    /// registrations were already dropped wholesale by `release_job`.
    fn purge_frees_for(&mut self, job: JobId) {
        self.pending_frees.retain(|_, (j, _)| *j != job);
    }

    /// A node went offline: strip it from every non-terminal job. The
    /// first failure requeues the job (fresh incarnation when the
    /// scheduler restarts it); a repeat failure cancels it. This is the
    /// server-side reclamation that keeps the accelerator pool conserved
    /// when moms or jobs die mid-flight.
    fn reclaim_host(&mut self, ctx: &mut Ctx<'_>, host: HostId) {
        let victims: Vec<JobId> = self
            .active
            .iter()
            .filter_map(|id| self.jobs.get(id))
            .filter(|j| {
                j.compute.contains(&host)
                    || j.accs.iter().flatten().any(|h| *h == host)
                    || j.dyn_sets.iter().any(|s| s.accs.contains(&host))
            })
            .map(|j| j.id)
            .collect();
        for job in victims {
            self.purge_dyns_for(ctx, job);
            self.purge_frees_for(job);
            let Some(rec) = self.jobs.get_mut(&job) else { continue };
            let ms = rec.compute.first().copied();
            let incarnation = rec.incarnation;
            let requeue = rec.requeues == 0;
            rec.compute.clear();
            rec.accs.clear();
            rec.dyn_sets.clear();
            rec.started = None;
            if requeue {
                rec.requeues += 1;
                rec.state = JobState::Queued;
            } else {
                rec.state = JobState::Cancelled;
                rec.completed = Some(ctx.now());
            }
            self.active.remove(&job);
            self.db.lock().release_job(job);
            self.fs.remove_job(job);
            if requeue {
                // Reclaim is rare (fault path), so an exact O(queue)
                // de-dup beats tracking staleness: the job's entry from
                // its first queueing may still be lazily present.
                self.queue_order.retain(|j| *j != job);
                self.queue_order.push(job);
            }
            if let Some(ms) = ms {
                if ms != host {
                    self.send_mom(ctx, ms, CleanupJob { job, incarnation });
                }
            }
            ctx.metrics().counter_inc("rms.reclaims");
            ctx.trace(format!(
                "{job} reclaimed from offline host{}: {}",
                host.index(),
                if requeue { "requeued" } else { "cancelled" }
            ));
        }
        self.record_pool_util(ctx);
    }

    /// Periodic re-drive of server->mom commands still awaiting their
    /// response; armed (timer token 0) only when a retry policy is set.
    fn retransmit_tick(&mut self, ctx: &mut Ctx<'_>) {
        let Some(pol) = self.net.retry_policy() else { return };
        let launches: Vec<(HostId, JobLaunch)> = self
            .active
            .iter()
            .filter_map(|id| self.jobs.get(id))
            .filter(|j| j.started.is_none() && !j.compute.is_empty())
            .map(|j| {
                (
                    j.compute[0],
                    JobLaunch {
                        job: j.id,
                        incarnation: j.incarnation,
                        spec: j.spec.clone(),
                        compute: j.compute.clone(),
                        accs: j.accs.clone(),
                    },
                )
            })
            .collect();
        for (ms, launch) in launches {
            self.send_mom(ctx, ms, SendJob { launch });
        }
        if let Some(p) = &self.dyn_active {
            if let (Some(client_id), false) = (p.client_id, p.granted.is_empty()) {
                if let Some(ms) = self.jobs.get(&p.job).and_then(|j| j.compute.first().copied()) {
                    let cmd = DynJoinCmd {
                        job: p.job,
                        token: p.token,
                        client_id,
                        cn: p.cn,
                        accs: p.granted.clone(),
                    };
                    self.send_mom(ctx, ms, cmd);
                }
            }
        }
        let frees: Vec<(HostId, DisjoinCmd)> = self
            .pending_frees
            .iter()
            .filter_map(|(cid, (job, set))| {
                self.jobs.get(job).and_then(|j| j.compute.first().copied()).map(|ms| {
                    (
                        ms,
                        DisjoinCmd {
                            job: *job,
                            client_id: *cid,
                            accs: set.accs.clone(),
                            ppn: set.ppn,
                        },
                    )
                })
            })
            .collect();
        for (ms, cmd) in frees {
            self.send_mom(ctx, ms, cmd);
        }
        ctx.set_timer(pol.retransmit, TOKEN_RETRY);
    }

    /// `qhold`/`qrls`: only queued jobs can be held (TORQUE holds running
    /// jobs only via checkpointing, which the DAC architecture does not
    /// model); only held jobs can be released.
    fn handle_qhold(&mut self, ctx: &mut Ctx<'_>, req: QholdReq) {
        if self.dedup_hit(ctx, req.token) {
            return;
        }
        let ok = match self.jobs.get_mut(&req.job) {
            Some(rec) if req.hold && rec.state == JobState::Queued => {
                rec.state = JobState::Held;
                ctx.trace(format!("{} held", req.job));
                true
            }
            Some(rec) if !req.hold && rec.state == JobState::Held => {
                rec.state = JobState::Queued;
                ctx.trace(format!("{} released from hold", req.job));
                true
            }
            _ => false,
        };
        let resp = QholdResp { token: req.token, ok };
        self.dedup_store(req.token, req.reply, CachedResp::Qhold(resp.clone()));
        self.reply(ctx, req.reply, resp);
        if ok && !req.hold {
            self.wake_scheduler(ctx);
        }
    }

    fn handle_qdel(&mut self, ctx: &mut Ctx<'_>, req: QdelReq) {
        if self.dedup_hit(ctx, req.token) {
            return;
        }
        let hardened = self.net.retry_policy().is_some();
        let mut was_active = false;
        let ok = match self.jobs.get_mut(&req.job) {
            Some(rec) if matches!(rec.state, JobState::Queued | JobState::Held) => {
                rec.state = JobState::Cancelled;
                rec.completed = Some(ctx.now());
                self.queue_dead += 1;
                self.maybe_compact_queue();
                true
            }
            Some(rec) if matches!(rec.state, JobState::Running | JobState::DynQueued) => {
                rec.state = JobState::Cancelled;
                rec.completed = Some(ctx.now());
                self.active.remove(&req.job);
                was_active = true;
                if hardened {
                    rec.dyn_sets.clear();
                }
                let ms = rec.compute.first().copied();
                let incarnation = rec.incarnation;
                self.db.lock().release_job(req.job);
                self.fs.remove_job(req.job);
                if let Some(ms) = ms {
                    self.send_mom(ctx, ms, CleanupJob { job: req.job, incarnation });
                }
                true
            }
            _ => false,
        };
        let resp = QdelResp { token: req.token, ok };
        self.dedup_store(req.token, req.reply, CachedResp::Qdel(resp.clone()));
        self.reply(ctx, req.reply, resp);
        if ok && was_active && hardened {
            self.purge_dyns_for(ctx, req.job);
            self.purge_frees_for(req.job);
        }
        if ok {
            self.record_pool_util(ctx);
            self.wake_scheduler(ctx);
        }
    }
}

impl Actor for PbsServer {
    fn name(&self) -> &str {
        "pbs_server"
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        let env = match env.downcast::<QsubReq>() {
            Ok(m) => return self.handle_qsub(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<QstatReq>() {
            Ok(m) => {
                let jobs = self.jobs.values().map(|j| j.status()).collect();
                let resp = QstatResp { token: m.token, jobs };
                return self.reply(ctx, m.reply, resp);
            }
            Err(e) => e,
        };
        let env = match env.downcast::<QdelReq>() {
            Ok(m) => return self.handle_qdel(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<QholdReq>() {
            Ok(m) => return self.handle_qhold(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<DynGetReq>() {
            Ok(m) => return self.handle_dynget(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<DynFreeReq>() {
            Ok(m) => return self.handle_dynfree(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<ClusterQueryReq>() {
            Ok(m) => {
                let (snapshot, nodes_delta) = self.snapshot_for(&m);
                let resp = ClusterQueryResp { token: m.token, snapshot, nodes_delta };
                return self.reply(ctx, m.reply, resp);
            }
            Err(e) => e,
        };
        let env = match env.downcast::<RunJobCmd>() {
            Ok(m) => return self.handle_run_job(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<RunDynCmd>() {
            Ok(m) => return self.handle_run_dyn(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<RejectDynCmd>() {
            Ok(m) => return self.handle_reject_dyn(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<DynReady>() {
            Ok(m) => return self.handle_dyn_ready(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<FreeDone>() {
            Ok(m) => return self.handle_free_done(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<JobStarted>() {
            Ok(m) => {
                if let Some(rec) = self.jobs.get_mut(&m.job) {
                    if rec.incarnation == m.incarnation
                        && rec.started.is_none()
                        && matches!(rec.state, JobState::Running | JobState::DynQueued)
                    {
                        let now = ctx.now();
                        rec.started = Some(now);
                        let latency = now.since(rec.submitted);
                        ctx.metrics().observe_duration("rms.qsub_to_run", latency);
                    }
                }
                return;
            }
            Err(e) => e,
        };
        let env = match env.downcast::<JobExit>() {
            Ok(m) => return self.handle_job_exit(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<SetNodeOffline>() {
            Ok(m) => {
                self.db.lock().set_offline(m.host, m.offline);
                ctx.trace(format!(
                    "node host{} marked {}",
                    m.host.index(),
                    if m.offline { "offline" } else { "online" }
                ));
                if m.offline {
                    self.reclaim_host(ctx, m.host);
                }
                self.wake_scheduler(ctx);
                return;
            }
            Err(e) => e,
        };
        ctx.trace(format!("pbs_server: unhandled message {env:?}"));
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(pol) = self.net.retry_policy() {
            ctx.set_timer(pol.retransmit, TOKEN_RETRY);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_RETRY {
            return self.retransmit_tick(ctx);
        }
        match self.deferred.remove(&token) {
            Some(Deferred::QsubDone { token, spec, reply }) => {
                self.finish_qsub(ctx, token, spec, reply)
            }
            Some(Deferred::RunJobDo { cmd }) => self.finish_run_job(ctx, cmd),
            Some(Deferred::DynExpose) => self.expose_dyn(ctx),
            Some(Deferred::DynGrantDo) => self.finish_dyn_grant(ctx),
            Some(Deferred::DynFreeDo { job, client_id, token, reply }) => {
                self.finish_dynfree(ctx, job, client_id, token, reply)
            }
            None => {}
        }
    }
}
