//! Processing-time constants for the batch-system daemons.

use darms_sim::SimDuration;

/// Local processing costs of the TORQUE-like server and moms. Network
/// transit comes from `darms-net` on top of these.
#[derive(Clone, Debug)]
pub struct RmsCostModel {
    /// Server handling of a `qsub` (validate, store attributes, enqueue).
    pub qsub_handling: SimDuration,
    /// Server handling of a dynamic request before it is exposed to the
    /// scheduler (re-enqueue with the `dynqueued` state, §III-D).
    pub dyn_request_handling: SimDuration,
    /// Server bookkeeping after the scheduler allocates resources for a
    /// dynamic request (client-id assignment, node marking).
    pub dyn_grant_handling: SimDuration,
    /// Server handling of a `pbs_dynfree` (positive reply is immediate,
    /// disassociation continues in the background).
    pub dyn_free_handling: SimDuration,
    /// Server handling of a `RunJob` decision (select mother superior,
    /// forward the job).
    pub run_job_handling: SimDuration,
    /// Mom processing of a `JOIN_JOB` / `DYNJOIN_JOB` request.
    pub join_handling: SimDuration,
    /// Mother superior per-sister cost of issuing joins (TORQUE contacts
    /// moms sequentially; this drives the growth of the batch-system part
    /// of Fig. 7(b) with the number of accelerators).
    pub join_issue_stagger: SimDuration,
    /// Mom processing of a `DISJOIN_JOB` (kill tasks, free resources).
    pub disjoin_handling: SimDuration,
    /// Mother superior cost of starting one task (job script process).
    pub task_start: SimDuration,
    /// Wire size modelled for batch-system control messages.
    pub ctl_bytes: u64,
}

impl RmsCostModel {
    /// Calibrated against the paper's testbed (Intel X5570 nodes, 2013-era
    /// TORQUE): server-side costs of a few milliseconds, mom joins of a
    /// few tens of milliseconds.
    pub fn paper_testbed() -> Self {
        RmsCostModel {
            qsub_handling: SimDuration::from_millis(3),
            dyn_request_handling: SimDuration::from_millis(30),
            dyn_grant_handling: SimDuration::from_millis(15),
            dyn_free_handling: SimDuration::from_millis(5),
            run_job_handling: SimDuration::from_millis(5),
            join_handling: SimDuration::from_millis(18),
            join_issue_stagger: SimDuration::from_millis(35),
            disjoin_handling: SimDuration::from_millis(10),
            task_start: SimDuration::from_millis(8),
            ctl_bytes: 256,
        }
    }

    /// Near-zero costs for logic-focused unit tests.
    pub fn instant() -> Self {
        RmsCostModel {
            qsub_handling: SimDuration::ZERO,
            dyn_request_handling: SimDuration::ZERO,
            dyn_grant_handling: SimDuration::ZERO,
            dyn_free_handling: SimDuration::ZERO,
            run_job_handling: SimDuration::ZERO,
            join_handling: SimDuration::ZERO,
            join_issue_stagger: SimDuration::ZERO,
            disjoin_handling: SimDuration::ZERO,
            task_start: SimDuration::ZERO,
            ctl_bytes: 0,
        }
    }
}

impl Default for RmsCostModel {
    fn default() -> Self {
        RmsCostModel::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let p = RmsCostModel::paper_testbed();
        assert!(p.join_handling > p.qsub_handling);
        assert!(p.dyn_request_handling > p.dyn_free_handling);
        let i = RmsCostModel::instant();
        assert!(i.qsub_handling.is_zero());
    }
}
