//! A tiny job-scoped pseudo-filesystem.
//!
//! The paper's implementation passes two pieces of information through
//! files: the `PBS_NODEFILE` written by the mom for the application, and
//! the MPI port name written by the accelerator daemons' root for
//! `AC_Init()` (§III-C). This store models that shared medium; readers
//! poll it exactly like the real library polls the file system.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::job::JobId;

/// Well-known file names.
pub mod files {
    /// The list of compute hosts allocated to a job.
    pub const NODEFILE: &str = "PBS_NODEFILE";
    /// The MPI port name of a compute node's static accelerator daemons;
    /// suffixed with the compute-node host index.
    pub const AC_PORT_PREFIX: &str = "ac_port_cn";
}

/// Cloneable handle to the shared pseudo-filesystem.
#[derive(Clone, Default)]
pub struct PseudoFs {
    inner: Arc<Mutex<BTreeMap<(JobId, String), String>>>,
}

impl PseudoFs {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write (or overwrite) a job-scoped file.
    pub fn write(&self, job: JobId, name: impl Into<String>, content: impl Into<String>) {
        self.inner.lock().insert((job, name.into()), content.into());
    }

    /// Read a job-scoped file.
    pub fn read(&self, job: JobId, name: &str) -> Option<String> {
        self.inner.lock().get(&(job, name.to_string())).cloned()
    }

    /// Remove a file; returns true if it existed.
    pub fn remove(&self, job: JobId, name: &str) -> bool {
        self.inner.lock().remove(&(job, name.to_string())).is_some()
    }

    /// Remove everything belonging to a job (end-of-job cleanup).
    pub fn remove_job(&self, job: JobId) {
        self.inner.lock().retain(|(j, _), _| *j != job);
    }

    /// Number of files currently stored (leak checks in tests).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if no files are stored.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// The conventional port-file name for a compute node's static
    /// accelerator set.
    pub fn ac_port_file(cn_index: usize) -> String {
        format!("{}{}", files::AC_PORT_PREFIX, cn_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_remove() {
        let fs = PseudoFs::new();
        let j = JobId(1);
        assert!(fs.read(j, "x").is_none());
        fs.write(j, "x", "hello");
        assert_eq!(fs.read(j, "x").as_deref(), Some("hello"));
        fs.write(j, "x", "world");
        assert_eq!(fs.read(j, "x").as_deref(), Some("world"));
        assert!(fs.remove(j, "x"));
        assert!(!fs.remove(j, "x"));
    }

    #[test]
    fn job_scoping_and_cleanup() {
        let fs = PseudoFs::new();
        fs.write(JobId(1), "a", "1");
        fs.write(JobId(1), "b", "2");
        fs.write(JobId(2), "a", "3");
        assert_eq!(fs.len(), 3);
        fs.remove_job(JobId(1));
        assert_eq!(fs.len(), 1);
        assert_eq!(fs.read(JobId(2), "a").as_deref(), Some("3"));
        assert!(!fs.is_empty());
    }

    #[test]
    fn port_file_naming() {
        assert_eq!(PseudoFs::ac_port_file(0), "ac_port_cn0");
        assert_eq!(PseudoFs::ac_port_file(3), "ac_port_cn3");
    }
}
