//! The server's node database: compute nodes with core counts and
//! exclusively-allocated accelerator nodes, with allocation bookkeeping.
//!
//! ## Indexed free-pools
//!
//! Every query the scheduler path issues per decision used to be a
//! linear scan over all nodes, which is O(hosts) per job at datacenter
//! scale. The database therefore maintains incremental indexes next to
//! the flat records:
//!
//! - `compute_by_free`: online compute nodes bucketed by free-core
//!   count, so "hosts with ≥ ppn free" enumerates only matching
//!   buckets;
//! - `free_accs`: the set of online, fully-free accelerator nodes;
//! - `job_hosts`: every host a job holds resources on, so releasing a
//!   finished job touches its own hosts instead of scanning the world;
//! - running sums for the usage counters, so utilisation metrics are
//!   O(1) per sample.
//!
//! The pre-index linear scans are retained as `*_linear` methods and
//! cross-checked against the indexed paths by a property test over
//! randomized allocate/release/offline sequences (`darms-rms`
//! `tests/nodedb_props.rs`).

use std::collections::{BTreeMap, BTreeSet};

use darms_net::HostId;

use crate::job::JobId;

/// Role of a node in the database.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeRole {
    /// Compute node with a number of cores; multiple jobs may share it if
    /// cores remain.
    Compute,
    /// Network-attached accelerator; allocated exclusively to one job at
    /// a time (the ARM pool of the DAC architecture).
    Accelerator,
}

/// One node's record.
#[derive(Clone, Debug)]
pub struct NodeRecord {
    /// The host backing this node.
    pub host: HostId,
    /// Role.
    pub role: NodeRole,
    /// Total cores (1 for accelerators).
    pub cores_total: u32,
    /// Currently unallocated cores.
    pub cores_free: u32,
    /// Jobs holding cores here, with counts.
    pub jobs: BTreeMap<JobId, u32>,
    /// Administratively offline (fault injection / maintenance).
    pub offline: bool,
}

impl NodeRecord {
    /// True if nothing is allocated here.
    pub fn is_free(&self) -> bool {
        self.cores_free == self.cores_total && !self.offline
    }
}

/// In-memory node database.
#[derive(Clone, Debug, Default)]
pub struct NodeDb {
    nodes: Vec<NodeRecord>,
    by_host: BTreeMap<HostId, usize>,
    /// Online compute nodes bucketed by free-core count. Bucket members
    /// are node indices, i.e. registration order.
    compute_by_free: BTreeMap<u32, BTreeSet<usize>>,
    /// Online, fully-free accelerator nodes (indices).
    free_accs: BTreeSet<usize>,
    /// Hosts each live job holds resources on (insertion order).
    job_hosts: BTreeMap<JobId, Vec<HostId>>,
    /// Running totals for `compute_core_usage` (include offline nodes,
    /// matching the linear sum).
    compute_free_sum: u32,
    compute_total_sum: u32,
    /// Total accelerator count for `accelerator_usage`.
    acc_total: usize,
    /// Nodes whose scheduler-visible state (`cores_free`/`offline`)
    /// changed since the last [`NodeDb::take_dirty`] — the changelog
    /// behind incremental cluster snapshots.
    dirty: BTreeSet<usize>,
}

impl NodeDb {
    /// Create an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a compute node with `cores` cores.
    pub fn add_compute(&mut self, host: HostId, cores: u32) {
        self.add(host, NodeRole::Compute, cores.max(1));
    }

    /// Register an accelerator node.
    pub fn add_accelerator(&mut self, host: HostId) {
        self.add(host, NodeRole::Accelerator, 1);
    }

    fn add(&mut self, host: HostId, role: NodeRole, cores: u32) {
        assert!(
            !self.by_host.contains_key(&host),
            "host {host:?} registered twice in the node database"
        );
        let idx = self.nodes.len();
        self.by_host.insert(host, idx);
        self.dirty.insert(idx);
        match role {
            NodeRole::Compute => {
                self.compute_by_free.entry(cores).or_default().insert(idx);
                self.compute_free_sum += cores;
                self.compute_total_sum += cores;
            }
            NodeRole::Accelerator => {
                self.free_accs.insert(idx);
                self.acc_total += 1;
            }
        }
        self.nodes.push(NodeRecord {
            host,
            role,
            cores_total: cores,
            cores_free: cores,
            jobs: BTreeMap::new(),
            offline: false,
        });
    }

    /// Move a compute node between free-count buckets (no-op while the
    /// node is offline — offline nodes are not indexed).
    fn rebucket_compute(&mut self, idx: usize, old_free: u32, new_free: u32) {
        if self.nodes[idx].offline || old_free == new_free {
            return;
        }
        if let Some(b) = self.compute_by_free.get_mut(&old_free) {
            b.remove(&idx);
            if b.is_empty() {
                self.compute_by_free.remove(&old_free);
            }
        }
        self.compute_by_free.entry(new_free).or_default().insert(idx);
    }

    /// All node records.
    pub fn nodes(&self) -> &[NodeRecord] {
        &self.nodes
    }

    /// Drain the set of node indices whose scheduler-visible state
    /// changed since the previous drain. A full snapshot also counts as
    /// a drain: after serving one, the recipient is current, so only
    /// changes from that point on matter.
    pub fn take_dirty(&mut self) -> BTreeSet<usize> {
        std::mem::take(&mut self.dirty)
    }

    /// Record for one host.
    pub fn get(&self, host: HostId) -> Option<&NodeRecord> {
        self.by_host.get(&host).map(|&i| &self.nodes[i])
    }

    /// Registration index of a host (its position in [`NodeDb::nodes`]).
    pub fn index_of(&self, host: HostId) -> Option<usize> {
        self.by_host.get(&host).copied()
    }

    /// Take or release a node administratively.
    pub fn set_offline(&mut self, host: HostId, offline: bool) {
        let Some(&idx) = self.by_host.get(&host) else { return };
        if self.nodes[idx].offline == offline {
            return;
        }
        self.dirty.insert(idx);
        // De-index before the flip (rebucket skips offline nodes), then
        // flip, then re-index with the node's current occupancy.
        if offline {
            match self.nodes[idx].role {
                NodeRole::Compute => {
                    let free = self.nodes[idx].cores_free;
                    if let Some(b) = self.compute_by_free.get_mut(&free) {
                        b.remove(&idx);
                        if b.is_empty() {
                            self.compute_by_free.remove(&free);
                        }
                    }
                }
                NodeRole::Accelerator => {
                    self.free_accs.remove(&idx);
                }
            }
            self.nodes[idx].offline = true;
        } else {
            self.nodes[idx].offline = false;
            match self.nodes[idx].role {
                NodeRole::Compute => {
                    let free = self.nodes[idx].cores_free;
                    self.compute_by_free.entry(free).or_default().insert(idx);
                }
                NodeRole::Accelerator => {
                    if self.nodes[idx].is_free() {
                        self.free_accs.insert(idx);
                    }
                }
            }
        }
    }

    /// Compute hosts with at least `ppn` free cores, in registration order.
    pub fn free_compute(&self, ppn: u32) -> Vec<HostId> {
        let mut idxs: Vec<usize> =
            self.compute_by_free.range(ppn..).flat_map(|(_, b)| b.iter().copied()).collect();
        idxs.sort_unstable();
        idxs.into_iter().map(|i| self.nodes[i].host).collect()
    }

    /// Fully free accelerator hosts, in registration order.
    pub fn free_accelerators(&self) -> Vec<HostId> {
        self.free_accs.iter().map(|&i| self.nodes[i].host).collect()
    }

    /// Linear-scan reference for [`NodeDb::free_compute`] (retained for
    /// the index-consistency property tests).
    #[doc(hidden)]
    pub fn free_compute_linear(&self, ppn: u32) -> Vec<HostId> {
        self.nodes
            .iter()
            .filter(|n| n.role == NodeRole::Compute && !n.offline && n.cores_free >= ppn)
            .map(|n| n.host)
            .collect()
    }

    /// Linear-scan reference for [`NodeDb::free_accelerators`].
    #[doc(hidden)]
    pub fn free_accelerators_linear(&self) -> Vec<HostId> {
        self.nodes
            .iter()
            .filter(|n| n.role == NodeRole::Accelerator && n.is_free())
            .map(|n| n.host)
            .collect()
    }

    /// Allocate `ppn` cores on a compute node to a job. Panics if the
    /// node cannot satisfy it — the scheduler must only hand out feasible
    /// allocations (this invariant is property-tested).
    pub fn allocate_compute(&mut self, host: HostId, job: JobId, ppn: u32) {
        let idx = *self.by_host.get(&host).expect("allocating unknown host");
        let n = &mut self.nodes[idx];
        assert_eq!(n.role, NodeRole::Compute, "allocate_compute on an accelerator");
        assert!(!n.offline, "allocate on offline node");
        assert!(n.cores_free >= ppn, "over-allocation of {host:?}");
        let old_free = n.cores_free;
        n.cores_free -= ppn;
        let first_on_host = n.jobs.insert(job, n.jobs.get(&job).copied().unwrap_or(0) + ppn);
        let new_free = old_free - ppn;
        self.compute_free_sum -= ppn;
        self.dirty.insert(idx);
        self.rebucket_compute(idx, old_free, new_free);
        if first_on_host.is_none() {
            self.job_hosts.entry(job).or_default().push(host);
        }
    }

    /// Allocate an accelerator node exclusively to a job.
    pub fn allocate_accelerator(&mut self, host: HostId, job: JobId) {
        let idx = *self.by_host.get(&host).expect("allocating unknown host");
        let n = &mut self.nodes[idx];
        assert_eq!(n.role, NodeRole::Accelerator, "allocate_accelerator on a compute node");
        assert!(n.is_free(), "accelerator {host:?} double-allocated");
        n.cores_free = 0;
        n.jobs.insert(job, 1);
        self.dirty.insert(idx);
        self.free_accs.remove(&idx);
        self.job_hosts.entry(job).or_default().push(host);
    }

    /// Release everything `job` holds on `host`.
    pub fn release(&mut self, host: HostId, job: JobId) {
        if self.release_on(host, job) {
            // Keep the job->hosts index consistent for per-host releases
            // (grant-abort paths); wholesale `release_job` bypasses this.
            if let Some(hosts) = self.job_hosts.get_mut(&job) {
                hosts.retain(|h| *h != host);
                if hosts.is_empty() {
                    self.job_hosts.remove(&job);
                }
            }
        }
    }

    /// Release bookkeeping on one host, without touching `job_hosts`.
    /// Returns whether the job actually held anything there.
    fn release_on(&mut self, host: HostId, job: JobId) -> bool {
        let Some(&idx) = self.by_host.get(&host) else {
            panic!("releasing unknown host");
        };
        let n = &mut self.nodes[idx];
        let Some(held) = n.jobs.remove(&job) else { return false };
        let old_free = n.cores_free;
        match n.role {
            NodeRole::Compute => {
                n.cores_free += held;
                let new_free = n.cores_free;
                debug_assert!(new_free <= n.cores_total, "release overflow on {host:?}");
                self.compute_free_sum += held;
                self.rebucket_compute(idx, old_free, new_free);
            }
            NodeRole::Accelerator => {
                n.cores_free = n.cores_total;
                if n.is_free() {
                    self.free_accs.insert(idx);
                }
            }
        }
        self.dirty.insert(idx);
        true
    }

    /// Release everything `job` holds anywhere: O(hosts the job holds),
    /// via the job->hosts index.
    pub fn release_job(&mut self, job: JobId) {
        if let Some(hosts) = self.job_hosts.remove(&job) {
            for h in hosts {
                self.release_on(h, job);
            }
        }
    }

    /// Total free / total cores over compute nodes (utilisation metrics).
    pub fn compute_core_usage(&self) -> (u32, u32) {
        (self.compute_free_sum, self.compute_total_sum)
    }

    /// (free, total) accelerator node counts.
    pub fn accelerator_usage(&self) -> (usize, usize) {
        (self.free_accs.len(), self.acc_total)
    }

    /// Linear recomputation of [`NodeDb::compute_core_usage`] (property
    /// tests cross-check the running sums against it).
    #[doc(hidden)]
    pub fn compute_core_usage_linear(&self) -> (u32, u32) {
        let mut free = 0;
        let mut total = 0;
        for n in &self.nodes {
            if n.role == NodeRole::Compute {
                free += n.cores_free;
                total += n.cores_total;
            }
        }
        (free, total)
    }

    /// Linear recomputation of [`NodeDb::accelerator_usage`].
    #[doc(hidden)]
    pub fn accelerator_usage_linear(&self) -> (usize, usize) {
        let mut free = 0;
        let mut total = 0;
        for n in &self.nodes {
            if n.role == NodeRole::Accelerator {
                total += 1;
                if n.is_free() {
                    free += 1;
                }
            }
        }
        (free, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: usize) -> HostId {
        HostId::from_raw(i)
    }

    fn db() -> NodeDb {
        let mut db = NodeDb::new();
        db.add_compute(h(0), 8);
        db.add_compute(h(1), 8);
        db.add_accelerator(h(2));
        db.add_accelerator(h(3));
        db
    }

    #[test]
    fn free_lists_respect_roles() {
        let db = db();
        assert_eq!(db.free_compute(1), vec![h(0), h(1)]);
        assert_eq!(db.free_accelerators(), vec![h(2), h(3)]);
    }

    #[test]
    fn compute_allocation_shares_cores() {
        let mut db = db();
        db.allocate_compute(h(0), JobId(1), 6);
        assert_eq!(db.free_compute(4), vec![h(1)]);
        assert_eq!(db.free_compute(2), vec![h(0), h(1)]);
        db.allocate_compute(h(0), JobId(2), 2);
        assert_eq!(db.free_compute(1), vec![h(1)]);
        db.release(h(0), JobId(1));
        assert_eq!(db.free_compute(6), vec![h(0), h(1)]);
    }

    #[test]
    fn accelerator_allocation_is_exclusive() {
        let mut db = db();
        db.allocate_accelerator(h(2), JobId(1));
        assert_eq!(db.free_accelerators(), vec![h(3)]);
        db.release(h(2), JobId(1));
        assert_eq!(db.free_accelerators(), vec![h(2), h(3)]);
    }

    #[test]
    #[should_panic(expected = "double-allocated")]
    fn double_accelerator_allocation_panics() {
        let mut db = db();
        db.allocate_accelerator(h(2), JobId(1));
        db.allocate_accelerator(h(2), JobId(2));
    }

    #[test]
    #[should_panic(expected = "over-allocation")]
    fn core_overallocation_panics() {
        let mut db = db();
        db.allocate_compute(h(0), JobId(1), 8);
        db.allocate_compute(h(0), JobId(2), 1);
    }

    #[test]
    fn release_job_clears_everywhere() {
        let mut db = db();
        db.allocate_compute(h(0), JobId(1), 2);
        db.allocate_compute(h(1), JobId(1), 2);
        db.allocate_accelerator(h(2), JobId(1));
        db.release_job(JobId(1));
        assert_eq!(db.compute_core_usage(), (16, 16));
        assert_eq!(db.accelerator_usage(), (2, 2));
    }

    #[test]
    fn offline_nodes_are_hidden() {
        let mut db = db();
        db.set_offline(h(1), true);
        db.set_offline(h(3), true);
        assert_eq!(db.free_compute(1), vec![h(0)]);
        assert_eq!(db.free_accelerators(), vec![h(2)]);
        db.set_offline(h(1), false);
        assert_eq!(db.free_compute(1), vec![h(0), h(1)]);
    }

    #[test]
    fn usage_counters() {
        let mut db = db();
        db.allocate_compute(h(0), JobId(1), 3);
        db.allocate_accelerator(h(2), JobId(1));
        assert_eq!(db.compute_core_usage(), (13, 16));
        assert_eq!(db.accelerator_usage(), (1, 2));
    }

    #[test]
    fn repeat_allocation_on_same_host_releases_wholesale() {
        // A job growing on a host it already occupies (dyn compute
        // grant) must not duplicate the job->hosts index entry.
        let mut db = db();
        db.allocate_compute(h(0), JobId(1), 2);
        db.allocate_compute(h(0), JobId(1), 3);
        assert_eq!(db.free_compute(4), vec![h(1)]);
        db.release_job(JobId(1));
        assert_eq!(db.compute_core_usage(), (16, 16));
        assert_eq!(db.free_compute(8), vec![h(0), h(1)]);
    }

    #[test]
    fn offline_release_reindexes_on_return() {
        // Reclaim pattern: node goes offline while allocated, the job
        // is released while it is offline, then the node comes back.
        let mut db = db();
        db.allocate_compute(h(0), JobId(1), 8);
        db.allocate_accelerator(h(2), JobId(1));
        db.set_offline(h(0), true);
        db.set_offline(h(2), true);
        db.release_job(JobId(1));
        assert_eq!(db.free_compute(1), vec![h(1)]);
        assert_eq!(db.free_accelerators(), vec![h(3)]);
        db.set_offline(h(0), false);
        db.set_offline(h(2), false);
        assert_eq!(db.free_compute(8), vec![h(0), h(1)]);
        assert_eq!(db.free_accelerators(), vec![h(2), h(3)]);
    }

    #[test]
    fn indexed_paths_match_linear_references() {
        let mut db = db();
        db.allocate_compute(h(0), JobId(1), 6);
        db.allocate_accelerator(h(3), JobId(1));
        db.set_offline(h(1), true);
        for ppn in 0..=8 {
            assert_eq!(db.free_compute(ppn), db.free_compute_linear(ppn));
        }
        assert_eq!(db.free_accelerators(), db.free_accelerators_linear());
        assert_eq!(db.compute_core_usage(), db.compute_core_usage_linear());
        assert_eq!(db.accelerator_usage(), db.accelerator_usage_linear());
    }
}
