//! The server's node database: compute nodes with core counts and
//! exclusively-allocated accelerator nodes, with allocation bookkeeping.

use std::collections::BTreeMap;

use darms_net::HostId;

use crate::job::JobId;

/// Role of a node in the database.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeRole {
    /// Compute node with a number of cores; multiple jobs may share it if
    /// cores remain.
    Compute,
    /// Network-attached accelerator; allocated exclusively to one job at
    /// a time (the ARM pool of the DAC architecture).
    Accelerator,
}

/// One node's record.
#[derive(Clone, Debug)]
pub struct NodeRecord {
    /// The host backing this node.
    pub host: HostId,
    /// Role.
    pub role: NodeRole,
    /// Total cores (1 for accelerators).
    pub cores_total: u32,
    /// Currently unallocated cores.
    pub cores_free: u32,
    /// Jobs holding cores here, with counts.
    pub jobs: BTreeMap<JobId, u32>,
    /// Administratively offline (fault injection / maintenance).
    pub offline: bool,
}

impl NodeRecord {
    /// True if nothing is allocated here.
    pub fn is_free(&self) -> bool {
        self.cores_free == self.cores_total && !self.offline
    }
}

/// In-memory node database.
#[derive(Clone, Debug, Default)]
pub struct NodeDb {
    nodes: Vec<NodeRecord>,
    by_host: BTreeMap<HostId, usize>,
}

impl NodeDb {
    /// Create an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a compute node with `cores` cores.
    pub fn add_compute(&mut self, host: HostId, cores: u32) {
        self.add(host, NodeRole::Compute, cores.max(1));
    }

    /// Register an accelerator node.
    pub fn add_accelerator(&mut self, host: HostId) {
        self.add(host, NodeRole::Accelerator, 1);
    }

    fn add(&mut self, host: HostId, role: NodeRole, cores: u32) {
        assert!(
            !self.by_host.contains_key(&host),
            "host {host:?} registered twice in the node database"
        );
        self.by_host.insert(host, self.nodes.len());
        self.nodes.push(NodeRecord {
            host,
            role,
            cores_total: cores,
            cores_free: cores,
            jobs: BTreeMap::new(),
            offline: false,
        });
    }

    /// All node records.
    pub fn nodes(&self) -> &[NodeRecord] {
        &self.nodes
    }

    /// Record for one host.
    pub fn get(&self, host: HostId) -> Option<&NodeRecord> {
        self.by_host.get(&host).map(|&i| &self.nodes[i])
    }

    fn get_mut(&mut self, host: HostId) -> Option<&mut NodeRecord> {
        let i = *self.by_host.get(&host)?;
        Some(&mut self.nodes[i])
    }

    /// Take or release a node administratively.
    pub fn set_offline(&mut self, host: HostId, offline: bool) {
        if let Some(n) = self.get_mut(host) {
            n.offline = offline;
        }
    }

    /// Compute hosts with at least `ppn` free cores, in registration order.
    pub fn free_compute(&self, ppn: u32) -> Vec<HostId> {
        self.nodes
            .iter()
            .filter(|n| n.role == NodeRole::Compute && !n.offline && n.cores_free >= ppn)
            .map(|n| n.host)
            .collect()
    }

    /// Fully free accelerator hosts, in registration order.
    pub fn free_accelerators(&self) -> Vec<HostId> {
        self.nodes
            .iter()
            .filter(|n| n.role == NodeRole::Accelerator && n.is_free())
            .map(|n| n.host)
            .collect()
    }

    /// Allocate `ppn` cores on a compute node to a job. Panics if the
    /// node cannot satisfy it — the scheduler must only hand out feasible
    /// allocations (this invariant is property-tested).
    pub fn allocate_compute(&mut self, host: HostId, job: JobId, ppn: u32) {
        let n = self.get_mut(host).expect("allocating unknown host");
        assert_eq!(n.role, NodeRole::Compute, "allocate_compute on an accelerator");
        assert!(!n.offline, "allocate on offline node");
        assert!(n.cores_free >= ppn, "over-allocation of {host:?}");
        n.cores_free -= ppn;
        *n.jobs.entry(job).or_insert(0) += ppn;
    }

    /// Allocate an accelerator node exclusively to a job.
    pub fn allocate_accelerator(&mut self, host: HostId, job: JobId) {
        let n = self.get_mut(host).expect("allocating unknown host");
        assert_eq!(n.role, NodeRole::Accelerator, "allocate_accelerator on a compute node");
        assert!(n.is_free(), "accelerator {host:?} double-allocated");
        n.cores_free = 0;
        n.jobs.insert(job, 1);
    }

    /// Release everything `job` holds on `host`.
    pub fn release(&mut self, host: HostId, job: JobId) {
        let n = self.get_mut(host).expect("releasing unknown host");
        if let Some(held) = n.jobs.remove(&job) {
            match n.role {
                NodeRole::Compute => n.cores_free += held,
                NodeRole::Accelerator => n.cores_free = n.cores_total,
            }
            debug_assert!(n.cores_free <= n.cores_total, "release overflow on {host:?}");
        }
    }

    /// Release everything `job` holds anywhere.
    pub fn release_job(&mut self, job: JobId) {
        let hosts: Vec<HostId> =
            self.nodes.iter().filter(|n| n.jobs.contains_key(&job)).map(|n| n.host).collect();
        for h in hosts {
            self.release(h, job);
        }
    }

    /// Total free / total cores over compute nodes (utilisation metrics).
    pub fn compute_core_usage(&self) -> (u32, u32) {
        let mut free = 0;
        let mut total = 0;
        for n in &self.nodes {
            if n.role == NodeRole::Compute {
                free += n.cores_free;
                total += n.cores_total;
            }
        }
        (free, total)
    }

    /// (free, total) accelerator node counts.
    pub fn accelerator_usage(&self) -> (usize, usize) {
        let mut free = 0;
        let mut total = 0;
        for n in &self.nodes {
            if n.role == NodeRole::Accelerator {
                total += 1;
                if n.is_free() {
                    free += 1;
                }
            }
        }
        (free, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: usize) -> HostId {
        HostId::from_raw(i)
    }

    fn db() -> NodeDb {
        let mut db = NodeDb::new();
        db.add_compute(h(0), 8);
        db.add_compute(h(1), 8);
        db.add_accelerator(h(2));
        db.add_accelerator(h(3));
        db
    }

    #[test]
    fn free_lists_respect_roles() {
        let db = db();
        assert_eq!(db.free_compute(1), vec![h(0), h(1)]);
        assert_eq!(db.free_accelerators(), vec![h(2), h(3)]);
    }

    #[test]
    fn compute_allocation_shares_cores() {
        let mut db = db();
        db.allocate_compute(h(0), JobId(1), 6);
        assert_eq!(db.free_compute(4), vec![h(1)]);
        assert_eq!(db.free_compute(2), vec![h(0), h(1)]);
        db.allocate_compute(h(0), JobId(2), 2);
        assert_eq!(db.free_compute(1), vec![h(1)]);
        db.release(h(0), JobId(1));
        assert_eq!(db.free_compute(6), vec![h(0), h(1)]);
    }

    #[test]
    fn accelerator_allocation_is_exclusive() {
        let mut db = db();
        db.allocate_accelerator(h(2), JobId(1));
        assert_eq!(db.free_accelerators(), vec![h(3)]);
        db.release(h(2), JobId(1));
        assert_eq!(db.free_accelerators(), vec![h(2), h(3)]);
    }

    #[test]
    #[should_panic(expected = "double-allocated")]
    fn double_accelerator_allocation_panics() {
        let mut db = db();
        db.allocate_accelerator(h(2), JobId(1));
        db.allocate_accelerator(h(2), JobId(2));
    }

    #[test]
    #[should_panic(expected = "over-allocation")]
    fn core_overallocation_panics() {
        let mut db = db();
        db.allocate_compute(h(0), JobId(1), 8);
        db.allocate_compute(h(0), JobId(2), 1);
    }

    #[test]
    fn release_job_clears_everywhere() {
        let mut db = db();
        db.allocate_compute(h(0), JobId(1), 2);
        db.allocate_compute(h(1), JobId(1), 2);
        db.allocate_accelerator(h(2), JobId(1));
        db.release_job(JobId(1));
        assert_eq!(db.compute_core_usage(), (16, 16));
        assert_eq!(db.accelerator_usage(), (2, 2));
    }

    #[test]
    fn offline_nodes_are_hidden() {
        let mut db = db();
        db.set_offline(h(1), true);
        db.set_offline(h(3), true);
        assert_eq!(db.free_compute(1), vec![h(0)]);
        assert_eq!(db.free_accelerators(), vec![h(2)]);
        db.set_offline(h(1), false);
        assert_eq!(db.free_compute(1), vec![h(0), h(1)]);
    }

    #[test]
    fn usage_counters() {
        let mut db = db();
        db.allocate_compute(h(0), JobId(1), 3);
        db.allocate_accelerator(h(2), JobId(1));
        assert_eq!(db.compute_core_usage(), (13, 16));
        assert_eq!(db.accelerator_usage(), (1, 2));
    }
}
