//! # darms-rms — a TORQUE-like resource management system
//!
//! The substrate half of the paper's contribution: a batch-system resource
//! manager with a head-node server ([`PbsServer`]) and per-host moms
//! ([`PbsMom`]), extended exactly as §III describes:
//!
//! - the `acpn` job attribute requesting network-attached accelerators;
//! - `pbs_dynget` / `pbs_dynfree` IFL calls for runtime (de)allocation;
//! - a `dynqueued` job state and *serial* server-side servicing of
//!   dynamic requests (the behaviour behind Fig. 9);
//! - `DYNJOIN_JOB` / `DISJOIN_JOB` mom protocols for dynamic
//!   (dis)association of hosts with a running job, including database
//!   updates at the existing sister moms;
//! - mother-superior-driven accelerator daemon startup via the
//!   [`AcDaemonStarter`] hook (implemented by `darms-dac`), keeping the
//!   RMS accelerator-architecture agnostic.
//!
//! The scheduler (Maui analogue) lives in `darms-sched` and talks to the
//! server through the messages in [`proto`].

#![warn(missing_docs)]

pub mod cost;
pub mod fs;
pub mod ifl;
pub mod job;
pub mod mom;
pub mod monitor;
pub mod nodes;
pub mod proto;
pub mod server;

pub use cost::RmsCostModel;
pub use fs::PseudoFs;
pub use job::{script, ClientId, DynSet, JobId, JobScript, JobSpec, JobState, JobStatus};
pub use mom::{AcDaemonStarter, JobCtx, PbsMom, StaticDaemonRequest};
pub use monitor::{HealthMonitor, MonitorConfig};
pub use nodes::{NodeDb, NodeRecord, NodeRole};
pub use server::PbsServer;

use darms_net::{ports, Address, HostId};

/// The server's well-known address on the head node.
pub fn server_addr(head: HostId) -> Address {
    Address::new(head, ports::PBS_SERVER)
}

/// A mom's well-known address on its host.
pub fn mom_addr(host: HostId) -> Address {
    Address::new(host, ports::PBS_MOM)
}

/// The scheduler's well-known address on the head node.
pub fn sched_addr(head: HostId) -> Address {
    Address::new(head, ports::SCHEDULER)
}

/// The health monitor's well-known address on the head node.
pub fn monitor_addr(head: HostId) -> Address {
    Address::new(head, ports::MONITOR)
}
