//! The `pbs_mom` actor: one per compute and accelerator host.
//!
//! The mom selected as *mother superior* (always a compute node, §III-C)
//! drives the job lifecycle: `JOIN_JOB` with the sisters, accelerator
//! daemon startup, task launch, `DYNJOIN_JOB` when the server associates
//! dynamically allocated accelerators, `DISJOIN_JOB` on release, and the
//! exit protocol.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use darms_net::{Address, HostId, Network};
use darms_sim::{Actor, Ctx, Endpoint, Envelope, Proc, ProcessId, SimDuration};

use crate::cost::RmsCostModel;
use crate::fs::{files, PseudoFs};
use crate::ifl;
use crate::job::{ClientId, DynSet, JobId, JobSpec};
use crate::proto::*;
use crate::{mom_addr, server_addr};

/// Request passed to the accelerator-daemon starter hook.
pub struct StaticDaemonRequest {
    /// The job the daemons belong to.
    pub job: JobId,
    /// Index of the compute node within the job (0 = mother superior).
    pub cn_index: usize,
    /// The compute node the daemons will serve.
    pub cn: HostId,
    /// The accelerator hosts to start daemons on.
    pub accs: Vec<HostId>,
}

/// Hook through which the mother superior starts accelerator daemons for
/// a static allocation (the DAC layer implements this; the RMS stays
/// accelerator-architecture agnostic, as the paper argues TORQUE should).
pub trait AcDaemonStarter: Send + Sync {
    /// Start one compute node's daemon set. Returns the daemon process
    /// ids so the mom can track them as job tasks.
    fn start_static(&self, ctx: &mut Ctx<'_>, req: &StaticDaemonRequest) -> Vec<ProcessId>;
}

/// Everything a per-compute-node application task can see and do. This is
/// the execution environment the job script receives (the analogue of the
/// TORQUE environment variables plus the TM/IFL interface).
pub struct JobCtx {
    /// The simulation process this task runs as.
    pub proc: Proc,
    /// The job id (`PBS_JOBID`).
    pub job: JobId,
    /// Index of this compute node within the job (0 = mother superior).
    pub node_index: usize,
    /// The host this task runs on.
    pub host: HostId,
    /// All compute hosts of the job (`PBS_NODEFILE`).
    pub compute: Vec<HostId>,
    /// This compute node's statically allocated accelerators.
    pub acc_hosts: Vec<HostId>,
    /// The submitted spec.
    pub spec: JobSpec,
    /// The cluster network.
    pub net: Network,
    /// The shared pseudo-filesystem.
    pub fs: PseudoFs,
    /// The server's address.
    pub server: Address,
    /// The mother superior mom's address.
    pub ms_mom: Address,
    /// Latched once a [`TaskKill`] has been observed.
    killed: bool,
}

impl JobCtx {
    /// `pbs_dynget`: blockingly request `count` additional accelerators.
    pub async fn dynget(&self, count: u32) -> Result<DynGrant, DynReject> {
        ifl::pbs_dynget(&self.proc, &self.net, self.host, self.server, self.job, self.host, count)
            .await
    }

    /// Request `count` additional compute nodes with `ppn` cores each for
    /// a malleable application (§V generalisation). Returns the granted
    /// hosts; spawn work there via the MPI runtime, and release with
    /// [`JobCtx::dynfree`].
    pub async fn dynget_nodes(&self, count: u32, ppn: u32) -> Result<DynGrant, DynReject> {
        ifl::pbs_dynget_nodes(
            &self.proc,
            &self.net,
            self.host,
            self.server,
            self.job,
            self.host,
            count,
            ppn,
        )
        .await
    }

    /// `pbs_dynfree`: release a dynamically allocated set.
    pub async fn dynfree(&self, client_id: ClientId) -> bool {
        ifl::pbs_dynfree(&self.proc, &self.net, self.host, self.server, self.job, client_id).await
    }

    /// `qstat` as seen from inside the job.
    pub async fn qstat(&self) -> Vec<crate::job::JobStatus> {
        ifl::qstat(&self.proc, &self.net, self.host, self.server).await
    }

    /// True once the job has been cancelled (`qdel`). Cancellation is
    /// cooperative: long-running scripts should poll this (or use
    /// [`JobCtx::sleep_interruptible`]) and wind down.
    pub fn killed(&mut self) -> bool {
        if !self.killed && self.proc.try_recv_where(|e| e.is::<TaskKill>()).is_some() {
            self.killed = true;
        }
        self.killed
    }

    /// Sleep for `d`, waking early if the job is cancelled. Returns true
    /// if the sleep was interrupted by cancellation.
    pub async fn sleep_interruptible(&mut self, d: darms_sim::SimDuration) -> bool {
        if self.killed {
            return true;
        }
        if self.proc.recv_where_timeout(|e| e.is::<TaskKill>(), d).await.is_some() {
            self.killed = true;
        }
        self.killed
    }
}

struct DynJoinState {
    token: u64,
    client_id: ClientId,
    cn: HostId,
    accs: Vec<HostId>,
    pending: BTreeSet<HostId>,
}

struct DisjoinState {
    set: DynSet,
    pending: BTreeSet<HostId>,
}

struct MomJob {
    launch: JobLaunch,
    is_ms: bool,
    /// True once `JobStarted` has been sent (duplicate `SendJob`s are
    /// answered by re-sending it).
    announced: bool,
    join_pending: BTreeSet<HostId>,
    dynjoin: Option<DynJoinState>,
    disjoin: BTreeMap<ClientId, DisjoinState>,
    /// Hosts of currently associated dynamic sets (mother superior view).
    dyn_hosts: Vec<HostId>,
    tasks_done: BTreeSet<usize>,
    task_pids: Vec<ProcessId>,
    /// Timer token of the armed walltime kill, if any.
    walltime_timer: Option<u64>,
}

enum Deferred {
    IssueJoin {
        job: JobId,
        host: HostId,
    },
    FinishJoin {
        launch: JobLaunch,
        reply: Address,
    },
    StartTasks {
        job: JobId,
    },
    IssueDynJoin {
        job: JobId,
        host: HostId,
    },
    FinishDynJoin {
        launch: JobLaunch,
        reply: Address,
    },
    FinishDisjoin {
        job: JobId,
        reply: Address,
    },
    /// Walltime enforcement: kill the job if it is still running.
    WalltimeExpired {
        job: JobId,
    },
}

/// The `pbs_mom` daemon for one host.
pub struct PbsMom {
    net: Network,
    fs: PseudoFs,
    host: HostId,
    head: HostId,
    cost: RmsCostModel,
    starter: Option<Arc<dyn AcDaemonStarter>>,
    jobs: BTreeMap<JobId, MomJob>,
    deferred: BTreeMap<u64, Deferred>,
    next_timer: u64,
    name: String,
    /// Highest incarnation per job this mom has finished (or cleaned up);
    /// duplicate launches at or below it are ignored.
    done_jobs: BTreeMap<JobId, u32>,
    /// `JobExit`s awaiting the server's ack, with remaining resend
    /// attempts (only populated when a retry policy is active).
    exit_pending: BTreeMap<JobId, (JobExit, u32)>,
    /// Tokens of completed dynamic joins: a duplicate `DynJoinCmd` is
    /// answered by re-sending `DynReady`.
    completed_dynjoins: BTreeSet<u64>,
    /// Completed releases: a duplicate `DisjoinCmd` is answered by
    /// re-sending `FreeDone`.
    completed_frees: BTreeMap<ClientId, (JobId, DynSet)>,
}

/// Reserved timer token for the mom's retransmit tick.
const TOKEN_RETRY: u64 = 0;

/// Resend budget for an unacknowledged `JobExit`.
const EXIT_ATTEMPTS: u32 = 20;

impl PbsMom {
    /// Create the mom for `host`; `head` locates the server.
    pub fn new(
        net: Network,
        fs: PseudoFs,
        host: HostId,
        head: HostId,
        cost: RmsCostModel,
        starter: Option<Arc<dyn AcDaemonStarter>>,
    ) -> Self {
        PbsMom {
            net,
            fs,
            host,
            head,
            cost,
            starter,
            jobs: BTreeMap::new(),
            deferred: BTreeMap::new(),
            next_timer: 1,
            name: format!("pbs_mom@host{}", host.index()),
            done_jobs: BTreeMap::new(),
            exit_pending: BTreeMap::new(),
            completed_dynjoins: BTreeSet::new(),
            completed_frees: BTreeMap::new(),
        }
    }

    fn defer(&mut self, ctx: &mut Ctx<'_>, after: SimDuration, d: Deferred) -> u64 {
        let token = self.next_timer;
        self.next_timer += 1;
        self.deferred.insert(token, d);
        ctx.set_timer(after, token);
        token
    }

    fn send_to<T: std::any::Any + Send + Clone>(&mut self, ctx: &mut Ctx<'_>, to: Address, msg: T) {
        let bytes = self.cost.ctl_bytes;
        self.net.send_from_ctx(ctx, self.host, to, msg, bytes);
    }

    fn my_addr(&self) -> Address {
        mom_addr(self.host)
    }

    /// Hosts involved in a job besides the mother superior.
    fn sisters(launch: &JobLaunch) -> Vec<HostId> {
        let mut v: Vec<HostId> = Vec::new();
        for h in launch.compute.iter().skip(1) {
            v.push(*h);
        }
        for h in launch.accs.iter().flatten() {
            if !v.contains(h) {
                v.push(*h);
            }
        }
        v
    }

    // -- mother superior: job start --------------------------------------

    fn handle_send_job(&mut self, ctx: &mut Ctx<'_>, msg: SendJob) {
        let launch = msg.launch;
        let job = launch.job;
        if self.done_jobs.get(&job).is_some_and(|done| launch.incarnation <= *done) {
            // Stale duplicate of an incarnation this mom already finished
            // (or was told to clean up); the exit-retry path informs the
            // server, nothing to restart here.
            return;
        }
        if let Some(rec) = self.jobs.get(&job) {
            if launch.incarnation < rec.launch.incarnation {
                return;
            }
            if launch.incarnation == rec.launch.incarnation {
                if rec.is_ms && rec.announced {
                    // The server missed our JobStarted: repeat it.
                    let m = JobStarted { job, from: self.host, incarnation: launch.incarnation };
                    self.send_to(ctx, server_addr(self.head), m);
                }
                return; // launch already in progress
            }
            // A newer incarnation (the job was reclaimed and rescheduled
            // here): kill the lingering old one before starting fresh.
            let old = rec.launch.incarnation;
            self.handle_cleanup(ctx, CleanupJob { job, incarnation: old });
        }
        let sisters = Self::sisters(&launch);
        ctx.trace(format!("{job}: mother superior, {} sister(s)", sisters.len()));
        self.jobs.insert(
            job,
            MomJob {
                launch: launch.clone(),
                is_ms: true,
                announced: false,
                join_pending: sisters.iter().copied().collect(),
                dynjoin: None,
                disjoin: BTreeMap::new(),
                dyn_hosts: Vec::new(),
                tasks_done: BTreeSet::new(),
                task_pids: Vec::new(),
                walltime_timer: None,
            },
        );
        if sisters.is_empty() {
            self.prologue(ctx, job);
        } else {
            // TORQUE issues JOIN_JOBs sequentially; the stagger drives the
            // per-accelerator growth visible in the paper's measurements.
            for (i, h) in sisters.into_iter().enumerate() {
                let delay = self.cost.join_issue_stagger * i as u64;
                self.defer(ctx, delay, Deferred::IssueJoin { job, host: h });
            }
        }
    }

    fn issue_join(&mut self, ctx: &mut Ctx<'_>, job: JobId, host: HostId) {
        let Some(rec) = self.jobs.get(&job) else { return };
        let msg = JoinJob { launch: rec.launch.clone(), reply: self.my_addr() };
        self.send_to(ctx, mom_addr(host), msg);
    }

    fn handle_join_job(&mut self, ctx: &mut Ctx<'_>, msg: JoinJob) {
        self.defer(
            ctx,
            self.cost.join_handling,
            Deferred::FinishJoin { launch: msg.launch, reply: msg.reply },
        );
    }

    fn finish_join(&mut self, ctx: &mut Ctx<'_>, launch: JobLaunch, reply: Address) {
        let job = launch.job;
        self.jobs.entry(job).or_insert(MomJob {
            launch,
            is_ms: false,
            announced: false,
            join_pending: BTreeSet::new(),
            dynjoin: None,
            disjoin: BTreeMap::new(),
            dyn_hosts: Vec::new(),
            tasks_done: BTreeSet::new(),
            task_pids: Vec::new(),
            walltime_timer: None,
        });
        let ack = JoinAck { job, host: self.host };
        self.send_to(ctx, reply, ack);
    }

    fn handle_join_ack(&mut self, ctx: &mut Ctx<'_>, msg: JoinAck) {
        let Some(rec) = self.jobs.get_mut(&msg.job) else { return };
        rec.join_pending.remove(&msg.host);
        if rec.join_pending.is_empty() {
            self.prologue(ctx, msg.job);
        }
    }

    /// All moms joined: write the nodefile, start accelerator daemons,
    /// then the application tasks.
    fn prologue(&mut self, ctx: &mut Ctx<'_>, job: JobId) {
        let Some(rec) = self.jobs.get(&job) else { return };
        let launch = rec.launch.clone();
        let nodefile = launch
            .compute
            .iter()
            .map(|h| format!("host{}", h.index()))
            .collect::<Vec<_>>()
            .join("\n");
        self.fs.write(job, files::NODEFILE, nodefile);
        if let Some(starter) = self.starter.clone() {
            for (i, accs) in launch.accs.iter().enumerate() {
                if accs.is_empty() {
                    continue;
                }
                let req = StaticDaemonRequest {
                    job,
                    cn_index: i,
                    cn: launch.compute[i],
                    accs: accs.clone(),
                };
                let pids = starter.start_static(ctx, &req);
                if let Some(rec) = self.jobs.get_mut(&job) {
                    rec.task_pids.extend(pids);
                }
            }
        }
        self.defer(ctx, self.cost.task_start, Deferred::StartTasks { job });
    }

    fn start_tasks(&mut self, ctx: &mut Ctx<'_>, job: JobId) {
        let Some(rec) = self.jobs.get(&job) else { return };
        let launch = rec.launch.clone();
        let ms_mom = self.my_addr();
        let server = server_addr(self.head);
        for (i, cn) in launch.compute.iter().enumerate() {
            let compute = launch.compute.clone();
            let acc_hosts = launch.accs.get(i).cloned().unwrap_or_default();
            let spec = launch.spec.clone();
            let script = launch.spec.script.clone();
            let runtime = launch.spec.runtime;
            let net = self.net.clone();
            let fs = self.fs.clone();
            let cn_host = *cn;
            let bytes = self.cost.ctl_bytes;
            let name = format!("{job}-task{i}@host{}", cn.index());
            let pid = ctx.spawn_process(name, move |p: Proc| async move {
                let proc = p.clone();
                let mut jc = JobCtx {
                    proc: p,
                    job,
                    node_index: i,
                    host: cn_host,
                    compute,
                    acc_hosts,
                    spec,
                    net: net.clone(),
                    fs,
                    server,
                    ms_mom,
                    killed: false,
                };
                match &script {
                    Some(s) => s(jc).await,
                    None => {
                        // Synthetic jobs honour qdel: the sleep breaks
                        // early when the mom delivers a TaskKill.
                        let _ = jc.sleep_interruptible(runtime).await;
                    }
                }
                // Task epilogue: report completion to the mother
                // superior. Under a retry policy the report is repeated
                // until the mom acknowledges it (the ack travels directly
                // to this process, so only the lossy report direction is
                // retried).
                let done = TaskDone { job, node_index: i };
                match net.retry_policy() {
                    None => {
                        net.send_from_proc(&proc, cn_host, ms_mom, done, bytes);
                    }
                    Some(pol) => {
                        for attempt in 0..pol.max_attempts.max(1) {
                            net.send_from_proc(&proc, cn_host, ms_mom, done.clone(), bytes);
                            let acked = proc
                                .recv_where_timeout(
                                    |e| {
                                        e.peek::<TaskDoneAck>()
                                            .is_some_and(|a| a.job == job && a.node_index == i)
                                    },
                                    pol.timeout_for(attempt),
                                )
                                .await
                                .is_some();
                            if acked {
                                break;
                            }
                        }
                    }
                }
            });
            if let Some(rec) = self.jobs.get_mut(&job) {
                rec.task_pids.push(pid);
            }
        }
        let msg = JobStarted { job, from: self.host, incarnation: launch.incarnation };
        self.send_to(ctx, server_addr(self.head), msg);
        if let Some(rec) = self.jobs.get_mut(&job) {
            rec.announced = true;
        }
        // TORQUE enforces the user's walltime estimate: arm the kill
        // timer with a small grace allowance.
        let walltime = launch.spec.walltime_estimate;
        if !walltime.is_zero() {
            let grace = SimDuration::from_secs(5).max(walltime.mul_f64(0.05));
            let token = self.defer(ctx, walltime + grace, Deferred::WalltimeExpired { job });
            if let Some(rec) = self.jobs.get_mut(&job) {
                rec.walltime_timer = Some(token);
            }
        }
    }

    /// The job overran its walltime: kill it like a qdel, reporting the
    /// timeout to the server.
    fn walltime_expired(&mut self, ctx: &mut Ctx<'_>, job: JobId) {
        let Some(rec) = self.jobs.get(&job) else { return }; // already done
        if !rec.is_ms {
            return;
        }
        ctx.trace(format!("{job}: walltime exceeded; killing"));
        let incarnation = rec.launch.incarnation;
        self.send_exit(ctx, JobExit { job, from: self.host, incarnation, timed_out: true });
        self.handle_cleanup(ctx, CleanupJob { job, incarnation });
    }

    // -- mother superior: dynamic join ------------------------------------

    fn handle_dynjoin_cmd(&mut self, ctx: &mut Ctx<'_>, cmd: DynJoinCmd) {
        if self.completed_dynjoins.contains(&cmd.token) {
            // Duplicate of a join already finished: the server missed our
            // DynReady; repeat it.
            let ready = DynReady { job: cmd.job, token: cmd.token };
            self.send_to(ctx, server_addr(self.head), ready);
            return;
        }
        let Some(rec) = self.jobs.get_mut(&cmd.job) else { return };
        if rec.dynjoin.as_ref().is_some_and(|st| st.token == cmd.token) {
            return; // join already in progress
        }
        rec.dynjoin = Some(DynJoinState {
            token: cmd.token,
            client_id: cmd.client_id,
            cn: cmd.cn,
            accs: cmd.accs.clone(),
            pending: cmd.accs.iter().copied().collect(),
        });
        let launch = rec.launch.clone();
        let existing: Vec<HostId> = Self::sisters(&launch)
            .into_iter()
            .chain(rec.dyn_hosts.iter().copied())
            .filter(|h| !cmd.accs.contains(h))
            .collect();
        ctx.trace(format!("{}: DYNJOIN of {} host(s)", cmd.job, cmd.accs.len()));
        for (i, h) in cmd.accs.iter().enumerate() {
            let delay = self.cost.join_issue_stagger * i as u64;
            self.defer(ctx, delay, Deferred::IssueDynJoin { job: cmd.job, host: *h });
        }
        // Update the existing moms' databases (§III-D).
        for h in existing {
            let upd = UpdateJobRes { job: cmd.job, added: cmd.accs.clone(), removed: vec![] };
            self.send_to(ctx, mom_addr(h), upd);
        }
    }

    fn issue_dynjoin(&mut self, ctx: &mut Ctx<'_>, job: JobId, host: HostId) {
        let Some(rec) = self.jobs.get(&job) else { return };
        let msg = DynJoinJob { job, launch: rec.launch.clone(), reply: self.my_addr() };
        self.send_to(ctx, mom_addr(host), msg);
    }

    fn handle_dynjoin_job(&mut self, ctx: &mut Ctx<'_>, msg: DynJoinJob) {
        self.defer(
            ctx,
            self.cost.join_handling,
            Deferred::FinishDynJoin { launch: msg.launch, reply: msg.reply },
        );
    }

    fn finish_dynjoin(&mut self, ctx: &mut Ctx<'_>, launch: JobLaunch, reply: Address) {
        let job = launch.job;
        self.jobs.entry(job).or_insert(MomJob {
            launch,
            is_ms: false,
            announced: false,
            join_pending: BTreeSet::new(),
            dynjoin: None,
            disjoin: BTreeMap::new(),
            dyn_hosts: Vec::new(),
            tasks_done: BTreeSet::new(),
            task_pids: Vec::new(),
            walltime_timer: None,
        });
        let ack = DynJoinAck { job, host: self.host };
        self.send_to(ctx, reply, ack);
    }

    fn handle_dynjoin_ack(&mut self, ctx: &mut Ctx<'_>, msg: DynJoinAck) {
        let Some(rec) = self.jobs.get_mut(&msg.job) else { return };
        let Some(state) = rec.dynjoin.as_mut() else { return };
        state.pending.remove(&msg.host);
        if state.pending.is_empty() {
            let state = rec.dynjoin.take().expect("checked");
            rec.dyn_hosts.extend(state.accs.iter().copied());
            let _ = (state.client_id, state.cn);
            self.completed_dynjoins.insert(state.token);
            let ready = DynReady { job: msg.job, token: state.token };
            self.send_to(ctx, server_addr(self.head), ready);
        }
    }

    // -- mother superior: release -----------------------------------------

    fn handle_disjoin_cmd(&mut self, ctx: &mut Ctx<'_>, cmd: DisjoinCmd) {
        if let Some((job, set)) = self.completed_frees.get(&cmd.client_id) {
            // Duplicate of a finished release: the server missed our
            // FreeDone; repeat it.
            let free_done = FreeDone { job: *job, set: set.clone() };
            self.send_to(ctx, server_addr(self.head), free_done);
            return;
        }
        ctx.trace(format!("{}: DISJOIN of {} host(s)", cmd.job, cmd.accs.len()));
        let Some(rec) = self.jobs.get_mut(&cmd.job) else { return };
        if rec.disjoin.contains_key(&cmd.client_id) {
            return; // release already in progress
        }
        let set = DynSet {
            client_id: cmd.client_id,
            cn: self.host,
            accs: cmd.accs.clone(),
            ppn: cmd.ppn,
        };
        rec.disjoin.insert(
            cmd.client_id,
            DisjoinState { set, pending: cmd.accs.iter().copied().collect() },
        );
        for h in &cmd.accs {
            let msg = DisjoinJob { job: cmd.job, reply: self.my_addr() };
            let bytes = self.cost.ctl_bytes;
            let outcome = self.net.send_from_ctx(ctx, self.host, mom_addr(*h), msg, bytes);
            if !outcome.is_sent() {
                // The host is down: its mom cannot acknowledge. Treat the
                // disassociation as complete — the health monitor marks
                // the node offline at the server.
                ctx.trace(format!("DISJOIN to dead host{} short-circuited", h.index()));
                let ack = DisjoinAck { job: cmd.job, host: *h };
                self.handle_disjoin_ack(ctx, ack);
            }
        }
    }

    fn handle_disjoin_job(&mut self, ctx: &mut Ctx<'_>, msg: DisjoinJob, src_job: JobId) {
        let _ = src_job;
        self.defer(
            ctx,
            self.cost.disjoin_handling,
            Deferred::FinishDisjoin { job: msg.job, reply: msg.reply },
        );
    }

    fn finish_disjoin(&mut self, ctx: &mut Ctx<'_>, job: JobId, reply: Address) {
        ctx.trace(format!("{job}: disjoined"));
        // Kill any remaining local tasks of this job, then detach.
        self.jobs.remove(&job);
        let ack = DisjoinAck { job, host: self.host };
        self.send_to(ctx, reply, ack);
    }

    fn handle_disjoin_ack(&mut self, ctx: &mut Ctx<'_>, msg: DisjoinAck) {
        let Some(rec) = self.jobs.get_mut(&msg.job) else { return };
        let mut done: Option<ClientId> = None;
        for (cid, st) in rec.disjoin.iter_mut() {
            if st.pending.remove(&msg.host) && st.pending.is_empty() {
                done = Some(*cid);
                break;
            }
        }
        if let Some(cid) = done {
            let st = rec.disjoin.remove(&cid).expect("found above");
            rec.dyn_hosts.retain(|h| !st.set.accs.contains(h));
            let remaining: Vec<HostId> = Self::sisters(&rec.launch)
                .into_iter()
                .chain(rec.dyn_hosts.iter().copied())
                .collect();
            let removed = st.set.accs.clone();
            if self.net.retry_policy().is_some() {
                self.completed_frees.insert(cid, (msg.job, st.set.clone()));
            }
            let free_done = FreeDone { job: msg.job, set: st.set };
            self.send_to(ctx, server_addr(self.head), free_done);
            for h in remaining {
                let upd = UpdateJobRes { job: msg.job, added: vec![], removed: removed.clone() };
                self.send_to(ctx, mom_addr(h), upd);
            }
        }
    }

    // -- job completion -----------------------------------------------------

    fn handle_task_done(&mut self, ctx: &mut Ctx<'_>, msg: TaskDone, src: Option<Endpoint>) {
        if self.net.retry_policy().is_some() {
            if let Some(src) = src {
                // Quench the task's retry loop (even for duplicates of a
                // job already finished and forgotten).
                let ack = TaskDoneAck { job: msg.job, node_index: msg.node_index };
                ctx.send(src, ack, SimDuration::from_micros(5));
            }
        }
        let Some(rec) = self.jobs.get_mut(&msg.job) else { return };
        if !rec.is_ms {
            return;
        }
        rec.tasks_done.insert(msg.node_index);
        if rec.tasks_done.len() == rec.launch.compute.len() {
            if let Some(token) = rec.walltime_timer.take() {
                ctx.cancel_timer(token);
                self.deferred.remove(&token);
            }
            let rec = self.jobs.get_mut(&msg.job).expect("present");
            ctx.trace(format!("{}: all tasks done", msg.job));
            let sisters: Vec<HostId> = Self::sisters(&rec.launch)
                .into_iter()
                .chain(rec.dyn_hosts.iter().copied())
                .collect();
            let incarnation = rec.launch.incarnation;
            for h in sisters {
                self.send_to(ctx, mom_addr(h), CleanupJob { job: msg.job, incarnation });
            }
            let exit = JobExit { job: msg.job, from: self.host, incarnation, timed_out: false };
            self.send_exit(ctx, exit);
            self.jobs.remove(&msg.job);
        }
    }

    /// Send a `JobExit`, registering it for resend-until-ack when a retry
    /// policy is active, and remember the finished incarnation so late
    /// duplicate launches are ignored.
    fn send_exit(&mut self, ctx: &mut Ctx<'_>, exit: JobExit) {
        let done = self.done_jobs.entry(exit.job).or_insert(0);
        *done = (*done).max(exit.incarnation);
        if self.net.retry_policy().is_some() {
            self.exit_pending.insert(exit.job, (exit.clone(), EXIT_ATTEMPTS));
        }
        self.send_to(ctx, server_addr(self.head), exit);
    }

    /// Periodic re-drive of every exchange still awaiting its response;
    /// armed (timer token 0) only when a retry policy is set.
    fn retransmit_tick(&mut self, ctx: &mut Ctx<'_>) {
        let Some(pol) = self.net.retry_policy() else { return };
        let mut joins: Vec<(JobId, HostId)> = Vec::new();
        let mut dynjoins: Vec<(JobId, HostId)> = Vec::new();
        let mut disjoins: Vec<(JobId, HostId)> = Vec::new();
        for (job, rec) in &self.jobs {
            if !rec.is_ms {
                continue;
            }
            for h in &rec.join_pending {
                joins.push((*job, *h));
            }
            if let Some(st) = &rec.dynjoin {
                for h in &st.pending {
                    dynjoins.push((*job, *h));
                }
            }
            for st in rec.disjoin.values() {
                for h in &st.pending {
                    disjoins.push((*job, *h));
                }
            }
        }
        // The BTree containers iterate in key order, so every batch is
        // already deterministic: joins and dynjoins in (job, host) order,
        // disjoins in (job, client, host) order.
        for (job, h) in joins {
            self.issue_join(ctx, job, h);
        }
        for (job, h) in dynjoins {
            self.issue_dynjoin(ctx, job, h);
        }
        for (job, h) in disjoins {
            let msg = DisjoinJob { job, reply: self.my_addr() };
            let bytes = self.cost.ctl_bytes;
            let outcome = self.net.send_from_ctx(ctx, self.host, mom_addr(h), msg, bytes);
            if !outcome.is_sent() {
                let ack = DisjoinAck { job, host: h };
                self.handle_disjoin_ack(ctx, ack);
            }
        }
        let mut exits: Vec<JobExit> = Vec::new();
        self.exit_pending.retain(|_, (exit, attempts)| {
            if *attempts == 0 {
                return false; // give up; server-side reclamation covers it
            }
            *attempts -= 1;
            exits.push(exit.clone());
            true
        });
        for exit in exits {
            self.send_to(ctx, server_addr(self.head), exit);
        }
        ctx.set_timer(pol.retransmit, TOKEN_RETRY);
    }

    fn handle_cleanup(&mut self, ctx: &mut Ctx<'_>, msg: CleanupJob) {
        // Record the cleaned incarnation even with no local record: a
        // late duplicate SendJob for it must not resurrect the job.
        let done = self.done_jobs.entry(msg.job).or_insert(0);
        *done = (*done).max(msg.incarnation);
        if self.jobs.get(&msg.job).is_some_and(|r| r.launch.incarnation > msg.incarnation) {
            return; // stale cleanup for a dead predecessor incarnation
        }
        if let Some(rec) = self.jobs.remove(&msg.job) {
            let done = self.done_jobs.entry(msg.job).or_insert(0);
            *done = (*done).max(rec.launch.incarnation);
            if let Some(token) = rec.walltime_timer {
                ctx.cancel_timer(token);
                self.deferred.remove(&token);
            }
            // "Kill" local tasks: cancellation is cooperative — each task
            // process receives a TaskKill and winds down at its next
            // cancellation point.
            for pid in &rec.task_pids {
                ctx.send(
                    darms_sim::Endpoint::Process(*pid),
                    TaskKill { job: msg.job },
                    SimDuration::from_micros(5),
                );
            }
            if rec.is_ms {
                // qdel path: tell the sisters too.
                for h in Self::sisters(&rec.launch).into_iter().chain(rec.dyn_hosts) {
                    let incarnation = rec.launch.incarnation;
                    self.send_to(ctx, mom_addr(h), CleanupJob { job: msg.job, incarnation });
                }
            }
        }
    }
}

impl Actor for PbsMom {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        let src = env.src;
        let env = match env.downcast::<SendJob>() {
            Ok(m) => return self.handle_send_job(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<JoinJob>() {
            Ok(m) => return self.handle_join_job(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<JoinAck>() {
            Ok(m) => return self.handle_join_ack(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<DynJoinCmd>() {
            Ok(m) => return self.handle_dynjoin_cmd(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<DynJoinJob>() {
            Ok(m) => return self.handle_dynjoin_job(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<DynJoinAck>() {
            Ok(m) => return self.handle_dynjoin_ack(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<DisjoinCmd>() {
            Ok(m) => return self.handle_disjoin_cmd(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<DisjoinJob>() {
            Ok(m) => {
                let job = m.job;
                return self.handle_disjoin_job(ctx, m, job);
            }
            Err(e) => e,
        };
        let env = match env.downcast::<DisjoinAck>() {
            Ok(m) => return self.handle_disjoin_ack(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<TaskDone>() {
            Ok(m) => return self.handle_task_done(ctx, m, src),
            Err(e) => e,
        };
        let env = match env.downcast::<JobExitAck>() {
            Ok(m) => {
                self.exit_pending.remove(&m.job);
                return;
            }
            Err(e) => e,
        };
        let env = match env.downcast::<UpdateJobRes>() {
            Ok(m) => {
                // Keep the sister database current.
                if let Some(rec) = self.jobs.get_mut(&m.job) {
                    for h in &m.added {
                        if !rec.dyn_hosts.contains(h) {
                            rec.dyn_hosts.push(*h);
                        }
                    }
                    rec.dyn_hosts.retain(|h| !m.removed.contains(h));
                }
                return;
            }
            Err(e) => e,
        };
        let env = match env.downcast::<CleanupJob>() {
            Ok(m) => return self.handle_cleanup(ctx, m),
            Err(e) => e,
        };
        let env = match env.downcast::<MomPing>() {
            Ok(m) => {
                let pong = MomPong { seq: m.seq, host: self.host };
                return self.send_to(ctx, m.reply, pong);
            }
            Err(e) => e,
        };
        ctx.trace(format!("{}: unhandled message {env:?}", self.name));
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(pol) = self.net.retry_policy() {
            ctx.set_timer(pol.retransmit, TOKEN_RETRY);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_RETRY {
            return self.retransmit_tick(ctx);
        }
        match self.deferred.remove(&token) {
            Some(Deferred::IssueJoin { job, host }) => self.issue_join(ctx, job, host),
            Some(Deferred::FinishJoin { launch, reply }) => self.finish_join(ctx, launch, reply),
            Some(Deferred::StartTasks { job }) => self.start_tasks(ctx, job),
            Some(Deferred::IssueDynJoin { job, host }) => self.issue_dynjoin(ctx, job, host),
            Some(Deferred::FinishDynJoin { launch, reply }) => {
                self.finish_dynjoin(ctx, launch, reply)
            }
            Some(Deferred::FinishDisjoin { job, reply }) => self.finish_disjoin(ctx, job, reply),
            Some(Deferred::WalltimeExpired { job }) => self.walltime_expired(ctx, job),
            None => {}
        }
    }
}
