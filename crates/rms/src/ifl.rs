//! The Interface Library: blocking client calls into the server, usable
//! from any simulation process (front-end submitters and job tasks alike).
//!
//! Mirrors TORQUE's IFL plus the paper's two extensions, `pbs_dynget`
//! and `pbs_dynfree` (§III-B).

use std::sync::atomic::{AtomicU64, Ordering};

use darms_net::{Address, HostId, Network};
use darms_sim::Proc;

use crate::job::{ClientId, JobId, JobSpec, JobStatus};
use crate::proto::*;

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Wire size modelled for IFL requests.
const IFL_BYTES: u64 = 256;

fn fresh_token() -> u64 {
    NEXT_TOKEN.fetch_add(1, Ordering::Relaxed)
}

/// Why an IFL exchange failed (only possible when the network carries a
/// [`darms_net::RetryPolicy`]; without one every call blocks until the
/// reply arrives, as classic TORQUE clients do).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IflError {
    /// The retry budget was exhausted without a reply. The server may or
    /// may not have acted on the request.
    Timeout,
}

/// Generic blocking request/response exchange with the server.
///
/// With no retry policy on the network this is a single send plus an
/// unbounded wait — byte-identical to the pre-chaos protocol. With a
/// policy, the request is retransmitted under capped exponential backoff;
/// the correlation token doubles as an idempotency key (the server caches
/// the reply to every completed token and re-answers duplicates without
/// re-executing), so retransmits are safe even for mutating verbs.
async fn call<Req, Resp>(
    p: &Proc,
    net: &Network,
    from: HostId,
    server: Address,
    build: impl Fn(u64, Address) -> Req,
    token_of: impl Fn(&Resp) -> u64,
) -> Result<Resp, IflError>
where
    Req: std::any::Any + Send + Clone,
    Resp: std::any::Any + Send,
{
    let token = fresh_token();
    let reply = net.bind_auto(from, p.endpoint());
    let result = match net.retry_policy() {
        None => {
            let req = build(token, reply);
            let outcome = net.send_from_proc(p, from, server, req, IFL_BYTES);
            assert!(outcome.is_sent(), "IFL request could not reach the server: {outcome:?}");
            let env =
                p.recv_where(|e| e.peek::<Resp>().is_some_and(|r| token_of(r) == token)).await;
            Ok(env.downcast::<Resp>().expect("matched by predicate"))
        }
        Some(policy) => {
            // Evict replies from earlier timed-out calls of this process
            // so mailboxes stay bounded under duplication.
            while p.try_recv_where(|e| e.peek::<Resp>().is_some()).is_some() {}
            let mut got = None;
            for attempt in 0..policy.max_attempts.max(1) {
                let req = build(token, reply);
                let _ = net.send_from_proc(p, from, server, req, IFL_BYTES);
                let pred = |e: &darms_sim::Envelope| {
                    e.peek::<Resp>().is_some_and(|r| token_of(r) == token)
                };
                if let Some(env) = p.recv_where_timeout(pred, policy.timeout_for(attempt)).await {
                    got = Some(env.downcast::<Resp>().expect("matched by predicate"));
                    break;
                }
            }
            // Drop duplicate replies the fault layer may have delivered.
            while p
                .try_recv_where(|e| e.peek::<Resp>().is_some_and(|r| token_of(r) == token))
                .is_some()
            {}
            got.ok_or(IflError::Timeout)
        }
    };
    net.unbind(reply);
    result
}

/// Submit a job; returns its id once the server has enqueued it.
pub async fn qsub(p: &Proc, net: &Network, from: HostId, server: Address, spec: JobSpec) -> JobId {
    try_qsub(p, net, from, server, spec).await.expect("qsub: IFL retry budget exhausted")
}

/// Fallible [`qsub`]: surfaces retry-budget exhaustion instead of
/// panicking (for clients living on faulty links).
pub async fn try_qsub(
    p: &Proc,
    net: &Network,
    from: HostId,
    server: Address,
    spec: JobSpec,
) -> Result<JobId, IflError> {
    let resp: QsubResp = call(
        p,
        net,
        from,
        server,
        |token, reply| QsubReq { token, spec: spec.clone(), reply },
        |r: &QsubResp| r.token,
    )
    .await?;
    Ok(resp.job)
}

/// Query the status of all jobs.
pub async fn qstat(p: &Proc, net: &Network, from: HostId, server: Address) -> Vec<JobStatus> {
    try_qstat(p, net, from, server).await.expect("qstat: IFL retry budget exhausted")
}

/// Fallible [`qstat`].
pub async fn try_qstat(
    p: &Proc,
    net: &Network,
    from: HostId,
    server: Address,
) -> Result<Vec<JobStatus>, IflError> {
    let resp: QstatResp = call(
        p,
        net,
        from,
        server,
        |token, reply| QstatReq { token, reply },
        |r: &QstatResp| r.token,
    )
    .await?;
    Ok(resp.jobs)
}

/// Cancel a job; true if the server knew it and acted.
pub async fn qdel(p: &Proc, net: &Network, from: HostId, server: Address, job: JobId) -> bool {
    let resp: QdelResp = call(
        p,
        net,
        from,
        server,
        |token, reply| QdelReq { token, job, reply },
        |r: &QdelResp| r.token,
    )
    .await
    .expect("qdel: IFL retry budget exhausted");
    resp.ok
}

/// Hold a queued job (`qhold`): the scheduler skips it until released.
pub async fn qhold(p: &Proc, net: &Network, from: HostId, server: Address, job: JobId) -> bool {
    let resp: QholdResp = call(
        p,
        net,
        from,
        server,
        |token, reply| QholdReq { token, job, hold: true, reply },
        |r: &QholdResp| r.token,
    )
    .await
    .expect("qhold: IFL retry budget exhausted");
    resp.ok
}

/// Release a held job back into the queue (`qrls`).
pub async fn qrls(p: &Proc, net: &Network, from: HostId, server: Address, job: JobId) -> bool {
    let resp: QholdResp = call(
        p,
        net,
        from,
        server,
        |token, reply| QholdReq { token, job, hold: false, reply },
        |r: &QholdResp| r.token,
    )
    .await
    .expect("qrls: IFL retry budget exhausted");
    resp.ok
}

/// Request `count` additional network-attached accelerators for a running
/// job. Blocks until the batch system grants or rejects (the paper's
/// `pbs_dynget`). On rejection the application simply continues with its
/// current allocation.
pub async fn pbs_dynget(
    p: &Proc,
    net: &Network,
    from: HostId,
    server: Address,
    job: JobId,
    cn: HostId,
    count: u32,
) -> Result<DynGrant, DynReject> {
    pbs_dynget_range(p, net, from, server, job, cn, count, count).await
}

/// Dynamically request `count` additional **compute nodes** with `ppn`
/// cores each — the malleable-job generalisation the paper sketches in
/// §V (Cera et al.'s dynamic MPI). Same serial servicing and scheduling
/// path as accelerator requests.
#[allow(clippy::too_many_arguments)]
pub async fn pbs_dynget_nodes(
    p: &Proc,
    net: &Network,
    from: HostId,
    server: Address,
    job: JobId,
    cn: HostId,
    count: u32,
    ppn: u32,
) -> Result<DynGrant, DynReject> {
    let resp: Result<DynGetResp, IflError> = call(
        p,
        net,
        from,
        server,
        |token, reply| DynGetReq {
            token,
            job,
            cn,
            count,
            min_count: count,
            kind: DynResource::ComputeNodes { ppn },
            reply,
        },
        |r: &DynGetResp| r.token,
    )
    .await;
    match resp {
        Ok(r) => r.result,
        Err(IflError::Timeout) => Err(DynReject::Timeout),
    }
}

/// Like [`pbs_dynget`] but accepting any grant of at least `min_count`
/// accelerators (the partial-grant policy the paper lists as future
/// work, §VI). The scheduler grants `min(count, free)` when at least
/// `min_count` are free, and rejects otherwise.
#[allow(clippy::too_many_arguments)]
pub async fn pbs_dynget_range(
    p: &Proc,
    net: &Network,
    from: HostId,
    server: Address,
    job: JobId,
    cn: HostId,
    count: u32,
    min_count: u32,
) -> Result<DynGrant, DynReject> {
    let resp: Result<DynGetResp, IflError> = call(
        p,
        net,
        from,
        server,
        |token, reply| DynGetReq {
            token,
            job,
            cn,
            count,
            min_count,
            kind: DynResource::Accelerators,
            reply,
        },
        |r: &DynGetResp| r.token,
    )
    .await;
    match resp {
        Ok(r) => r.result,
        Err(IflError::Timeout) => Err(DynReject::Timeout),
    }
}

/// Release a dynamically allocated accelerator set (the paper's
/// `pbs_dynfree`). Returns as soon as the server accepts; the
/// disassociation continues in the background.
pub async fn pbs_dynfree(
    p: &Proc,
    net: &Network,
    from: HostId,
    server: Address,
    job: JobId,
    client_id: ClientId,
) -> bool {
    let resp: Result<DynFreeResp, IflError> = call(
        p,
        net,
        from,
        server,
        |token, reply| DynFreeReq { token, job, client_id, reply },
        |r: &DynFreeResp| r.token,
    )
    .await;
    // Exhaustion maps to `false`: the release may or may not have been
    // applied; server-side reclamation on job exit covers the difference.
    resp.map(|r| r.ok).unwrap_or(false)
}
