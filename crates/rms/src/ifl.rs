//! The Interface Library: blocking client calls into the server, usable
//! from any simulation process (front-end submitters and job tasks alike).
//!
//! Mirrors TORQUE's IFL plus the paper's two extensions, `pbs_dynget`
//! and `pbs_dynfree` (§III-B).

use std::sync::atomic::{AtomicU64, Ordering};

use darms_net::{Address, HostId, Network};
use darms_sim::Proc;

use crate::job::{ClientId, JobId, JobSpec, JobStatus};
use crate::proto::*;

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Wire size modelled for IFL requests.
const IFL_BYTES: u64 = 256;

fn fresh_token() -> u64 {
    NEXT_TOKEN.fetch_add(1, Ordering::Relaxed)
}

/// Generic blocking request/response exchange with the server.
async fn call<Req, Resp>(
    p: &Proc,
    net: &Network,
    from: HostId,
    server: Address,
    build: impl FnOnce(u64, Address) -> Req,
    token_of: impl Fn(&Resp) -> u64,
) -> Resp
where
    Req: std::any::Any + Send,
    Resp: std::any::Any + Send,
{
    let token = fresh_token();
    let reply = net.bind_auto(from, p.endpoint());
    let req = build(token, reply);
    let outcome = net.send_from_proc(p, from, server, req, IFL_BYTES);
    assert!(outcome.is_sent(), "IFL request could not reach the server: {outcome:?}");
    let env = p.recv_where(|e| e.peek::<Resp>().is_some_and(|r| token_of(r) == token)).await;
    net.unbind(reply);
    env.downcast::<Resp>().expect("matched by predicate")
}

/// Submit a job; returns its id once the server has enqueued it.
pub async fn qsub(p: &Proc, net: &Network, from: HostId, server: Address, spec: JobSpec) -> JobId {
    let resp: QsubResp = call(
        p,
        net,
        from,
        server,
        |token, reply| QsubReq { token, spec, reply },
        |r: &QsubResp| r.token,
    )
    .await;
    resp.job
}

/// Query the status of all jobs.
pub async fn qstat(p: &Proc, net: &Network, from: HostId, server: Address) -> Vec<JobStatus> {
    let resp: QstatResp = call(
        p,
        net,
        from,
        server,
        |token, reply| QstatReq { token, reply },
        |r: &QstatResp| r.token,
    )
    .await;
    resp.jobs
}

/// Cancel a job; true if the server knew it and acted.
pub async fn qdel(p: &Proc, net: &Network, from: HostId, server: Address, job: JobId) -> bool {
    let resp: QdelResp = call(
        p,
        net,
        from,
        server,
        |token, reply| QdelReq { token, job, reply },
        |r: &QdelResp| r.token,
    )
    .await;
    resp.ok
}

/// Hold a queued job (`qhold`): the scheduler skips it until released.
pub async fn qhold(p: &Proc, net: &Network, from: HostId, server: Address, job: JobId) -> bool {
    let resp: QholdResp = call(
        p,
        net,
        from,
        server,
        |token, reply| QholdReq { token, job, hold: true, reply },
        |r: &QholdResp| r.token,
    )
    .await;
    resp.ok
}

/// Release a held job back into the queue (`qrls`).
pub async fn qrls(p: &Proc, net: &Network, from: HostId, server: Address, job: JobId) -> bool {
    let resp: QholdResp = call(
        p,
        net,
        from,
        server,
        |token, reply| QholdReq { token, job, hold: false, reply },
        |r: &QholdResp| r.token,
    )
    .await;
    resp.ok
}

/// Request `count` additional network-attached accelerators for a running
/// job. Blocks until the batch system grants or rejects (the paper's
/// `pbs_dynget`). On rejection the application simply continues with its
/// current allocation.
pub async fn pbs_dynget(
    p: &Proc,
    net: &Network,
    from: HostId,
    server: Address,
    job: JobId,
    cn: HostId,
    count: u32,
) -> Result<DynGrant, DynReject> {
    pbs_dynget_range(p, net, from, server, job, cn, count, count).await
}

/// Dynamically request `count` additional **compute nodes** with `ppn`
/// cores each — the malleable-job generalisation the paper sketches in
/// §V (Cera et al.'s dynamic MPI). Same serial servicing and scheduling
/// path as accelerator requests.
#[allow(clippy::too_many_arguments)]
pub async fn pbs_dynget_nodes(
    p: &Proc,
    net: &Network,
    from: HostId,
    server: Address,
    job: JobId,
    cn: HostId,
    count: u32,
    ppn: u32,
) -> Result<DynGrant, DynReject> {
    let resp: DynGetResp = call(
        p,
        net,
        from,
        server,
        |token, reply| DynGetReq {
            token,
            job,
            cn,
            count,
            min_count: count,
            kind: DynResource::ComputeNodes { ppn },
            reply,
        },
        |r: &DynGetResp| r.token,
    )
    .await;
    resp.result
}

/// Like [`pbs_dynget`] but accepting any grant of at least `min_count`
/// accelerators (the partial-grant policy the paper lists as future
/// work, §VI). The scheduler grants `min(count, free)` when at least
/// `min_count` are free, and rejects otherwise.
#[allow(clippy::too_many_arguments)]
pub async fn pbs_dynget_range(
    p: &Proc,
    net: &Network,
    from: HostId,
    server: Address,
    job: JobId,
    cn: HostId,
    count: u32,
    min_count: u32,
) -> Result<DynGrant, DynReject> {
    let resp: DynGetResp = call(
        p,
        net,
        from,
        server,
        |token, reply| DynGetReq {
            token,
            job,
            cn,
            count,
            min_count,
            kind: DynResource::Accelerators,
            reply,
        },
        |r: &DynGetResp| r.token,
    )
    .await;
    resp.result
}

/// Release a dynamically allocated accelerator set (the paper's
/// `pbs_dynfree`). Returns as soon as the server accepts; the
/// disassociation continues in the background.
pub async fn pbs_dynfree(
    p: &Proc,
    net: &Network,
    from: HostId,
    server: Address,
    job: JobId,
    client_id: ClientId,
) -> bool {
    let resp: DynFreeResp = call(
        p,
        net,
        from,
        server,
        |token, reply| DynFreeReq { token, job, client_id, reply },
        |r: &DynFreeResp| r.token,
    )
    .await;
    resp.ok
}
